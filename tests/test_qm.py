"""Unit + property tests for the two-level minimiser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.cubes import Cube, cover_eval
from repro.synth.qm import (
    cleanup_cover,
    minimize,
    minimize_exact,
    prime_implicants,
    verify_cover,
)


class TestPrimeImplicants:
    def test_classic_example(self):
        # f(a,b) = a'b + ab + ab' = a + b ; primes: a, b
        onset = {0b01, 0b11, 0b10}
        primes = prime_implicants(2, onset, set())
        strings = {p.to_string(2) for p in primes}
        assert strings == {"1-", "-1"}

    def test_dc_extends_primes(self):
        # onset {11}, dc {10} -> prime 1- exists
        primes = prime_implicants(2, {0b11}, {0b01})
        assert Cube.from_string("1-") in primes

    def test_isolated_minterm_is_prime(self):
        primes = prime_implicants(3, {0b101}, set())
        assert primes == [Cube(0b101, 0b111)]


class TestMinimizeExact:
    def test_empty_onset(self):
        assert minimize_exact(3, set(), set()) == []

    def test_tautology(self):
        assert minimize_exact(2, {0, 1, 2, 3}, set()) == [Cube(0, 0)]

    def test_tautology_with_dc(self):
        assert minimize_exact(2, {0, 3}, {1, 2}) == [Cube(0, 0)]

    def test_xor_needs_two_cubes(self):
        onset = {0b01, 0b10}
        cover = minimize_exact(2, onset, set())
        assert len(cover) == 2
        assert verify_cover(2, cover, onset, {0b00, 0b11})

    def test_classic_4var(self):
        # f = sum m(0,1,2,5,6,7,8,9,10,14) -- a standard QM exercise.
        onset = {0, 1, 2, 5, 6, 7, 8, 9, 10, 14}
        offset = set(range(16)) - onset
        cover = minimize_exact(4, onset, set())
        assert verify_cover(4, cover, onset, offset)
        assert len(cover) <= 5

    @given(
        st.sets(st.integers(0, 31), max_size=20),
        st.sets(st.integers(0, 31), max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_implements_function(self, onset, dc):
        dc = dc - onset
        cover = minimize_exact(5, onset, dc)
        offset = set(range(32)) - onset - dc
        assert verify_cover(5, cover, onset, offset)

    @given(st.sets(st.integers(0, 15), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_no_worse_than_minterm_cover(self, onset):
        cover = minimize_exact(4, onset, set())
        assert len(cover) <= len(onset)


class TestCleanupCover:
    def test_absorbs_contained(self):
        cover = [Cube.from_string("1--"), Cube.from_string("11-")]
        out = cleanup_cover(cover, {1, 3, 5, 7}, set())
        assert out == [Cube.from_string("1--")]

    def test_merges_distance_one(self):
        cover = [Cube.from_string("110"), Cube.from_string("111")]
        out = cleanup_cover(cover, {0b011, 0b111}, set())
        assert out == [Cube.from_string("11-")]

    @given(
        st.lists(
            st.builds(
                lambda care, sub: Cube(sub & care, care),
                st.integers(0, 15),
                st.integers(0, 15),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_preserves_function(self, cover):
        onset = {m for m in range(16) if cover_eval(cover, m)}
        out = cleanup_cover(cover, onset, set())
        for m in range(16):
            assert cover_eval(out, m) == (m in onset)


class TestDispatch:
    def test_small_uses_exact(self):
        cover = minimize(3, {0b111}, set())
        assert cover == [Cube(0b111, 0b111)]

    def test_large_without_seed_rejected(self):
        with pytest.raises(ValueError):
            minimize(20, {1}, set())

    def test_large_with_seed_cleans(self):
        seed = [Cube.from_string("1" + "-" * 19)]
        out = minimize(20, set(), set(), seed_cover=seed)
        assert out  # passes through the heuristic path
