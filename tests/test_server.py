"""Tests for the crash-tolerant campaign service (:mod:`repro.store.service`,
:mod:`repro.store.server`, :mod:`repro.store.client`).

Covers the robustness acceptance surface of the serve layer: request
coalescing (one compute for N concurrent identical requests),
backpressure (503 + ``Retry-After`` at queue depth), per-request
deadlines (504, quarantine, worker slot reclaimed), crash-retry with
checkpoint resume (bit-identical to a cold single-threaded run),
graceful drain, structured JSON errors, fail-fast upload validation,
client retry behavior against a flaky stub server, and the combined
chaos scenario from the issue's acceptance criteria.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cli import main
from repro.core.errors import (
    DeadlineExceeded,
    InputValidationError,
    ServiceOverloaded,
    WorkerCrash,
    is_retryable,
)
from repro.netlist.bench import parse_bench_upload
from repro.netlist.verilog import parse_verilog_upload
from repro.store.cache import CampaignStore
from repro.store.client import RemoteStoreError, StoreClient
from repro.store.fingerprint import digest
from repro.store.server import make_server
from repro.store.service import CampaignService
from repro.testing.chaos import ServiceChaos


# ----------------------------------------------------------------- helpers
def _wait_until(predicate, timeout: float = 10.0, interval: float = 0.01,
                message: str = "condition") -> None:
    """Bounded poll: the event-based replacement for fixed sleeps.

    Every cross-thread synchronization in this file waits on an
    observable condition (a ``/stats`` counter, an in-flight count)
    instead of a magic sleep, so the suite is immune to scheduler
    jitter on loaded CI machines.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout}s waiting for {message}")


def _report(design: str, threshold: float) -> dict:
    return {
        "schema": 1,
        "command": "grade",
        "design": design,
        "params": {},
        "counts": {"SFR": 1},
        "table2": {"design": design, "total_faults": 2, "sfr_faults": 1, "pct_sfr": 50.0},
        "faults": [
            {"fault": "1:out:5:0", "site": "g1", "category": "SFR", "quarantined": False},
        ],
        "grading": {
            "fault_free_uw": 100.0,
            "threshold": threshold,
            "summary": {},
            "figure7": [],
            "graded": [
                {"fault": "1:out:5:0", "site": "g1", "group": "select",
                 "power_uw": 90.0, "pct": -10.0, "detected": True},
            ],
        },
    }


def _publish(store: CampaignStore, design: str, threshold: float = 0.05) -> dict:
    report = _report(design, threshold)
    store.publish(
        "report",
        digest({"design": design, "threshold": threshold}),
        report,
        design=design,
        meta={"command": "grade"},
    )
    return report


def _publishing_compute(store: CampaignStore, delay: float = 0.0, counts=None):
    """A stub compute hook that simulates (sleeps), publishes and counts."""
    lock = threading.Lock()

    def compute(design: str, threshold: float) -> dict:
        if delay:
            time.sleep(delay)
        if counts is not None:
            with lock:
                counts[design] = counts.get(design, 0) + 1
        return _publish(store, design, threshold)

    return compute


def _fetch(url: str, method: str = "GET", body: bytes | None = None):
    """(status, parsed json, raw bytes, headers); never raises on 4xx/5xx."""
    req = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            raw = resp.read()
            return resp.status, json.loads(raw), raw, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        return exc.code, json.loads(raw), raw, dict(exc.headers)


@pytest.fixture()
def served(tmp_path):
    """Factory fixture: start a server with given service knobs."""
    started = []

    def start(compute=None, designs=("facet", "diffeq", "poly"), **knobs):
        store = CampaignStore(tmp_path / "store")
        server = make_server(
            "127.0.0.1", 0, store, compute=compute, designs=designs, **knobs
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        return f"http://127.0.0.1:{server.server_address[1]}", store, server.service

    yield start
    for server, thread in started:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


# -------------------------------------------------------------- coalescing
def test_stampede_coalesces_to_one_compute(served):
    counts: dict = {}
    store_holder = []
    service_holder = []

    def compute(design, threshold):
        # hold the job open until every rider has provably attached, so
        # the one-compute assertion cannot race the request threads
        _wait_until(
            lambda: service_holder[0].stats()["service"]["coalesced"] >= 7,
            message="all riders coalesced",
        )
        counts[design] = counts.get(design, 0) + 1
        return _publish(store_holder[0], design, threshold)

    base, store, service = served(compute=compute, queue_depth=8)
    store_holder.append(store)
    service_holder.append(service)

    results = []

    def hit():
        results.append(_fetch(f"{base}/campaigns/diffeq?threshold=0.05"))

    threads = [threading.Thread(target=hit) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)

    assert len(results) == 8
    assert all(status == 200 for status, *_ in results)
    bodies = {raw for _, _, raw, _ in results}
    assert len(bodies) == 1  # every rider got byte-identical payloads
    assert counts == {"diffeq": 1}  # exactly one simulation
    stats = service.stats()
    assert stats["computed"] == 1
    assert stats["service"]["coalesced"] == 7


def test_cached_reads_not_blocked_by_compute(served):
    release = threading.Event()
    store_holder = []

    def compute(design, threshold):
        release.wait(timeout=10)
        return _publish(store_holder[0], design, threshold)

    base, store, service = served(compute=compute)
    store_holder.append(store)
    _publish(store, "facet", 0.05)

    slow = threading.Thread(
        target=_fetch, args=(f"{base}/campaigns/diffeq",), daemon=True
    )
    slow.start()
    _wait_until(
        lambda: service.stats()["service"]["in_flight"] >= 1,
        message="compute job admitted",
    )
    t0 = time.monotonic()
    status, report, _, _ = _fetch(f"{base}/campaigns/facet")
    elapsed = time.monotonic() - t0
    release.set()
    slow.join(timeout=10)
    assert status == 200 and report["design"] == "facet"
    assert elapsed < 5.0  # served from cache while the compute was wedged


# ------------------------------------------------------------ backpressure
def test_backpressure_503_with_retry_after(served):
    release = threading.Event()
    store_holder = []

    def compute(design, threshold):
        release.wait(timeout=10)
        return _publish(store_holder[0], design, threshold)

    base, store, service = served(compute=compute, queue_depth=1, workers=1)
    store_holder.append(store)

    first = threading.Thread(
        target=_fetch, args=(f"{base}/campaigns/facet",), daemon=True
    )
    first.start()
    _wait_until(
        lambda: service.stats()["service"]["in_flight"] >= 1,
        timeout=5,
        message="first job admitted",
    )

    status, body, _, headers = _fetch(f"{base}/campaigns/diffeq")
    assert status == 503
    assert body["error"] == "ServiceOverloaded" and body["retryable"] is True
    assert int(headers["Retry-After"]) >= 1
    assert service.stats()["service"]["rejected_overload"] == 1

    release.set()
    first.join(timeout=10)
    # depth frees up -> the same request is admitted and served
    status, report, _, _ = _fetch(f"{base}/campaigns/diffeq")
    assert status == 200 and report["design"] == "diffeq"


# ---------------------------------------------------------------- deadline
def test_deadline_504_quarantine_and_slot_reclaim(served):
    hung = threading.Event()
    store_holder = []

    def compute(design, threshold):
        if design == "poly":
            hung.wait(timeout=30)
        return _publish(store_holder[0], design, threshold)

    base, store, service = served(compute=compute, request_timeout=0.3, workers=1)
    store_holder.append(store)

    t0 = time.monotonic()
    status, body, _, _ = _fetch(f"{base}/campaigns/poly")
    assert status == 504
    assert body["error"] == "DeadlineExceeded" and body["retryable"] is True
    assert time.monotonic() - t0 < 10.0
    stats = service.stats()["service"]
    assert stats["deadline_expired"] >= 1
    assert any("poly" in q for q in stats["quarantined"])

    # repeat request fails fast out of quarantine instead of re-wedging
    status, body, _, _ = _fetch(f"{base}/campaigns/poly")
    assert status == 504 and body["error"] == "DeadlineExceeded"

    # the worker slot was reclaimed: another design computes fine
    status, report, _, _ = _fetch(f"{base}/campaigns/facet")
    assert status == 200 and report["design"] == "facet"

    # the stray attempt eventually finishes, publishes and clears quarantine
    hung.set()
    _wait_until(
        lambda: not service.stats()["service"]["quarantined"],
        timeout=5,
        message="quarantine cleared",
    )
    status, report, _, _ = _fetch(f"{base}/campaigns/poly")
    assert status == 200 and report["design"] == "poly"


# ------------------------------------------------------- crash + resume
def test_crash_retry_resumes_from_journal_bit_identical(served, tmp_path):
    """A mid-request worker crash resumes the job from its journal: every
    unit of work runs exactly once and the served report is byte-identical
    to a cold single-threaded run."""
    journal = tmp_path / "journal.jsonl"
    row_computes: list[str] = []

    def checkpointed_compute(store):
        def compute(design, threshold):
            done = []
            if journal.exists():  # resume: skip journaled rows
                done = journal.read_text().splitlines()
            rows = []
            for i in range(4):
                key = f"{design}:row{i}"
                if key in done:
                    rows.append(key)
                    continue
                row_computes.append(key)  # one simulation per row, ever
                rows.append(key)
                with journal.open("a") as f:
                    f.write(key + "\n")
                if i == 1 and len(row_computes) <= 2:
                    raise WorkerCrash("chaos: worker died mid-campaign")
            report = _publish(store, design, threshold)
            report["rows"] = rows
            return report

        return compute

    base, store, service = served(compute=None)
    service.compute = checkpointed_compute(store)
    service.max_retries = 2

    status, report, raw, _ = _fetch(f"{base}/campaigns/diffeq?threshold=0.05")
    assert status == 200
    assert service.stats()["service"]["retries"] == 1
    # every row simulated exactly once across crash + resume
    assert row_computes == ["diffeq:row0", "diffeq:row1", "diffeq:row2", "diffeq:row3"]

    # cold single-threaded reference, no crash, fresh journal
    cold_report = _report("diffeq", 0.05)
    cold_report["rows"] = [f"diffeq:row{i}" for i in range(4)]
    assert report == cold_report


# ------------------------------------------------------------------- drain
def test_graceful_drain_finishes_in_flight_then_refuses(tmp_path):
    store = CampaignStore(tmp_path / "store")
    service = CampaignService(
        store, compute=_publishing_compute(store, delay=0.2), queue_depth=4
    ).start()
    results = []
    t = threading.Thread(
        target=lambda: results.append(service.campaign("facet", 0.05)), daemon=True
    )
    t.start()
    _wait_until(
        lambda: service.stats()["service"]["in_flight"] >= 1,
        message="job in flight",
    )
    assert service.drain(grace=10.0) is True
    t.join(timeout=5)
    assert results and results[0]["design"] == "facet"  # in-flight finished

    with pytest.raises(ServiceOverloaded):  # new compute refused while draining
        service.campaign("diffeq", 0.05)
    # cached reads still serve during drain
    assert service.campaign("facet", 0.05)["design"] == "facet"
    ok, detail = service.ready()
    assert ok is False and detail["draining"] is True
    service.stop()


def test_readyz_endpoint(served):
    base, store, service = served(compute=None)
    status, body, _, _ = _fetch(f"{base}/readyz")
    assert status == 200 and body["ready"] is True
    service._draining = True
    status, body, _, _ = _fetch(f"{base}/readyz")
    assert status == 503 and body["ready"] is False and body["draining"] is True


# -------------------------------------------------------- structured errors
def test_structured_errors_for_bad_requests(served):
    base, _, _ = served(compute=None)
    status, body, _, _ = _fetch(f"{base}/campaigns/not-a-design")
    assert status == 404
    assert body["error"] == "UnknownDesign" and body["retryable"] is False

    status, body, _, _ = _fetch(f"{base}/campaigns/facet?threshold=banana")
    assert status == 400
    assert body["error"] == "InputValidationError" and "threshold" in body["message"]

    status, body, _, _ = _fetch(f"{base}/campaigns/facet?threshold=2.0")
    assert status == 400 and body["error"] == "InputValidationError"

    status, body, _, _ = _fetch(f"{base}/campaigns/facet?verdict=sideways")
    assert status == 400 and "verdict" in body["message"]

    status, body, _, _ = _fetch(f"{base}/nonsense")
    assert status == 404 and body["error"] == "NotFound"


def test_compute_error_maps_to_structured_500(served):
    def compute(design, threshold):
        raise RuntimeError("synthetic pipeline explosion")

    base, _, service = served(compute=compute)
    service.max_retries = 0
    status, body, raw, _ = _fetch(f"{base}/campaigns/facet")
    assert status == 500
    assert body["error"] == "RuntimeError" and body["retryable"] is False
    assert b"Traceback" not in raw


# -------------------------------------------------------- upload validation
GOOD_BENCH = """
INPUT(a)
INPUT(b)
OUTPUT(y)
w = AND(a, b)
y = DFF(w)
"""

CYCLIC_BENCH = """
INPUT(a)
OUTPUT(y)
x = AND(y, a)
y = AND(x, a)
"""

GOOD_VERILOG = """
module up (a, y);
  input a;
  output y;
  not g0(y, a);
endmodule
"""


def test_parse_bench_upload_typed_errors():
    netlist = parse_bench_upload(GOOD_BENCH)
    assert netlist.stats()["gates"] == 2

    with pytest.raises(InputValidationError, match="loop"):
        parse_bench_upload(CYCLIC_BENCH)
    with pytest.raises(InputValidationError, match="bad .bench"):
        parse_bench_upload("y = FROB(a)\n")
    with pytest.raises(InputValidationError, match="empty"):
        parse_bench_upload("   \n")
    with pytest.raises(InputValidationError, match="bytes"):
        parse_bench_upload("#" * 2048, max_bytes=1024)
    for exc in (InputValidationError("x"),):
        assert is_retryable(exc) is False


def test_parse_verilog_upload_typed_errors():
    netlist = parse_verilog_upload(GOOD_VERILOG)
    assert netlist.stats()["gates"] == 1
    with pytest.raises(InputValidationError, match="bad Verilog"):
        parse_verilog_upload("module broken (a);\n  frobnicate g0(a);\nendmodule\n")
    with pytest.raises(InputValidationError, match="no connections"):
        parse_verilog_upload("module b (a);\n  input a;\n  and g0();\nendmodule\n")


def test_upload_endpoint(served):
    base, _, _ = served(compute=None)
    status, body, _, _ = _fetch(
        f"{base}/designs/validate?format=bench",
        method="POST",
        body=GOOD_BENCH.encode(),
    )
    assert status == 200 and body["ok"] is True
    assert body["stats"]["gates"] == 2 and len(body["fingerprint"]) == 64

    status, body, _, _ = _fetch(
        f"{base}/designs/validate?format=bench",
        method="POST",
        body=CYCLIC_BENCH.encode(),
    )
    assert status == 400
    assert body["error"] == "InputValidationError" and "loop" in body["message"]

    status, body, _, _ = _fetch(
        f"{base}/designs/validate?format=verilog",
        method="POST",
        body=GOOD_VERILOG.encode(),
    )
    assert status == 200 and body["design"] == "up"

    status, body, _, _ = _fetch(
        f"{base}/designs/validate?format=weird", method="POST", body=b"x"
    )
    assert status == 400 and "format" in body["message"]


# ------------------------------------------------------------------ client
class _ScriptedHandler(BaseHTTPRequestHandler):
    script: list  # (status, payload, headers[, delay_s]) consumed per request
    hits: list

    def log_message(self, fmt, *args):
        pass

    def do_GET(self):
        self.hits.append(self.path)
        entry = self.script.pop(0) if self.script else (200, {"ok": True}, {})
        if len(entry) == 4:
            status, payload, headers, delay = entry
            time.sleep(delay)
        else:
            status, payload, headers = entry
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in headers.items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture()
def scripted_server():
    servers = []

    def start(script):
        handler = type(
            "Scripted", (_ScriptedHandler,), {"script": list(script), "hits": []}
        )
        server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return f"http://127.0.0.1:{server.server_address[1]}", handler

    yield start
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_client_retries_503_honoring_retry_after(scripted_server):
    overloaded = {"error": "ServiceOverloaded", "message": "full", "retryable": True}
    base, handler = scripted_server(
        [
            (503, overloaded, {"Retry-After": "3"}),
            (503, overloaded, {}),
            (200, {"design": "facet"}, {}),
        ]
    )
    naps: list[float] = []
    client = StoreClient(
        base, max_retries=4, backoff=0.5, jitter=0.0, sleep=naps.append
    )
    assert client.campaign("facet") == {"design": "facet"}
    assert client.attempts == 3 and len(handler.hits) == 3
    assert naps[0] == 3.0  # Retry-After honored over computed backoff
    assert naps[1] == 1.0  # exponential backoff (0.5 * 2**1) for attempt 1


def test_client_does_not_retry_terminal_errors(scripted_server):
    bad = {"error": "InputValidationError", "message": "nope", "retryable": False}
    base, handler = scripted_server([(400, bad, {})])
    client = StoreClient(base, sleep=lambda s: None)
    with pytest.raises(RemoteStoreError) as exc_info:
        client.campaign("facet")
    assert exc_info.value.status == 400
    assert exc_info.value.payload["error"] == "InputValidationError"
    assert client.attempts == 1 and len(handler.hits) == 1


def test_client_retries_connection_failures_then_raises():
    naps: list[float] = []
    client = StoreClient(
        "http://127.0.0.1:9", timeout=0.2, max_retries=2, jitter=0.0,
        sleep=naps.append,
    )
    with pytest.raises(RemoteStoreError, match="unreachable"):
        client.healthz()
    assert client.attempts == 3
    assert naps == [0.25, 0.5]  # exponential backoff between attempts


# --------------------------------------------------- client multi-endpoint
#: an endpoint that refuses connections instantly (port 9 is discard/unused)
DEAD_ENDPOINT = "http://127.0.0.1:9"


def test_client_fails_over_to_second_endpoint_without_backoff(scripted_server):
    """A dead first endpoint costs one connect attempt inside the round --
    never a sleep, never a request failure."""
    base, handler = scripted_server([(200, {"design": "facet"}, {})])
    naps: list[float] = []
    client = StoreClient(
        [DEAD_ENDPOINT, base], timeout=0.5, jitter=0.0, sleep=naps.append
    )
    assert client.campaign("facet") == {"design": "facet"}
    assert naps == []  # failover is immediate, backoff is between rounds
    assert client.attempts == 2 and len(handler.hits) == 1
    assert client.failovers == 1


def test_client_failover_ordering_on_retryable_http_error(scripted_server):
    """A retryable 503 from the first endpoint fails over in-round; the
    answering endpoint is the next one in declaration order."""
    overloaded = {"error": "ServiceOverloaded", "message": "full", "retryable": True}
    base_a, handler_a = scripted_server([(503, overloaded, {})])
    base_b, handler_b = scripted_server([(200, {"design": "facet"}, {})])
    naps: list[float] = []
    client = StoreClient([base_a, base_b], jitter=0.0, sleep=naps.append)
    assert client.campaign("facet") == {"design": "facet"}
    assert naps == []
    assert [len(handler_a.hits), len(handler_b.hits)] == [1, 1]
    assert client.failovers == 1


def test_client_terminal_error_never_fails_over(scripted_server):
    """A 400 is the same answer from every replica: raise immediately,
    second endpoint untouched, no endpoint blamed."""
    bad = {"error": "InputValidationError", "message": "nope", "retryable": False}
    base_a, handler_a = scripted_server([(400, bad, {})])
    base_b, handler_b = scripted_server([])
    client = StoreClient([base_a, base_b], sleep=lambda s: None)
    with pytest.raises(RemoteStoreError) as exc_info:
        client.campaign("facet")
    assert exc_info.value.status == 400
    assert client.attempts == 1
    assert len(handler_a.hits) == 1 and len(handler_b.hits) == 0
    assert client.endpoint_state()[base_a]["consecutive_failures"] == 0


def test_client_circuit_breaker_skips_dead_endpoint_then_probes(scripted_server):
    """cb_threshold consecutive failures open a dead endpoint's circuit
    (it stops being tried at all); after cb_cooldown it is probed again."""
    base, handler = scripted_server([(200, {"n": i}, {}) for i in range(8)])
    now = [1000.0]
    client = StoreClient(
        [DEAD_ENDPOINT, base],
        timeout=0.5,
        jitter=0.0,
        cb_threshold=2,
        cb_cooldown=30.0,
        sleep=lambda s: None,
        clock=lambda: now[0],
    )
    client.request("stats")  # dead fails (1/2), failover
    client.request("stats")  # dead fails (2/2) -> circuit opens
    assert client.endpoint_state()[DEAD_ENDPOINT]["open"] is True
    attempts_before = client.attempts
    client.request("stats")  # dead endpoint skipped entirely
    assert client.attempts == attempts_before + 1  # only the live endpoint
    now[0] += 31.0  # cool-down elapses
    assert client.endpoint_state()[DEAD_ENDPOINT]["open"] is False
    attempts_before = client.attempts
    client.request("stats")  # dead endpoint probed again, fails, failover
    assert client.attempts == attempts_before + 2
    assert len(handler.hits) == 4


def test_client_all_circuits_open_still_probes(scripted_server):
    """When every endpoint's circuit is open the client half-opens all of
    them rather than failing a request without a single attempt."""
    base, handler = scripted_server([(200, {"ok": True}, {})])
    now = [0.0]
    client = StoreClient(
        [base], cb_threshold=1, cb_cooldown=60.0, clock=lambda: now[0],
        sleep=lambda s: None,
    )
    client._note_fail(base.rstrip("/"))  # trip the only endpoint's breaker
    assert client.endpoint_state()[base.rstrip("/")]["open"] is True
    assert client.request("stats") == {"ok": True}  # half-open probe served


def test_client_hedged_get_winner_selection(scripted_server):
    """With hedge_delay set, a slow first endpoint is raced against the
    next replica and the fastest good answer wins."""
    base_slow, handler_slow = scripted_server([(200, {"who": "slow"}, {}, 1.0)])
    base_fast, handler_fast = scripted_server([(200, {"who": "fast"}, {})])
    client = StoreClient(
        [base_slow, base_fast], hedge_delay=0.05, sleep=lambda s: None
    )
    assert client.request("stats") == {"who": "fast"}
    assert client.hedged == 1 and client.hedge_wins == 1 and client.failovers == 1
    assert len(handler_fast.hits) == 1


def test_client_single_endpoint_base_url_compat():
    client = StoreClient("http://127.0.0.1:8357/")
    assert client.base_url == "http://127.0.0.1:8357"
    assert client.endpoints == ["http://127.0.0.1:8357"]


# ------------------------------------------------------- worker supervisor
#: WorkerKilled escaping the worker loop IS the scenario under test --
#: pytest's unhandled-thread-exception watchdog must not flag it.
_lets_threads_die = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


@_lets_threads_die
def test_supervisor_restarts_killed_workers_and_requeues(tmp_path):
    """A worker thread dying mid-claim loses nothing: the supervisor
    requeues the claimed job, restarts the worker, and the original
    request is served as if nothing happened."""
    store = CampaignStore(tmp_path / "store")
    chaos = ServiceChaos(kill_worker=("facet",), kill_attempts=2)
    service = CampaignService(
        store,
        compute=_publishing_compute(store),
        workers=2,
        on_job=chaos.on_job,
        supervise_interval=0.02,
        restart_backoff=0.005,
        crash_budget=10,
    ).start()
    try:
        report = service.campaign("facet", 0.05)
        assert report["design"] == "facet"
        assert chaos.workers_killed == 2
        stats = service.stats()["service"]
        assert stats["worker_crashes"] == 2
        assert stats["requeued_jobs"] == 2
        _wait_until(
            lambda: service.stats()["service"]["workers_alive"] == 2,
            message="pool back to full strength",
        )
        # both dead workers were replaced (restarts, not the initial pool)
        assert service.stats()["service"]["worker_restarts"] >= 2
    finally:
        service.stop()


@_lets_threads_die
def test_crash_budget_breaker_degrades_to_cache_only_then_recovers(tmp_path):
    store = CampaignStore(tmp_path / "store")
    _publish(store, "facet", 0.05)  # warm cache survives the outage
    chaos = ServiceChaos(kill_worker=("diffeq",), kill_attempts=99)
    service = CampaignService(
        store,
        compute=_publishing_compute(store),
        workers=2,
        on_job=chaos.on_job,
        supervise_interval=0.02,
        restart_backoff=0.005,
        crash_budget=3,
        crash_window=30.0,
        pool_cooldown=60.0,  # long: the down state stays stable under asserts
    ).start()
    try:
        # a poisonous miss keeps killing workers until the budget trips
        miss = threading.Thread(
            target=lambda: _swallow(service, "diffeq"), daemon=True
        )
        miss.start()
        _wait_until(
            lambda: service.stats()["service"]["cache_only"],
            message="crash budget tripped",
        )
        # cache-only mode: warm traffic serves, misses get a typed 503
        assert service.campaign("facet", 0.05)["design"] == "facet"
        with pytest.raises(ServiceOverloaded, match="pool is down"):
            service.campaign("poly", 0.05)
        assert service.stats()["service"]["rejected_pool_down"] >= 1
        # degraded but *ready*: the node stays in rotation for its cache
        ok, detail = service.ready()
        assert ok is True and detail["cache_only"] is True
        # stop the killing and collapse the cool-down (waiting out a
        # realistic one would be a wall-clock sleep, the thing this suite
        # bans); the supervisor's next heartbeat half-opens the breaker
        service.on_job = None
        with service._lock:
            service._pool_down_until = 0.0
        _wait_until(
            lambda: (
                not service.stats()["service"]["cache_only"]
                and service.stats()["service"]["workers_alive"] == 2
            ),
            message="pool recovered after cool-down",
        )
        assert service.campaign("poly", 0.05)["design"] == "poly"
    finally:
        service.stop()


def _swallow(service, design):
    try:
        service.campaign(design, 0.05)
    except Exception:
        pass


def test_client_against_real_server(served):
    base, store, _ = served(compute=None)
    _publish(store, "facet", 0.05)
    client = StoreClient(base)
    assert client.healthz() == {"ok": True}
    assert client.readyz()["ready"] is True
    assert client.campaign("facet", threshold=0.05)["design"] == "facet"
    assert client.faults("facet", verdict="power-detected")[0]["fault"] == "1:out:5:0"
    assert client.validate_design(GOOD_BENCH)["ok"] is True
    assert client.stats()["requests"] >= 5


# ------------------------------------------------- combined chaos scenario
def test_chaos_scenario_acceptance(served, tmp_path):
    """The issue's acceptance scenario: a stampede of identical requests,
    one crashed worker, one hung compute and one malformed upload -- the
    server performs exactly one simulation per distinct fingerprint,
    returns only structured 200/400/503/504 responses, and every 200 body
    is byte-identical to the cold single-threaded path."""
    simulated: dict = {}
    store_holder = []
    hang_release = threading.Event()

    def compute(design, threshold):
        time.sleep(0.1)
        simulated[design] = simulated.get(design, 0) + 1
        return _publish(store_holder[0], design, threshold)

    chaos = ServiceChaos(crash=("diffeq",), hang=("poly",), hang_seconds=30.0)
    base, store, service = served(
        compute=chaos.wrap(compute), request_timeout=3.0, workers=2, queue_depth=8
    )
    store_holder.append(store)
    service.retry_backoff = 0.01

    # cold single-threaded reference for the stampeded fingerprint
    cold = json.dumps(_report("diffeq", 0.05), indent=2).encode()

    results: list = []

    def stampede():
        results.append(_fetch(f"{base}/campaigns/diffeq?threshold=0.05"))

    threads = [threading.Thread(target=stampede) for _ in range(6)]
    for t in threads:
        t.start()

    # one hung compute in parallel with the stampede
    hung_result: list = []
    hthread = threading.Thread(
        target=lambda: hung_result.append(_fetch(f"{base}/campaigns/poly"))
    )
    hthread.start()

    # one malformed upload in parallel too
    status, body, _, _ = _fetch(
        f"{base}/designs/validate?format=bench", method="POST", body=b"y = FROB(a)\n"
    )
    assert status == 400 and body["error"] == "InputValidationError"

    for t in threads:
        t.join(timeout=30)
    hthread.join(timeout=30)

    # stampede: all 200, byte-identical to the cold path, one simulation
    assert [status for status, *_ in results] == [200] * 6
    assert {raw for _, _, raw, _ in results} == {cold}
    assert simulated["diffeq"] == 1
    assert chaos.crashed == 1  # the crash happened and was absorbed

    # hung compute: structured 504, never a wedged connection
    assert hung_result and hung_result[0][0] == 504
    assert hung_result[0][1]["error"] == "DeadlineExceeded"

    stats = service.stats()
    assert stats["service"]["retries"] >= 1
    assert stats["service"]["deadline_expired"] >= 1
    assert stats["computed"] >= 1
    hang_release.set()


# --------------------------------------------------------- CLI validation
def test_serve_cli_rejects_bad_flags(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    for argv in (
        ["--store-dir", store_dir, "serve", "--port", "70000"],
        ["--store-dir", store_dir, "serve", "--port", "-1"],
        ["--store-dir", store_dir, "serve", "--queue-depth", "0"],
        ["--store-dir", store_dir, "serve", "--queue-depth", "9999"],
        ["--store-dir", store_dir, "serve", "--request-timeout", "0"],
        ["--store-dir", store_dir, "serve", "--request-timeout", "nope"],
        ["--store-dir", store_dir, "serve", "--drain-grace", "-5"],
    ):
        with pytest.raises(SystemExit) as exc_info:
            main(argv)
        assert exc_info.value.code == 2
        assert "usage" in capsys.readouterr().err
