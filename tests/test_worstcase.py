"""Tests for the Section-4 worst-case corruption experiment."""

import numpy as np
import pytest

from repro.core.worstcase import Flip, find_worst_case
from repro.designs.catalog import DFG_BUILDERS
from repro.hls.system import NormalModeStimulus
from repro.logic.simulator import CycleSimulator


@pytest.fixture(scope="module")
def facet_worst(facet_system):
    return find_worst_case(facet_system.rtl, facet_system.controller)


class TestSearch:
    def test_accepts_some_flips(self, facet_worst):
        assert 0 < len(facet_worst.flips) <= facet_worst.candidates

    def test_flips_only_touch_legal_entries(self, facet_system, facet_worst):
        rtl = facet_system.rtl
        for f in facet_worst.flips:
            if f.line in rtl.load_lines:
                # Extra loads only where the fault-free table had 0.
                assert rtl.control.loads[f.state][f.line] == 0
                assert f.value == 1
            else:
                # Select flips only on don't-cares.
                assert rtl.control.selects[f.state][f.line] is None

    def test_corrupted_table_installed(self, facet_system, facet_worst):
        base = facet_system.rtl.control
        corrupted = facet_worst.rtl.control
        changed = 0
        for state in base.states:
            for line, val in base.loads[state].items():
                changed += int(corrupted.loads[state][line] != val)
        assert changed == sum(1 for f in facet_worst.flips if f.line.startswith("LD"))

    def test_original_rtl_untouched(self, facet_system, facet_worst):
        # deepcopy semantics: the input design keeps its golden table.
        rtl = facet_system.rtl
        assert any(
            rtl.control.loads[f.state][f.line] == 0
            for f in facet_worst.flips
            if f.line in rtl.load_lines
        )


class TestCorruptedSystem:
    def test_still_computes_correctly(self, facet_worst):
        system = facet_worst.build()
        dfg = DFG_BUILDERS["facet"]()
        rng = np.random.default_rng(5)
        data = {k: rng.integers(0, 16, 48) for k in system.rtl.dfg.inputs}
        stim = NormalModeStimulus(system, data, system.cycles_for(1))
        sim = CycleSimulator(system.netlist, 48)
        for c in range(stim.n_cycles):
            stim.apply(sim, c)
            sim.settle()
            sim.latch()
        for port, bus in system.output_buses.items():
            got = sim.sample_bus(bus)
            for p in range(48):
                outs, _ = dfg.execute({k: int(v[p]) for k, v in data.items()})
                assert got[p] == outs[port]

    def test_power_strictly_increases(self, facet_system, facet_worst):
        from repro.power.estimator import PowerEstimator
        from repro.power.montecarlo import monte_carlo_power

        corrupted = facet_worst.build()
        base = monte_carlo_power(
            facet_system, PowerEstimator(facet_system.netlist),
            batch_patterns=64, max_batches=3,
        )
        worst = monte_carlo_power(
            corrupted, PowerEstimator(corrupted.netlist),
            batch_patterns=64, max_batches=3,
        )
        assert worst.power_uw > 1.5 * base.power_uw  # >50% even on facet


class TestFlip:
    def test_describe(self):
        assert "extra load" in Flip("CS1", "LD3", 1).describe()
        assert "select flip" in Flip("HOLD", "MS2", 1).describe()
