"""Unit tests for the RTL design model's activity queries."""

import pytest

from repro.designs.catalog import build_rtl
from repro.hls.rtl import (
    HOLD_STATE,
    RESET_STATE,
    MuxSpec,
    Source,
    cs_state,
    state_names,
)


@pytest.fixture(scope="module")
def rtl():
    return build_rtl("diffeq")


class TestStateNames:
    def test_layout(self):
        assert state_names(2) == ["RESET", "CS1", "CS2", "HOLD"]
        assert cs_state(3) == "CS3"


class TestMuxSpec:
    def test_sel_bits(self):
        m = MuxSpec("m", [Source("reg", "A")])
        assert m.n_sel_bits == 0
        m2 = MuxSpec("m2", [Source("reg", x) for x in "ABC"])
        assert m2.n_sel_bits == 2

    def test_sel_bits_for(self):
        m = MuxSpec("m", [Source("reg", x) for x in "ABCD"],
                    sel_names=["MS1", "MS2"])
        assert m.sel_bits_for(2) == {"MS1": 0, "MS2": 1}

    def test_source_index(self):
        m = MuxSpec("m", [Source("reg", "A"), Source("fu", "MUL1")])
        assert m.source_index(Source("fu", "MUL1")) == 1


class TestLookups:
    def test_register_lookup(self, rtl):
        assert rtl.register("REG1").name == "REG1"
        with pytest.raises(KeyError):
            rtl.register("REG99")

    def test_fu_lookup(self, rtl):
        assert rtl.fu("MUL1").name == "MUL1"
        with pytest.raises(KeyError):
            rtl.fu("DIV1")

    def test_mux_of_sel(self, rtl):
        for sel in rtl.sel_lines:
            mux = rtl.mux_of_sel(sel)
            assert sel in mux.sel_names
        with pytest.raises(KeyError):
            rtl.mux_of_sel("MS99")

    def test_all_muxes_count(self, rtl):
        assert len(rtl.all_muxes()) == 2 * len(rtl.fus) + len(rtl.registers)


class TestActivity:
    def test_ops_in_state(self, rtl):
        for state in rtl.states:
            ops = rtl.ops_in_state(state)
            if state in (RESET_STATE, HOLD_STATE):
                assert ops == []
            else:
                step = int(state[2:])
                assert all(b.step == step for b in ops)

    def test_mux_active_states_fu_ports(self, rtl):
        mul = rtl.fu("MUL1")
        active = rtl.mux_active_states(mul.mux_a)
        expected = {cs_state(b.step) for b in rtl.bindings.values() if b.fu == "MUL1"}
        assert active == expected

    def test_mux_active_states_register_inputs(self, rtl):
        reg = rtl.register(rtl.value_reg["x"])
        active = rtl.mux_active_states(reg.input_mux)
        assert RESET_STATE in active  # loads its input there
        assert HOLD_STATE not in active

    def test_reg_load_states_match_control_table(self, rtl):
        for r in rtl.registers:
            states = rtl.reg_load_states(r.name)
            for s in rtl.states:
                assert (s in states) == bool(rtl.control.loads[s][r.load_line])

    def test_output_register_read_in_hold(self, rtl):
        out_reg = rtl.outputs["y_out"]
        assert HOLD_STATE in rtl.reg_read_states(out_reg)

    def test_comparator_operand_read_at_decision(self, rtl):
        # CMP1 reads the x register at the decision step.
        x_reg = rtl.value_reg["x"]
        assert cs_state(rtl.cond_step) in rtl.reg_read_states(x_reg)

    def test_summary_mentions_counts(self, rtl):
        text = rtl.summary()
        assert f"{len(rtl.registers)} registers" in text
        assert f"{rtl.schedule.n_steps} control steps" in text


class TestControlTable:
    def test_control_lines_complete(self, rtl):
        lines = rtl.control.control_lines()
        assert set(lines) == set(rtl.load_lines) | set(rtl.sel_lines)

    def test_line_value_dispatch(self, rtl):
        assert rtl.control.line_value(RESET_STATE, "LD1") in (0, 1)
        assert rtl.control.line_value(HOLD_STATE, rtl.sel_lines[0]) is None
