"""Cone closure correctness and cone-engine bit-identity.

Two layers of evidence that the cone-restricted differential engine is a
pure performance lever:

* the structural layer -- the sequential-transitive-fanout closure equals
  brute-force multi-cycle reachability on randomized netlists, and every
  net that actually diverges in a faulted simulation lies inside the
  computed cone;
* the behavioural layer -- cone-on and cone-off campaigns produce
  bit-identical verdicts and detect cycles across designs, batch sizes
  and job counts, each also matching the serial reference simulator.
"""

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig
from repro.logic.cones import FaultCone, chunk_by_cone, compute_cones
from repro.logic.faults import enumerate_faults
from repro.logic.faultsim import (
    ConeStats,
    GoldenTrace,
    fault_simulate,
    run_golden,
    simulate_one_fault,
)
from repro.logic.simulator import CycleSimulator
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def _random_netlist(rng: np.random.Generator) -> Netlist:
    """A random small sequential netlist (always valid: inputs feed first)."""
    nl = Netlist(name="rand")
    nets = [nl.add_net(f"pi{i}") for i in range(4)]
    for n in nets:
        nl.mark_input(n)
    comb = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND, GateType.NOT]
    for i in range(int(rng.integers(8, 20))):
        out = nl.add_net(f"n{i}")
        gtype = comb[int(rng.integers(len(comb)))] if rng.random() < 0.7 else GateType.DFF
        if gtype is GateType.NOT or gtype is GateType.DFF:
            ins = [nets[int(rng.integers(len(nets)))]]
        else:
            ins = [nets[int(rng.integers(len(nets)))] for _ in range(2)]
        if gtype is GateType.DFF:
            # a flip-flop may read any net, including later ones, without
            # forming a combinational loop -- but only earlier nets exist
            # in this incremental construction, which is fine: the BFS
            # closure is what is under test, not loop topologies.
            nl.add_gate(gtype, out, ins)
        else:
            nl.add_gate(gtype, out, ins)
        nets.append(out)
    nl.mark_output(nets[-1])
    nl.validate()
    return nl


def _brute_force_reach(nl: Netlist, seed: int) -> tuple[set[int], set[int]]:
    """Multi-cycle reachability by repeated single-step propagation.

    One step: a gate reading a disturbed net produces a disturbed output.
    Iterate until the disturbed set stops growing -- the number of rounds
    bounds any number of clock cycles, so this is sequential reachability
    computed the slow, obviously-correct way.
    """
    disturbed = {seed}
    gates: set[int] = set()
    while True:
        grew = False
        for g in nl.gates:
            if any(n in disturbed for n in g.inputs):
                if g.index not in gates:
                    gates.add(g.index)
                    grew = True
                if g.output not in disturbed:
                    disturbed.add(g.output)
                    grew = True
        if not grew:
            return gates, disturbed


class TestConeClosure:
    def test_matches_brute_force_on_random_netlists(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            nl = _random_netlist(rng)
            faults = [
                f for f in enumerate_faults(nl) if f.is_stem and f.value == 1
            ][:10]
            cones = compute_cones(nl, faults)
            for fault in faults:
                gates, nets = _brute_force_reach(nl, fault.net)
                assert cones[fault].gates == gates
                assert cones[fault].nets == nets | {fault.net}

    def test_branch_cone_is_gate_plus_output_closure(self):
        rng = np.random.default_rng(11)
        nl = _random_netlist(rng)
        branch = next(f for f in enumerate_faults(nl) if not f.is_stem)
        cone = compute_cones(nl, [branch])[branch]
        out = nl.gates[branch.gate_index].output
        gates, nets = _brute_force_reach(nl, out)
        assert cone.gates == gates | {branch.gate_index}
        assert cone.nets == nets | {out}

    def test_observable_is_net_intersection(self):
        cone = FaultCone(gates=frozenset({1}), nets=frozenset({3, 4}))
        assert cone.observable([4, 9])
        assert not cone.observable([9])

    def test_divergence_stays_inside_cone(self, facet_faultsim_setup):
        """Empirical containment: every net that differs between a faulted
        and the fault-free simulation lies inside the computed cone."""
        system, stim, _masks, _observe, faults = facet_faultsim_setup
        nl = system.netlist
        picks = faults[:: max(1, len(faults) // 8)]
        cones = compute_cones(nl, picks)
        for fault in picks:
            good = CycleSimulator(nl, stim.n_patterns)
            bad = CycleSimulator(nl, stim.n_patterns, faults=[fault])
            for cycle in range(stim.n_cycles):
                stim.apply(good, cycle)
                stim.apply(bad, cycle)
                good.settle()
                bad.settle()
                differs = (
                    (good.Z[: nl.num_nets] != bad.Z[: nl.num_nets])
                    | (good.O[: nl.num_nets] != bad.O[: nl.num_nets])
                ).any(axis=1)
                diverged = set(np.flatnonzero(differs).tolist())
                assert diverged <= cones[fault].nets, (
                    f"{fault} diverged outside its cone at cycle {cycle}"
                )
                good.latch()
                bad.latch()


class TestChunkByCone:
    def test_partition_preserves_faults(self, facet_faultsim_setup):
        system, _stim, _masks, _observe, faults = facet_faultsim_setup
        cones = compute_cones(system.netlist, faults)
        chunks = chunk_by_cone(faults, cones, 7, system.netlist, key=str)
        flat = [f for c in chunks for f in c]
        assert sorted(flat, key=str) == sorted(faults, key=str)
        assert all(len(c) <= 7 for c in chunks)

    def test_ordering_is_independent_of_input_order(self, facet_faultsim_setup):
        """The fault-key tiebreak pins the chunking for any input order.

        Faults sharing a cone size/signature/depth would otherwise be
        ordered by Python's stable sort -- i.e. by arrival -- and the
        chunk layout (hence worker scheduling) would silently depend on
        enumeration order.  Regression for the deterministic tiebreak.
        """
        system, _stim, _masks, _observe, faults = facet_faultsim_setup
        cones = compute_cones(system.netlist, faults)
        reference = chunk_by_cone(faults, cones, 7, system.netlist, key=str)
        for seed in (3, 17):
            shuffled = list(faults)
            np.random.default_rng(seed).shuffle(shuffled)
            assert (
                chunk_by_cone(shuffled, cones, 7, system.netlist, key=str)
                == reference
            )


class TestConeEngineBitIdentity:
    @pytest.mark.parametrize("batch_faults,n_jobs", [(1, 1), (7, 1), (32, 2)])
    def test_matches_cone_off_and_serial(
        self, facet_faultsim_setup, batch_faults, n_jobs
    ):
        system, stim, masks, observe, faults = facet_faultsim_setup
        on = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            batch_faults=batch_faults, n_jobs=n_jobs, cone_sim=True,
        )
        off = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            batch_faults=batch_faults, n_jobs=n_jobs, cone_sim=False,
        )
        assert on.verdicts == off.verdicts
        assert on.detect_cycle == off.detect_cycle
        golden = run_golden(system.netlist, stim, observe)
        for fault in faults:
            verdict, cycle = simulate_one_fault(
                system.netlist, fault, stim, observe, golden, masks
            )
            assert on.verdicts[fault] is verdict
            assert on.detect_cycle.get(fault, -1) == cycle

    @pytest.mark.parametrize("fixture", ["diffeq_system", "poly_system"])
    def test_other_designs_match(self, fixture, request):
        from repro.core.pipeline import run_pipeline

        system = request.getfixturevalue(fixture)
        on = run_pipeline(system, PipelineConfig(n_patterns=64, cone_sim=True))
        off = run_pipeline(system, PipelineConfig(n_patterns=64, cone_sim=False))
        assert [r.simulation for r in on.records] == [
            r.simulation for r in off.records
        ]
        assert [r.category for r in on.records] == [r.category for r in off.records]

    def test_cone_stats_populated(self, facet_faultsim_setup):
        system, stim, masks, observe, faults = facet_faultsim_setup
        res = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
        )
        stats = res.cone
        assert isinstance(stats, ConeStats)
        assert stats.faults == len(faults)
        assert 0 < stats.gate_evals <= stats.gate_evals_full
        assert stats.evaluated_gate_fraction < 1.0
        assert 0.0 <= stats.early_death_rate <= 1.0
        payload = stats.to_json_dict()
        assert payload["gate_evals_full"] == stats.gate_evals_full

    def test_odd_pattern_count_falls_back(self, facet_system):
        """A pattern count that is not a multiple of 64 silently uses the
        unrestricted engine (no cone stats, same verdicts)."""
        from repro.core.pipeline import run_pipeline

        on = run_pipeline(facet_system, PipelineConfig(n_patterns=48, cone_sim=True))
        off = run_pipeline(facet_system, PipelineConfig(n_patterns=48, cone_sim=False))
        assert [r.category for r in on.records] == [r.category for r in off.records]


class TestKnobNeutrality:
    def test_cone_sim_not_in_fingerprint(self):
        on = PipelineConfig(cone_sim=True).fingerprint_params()
        off = PipelineConfig(cone_sim=False).fingerprint_params()
        assert on == off
        assert "cone_sim" not in on

    def test_golden_trace_is_drop_in_for_list(self):
        z = np.zeros((1, 1), dtype=np.uint64)
        trace = GoldenTrace(observed=[(z, z), (z, z)])
        assert len(trace) == 2
        assert trace[1] == (z, z)
        assert trace.planes is None
