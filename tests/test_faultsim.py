"""Unit tests for the serial fault simulator and its verdicts."""

import numpy as np

from repro.logic.faults import FaultSite
from repro.logic.faultsim import Verdict, fault_simulate
from repro.netlist.builder import NetlistBuilder


class _Stim:
    """Drives one input net with a fixed per-cycle constant."""

    def __init__(self, assignments, n_patterns=4):
        self.assignments = assignments  # list of {net: value}
        self.n_patterns = n_patterns
        self.n_cycles = len(assignments)

    def apply(self, sim, cycle):
        for net, val in self.assignments[cycle].items():
            sim.drive_const(net, val)


def _pipeline_netlist():
    """in -> BUF -> DFF(q) -> out ; en-gated DFFE(p) never enabled."""
    b = NetlistBuilder()
    a = b.input("a")
    en = b.input("en")
    n = b.buf_(a, output=b.net("n"))
    q = b.dff(n, output=b.net("q"))
    p = b.dffe(en, n, output=b.net("p"))
    b.output(q)
    b.output(p)
    return b.done(), a, en, n, q, p


def test_obvious_fault_detected():
    nl, a, en, n, q, p = _pipeline_netlist()
    g = nl.driver_of(n)
    fault = FaultSite(g.index, -1, n, 1)
    stim = _Stim([{a: 0, en: 0}] * 4)
    res = fault_simulate(nl, [fault], stim, observe=[q])
    assert res.verdicts[fault] is Verdict.DETECTED
    assert res.detect_cycle[fault] >= 1
    assert res.coverage() == 1.0


def test_never_enabled_register_gives_potential():
    nl, a, en, n, q, p = _pipeline_netlist()
    # en stuck at 0 keeps p at X forever: golden loads (en=1), faulty not.
    en_reader = [g for g in nl.gates if g.output == p][0]
    fault = FaultSite(en_reader.index, 0, en, 0)
    stim = _Stim([{a: 1, en: 1}] * 4)
    res = fault_simulate(nl, [fault], stim, observe=[p])
    assert res.verdicts[fault] is Verdict.POTENTIAL


def test_equivalent_behaviour_undetected():
    nl, a, en, n, q, p = _pipeline_netlist()
    g = nl.driver_of(n)
    fault = FaultSite(g.index, -1, n, 1)
    # Input held at 1 -> forcing n to 1 changes nothing.
    stim = _Stim([{a: 1, en: 0}] * 4)
    res = fault_simulate(nl, [fault], stim, observe=[q])
    assert res.verdicts[fault] is Verdict.UNDETECTED


def test_valid_masks_suppress_detection():
    nl, a, en, n, q, p = _pipeline_netlist()
    g = nl.driver_of(n)
    fault = FaultSite(g.index, -1, n, 1)
    stim = _Stim([{a: 0, en: 0}] * 4)
    zero_masks = [np.zeros(1, dtype=np.uint64) for _ in range(4)]
    res = fault_simulate(nl, [fault], stim, observe=[q], valid_masks=zero_masks)
    assert res.verdicts[fault] is Verdict.UNDETECTED


def test_by_verdict_buckets():
    nl, a, en, n, q, p = _pipeline_netlist()
    g = nl.driver_of(n)
    f1 = FaultSite(g.index, -1, n, 1)  # detected (a=0)
    en_reader = [gg for gg in nl.gates if gg.output == p][0]
    f2 = FaultSite(en_reader.index, 0, en, 0)  # potential on p
    stim = _Stim([{a: 0, en: 1}] * 4)
    res = fault_simulate(nl, [f1, f2], stim)
    assert f1 in res.by_verdict(Verdict.DETECTED)
    assert f2 in res.by_verdict(Verdict.POTENTIAL)
    assert 0.0 < res.coverage() < 1.0
