"""Unit tests for state encodings."""

import pytest

from repro.synth.encoding import encode
from repro.synth.fsm import FSM, FSMError


def _machine(n_states: int) -> FSM:
    fsm = FSM("m", [], ["o"], [], "S0")
    for i in range(n_states):
        fsm.add_state(f"S{i}", {"o": i % 2})
    for i in range(n_states):
        fsm.add_transition(f"S{i}", f"S{(i + 1) % n_states}")
    return fsm


class TestBinary:
    def test_codes_sequential(self):
        enc = encode(_machine(5), "binary")
        assert enc.n_bits == 3
        assert [enc.codes[f"S{i}"] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_single_state_one_bit(self):
        enc = encode(_machine(1), "binary")
        assert enc.n_bits == 1

    def test_code_bits_lsb_first(self):
        enc = encode(_machine(5), "binary")
        assert enc.code_bits("S4") == [0, 0, 1]


class TestGray:
    def test_adjacent_states_differ_one_bit(self):
        enc = encode(_machine(8), "gray")
        for i in range(7):
            diff = enc.codes[f"S{i}"] ^ enc.codes[f"S{i + 1}"]
            assert bin(diff).count("1") == 1

    def test_codes_unique(self):
        enc = encode(_machine(8), "gray")
        assert len(set(enc.codes.values())) == 8


class TestOneHot:
    def test_one_bit_per_state(self):
        enc = encode(_machine(6), "onehot")
        assert enc.n_bits == 6
        for code in enc.codes.values():
            assert bin(code).count("1") == 1
        assert len(set(enc.codes.values())) == 6


class TestLookup:
    def test_state_of(self):
        enc = encode(_machine(4), "binary")
        assert enc.state_of(2) == "S2"
        assert enc.state_of(9) is None

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            encode(_machine(3), "johnson")

    def test_empty_machine_rejected(self):
        fsm = FSM("e", [], [], [], "S0")
        with pytest.raises(FSMError):
            encode(fsm, "binary")
