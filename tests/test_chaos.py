"""Chaos-harness tests: deterministic failure injection end to end.

The contract under test: chaos never changes final results.  Injected
worker crashes and hangs are absorbed by the recovery layer, injected
bit-flips are caught by the integrity layer's differential audit and
quarantined (or abort the run in strict mode), and a corrupted
checkpoint journal refuses to resume.
"""

from __future__ import annotations

import math

import pytest

import repro.core.parallel as parallel_mod
from repro.core.checkpoint import CampaignJournal, fault_key, open_journal
from repro.core.errors import CampaignError, CheckpointMismatch, IntegrityError, validate_config
from repro.core.grading import grade_sfr_faults
from repro.core.parallel import ParallelExecutor
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.testing.chaos import ChaosEngine, ChaosSpec, flip_float_bit


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the machine has 4 cores so n_jobs > 1 builds a real pool."""
    monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)


# ------------------------------------------------------------- spec parsing
class TestChaosSpec:
    def test_parse_full_spec(self):
        spec = ChaosSpec.parse("crash:0.15,hang:0.1,bitflip:2,corrupt:1,seed:7")
        assert spec == ChaosSpec(crash=0.15, hang=0.1, bitflip=2, corrupt=1, seed=7)
        assert spec.active

    def test_parse_partial_and_empty(self):
        assert ChaosSpec.parse("bitflip:1") == ChaosSpec(bitflip=1)
        assert not ChaosSpec.parse("").active
        assert ChaosSpec.parse("crash=0.5").crash == 0.5  # '=' also accepted

    def test_unknown_knob_rejected(self):
        with pytest.raises(CampaignError, match="unknown chaos knob"):
            ChaosSpec.parse("explode:1")

    def test_bad_values_rejected(self):
        with pytest.raises(CampaignError, match="needs a float"):
            ChaosSpec.parse("crash:maybe")
        with pytest.raises(CampaignError, match="rate must be"):
            ChaosSpec.parse("crash:1.5")
        with pytest.raises(CampaignError, match=">= 0"):
            ChaosSpec.parse("bitflip:-1")

    def test_hang_without_timeout_rejected_at_config(self):
        with pytest.raises(CampaignError, match="timeout"):
            validate_config(PipelineConfig(chaos="hang:0.5"))
        validate_config(PipelineConfig(chaos="hang:0.5", timeout=10.0))
        with pytest.raises(CampaignError, match="unknown chaos knob"):
            validate_config(PipelineConfig(chaos="nonsense:1"))


# -------------------------------------------------------------- primitives
class TestChaosPrimitives:
    def test_flip_float_bit_is_deterministic_and_involutive(self):
        x = 123.456
        y = flip_float_bit(x)
        assert y != x and math.isfinite(y)
        assert flip_float_bit(y) == x  # flipping the same bit twice restores
        assert flip_float_bit(x) == y

    def test_flip_targets_capped_and_order_independent(self):
        keys = [f"k{i}" for i in range(50)]
        a = ChaosEngine(ChaosSpec(bitflip=3, seed=1))
        a.set_flip_targets(keys)
        b = ChaosEngine(ChaosSpec(bitflip=3, seed=1))
        b.set_flip_targets(list(reversed(keys)))
        assert a.flip_targets == b.flip_targets
        assert len(a.flip_targets) == 3
        c = ChaosEngine(ChaosSpec(bitflip=3, seed=2))
        c.set_flip_targets(keys)
        assert c.flip_targets != a.flip_targets  # seed moves the aim

    def test_from_spec_none_disables(self):
        assert ChaosEngine.from_spec(None) is None
        assert ChaosEngine.from_spec("") is None
        assert ChaosEngine.from_spec("bitflip:1").spec.bitflip == 1

    def test_tamper_only_touches_targets(self):
        from repro.logic.faultsim import Verdict

        engine = ChaosEngine(ChaosSpec(bitflip=1, seed=0))
        engine.set_flip_targets(["hit"])
        assert engine.tamper_verdict("miss", (Verdict.DETECTED, 3)) == (
            Verdict.DETECTED, 3,
        )
        flipped = engine.tamper_verdict("hit", (Verdict.DETECTED, 3))
        assert flipped == (Verdict.UNDETECTED, -1)
        assert engine.tamper_verdict("hit", (Verdict.UNDETECTED, -1))[0] is (
            Verdict.DETECTED
        )


# -------------------------------------------------------- worker injection
def _identity(context, item):
    return item


class TestWorkerInjection:
    def test_injected_crash_is_absorbed_by_recovery(self, multicore, tmp_path):
        engine = ChaosEngine(
            ChaosSpec(crash=0.99, seed=3), workdir=str(tmp_path / "chaos")
        )
        worker, context = engine.wrap(_identity, None)
        ex = ParallelExecutor(n_jobs=2, chunk_size=2, max_retries=2, backoff=0.01)
        out = ex.run(worker, [1, 2, 3, 4], context)
        assert out == [1, 2, 3, 4]  # results unchanged
        assert ex.last_report.crashes >= 1
        assert ex.last_report.retries >= 1

    def test_injected_hang_is_killed_and_retried(self, multicore, tmp_path):
        engine = ChaosEngine(
            ChaosSpec(hang=0.99, seed=3), workdir=str(tmp_path / "chaos")
        )
        worker, context = engine.wrap(_identity, None)
        ex = ParallelExecutor(
            n_jobs=2, chunk_size=2, timeout=2.0, max_retries=3, backoff=0.01
        )
        out = ex.run(worker, [5, 6], context)
        assert out == [5, 6]
        assert ex.last_report.timeouts >= 1

    def test_injection_suppressed_outside_worker_pools(self, tmp_path):
        """The serial path runs in the coordinator; a crash there would
        kill the campaign itself, so injection must not fire."""
        engine = ChaosEngine(
            ChaosSpec(crash=0.99, hang=0.99, seed=3), workdir=str(tmp_path / "chaos")
        )
        worker, context = engine.wrap(_identity, None)
        out = ParallelExecutor(n_jobs=1).run(worker, [1, 2, 3], context)
        assert out == [1, 2, 3]

    def test_wrap_is_identity_when_no_worker_faults(self):
        engine = ChaosEngine(ChaosSpec(bitflip=1))
        worker, context = engine.wrap(_identity, "ctx")
        assert worker is _identity and context == "ctx"


# ------------------------------------------------------ journal corruption
class TestJournalCorruption:
    def test_corrupted_record_refuses_resume(self, tmp_path):
        j = open_journal(tmp_path, "faultsim", "a" * 20)
        for i in range(6):
            j.record(f"fault{i}", ["undetected", -1])
        engine = ChaosEngine(ChaosSpec(corrupt=1, seed=4))
        assert engine.corrupt_journal(j.path)
        with pytest.raises(CheckpointMismatch, match="CRC"):
            CampaignJournal(j.path, "a" * 20, "faultsim", resume=True)

    def test_too_short_journal_is_left_alone(self, tmp_path):
        j = open_journal(tmp_path, "faultsim", "b" * 20)
        j.record("only", [1])
        engine = ChaosEngine(ChaosSpec(corrupt=1, seed=4))
        # header + one record: nothing strictly interior to damage
        assert not engine.corrupt_journal(j.path)
        CampaignJournal(j.path, "b" * 20, "faultsim", resume=True)  # still loads


# ----------------------------------------------------------- end to end
class TestChaosEndToEnd:
    def test_bitflips_are_caught_and_results_unchanged(self, facet_system):
        clean = run_pipeline(facet_system, PipelineConfig(n_patterns=64, audit_rate=0.0))
        chaotic = run_pipeline(
            facet_system,
            PipelineConfig(
                n_patterns=64, audit_rate=0.5, chaos="bitflip:2,seed:7"
            ),
        )
        report = chaotic.campaign
        flips = [v for v in report.violations if v.check == "faultsim-differential"]
        assert len(flips) == 2  # both injected flips caught
        assert report.quarantined >= 2
        # quarantine restored the trusted verdicts: final results identical
        assert {r.system_site: r.simulation for r in chaotic.records} == {
            r.system_site: r.simulation for r in clean.records
        }

    def test_strict_mode_aborts_on_injected_flip(self, facet_system):
        with pytest.raises(IntegrityError, match="strict mode"):
            run_pipeline(
                facet_system,
                PipelineConfig(
                    n_patterns=64, audit_rate=0.5, chaos="bitflip:1,seed:7",
                    strict=True,
                ),
            )

    def test_crashes_and_flips_with_checkpointing(
        self, facet_system, multicore, tmp_path
    ):
        clean = run_pipeline(facet_system, PipelineConfig(n_patterns=64, audit_rate=0.0))
        chaotic = run_pipeline(
            facet_system,
            PipelineConfig(
                n_patterns=64,
                audit_rate=0.5,
                chaos="crash:0.4,bitflip:1,corrupt:1,seed:7",
                n_jobs=2,
                timeout=120.0,
                checkpoint_dir=str(tmp_path),
            ),
        )
        assert {r.system_site: r.simulation for r in chaotic.records} == {
            r.system_site: r.simulation for r in clean.records
        }
        assert len(chaotic.campaign.violations) >= 1
        # chaos also corrupted the journal post-run: resume must refuse
        with pytest.raises(CheckpointMismatch):
            run_pipeline(
                facet_system,
                PipelineConfig(
                    n_patterns=64, checkpoint_dir=str(tmp_path), resume=True
                ),
            )

    def test_grading_bitflip_quarantined(self, facet_system, facet_pipeline):
        kwargs = dict(batch_patterns=32, max_batches=2)
        clean = grade_sfr_faults(facet_system, facet_pipeline, audit_rate=0.0, **kwargs)
        engine = ChaosEngine.from_spec("bitflip:1,seed:11")
        chaotic = grade_sfr_faults(
            facet_system, facet_pipeline, audit_rate=0.9, chaos=engine, **kwargs
        )
        assert len(engine.flip_targets) == 1
        (target,) = engine.flip_targets
        # the flipped fault was excluded; every surviving grade is
        # bit-identical to the clean run
        assert len(chaotic.graded) == len(clean.graded) - 1
        assert target not in {
            fault_key(g.record.system_site) for g in chaotic.graded
        }
        clean_by_key = {
            fault_key(g.record.system_site): g.power_uw for g in clean.graded
        }
        for g in chaotic.graded:
            assert g.power_uw == clean_by_key[fault_key(g.record.system_site)]
        checks = {v.check for v in chaotic.campaign.violations}
        assert "grading-differential" in checks or "power-ceiling" in checks
