"""Cross-validation: event-driven vs compiled pattern-parallel simulator.

The two engines were written independently; these property tests drive
both with identical stimulus over randomly generated sequential netlists
(including injected faults) and require bit-identical value traces and
toggle counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.eventsim import EventSimulator
from repro.logic.faults import enumerate_faults
from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder


def _random_netlist(seed: int, n_gates: int = 14):
    """Random sequential netlist over 3 PIs with DFFs/DFFEs mixed in."""
    rng = np.random.default_rng(seed)
    b = NetlistBuilder(f"rand{seed}")
    nets = [b.input(f"i{k}") for k in range(3)]
    for _ in range(n_gates):
        kind = rng.choice(
            ["and", "or", "nand", "nor", "xor", "xnor", "not", "buf", "mux",
             "dff", "dffe", "const"]
        )
        pick = lambda: nets[int(rng.integers(len(nets)))]
        if kind == "not":
            nets.append(b.not_(pick()))
        elif kind == "buf":
            nets.append(b.buf_(pick()))
        elif kind == "mux":
            nets.append(b.mux2_(pick(), pick(), pick()))
        elif kind == "dff":
            nets.append(b.dff(pick()))
        elif kind == "dffe":
            nets.append(b.dffe(pick(), pick()))
        elif kind == "const":
            nets.append(b.const1() if rng.integers(2) else b.const0())
        else:
            op = {"and": b.and_, "or": b.or_, "nand": b.nand_,
                  "nor": b.nor_, "xor": b.xor_, "xnor": b.xnor_}[kind]
            n_in = int(rng.integers(2, 4))
            nets.append(op([pick() for _ in range(n_in)]))
    for n in nets[-3:]:
        b.output(n)
    return b.done()


def _run_both(netlist, stimulus, fault=None):
    """Run both engines; return (trace_compiled, trace_event)."""
    faults = [fault] if fault else None
    csim = CycleSimulator(netlist, 1, faults=faults, count_toggles=True)
    esim = EventSimulator(netlist, faults=faults)
    trace_c, trace_e = [], []
    inputs = list(netlist.inputs)
    for step in stimulus:
        for net, bit in zip(inputs, step):
            csim.drive_const(net, bit)
            esim.drive_const(net, bit)
        csim.settle()
        esim.settle()
        trace_c.append([int(csim.sample(n)[0]) for n in range(netlist.num_nets)])
        trace_e.append(list(esim.values))
        csim.latch()
        esim.latch()
    return (trace_c, list(csim.toggles)), (trace_e, esim.toggles)


@given(
    st.integers(0, 10_000),
    st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)),
             min_size=1, max_size=6),
)
@settings(max_examples=30, deadline=None)
def test_engines_agree_fault_free(seed, stimulus):
    nl = _random_netlist(seed)
    (tc, togc), (te, toge) = _run_both(nl, stimulus)
    assert tc == te
    assert togc == toge


@given(st.integers(0, 3_000), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_engines_agree_with_fault(seed, fault_pick)	:
    nl = _random_netlist(seed)
    sites = enumerate_faults(nl, include_pi_stems=True)
    fault = sites[fault_pick % len(sites)]
    stimulus = [(1, 0, 1), (0, 1, 1), (1, 1, 0), (0, 0, 0)]
    (tc, _), (te, _) = _run_both(nl, stimulus, fault=fault)
    assert tc == te


def test_event_sim_on_real_system(facet_system):
    """One full computation through both engines on a benchmark system."""
    nl = facet_system.netlist
    csim = CycleSimulator(nl, 1)
    esim = EventSimulator(nl)
    rng = np.random.default_rng(2)
    data = {k: int(rng.integers(16)) for k in facet_system.rtl.dfg.inputs}
    for cyc in range(facet_system.cycles_for(1)):
        for sim in (csim, esim):
            sim.drive_const(nl.net_id("reset"), 1 if cyc == 0 else 0)
            sim.drive_const(nl.net_id("start"), 1)
            for name, val in data.items():
                for i in range(4):
                    sim.drive_const(nl.net_id(f"{name}[{i}]"), (val >> i) & 1)
        csim.settle()
        esim.settle()
        for out in nl.outputs:
            assert int(csim.sample(out)[0]) == esim.sample(out)
        csim.latch()
        esim.latch()
