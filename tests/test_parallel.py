"""Tests for the parallel execution layer and compile-once engine.

The contract under test: every knob of the compile-once, fault-parallel
engine -- ``n_jobs``, ``batch_faults``, the per-netlist compile cache --
is a pure performance lever.  Results must be bit-identical to the
serial, per-fault, freshly-compiled baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grading import grade_sfr_faults
from repro.core.parallel import ParallelExecutor, resolve_n_jobs
from repro.hls.system import NormalModeStimulus
from repro.logic.faultsim import _TiledSim, fault_simulate
from repro.logic.simulator import CycleSimulator, compile_netlist


def _square(context, item):
    return context * item * item


class TestParallelExecutor:
    def test_serial_matches_parallel(self):
        items = list(range(23))
        serial = ParallelExecutor(n_jobs=1).run(_square, items, 3)
        parallel = ParallelExecutor(n_jobs=2).run(_square, items, 3)
        assert serial == parallel == [3 * i * i for i in items]

    def test_order_preserved_with_chunking(self):
        items = list(range(50))
        out = ParallelExecutor(n_jobs=2, chunk_size=7).run(_square, items, 1)
        assert out == [i * i for i in items]

    def test_empty_items(self):
        assert ParallelExecutor(n_jobs=4).run(_square, [], 1) == []

    def test_resolve_n_jobs(self, monkeypatch):
        import repro.core.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(0) == 1
        assert resolve_n_jobs(2) == 2
        assert resolve_n_jobs(5) == 4  # capped at the core count
        assert resolve_n_jobs(-1) == 4


class TestFaultSimParallel:
    def test_n_jobs_bit_identical(self, facet_faultsim_setup):
        system, stim, masks, observe, faults = facet_faultsim_setup
        serial = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks, n_jobs=1
        )
        parallel = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks, n_jobs=4
        )
        assert serial.verdicts == parallel.verdicts
        assert serial.detect_cycle == parallel.detect_cycle

    def test_batched_matches_per_fault(self, facet_faultsim_setup):
        system, stim, masks, observe, faults = facet_faultsim_setup
        batched = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            batch_faults=32,
        )
        per_fault = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            batch_faults=1,
        )
        assert batched.verdicts == per_fault.verdicts
        assert batched.detect_cycle == per_fault.detect_cycle

    def test_odd_batch_sizes_match(self, facet_faultsim_setup):
        """Chunk sizes that do not divide the fault count still agree."""
        system, stim, masks, observe, faults = facet_faultsim_setup
        a = fault_simulate(
            system.netlist, faults[:20], stim, observe=observe, valid_masks=masks,
            batch_faults=7,
        )
        b = fault_simulate(
            system.netlist, faults[:20], stim, observe=observe, valid_masks=masks,
            batch_faults=64,
        )
        assert a.verdicts == b.verdicts
        assert a.detect_cycle == b.detect_cycle


class TestCompiledNetlistCache:
    def test_cache_returns_same_object(self, facet_system):
        netlist = facet_system.netlist
        assert compile_netlist(netlist) is compile_netlist(netlist)

    def test_cached_compile_matches_fresh(self, facet_system):
        """A simulator on the cached compile behaves exactly like one on a
        fresh compile of an identical netlist."""
        from repro.logic.simulator import _compile

        netlist = facet_system.netlist
        cached = compile_netlist(netlist)
        fresh = _compile(netlist)
        rng = np.random.default_rng(7)
        sims = [
            CycleSimulator(netlist, 64, compiled=c, count_toggles=True)
            for c in (cached, fresh)
        ]
        inputs = sorted(netlist.inputs)
        for cycle in range(8):
            bits = {net: rng.integers(0, 2, 64) for net in inputs}
            for sim in sims:
                for net, b in bits.items():
                    sim.drive(net, b)
                sim.settle()
                sim.latch()
        a, b = sims
        assert np.array_equal(a.Z, b.Z) and np.array_equal(a.O, b.O)
        assert np.array_equal(a.toggles, b.toggles)

    def test_shared_compile_isolated_state(self, facet_system):
        """Two simulators sharing one CompiledNetlist never alias state."""
        netlist = facet_system.netlist
        compiled = compile_netlist(netlist)
        s1 = CycleSimulator(netlist, 64, compiled=compiled)
        s2 = CycleSimulator(netlist, 64, compiled=compiled)
        for net in netlist.inputs:
            s1.drive_const(net, 1)
            s2.drive_const(net, 0)
        s1.settle()
        s2.settle()
        assert not np.array_equal(s1.O, s2.O)


class TestGradingParallel:
    def test_grading_bit_identical_across_jobs(self, facet_system, facet_pipeline):
        kwargs = dict(batch_patterns=96, max_batches=3)
        serial = grade_sfr_faults(facet_system, facet_pipeline, n_jobs=1, **kwargs)
        parallel = grade_sfr_faults(facet_system, facet_pipeline, n_jobs=2, **kwargs)
        assert serial.fault_free_uw == parallel.fault_free_uw
        assert len(serial.graded) == len(parallel.graded)
        for a, b in zip(serial.graded, parallel.graded):
            assert a.record is b.record or a.record.site == b.record.site
            assert a.power_uw == b.power_uw
            assert a.pct_change == b.pct_change
            assert a.group == b.group


class TestDriveBusWidth:
    def test_drive_bus_rejects_out_of_range(self, facet_system):
        sim = CycleSimulator(facet_system.netlist, 64)
        bus = next(iter(facet_system.input_buses.values()))
        too_wide = np.full(64, 1 << len(bus), dtype=np.int64)
        with pytest.raises(ValueError, match="out of range"):
            sim.drive_bus(list(bus), too_wide)

    def test_stimulus_rejects_overwide_data(self, facet_system):
        system = facet_system
        width = system.rtl.width
        data = {
            k: np.full(64, 1 << width, dtype=np.int64)
            for k in system.rtl.dfg.inputs
        }
        with pytest.raises(ValueError, match="exceeds"):
            NormalModeStimulus(system, data, system.cycles_for(2))

    def test_tiled_drive_bus_rejects_out_of_range(self, facet_system):
        """The block-parallel drive adapter mirrors the simulator's guard:
        out-of-range bus data used to alias silently into every block."""
        wide = CycleSimulator(facet_system.netlist, 2 * 64)
        tiled = _TiledSim(wide, 64, 2)
        bus = next(iter(facet_system.input_buses.values()))
        too_wide = np.full(64, 1 << len(bus), dtype=np.int64)
        with pytest.raises(ValueError, match="out of range"):
            tiled.drive_bus(list(bus), too_wide)
        with pytest.raises(ValueError, match="out of range"):
            tiled.drive_bus(list(bus), np.full(64, -1, dtype=np.int64))
