"""Unit tests for list scheduling."""

import pytest

from repro.designs.diffeq import diffeq_dfg
from repro.hls.dfg import DFG, DFGError, OpKind
from repro.hls.schedule import alap_steps, asap_steps, list_schedule


def _chain():
    d = DFG("c", 4, inputs=["a"])
    d.op("t1", OpKind.ADD, "a", "a")
    d.op("t2", OpKind.ADD, "t1", "a")
    d.op("t3", OpKind.ADD, "t2", "a")
    d.outputs = {"o": "t3"}
    return d


def _parallel():
    d = DFG("p", 4, inputs=["a", "b"])
    d.op("t1", OpKind.MUL, "a", "b")
    d.op("t2", OpKind.MUL, "a", "a")
    d.op("t3", OpKind.MUL, "b", "b")
    d.op("s", OpKind.ADD, "t1", "t2")
    d.outputs = {"o": "s", "o2": "t3"}
    return d


class TestASAPALAP:
    def test_asap_chain(self):
        assert asap_steps(_chain()) == {"t1": 1, "t2": 2, "t3": 3}

    def test_alap_leaves_slack(self):
        d = _parallel()
        asap = asap_steps(d)
        alap = alap_steps(d, horizon=3)
        assert asap["t3"] == 1 and alap["t3"] == 3  # t3 has slack
        assert alap["s"] == 3

    def test_alap_never_before_asap(self):
        d = diffeq_dfg()
        asap = asap_steps(d)
        alap = alap_steps(d, horizon=max(asap.values()))
        for op in d.ops:
            assert asap[op.name] <= alap[op.name]


class TestListSchedule:
    def test_dependencies_respected(self):
        d = _chain()
        s = list_schedule(d, resources={})
        assert s.steps["t1"] < s.steps["t2"] < s.steps["t3"]

    def test_resource_limits_respected(self):
        d = _parallel()
        s = list_schedule(d, resources={OpKind.MUL: 1})
        per_step = {}
        for op in d.ops:
            if op.kind is OpKind.MUL:
                per_step.setdefault(s.steps[op.name], 0)
                per_step[s.steps[op.name]] += 1
        assert max(per_step.values()) == 1

    def test_more_resources_shorter_schedule(self):
        d = _parallel()
        slow = list_schedule(d, resources={OpKind.MUL: 1})
        fast = list_schedule(d, resources={OpKind.MUL: 3})
        assert fast.n_steps <= slow.n_steps

    def test_anti_dependence_for_loop_updates(self):
        d = DFG("l", 4, inputs=["x", "a"])
        d.op("use", OpKind.MUL, "x", "a")  # reads old x
        d.op("x1", OpKind.ADD, "x", "a")  # produces new x
        d.op("c", OpKind.LT, "x1", "a")
        d.op("z", OpKind.SUB, "use", "x1")
        d.outputs = {"o": "z"}
        d.loop_condition = "c"
        d.loop_updates = {"x": "x1"}
        s = list_schedule(d, resources={})
        assert s.steps["x1"] >= s.steps["use"]

    def test_cond_forced_last_own_step(self):
        d = diffeq_dfg()
        s = list_schedule(d, resources={OpKind.MUL: 1})
        cond_step = s.steps["c"]
        assert cond_step == s.n_steps
        assert all(step < cond_step for name, step in s.steps.items() if name != "c")

    def test_cond_shared_final_step(self):
        d = diffeq_dfg()
        s = list_schedule(d, resources={OpKind.MUL: 1}, cond_own_step=False)
        assert s.steps["c"] == s.n_steps
        others_last = max(step for name, step in s.steps.items() if name != "c")
        assert s.steps["c"] == others_last  # shares the final step

    def test_ops_in_step(self):
        d = _chain()
        s = list_schedule(d, resources={})
        assert [o.name for o in s.ops_in_step(d, 1)] == ["t1"]

    def test_overconstrained_loop_rejected(self):
        # c reads the *old* x (anti-dep: c before x1) but also depends on
        # x1 (data dep: c after x1) -- an unschedulable constraint cycle.
        d = DFG("bad", 4, inputs=["x"])
        d.op("u", OpKind.ADD, "x", "x")
        d.op("x1", OpKind.ADD, "u", "x")
        d.op("c", OpKind.LT, "x1", "x")
        d.outputs = {"o": "u"}
        d.loop_condition = "c"
        d.loop_updates = {"x": "x1"}
        with pytest.raises(DFGError, match="cyclic"):
            list_schedule(d, resources={})
