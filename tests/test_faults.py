"""Unit + property tests for fault enumeration and equivalence collapsing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.faults import FaultSite, collapse_faults, enumerate_faults
from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType


def _and_netlist():
    b = NetlistBuilder()
    a, c = b.input("a"), b.input("c")
    y = b.and_([a, c], output=b.net("y"))
    b.output(y)
    return b.done()


class TestEnumeration:
    def test_counts_for_single_and(self):
        nl = _and_netlist()
        sites = enumerate_faults(nl)
        # output 2 + two inputs x 2 = 6
        assert len(sites) == 6

    def test_pi_stems_optional(self):
        nl = _and_netlist()
        with_pi = enumerate_faults(nl, include_pi_stems=True)
        assert len(with_pi) == 6 + 4

    def test_const_gate_only_opposite_polarity(self):
        b = NetlistBuilder()
        c = b.const0()
        y = b.buf_(c)
        b.output(y)
        nl = b.done()
        sites = enumerate_faults(nl)
        const_faults = [s for s in sites if s.net == c]
        # CONST0 stem s-a-1 only; the BUF pin tied to 0 only gets s-a-1.
        assert all(s.value == 1 for s in const_faults)

    def test_tied_pin_matching_polarity_skipped(self):
        b = NetlistBuilder()
        c = b.const1()
        a = b.input("a")
        y = b.and_([a, c])
        b.output(y)
        nl = b.done()
        sites = enumerate_faults(nl)
        tied_branch = [s for s in sites if not s.is_stem and s.net == c]
        assert all(s.value == 0 for s in tied_branch)

    def test_describe_is_readable(self):
        nl = _and_netlist()
        sites = enumerate_faults(nl)
        text = sites[0].describe(nl)
        assert "s-a-" in text


class TestCollapsing:
    def test_and_sa0_class(self):
        nl = _and_netlist()
        sites = enumerate_faults(nl)
        reps, mapping = collapse_faults(nl, sites)
        g = nl.gates[0]
        stem0 = FaultSite(g.index, -1, g.output, 0)
        in0 = FaultSite(g.index, 0, g.inputs[0], 0)
        in1 = FaultSite(g.index, 1, g.inputs[1], 0)
        assert mapping[stem0] == mapping[in0] == mapping[in1]
        # s-a-1 faults all distinct: 3 classes + 1 merged sa0 class = 4
        assert len(reps) == 4

    def test_not_gate_inversion(self):
        b = NetlistBuilder()
        a = b.input("a")
        y = b.not_(a, output=b.net("y"))
        b.output(y)
        nl = b.done()
        sites = enumerate_faults(nl)
        reps, mapping = collapse_faults(nl, sites)
        g = nl.gates[0]
        assert mapping[FaultSite(g.index, 0, a, 0)] == mapping[FaultSite(g.index, -1, y, 1)]
        assert len(reps) == 2

    def test_fanout_free_stem_merges_with_branch(self):
        b = NetlistBuilder()
        a = b.input("a")
        n = b.buf_(a)
        y = b.not_(n, output=b.net("y"))
        b.output(y)
        nl = b.done()
        sites = enumerate_faults(nl)
        reps, mapping = collapse_faults(nl, sites)
        buf = nl.gates[0]
        inv = nl.gates[1]
        assert mapping[FaultSite(buf.index, -1, n, 0)] == mapping[FaultSite(inv.index, 0, n, 0)]

    def test_stem_with_fanout_not_merged(self):
        b = NetlistBuilder()
        a = b.input("a")
        n = b.buf_(a)
        y1 = b.not_(n)
        y2 = b.not_(n)
        b.output(y1)
        b.output(y2)
        nl = b.done()
        sites = enumerate_faults(nl)
        _, mapping = collapse_faults(nl, sites)
        buf = nl.gates[0]
        inv1 = nl.gates[1]
        stem = FaultSite(buf.index, -1, n, 0)
        branch = FaultSite(inv1.index, 0, n, 0)
        assert mapping[stem] != mapping[branch]

    def test_deterministic_representatives(self):
        nl = _and_netlist()
        sites = enumerate_faults(nl)
        reps1, _ = collapse_faults(nl, sites)
        reps2, _ = collapse_faults(nl, sites)
        assert reps1 == reps2


def _random_netlist(seed: int):
    """Small random combinational netlist for the soundness property."""
    rng = np.random.default_rng(seed)
    b = NetlistBuilder()
    nets = [b.input(f"i{k}") for k in range(3)]
    for k in range(6):
        t = rng.choice(["and", "or", "xor", "not", "mux"])
        if t == "not":
            nets.append(b.not_(nets[int(rng.integers(len(nets)))]))
        elif t == "mux":
            s, a, c = (nets[int(rng.integers(len(nets)))] for _ in range(3))
            nets.append(b.mux2_(s, a, c))
        else:
            x, y = (nets[int(rng.integers(len(nets)))] for _ in range(2))
            op = {"and": b.and_, "or": b.or_, "xor": b.xor_}[t]
            nets.append(op([x, y]))
    b.output(nets[-1])
    b.output(nets[-2])
    return b.done()


@given(st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_collapsing_soundness(seed):
    """Faults merged into one class must be indistinguishable at the
    outputs for every input combination (exhaustive over 3 inputs)."""
    nl = _random_netlist(seed)
    sites = enumerate_faults(nl)
    _, mapping = collapse_faults(nl, sites)
    inputs = [nl.net_id(f"i{k}") for k in range(3)]
    patterns = [[(p >> k) & 1 for p in range(8)] for k in range(3)]

    def response(fault):
        sim = CycleSimulator(nl, 8, faults=[fault])
        for k, net in enumerate(inputs):
            sim.drive(net, patterns[k])
        sim.settle()
        return tuple(tuple(sim.sample(o)) for o in nl.outputs)

    by_class: dict = {}
    for s in sites:
        by_class.setdefault(mapping[s], []).append(s)
    for rep, members in by_class.items():
        if len(members) == 1:
            continue
        ref = response(members[0])
        for m in members[1:]:
            assert response(m) == ref, f"{members[0]} vs {m} not equivalent"
