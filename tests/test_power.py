"""Unit tests for the switched-capacitance power model."""

import numpy as np
import pytest

from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.power.estimator import PowerEstimator
from repro.power.library import DEFAULT_LIBRARY, PowerLibrary


def _toggler():
    """One inverter (tag 'dp') + one DFF (tag 'ctrl')."""
    b = NetlistBuilder()
    a = b.input("a")
    y = b.not_(a, output=b.net("y"), tag="dp:inv")
    q = b.dff(y, output=b.net("q"), tag="ctrl")
    b.output(q)
    return b.done(), a, y


class TestEstimator:
    def test_requires_toggle_counting(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1)
        est = PowerEstimator(nl)
        with pytest.raises(ValueError, match="not counting"):
            est.power(sim)

    def test_requires_cycles(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        est = PowerEstimator(nl)
        with pytest.raises(ValueError, match="no cycles"):
            est.power(sim)

    def test_static_input_only_clock_power(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for _ in range(4):
            sim.drive_const(a, 0)
            sim.settle()
            sim.latch()
        est = PowerEstimator(nl)
        # y toggles X->0 once (not counted); only the DFF clock burns power.
        res = est.power(sim)
        assert res.switching_uw == 0.0
        assert res.clock_uw > 0.0

    def test_switching_energy_proportional_to_toggles(self):
        nl, a, y = _toggler()

        def run(bits):
            sim = CycleSimulator(nl, 1, count_toggles=True)
            for bit in bits:
                sim.drive_const(a, bit)
                sim.settle()
                sim.latch()
            return PowerEstimator(nl).power(sim).switching_uw

        # Same cycle count, different toggle counts.
        low = run([0, 0, 0, 1])
        high = run([0, 1, 0, 1])
        assert high > low > 0

    def test_tag_filter_restricts(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for bit in [0, 1, 0, 1]:
            sim.drive_const(a, bit)
            sim.settle()
            sim.latch()
        est = PowerEstimator(nl)
        total = est.power(sim, tag_prefix=None).total_uw
        dp = est.power(sim, tag_prefix="dp").total_uw
        ctrl = est.power(sim, tag_prefix="ctrl").total_uw
        assert dp > 0 and ctrl > 0
        # Untagged primary-input nets account for the remainder.
        assert dp + ctrl <= total + 1e-9

    def test_by_tag_sums_to_total(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for bit in [0, 1, 1, 0]:
            sim.drive_const(a, bit)
            sim.settle()
            sim.latch()
        res = PowerEstimator(nl).power(sim)
        assert abs(sum(res.by_tag.values()) - res.total_uw) < 1e-9

    def test_custom_library_scales(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for bit in [0, 1, 0]:
            sim.drive_const(a, bit)
            sim.settle()
            sim.latch()
        base = PowerEstimator(nl).power(sim).total_uw
        doubled_lib = PowerLibrary(cal_scale=DEFAULT_LIBRARY.cal_scale * 2)
        doubled = PowerEstimator(nl, doubled_lib).power(sim).total_uw
        assert abs(doubled - 2 * base) < 1e-9

    def test_dffe_clock_power_counts_enabled_cycles_only(self):
        b = NetlistBuilder()
        en, d = b.input("en"), b.input("d")
        b.output(b.dffe(en, d, output=b.net("q"), tag="dp:reg"))
        nl = b.done()

        def run(en_bits):
            sim = CycleSimulator(nl, 1, count_toggles=True)
            for e in en_bits:
                sim.drive_const(en, e)
                sim.drive_const(d, 0)
                sim.settle()
                sim.latch()
            return PowerEstimator(nl).power(sim).clock_uw

        assert run([1, 1, 1, 1]) > run([1, 0, 0, 0]) > run([0, 0, 0, 0]) == 0.0


class TestPowerBlocks:
    """power_blocks() on a wide block-parallel sim vs per-fault power()."""

    def _regs(self):
        """en/d -> DFFE (dp) -> inverter (dp) + a plain DFF (ctrl)."""
        b = NetlistBuilder()
        en, d = b.input("en"), b.input("d")
        q = b.dffe(en, d, output=b.net("q"), tag="dp:reg")
        y = b.not_(q, output=b.net("y"), tag="dp:inv")
        b.dff(y, output=b.net("p"), tag="ctrl")
        b.output(y)
        return b.done(), en, d, q

    def _run(self, sim, nl, en, d, en_vals, d_vals, cycles=4):
        sim.drive(en, en_vals)
        sim.drive(d, d_vals)
        for _ in range(cycles):
            sim.settle()
            sim.latch()
        return sim

    def test_blocks_bit_identical_to_standalone_power(self):
        from repro.logic.faults import FaultSite

        nl, en, d, q = self._regs()
        g = nl.driver_of(q)
        faults = [FaultSite(g.index, -1, q, 1), FaultSite(g.index, -1, q, 0)]
        rng = np.random.default_rng(3)
        en_bits = [rng.integers(0, 2, 64) for _ in faults]
        d_bits = [rng.integers(0, 2, 64) for _ in faults]
        est = PowerEstimator(nl)

        wide = CycleSimulator(
            nl,
            128,
            faults=faults,
            fault_blocks=[(0, 1), (1, 2)],
            count_toggles=True,
            toggle_blocks=2,
        )
        self._run(wide, nl, en, d, np.concatenate(en_bits), np.concatenate(d_bits))
        for tag_prefix in (None, "dp"):
            block_results = est.power_blocks(wide, tag_prefix=tag_prefix)
            for blk, fault in enumerate(faults):
                solo = CycleSimulator(nl, 64, faults=[fault], count_toggles=True)
                self._run(solo, nl, en, d, en_bits[blk], d_bits[blk])
                ref = est.power(solo, tag_prefix=tag_prefix)
                got = block_results[blk]
                assert got.total_uw == ref.total_uw
                assert got.switching_uw == ref.switching_uw
                assert got.clock_uw == ref.clock_uw
                assert got.by_tag == ref.by_tag
                assert got.cycles == ref.cycles
                assert got.patterns == ref.patterns

    def test_power_rejects_block_sim_and_vice_versa(self):
        nl, en, d, q = self._regs()
        est = PowerEstimator(nl)
        block_sim = CycleSimulator(nl, 128, count_toggles=True, toggle_blocks=2)
        with pytest.raises(ValueError, match="power_blocks"):
            est.power(block_sim)
        flat_sim = CycleSimulator(nl, 64, count_toggles=True)
        with pytest.raises(ValueError, match="power\\(\\)"):
            est.power_blocks(flat_sim)


class TestMonteCarlo:
    def test_converges_and_is_deterministic(self, facet_system):
        from repro.power.montecarlo import monte_carlo_power

        est = PowerEstimator(facet_system.netlist)
        a = monte_carlo_power(facet_system, est, seed=5, batch_patterns=64, max_batches=4)
        b = monte_carlo_power(facet_system, est, seed=5, batch_patterns=64, max_batches=4)
        assert a.power_uw == b.power_uw
        assert a.batches <= 4
        assert a.power_uw > 0

    def test_measure_power_with_fixed_data(self, facet_system):
        from repro.power.montecarlo import measure_power

        est = PowerEstimator(facet_system.netlist)
        data = {k: np.arange(32) % 16 for k in facet_system.rtl.dfg.inputs}
        res = measure_power(facet_system, est, data)
        assert res.total_uw > 0
        assert res.patterns == 32


class TestMonteCarloSerialization:
    def test_json_round_trip_is_bit_identical(self, facet_system):
        from repro.power.montecarlo import MonteCarloResult, monte_carlo_power

        est = PowerEstimator(facet_system.netlist)
        res = monte_carlo_power(
            facet_system, est, seed=9, batch_patterns=64, max_batches=4
        )
        back = MonteCarloResult.from_json(res.to_json())
        # floats survive JSON exactly -- a journal replay reproduces the
        # original result bit for bit
        assert back == res
        assert back.power_uw == res.power_uw
        assert back.history == res.history

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_power_refuses_to_serialize(self, bad):
        from repro.core.errors import IntegrityError
        from repro.power.montecarlo import MonteCarloResult

        res = MonteCarloResult(power_uw=bad, batches=1, patterns=8)
        with pytest.raises(IntegrityError, match="non-finite"):
            res.to_json_dict()
        with pytest.raises(IntegrityError):
            res.to_json()

    def test_non_finite_history_refuses_to_serialize(self):
        from repro.core.errors import IntegrityError
        from repro.power.montecarlo import MonteCarloResult

        res = MonteCarloResult(
            power_uw=1.0, batches=2, patterns=8, history=[1.0, float("nan")]
        )
        with pytest.raises(IntegrityError, match="non-finite"):
            res.to_json()


class TestCounterEquivalence:
    """The integer activity counters are a sufficient statistic.

    ``power_from_counts`` replayed per batch must reproduce the float
    power path bit-identically -- same operands, same order -- on every
    paper design, for the flat and block-parallel kernels, and
    regardless of how faults are chunked into toggle blocks.
    """

    @pytest.mark.parametrize(
        "system_fixture", ["diffeq_system", "facet_system", "poly_system"]
    )
    def test_counts_recover_flat_power_bit_identically(self, request, system_fixture):
        from repro.fleet import recovered_power_uw
        from repro.power.montecarlo import monte_carlo_power

        system = request.getfixturevalue(system_fixture)
        est = PowerEstimator(system.netlist)
        res = monte_carlo_power(
            system, est, seed=11, batch_patterns=64, max_batches=3,
            capture_activity=True,
        )
        trace = res.activity
        assert trace is not None
        assert trace.toggles.shape == (trace.batches, system.netlist.num_nets)
        assert trace.load_events.shape == (trace.batches, len(est.dffe_gates))
        # Per-batch totals replayed from the counters reproduce the whole
        # convergence history, not just the final mean.
        totals = [
            est.power_from_counts(
                trace.toggles[b],
                trace.load_events[b],
                trace.cycles,
                trace.patterns,
                "dp",
            ).total_uw
            for b in range(trace.batches)
        ]
        for k in range(1, len(totals) + 1):
            assert float(np.mean(totals[:k])) == res.history[k - 1]
        assert recovered_power_uw(est, trace) == res.power_uw

    @pytest.mark.parametrize("chunks", [[6], [2, 3, 1], [1] * 6])
    def test_block_counts_invariant_to_chunk_shape(self, facet_faultsim_setup, chunks):
        from repro.fleet import recovered_power_uw
        from repro.power.montecarlo import monte_carlo_power_block

        system, _, _, _, faults = facet_faultsim_setup
        sites = faults[:6]
        assert sum(chunks) == len(sites)
        est = PowerEstimator(system.netlist)

        def run(groups):
            out = []
            for group in groups:
                out.extend(
                    monte_carlo_power_block(
                        system, est, group, seed=11, batch_patterns=64,
                        max_batches=3, capture_activity=True,
                    )
                )
            return out

        whole = run([sites])
        split, start = [], 0
        for n in chunks:
            split.append(sites[start : start + n])
            start += n
        regrouped = run(split)
        for a, b in zip(whole, regrouped):
            assert a.power_uw == b.power_uw
            assert a.activity is not None and b.activity is not None
            np.testing.assert_array_equal(a.activity.toggles, b.activity.toggles)
            np.testing.assert_array_equal(
                a.activity.load_events, b.activity.load_events
            )
            assert recovered_power_uw(est, a.activity) == a.power_uw
