"""Unit tests for the switched-capacitance power model."""

import numpy as np
import pytest

from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.power.estimator import PowerEstimator
from repro.power.library import DEFAULT_LIBRARY, PowerLibrary


def _toggler():
    """One inverter (tag 'dp') + one DFF (tag 'ctrl')."""
    b = NetlistBuilder()
    a = b.input("a")
    y = b.not_(a, output=b.net("y"), tag="dp:inv")
    q = b.dff(y, output=b.net("q"), tag="ctrl")
    b.output(q)
    return b.done(), a, y


class TestEstimator:
    def test_requires_toggle_counting(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1)
        est = PowerEstimator(nl)
        with pytest.raises(ValueError, match="not counting"):
            est.power(sim)

    def test_requires_cycles(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        est = PowerEstimator(nl)
        with pytest.raises(ValueError, match="no cycles"):
            est.power(sim)

    def test_static_input_only_clock_power(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for _ in range(4):
            sim.drive_const(a, 0)
            sim.settle()
            sim.latch()
        est = PowerEstimator(nl)
        # y toggles X->0 once (not counted); only the DFF clock burns power.
        res = est.power(sim)
        assert res.switching_uw == 0.0
        assert res.clock_uw > 0.0

    def test_switching_energy_proportional_to_toggles(self):
        nl, a, y = _toggler()

        def run(bits):
            sim = CycleSimulator(nl, 1, count_toggles=True)
            for bit in bits:
                sim.drive_const(a, bit)
                sim.settle()
                sim.latch()
            return PowerEstimator(nl).power(sim).switching_uw

        # Same cycle count, different toggle counts.
        low = run([0, 0, 0, 1])
        high = run([0, 1, 0, 1])
        assert high > low > 0

    def test_tag_filter_restricts(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for bit in [0, 1, 0, 1]:
            sim.drive_const(a, bit)
            sim.settle()
            sim.latch()
        est = PowerEstimator(nl)
        total = est.power(sim, tag_prefix=None).total_uw
        dp = est.power(sim, tag_prefix="dp").total_uw
        ctrl = est.power(sim, tag_prefix="ctrl").total_uw
        assert dp > 0 and ctrl > 0
        # Untagged primary-input nets account for the remainder.
        assert dp + ctrl <= total + 1e-9

    def test_by_tag_sums_to_total(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for bit in [0, 1, 1, 0]:
            sim.drive_const(a, bit)
            sim.settle()
            sim.latch()
        res = PowerEstimator(nl).power(sim)
        assert abs(sum(res.by_tag.values()) - res.total_uw) < 1e-9

    def test_custom_library_scales(self):
        nl, a, y = _toggler()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for bit in [0, 1, 0]:
            sim.drive_const(a, bit)
            sim.settle()
            sim.latch()
        base = PowerEstimator(nl).power(sim).total_uw
        doubled_lib = PowerLibrary(cal_scale=DEFAULT_LIBRARY.cal_scale * 2)
        doubled = PowerEstimator(nl, doubled_lib).power(sim).total_uw
        assert abs(doubled - 2 * base) < 1e-9

    def test_dffe_clock_power_counts_enabled_cycles_only(self):
        b = NetlistBuilder()
        en, d = b.input("en"), b.input("d")
        b.output(b.dffe(en, d, output=b.net("q"), tag="dp:reg"))
        nl = b.done()

        def run(en_bits):
            sim = CycleSimulator(nl, 1, count_toggles=True)
            for e in en_bits:
                sim.drive_const(en, e)
                sim.drive_const(d, 0)
                sim.settle()
                sim.latch()
            return PowerEstimator(nl).power(sim).clock_uw

        assert run([1, 1, 1, 1]) > run([1, 0, 0, 0]) > run([0, 0, 0, 0]) == 0.0


class TestMonteCarlo:
    def test_converges_and_is_deterministic(self, facet_system):
        from repro.power.montecarlo import monte_carlo_power

        est = PowerEstimator(facet_system.netlist)
        a = monte_carlo_power(facet_system, est, seed=5, batch_patterns=64, max_batches=4)
        b = monte_carlo_power(facet_system, est, seed=5, batch_patterns=64, max_batches=4)
        assert a.power_uw == b.power_uw
        assert a.batches <= 4
        assert a.power_uw > 0

    def test_measure_power_with_fixed_data(self, facet_system):
        from repro.power.montecarlo import measure_power

        est = PowerEstimator(facet_system.netlist)
        data = {k: np.arange(32) % 16 for k in facet_system.rtl.dfg.inputs}
        res = measure_power(facet_system, est, data)
        assert res.total_uw > 0
        assert res.patterns == 32


class TestMonteCarloSerialization:
    def test_json_round_trip_is_bit_identical(self, facet_system):
        from repro.power.montecarlo import MonteCarloResult, monte_carlo_power

        est = PowerEstimator(facet_system.netlist)
        res = monte_carlo_power(
            facet_system, est, seed=9, batch_patterns=64, max_batches=4
        )
        back = MonteCarloResult.from_json(res.to_json())
        # floats survive JSON exactly -- a journal replay reproduces the
        # original result bit for bit
        assert back == res
        assert back.power_uw == res.power_uw
        assert back.history == res.history

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_power_refuses_to_serialize(self, bad):
        from repro.core.errors import IntegrityError
        from repro.power.montecarlo import MonteCarloResult

        res = MonteCarloResult(power_uw=bad, batches=1, patterns=8)
        with pytest.raises(IntegrityError, match="non-finite"):
            res.to_json_dict()
        with pytest.raises(IntegrityError):
            res.to_json()

    def test_non_finite_history_refuses_to_serialize(self):
        from repro.core.errors import IntegrityError
        from repro.power.montecarlo import MonteCarloResult

        res = MonteCarloResult(
            power_uw=1.0, batches=2, patterns=8, history=[1.0, float("nan")]
        )
        with pytest.raises(IntegrityError, match="non-finite"):
            res.to_json()
