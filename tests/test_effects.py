"""Unit tests for control-line effect extraction."""

import pytest

from repro.core.effects import (
    ControlLineEffect,
    Scenario,
    diff_traces,
    faulty_control_trace,
    golden_control_trace,
    make_scenarios,
)
from repro.hls.rtl import HOLD_STATE, RESET_STATE
from repro.logic.faults import FaultSite


class TestScenario:
    def test_timeline_states(self):
        sc = Scenario(iterations=2, n_steps=3, hold_cycles=2, idle_cycles=1)
        states = [sc.golden_state(c) for c in range(sc.n_cycles)]
        assert states == [
            "X", "RESET", "RESET",
            "CS1", "CS2", "CS3",
            "CS1", "CS2", "CS3",
            "HOLD", "HOLD",
        ]

    def test_n_cycles(self):
        sc = Scenario(iterations=2, n_steps=3, hold_cycles=2, idle_cycles=1)
        assert sc.n_cycles == 2 + 1 + 6 + 2

    def test_start_waveform(self):
        sc = Scenario(iterations=1, n_steps=2, idle_cycles=2)
        # start rises in the last RESET cycle (first_body_cycle - 1).
        assert sc.start_at(sc.first_body_cycle - 1) == 1
        assert sc.start_at(sc.first_body_cycle - 2) == 0

    def test_cond_waveform_last_decision(self):
        sc = Scenario(iterations=2, n_steps=3, idle_cycles=0)
        last_decision = sc.first_body_cycle - 1 + 6
        assert sc.cond_at(last_decision - 1) == 1
        assert sc.cond_at(last_decision) == 0

    def test_make_scenarios_loop_vs_straight(self, diffeq_system, facet_system):
        loops = make_scenarios(diffeq_system.rtl)
        straight = make_scenarios(facet_system.rtl)
        assert [s.iterations for s in loops] == [1, 2, 3]
        assert [s.iterations for s in straight] == [1]


class TestTraces:
    def test_golden_trace_matches_control_table(self, diffeq_system):
        rtl = diffeq_system.rtl
        sc = make_scenarios(rtl)[0]
        trace = golden_control_trace(diffeq_system.controller, sc)
        for cycle in range(1, sc.n_cycles):
            state = sc.golden_state(cycle)
            for line in rtl.load_lines:
                assert trace.lines[cycle][line] == rtl.control.loads[state][line]
            for sel in rtl.sel_lines:
                spec = rtl.control.selects[state][sel]
                if spec is not None:
                    assert trace.lines[cycle][sel] == spec

    def test_faulty_trace_differs_for_real_fault(self, diffeq_system):
        ctrl = diffeq_system.controller
        rtl = diffeq_system.rtl
        sc = make_scenarios(rtl)[1]
        golden = golden_control_trace(ctrl, sc)
        # Stuck-at-1 on the LD1 output stem: LD1 high everywhere.
        ld1 = ctrl.output_nets["LD1"]
        g = ctrl.netlist.driver_of(ld1)
        fault = FaultSite(g.index, -1, ld1, 1)
        faulty = faulty_control_trace(ctrl, sc, fault)
        effects = diff_traces(golden, faulty)
        assert effects
        assert all(e.line == "LD1" for e in effects)
        assert all(e.golden == 0 and e.faulty == 1 for e in effects)
        # LD1 is genuinely 1 in RESET and in x1's step, so no effect there.
        states_hit = {e.state for e in effects}
        assert RESET_STATE not in states_hit

    def test_effect_description(self):
        e = ControlLineEffect(cycle=5, state="CS3", line="LD2", golden=0, faulty=1)
        assert e.describe() == "LD2: extra load in CS3"
        e2 = ControlLineEffect(cycle=5, state="CS3", line="LD2", golden=1, faulty=0)
        assert e2.describe() == "LD2: skipped load in CS3"
        e3 = ControlLineEffect(cycle=5, state="HOLD", line="MS1", golden=0, faulty=1)
        assert e3.describe() == "MS1 changes in HOLD"
        e4 = ControlLineEffect(cycle=5, state="CS1", line="LD2", golden=1, faulty=-1)
        assert "unknown load" in e4.describe()

    def test_no_fault_no_effects(self, diffeq_system):
        ctrl = diffeq_system.controller
        sc = make_scenarios(diffeq_system.rtl)[0]
        golden = golden_control_trace(ctrl, sc)
        assert diff_traces(golden, golden) == []
