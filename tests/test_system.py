"""Integration tests: the flattened system computes the DFG semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.catalog import DFG_BUILDERS, build_rtl, design_names
from repro.hls.system import NormalModeStimulus, build_system, hold_masks
from repro.logic.simulator import CycleSimulator
from repro.logic.values import unpack_bits


def _run_system(system, data, iterations):
    stim = NormalModeStimulus(system, data, system.cycles_for(iterations))
    sim = CycleSimulator(system.netlist, stim.n_patterns)
    for c in range(stim.n_cycles):
        stim.apply(sim, c)
        sim.settle()
        sim.latch()
    return sim


@pytest.mark.parametrize("name", design_names())
def test_system_matches_reference_semantics(name):
    rtl = build_rtl(name)
    system = build_system(rtl)
    dfg = DFG_BUILDERS[name]()
    rng = np.random.default_rng(123)
    P = 96
    K = 5
    data = {k: rng.integers(0, 16, P) for k in rtl.dfg.inputs}
    sim = _run_system(system, data, K)
    for port, bus in system.output_buses.items():
        got = sim.sample_bus(bus)
        for p in range(P):
            outs, iters = dfg.execute({k: int(v[p]) for k, v in data.items()}, max_iterations=K)
            if iters < K:  # pattern finished inside the window
                assert got[p] == outs[port], (name, port, p)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_diffeq_random_data_property(seed):
    rtl = build_rtl("diffeq")
    system = build_system(rtl)
    dfg = DFG_BUILDERS["diffeq"]()
    rng = np.random.default_rng(seed)
    data = {k: rng.integers(0, 16, 16) for k in rtl.dfg.inputs}
    sim = _run_system(system, data, 4)
    got = sim.sample_bus(system.output_buses["y_out"])
    for p in range(16):
        outs, iters = dfg.execute({k: int(v[p]) for k, v in data.items()}, max_iterations=4)
        if iters < 4:
            assert got[p] == outs["y_out"]


class TestHarness:
    def test_stimulus_requires_all_inputs(self, diffeq_system):
        with pytest.raises(ValueError, match="missing data"):
            NormalModeStimulus(diffeq_system, {"x": np.array([1])}, 10)

    def test_stimulus_requires_equal_lengths(self, diffeq_system):
        data = {k: np.array([1]) for k in diffeq_system.rtl.dfg.inputs}
        data["x"] = np.array([1, 2])
        with pytest.raises(ValueError, match="same length"):
            NormalModeStimulus(diffeq_system, data, 10)

    def test_hold_masks_monotone_for_finishing_patterns(self, facet_system):
        # facet is straight-line: every pattern reaches HOLD and stays.
        data = {k: np.arange(8) % 16 for k in facet_system.rtl.dfg.inputs}
        stim = NormalModeStimulus(facet_system, data, facet_system.cycles_for(1, hold_cycles=4))
        masks = hold_masks(facet_system, stim)
        bits = [unpack_bits(m, 8) for m in masks]
        assert bits[-1].all()  # all in HOLD at the end
        seen_hold = np.zeros(8, dtype=bool)
        for b in bits:
            assert not (seen_hold & ~b.astype(bool)).any()  # never leaves HOLD
            seen_hold |= b.astype(bool)

    def test_cycles_for(self, facet_system):
        n = facet_system.n_steps
        assert facet_system.cycles_for(2, hold_cycles=3) == 2 + 2 * n + 3

    def test_gate_partitions(self, diffeq_system):
        ctrl = diffeq_system.controller_gates()
        dp = diffeq_system.datapath_gates()
        assert ctrl and dp
        assert len(ctrl) + len(dp) == len(diffeq_system.netlist.gates)

    def test_fault_translation_preserves_behaviour(self, diffeq_system):
        from repro.logic.faults import enumerate_faults

        sites = enumerate_faults(diffeq_system.controller.netlist)
        for site in sites[:10]:
            sys_site = diffeq_system.to_system_fault(site)
            assert sys_site.value == site.value
            assert sys_site.pin == site.pin
            std_name = diffeq_system.controller.netlist.net_names[site.net]
            sys_gate = (
                None
                if sys_site.gate_index is None
                else diffeq_system.netlist.gates[sys_site.gate_index]
            )
            if site.gate_index is not None:
                std_gate = diffeq_system.controller.netlist.gates[site.gate_index]
                assert sys_gate.gtype is std_gate.gtype
