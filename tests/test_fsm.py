"""Unit tests for the symbolic FSM model."""

import pytest

from repro.synth.fsm import FSM, FSMError


def _toy():
    fsm = FSM("toy", input_names=["go"], output_names=["o"], states=[], reset_state="S0")
    fsm.add_state("S0", {"o": 0})
    fsm.add_state("S1", {"o": 1})
    fsm.add_state("S2", {"o": None})
    fsm.add_transition("S0", "S1", {"go": 1})
    fsm.add_transition("S0", "S0", {"go": 0})
    fsm.add_transition("S1", "S2")
    fsm.add_transition("S2", "S0")
    return fsm


class TestConstruction:
    def test_duplicate_state_rejected(self):
        fsm = _toy()
        with pytest.raises(FSMError):
            fsm.add_state("S0", {"o": 0})

    def test_unknown_output_rejected(self):
        fsm = _toy()
        with pytest.raises(FSMError):
            fsm.add_state("S3", {"bogus": 1})

    def test_unknown_guard_input_rejected(self):
        fsm = _toy()
        with pytest.raises(FSMError):
            fsm.add_transition("S0", "S1", {"bogus": 1})

    def test_missing_outputs_default_dc(self):
        fsm = _toy()
        assert fsm.outputs["S2"]["o"] is None


class TestValidation:
    def test_valid_machine(self):
        _toy().validate()

    def test_incomplete_transition_detected(self):
        fsm = FSM("bad", ["go"], ["o"], [], "A")
        fsm.add_state("A", {"o": 0})
        fsm.add_transition("A", "A", {"go": 0})
        with pytest.raises(FSMError, match="no transition"):
            fsm.validate()

    def test_nondeterminism_detected(self):
        fsm = FSM("bad", ["go"], ["o"], [], "A")
        fsm.add_state("A", {"o": 0})
        fsm.add_state("B", {"o": 1})
        fsm.add_transition("A", "A")
        fsm.add_transition("A", "B", {"go": 1})
        with pytest.raises(FSMError, match="nondeterministic"):
            fsm.validate()

    def test_missing_reset_state(self):
        fsm = FSM("bad", [], ["o"], [], "NOPE")
        fsm.add_state("A", {"o": 0})
        fsm.add_transition("A", "A")
        with pytest.raises(FSMError, match="reset state"):
            fsm.validate()


class TestSemantics:
    def test_next_state(self):
        fsm = _toy()
        assert fsm.next_state("S0", {"go": 1}) == "S1"
        assert fsm.next_state("S0", {"go": 0}) == "S0"
        assert fsm.next_state("S1", {"go": 0}) == "S2"

    def test_simulate_trace(self):
        fsm = _toy()
        trace = fsm.simulate([{"go": 1}, {"go": 0}, {"go": 0}])
        assert [s for s, _ in trace] == ["S0", "S1", "S2", "S0"]
        assert trace[1][1] == {"o": 1}

    def test_reachable_states(self):
        fsm = _toy()
        assert fsm.reachable_states() == {"S0", "S1", "S2"}

    def test_unreachable_state_excluded(self):
        fsm = _toy()
        fsm.add_state("ISLAND", {"o": 0})
        fsm.add_transition("ISLAND", "ISLAND")
        assert "ISLAND" not in fsm.reachable_states()
