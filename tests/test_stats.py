"""Tests for netlist statistics."""

from repro.netlist.stats import analyze


def test_counts(diffeq_system):
    stats = analyze(diffeq_system.netlist)
    assert stats.gates == len(diffeq_system.netlist.gates)
    assert stats.nets == diffeq_system.netlist.num_nets
    assert stats.flip_flops > 0
    assert stats.depth > 3
    assert stats.max_fanout >= 2
    assert sum(stats.by_type.values()) == stats.gates
    assert sum(stats.by_tag.values()) == stats.gates


def test_tags_partition(diffeq_system):
    stats = analyze(diffeq_system.netlist)
    ctrl = sum(v for k, v in stats.by_tag.items() if k.startswith("ctrl"))
    dp = sum(v for k, v in stats.by_tag.items() if k.startswith("dp"))
    assert ctrl + dp == stats.gates


def test_str_summary(diffeq_system):
    text = str(analyze(diffeq_system.netlist))
    assert "gates" in text and "depth" in text
