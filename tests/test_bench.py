"""Tests for the ISCAS-89 .bench writer/parser."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.netlist import NetlistError


def _sample():
    b = NetlistBuilder("s")
    a = b.input("a")
    c = b.input("weird[3]")
    y = b.nand_([a, c], output=b.net("y"))
    q = b.dff(y, output=b.net("q"))
    b.output(q)
    return b.done()


class TestWrite:
    def test_format_lines(self):
        text = write_bench(_sample())
        assert "INPUT(a)" in text
        assert "OUTPUT(q)" in text
        assert "= NAND(" in text
        assert "= DFF(" in text

    def test_names_sanitised(self):
        text = write_bench(_sample())
        assert "weird_3_" in text
        assert "[" not in text.replace("INPUT(", "").replace("OUTPUT(", "")

    def test_collision_suffix(self):
        b = NetlistBuilder("c")
        x1 = b.input("n[1]")
        x2 = b.input("n_1_")
        y = b.and_([x1, x2])
        b.output(y)
        text = write_bench(b.done())
        # both inputs must appear under distinct names
        input_lines = [ln for ln in text.splitlines() if ln.startswith("INPUT")]
        assert len(set(input_lines)) == 2


class TestParse:
    def test_roundtrip_structure(self):
        nl = _sample()
        nl2 = parse_bench(write_bench(nl))
        assert len(nl2.gates) == len(nl.gates)
        assert len(nl2.inputs) == 2
        assert len(nl2.outputs) == 1

    def test_parse_classic_fragment(self):
        src = """
        # a comment
        INPUT(G1)
        INPUT(G2)
        OUTPUT(G5)
        G4 = NOT(G1)
        G5 = AND(G4, G2)
        """
        nl = parse_bench(src)
        assert len(nl.gates) == 2

    def test_buff_alias(self):
        nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert nl.gates[0].gtype.value == "BUF"

    def test_unknown_function(self):
        with pytest.raises(NetlistError, match="unknown bench function"):
            parse_bench("INPUT(a)\ny = FROB(a)\n")

    def test_unparseable_line(self):
        with pytest.raises(NetlistError, match="unparseable"):
            parse_bench("this is not bench\n")

    def test_mux2_extension(self):
        nl = parse_bench("INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX2(s, a, b)\n")
        assert nl.gates[0].gtype.value == "MUX2"

    def test_roundtrip_of_system(self, poly_system):
        nl2 = parse_bench(write_bench(poly_system.netlist))
        assert len(nl2.gates) == len(poly_system.netlist.gates)
