"""Unit tests for the flat netlist data structure."""

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError


@pytest.fixture
def simple():
    nl = Netlist(name="t")
    a = nl.add_net("a")
    b = nl.add_net("b")
    y = nl.add_net("y")
    nl.mark_input(a)
    nl.mark_input(b)
    nl.add_gate(GateType.AND, y, [a, b], name="g0", tag="blk")
    nl.mark_output(y)
    return nl


class TestNets:
    def test_ids_sequential(self, simple):
        assert simple.net_id("a") == 0
        assert simple.net_id("y") == 2
        assert simple.num_nets == 3

    def test_duplicate_name_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.add_net("a")

    def test_unknown_name(self, simple):
        with pytest.raises(NetlistError):
            simple.net_id("zzz")
        assert not simple.has_net("zzz")


class TestGates:
    def test_driver_lookup(self, simple):
        g = simple.driver_of(simple.net_id("y"))
        assert g is not None and g.name == "g0" and g.tag == "blk"
        assert simple.driver_of(simple.net_id("a")) is None

    def test_double_driver_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.add_gate(GateType.OR, simple.net_id("y"), [0, 1])

    def test_bad_arity_rejected(self, simple):
        n = simple.add_net("z")
        with pytest.raises(NetlistError):
            simple.add_gate(GateType.NOT, n, [0, 1])

    def test_out_of_range_net(self, simple):
        n = simple.add_net("z")
        with pytest.raises(NetlistError):
            simple.add_gate(GateType.BUF, n, [99])


class TestPorts:
    def test_gate_driven_net_cannot_be_input(self, simple):
        with pytest.raises(NetlistError):
            simple.mark_input(simple.net_id("y"))

    def test_mark_output_idempotent(self, simple):
        y = simple.net_id("y")
        simple.mark_output(y)
        assert simple.outputs.count(y) == 1


class TestValidate:
    def test_valid(self, simple):
        simple.validate()

    def test_floating_net_detected(self, simple):
        z = simple.add_net("z")
        q = simple.add_net("q")
        simple.add_gate(GateType.BUF, q, [z])
        with pytest.raises(NetlistError, match="floating"):
            simple.validate()


class TestQueries:
    def test_fanout_map(self, simple):
        fan = simple.fanout_map()
        assert fan[simple.net_id("a")] == [(0, 0)]
        assert fan[simple.net_id("b")] == [(0, 1)]
        assert fan[simple.net_id("y")] == []

    def test_gates_with_tag(self, simple):
        assert len(simple.gates_with_tag("blk")) == 1
        assert simple.gates_with_tag("other") == []

    def test_stats(self, simple):
        s = simple.stats()
        assert s["AND"] == 1 and s["gates"] == 1 and s["inputs"] == 2

    def test_partitions(self, simple):
        assert simple.sequential_gates() == []
        assert len(simple.combinational_gates()) == 1
