"""Unit + property tests for the LFSR and TPGR pattern sources."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpg.lfsr import LFSR, PRIMITIVE_TAPS
from repro.tpg.tpgr import TPGR


class TestLFSR:
    @pytest.mark.parametrize("length", [3, 4, 5, 6, 7, 8, 9, 10])
    def test_primitive_polynomials_have_maximal_period(self, length):
        lfsr = LFSR(length, seed=1)
        assert lfsr.period_check() == (1 << length) - 1

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=0)

    def test_unknown_length_needs_taps(self):
        with pytest.raises(ValueError):
            LFSR(13)
        LFSR(13, taps=(13, 4, 3, 1))  # ok with explicit taps

    def test_bad_tap_positions_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, taps=(9,))

    def test_deterministic(self):
        a = LFSR(16, seed=0xACE1)
        b = LFSR(16, seed=0xACE1)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_next_word_lsb_first(self):
        a = LFSR(16, seed=0xACE1)
        word = a.next_word(4)
        c = LFSR(16, seed=0xACE1)
        expected = sum(c.step() << i for i in range(4))
        assert word == expected

    def test_words_shape_and_range(self):
        arr = LFSR(20, seed=7).words(50, 4)
        assert arr.shape == (50,)
        assert arr.dtype == np.int64
        assert ((arr >= 0) & (arr < 16)).all()

    @given(st.integers(1, 2**16 - 1))
    @settings(max_examples=30, deadline=None)
    def test_state_stays_nonzero(self, seed):
        lfsr = LFSR(16, seed=seed)
        for _ in range(64):
            lfsr.step()
            assert lfsr.state != 0


class TestTPGR:
    def test_generates_all_inputs(self):
        t = TPGR(["a", "b"], width=4, seed=3)
        data = t.generate(100)
        assert set(data) == {"a", "b"}
        assert all(len(v) == 100 for v in data.values())
        assert all(((v >= 0) & (v < 16)).all() for v in data.values())

    def test_deterministic_per_seed(self):
        d1 = TPGR(["a"], 4, seed=5).generate(50)
        d2 = TPGR(["a"], 4, seed=5).generate(50)
        assert (d1["a"] == d2["a"]).all()

    def test_different_seeds_differ(self):
        d1 = TPGR(["a"], 4, seed=5).generate(50)
        d2 = TPGR(["a"], 4, seed=6).generate(50)
        assert (d1["a"] != d2["a"]).any()

    def test_stream_continues_across_calls(self):
        t = TPGR(["a"], 4, seed=5)
        first = t.generate(10)["a"]
        second = t.generate(10)["a"]
        combined = TPGR(["a"], 4, seed=5).generate(20)["a"]
        assert (np.concatenate([first, second]) == combined).all()

    def test_almost_zero_seed(self):
        t = TPGR.almost_zero_seed(["a"], 4)
        assert t.seed == 1
        data = t.generate(20)
        # A near-zero seed produces a long run of zeros first.
        assert data["a"][0] == 0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            TPGR([], 4)
