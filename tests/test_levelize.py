"""Unit tests for combinational levelization."""

import pytest

from repro.logic.levelize import levelize, logic_depth
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import NetlistError


def test_simple_chain_levels():
    b = NetlistBuilder()
    a = b.input("a")
    n1 = b.not_(a)
    n2 = b.not_(n1)
    n3 = b.not_(n2)
    b.output(n3)
    nl = b.done()
    levels = levelize(nl)
    assert [len(lvl) for lvl in levels] == [1, 1, 1]
    assert logic_depth(nl) == 3


def test_dff_breaks_cycle():
    b = NetlistBuilder()
    q = b.net("q")
    nq = b.not_(q)
    b.dff(nq, output=q)
    b.output(q)
    nl = b.done()
    levels = levelize(nl)
    assert len(levels) == 1  # just the inverter


def test_combinational_loop_detected():
    b = NetlistBuilder()
    x = b.net("x")
    y = b.not_(x)
    b.not_(y, output=x)
    b.output(x)
    with pytest.raises(NetlistError, match="combinational loop"):
        levelize(b.netlist)


def test_level_respects_all_inputs():
    b = NetlistBuilder()
    a = b.input("a")
    c = b.input("c")
    n1 = b.not_(a)  # level 1
    n2 = b.and_([n1, c])  # level 2
    n3 = b.or_([n2, n1])  # level 3
    b.output(n3)
    nl = b.done()
    levels = levelize(nl)
    flat = {gi: lvl for lvl, gates in enumerate(levels, 1) for gi in gates}
    g_not = nl.driver_of(n1).index
    g_and = nl.driver_of(n2).index
    g_or = nl.driver_of(n3).index
    assert flat[g_not] < flat[g_and] < flat[g_or]


def test_constants_not_in_levels():
    b = NetlistBuilder()
    c = b.const1()
    b.output(b.not_(c))
    nl = b.done()
    levels = levelize(nl)
    assert sum(len(lvl) for lvl in levels) == 1


def test_empty_netlist():
    b = NetlistBuilder()
    b.input("a")
    assert levelize(b.netlist) == []
