"""Cross-module integration tests: the properties the whole repo rests on."""

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, controller_fault_universe, run_pipeline
from repro.designs.catalog import build_rtl
from repro.hls.system import NormalModeStimulus, build_system, hold_masks
from repro.logic.faultsim import Verdict, fault_simulate


class TestDeterminism:
    def test_pipeline_is_deterministic(self, facet_system):
        a = run_pipeline(facet_system, PipelineConfig(n_patterns=96))
        b = run_pipeline(facet_system, PipelineConfig(n_patterns=96))
        assert [r.category for r in a.records] == [r.category for r in b.records]

    def test_system_build_is_deterministic(self):
        s1 = build_system(build_rtl("poly"))
        s2 = build_system(build_rtl("poly"))
        assert s1.netlist.net_names == s2.netlist.net_names
        assert [
            (g.gtype, g.output, tuple(g.inputs)) for g in s1.netlist.gates
        ] == [(g.gtype, g.output, tuple(g.inputs)) for g in s2.netlist.gates]


class TestSfrSoundnessAcrossDesigns:
    """The paper's core claim on every design: analytically-SFR faults are
    never caught by an independent gate-level logic test."""

    @pytest.mark.parametrize("name", ["facet", "poly"])
    def test_sfr_faults_undetectable(self, name):
        system = build_system(build_rtl(name))
        result = run_pipeline(system, PipelineConfig(n_patterns=128))
        sfr_sites = [r.system_site for r in result.sfr_records]
        rng = np.random.default_rng(1234)
        data = {k: rng.integers(0, 16, 96) for k in system.rtl.dfg.inputs}
        stim = NormalModeStimulus(system, data, system.cycles_for(5))
        masks = hold_masks(system, stim)
        observe = [n for bus in system.output_buses.values() for n in bus]
        res = fault_simulate(
            system.netlist, sfr_sites, stim, observe=observe, valid_masks=masks
        )
        assert res.by_verdict(Verdict.DETECTED) == []


class TestEncodingInvariants:
    """The SFR phenomenon survives any synthesis choice; only its size
    shifts.  (The exact fault sets differ -- they are synthesis artefacts.)"""

    @pytest.mark.parametrize("encoding", ["binary", "gray"])
    @pytest.mark.parametrize("style", ["pla", "minimized"])
    def test_every_style_classifies_cleanly(self, encoding, style):
        system = build_system(
            build_rtl("facet"), encoding_kind=encoding, output_style=style
        )
        result = run_pipeline(system, PipelineConfig(n_patterns=96))
        counts = result.counts()
        assert sum(counts.values()) == result.total_faults
        assert counts.get("SFR", 0) > 0

    def test_functionality_independent_of_style(self):
        """All synthesis variants compute the same function."""
        from repro.logic.simulator import CycleSimulator

        rng = np.random.default_rng(9)
        rtl = build_rtl("facet")
        data = {k: rng.integers(0, 16, 32) for k in rtl.dfg.inputs}
        outputs = []
        for encoding, style in [("binary", "pla"), ("gray", "minimized"),
                                ("onehot", "pla"), ("binary", "decoded")]:
            system = build_system(rtl, encoding_kind=encoding, output_style=style)
            stim = NormalModeStimulus(system, data, system.cycles_for(1))
            sim = CycleSimulator(system.netlist, 32)
            for c in range(stim.n_cycles):
                stim.apply(sim, c)
                sim.settle()
                sim.latch()
            outputs.append(tuple(sim.sample_bus(system.output_buses["o1_out"])))
        assert len(set(outputs)) == 1


class TestFaultUniverseSanity:
    def test_universe_faults_live_in_controller(self, diffeq_system):
        for site in controller_fault_universe(diffeq_system):
            sys_site = diffeq_system.to_system_fault(site)
            if sys_site.gate_index is not None:
                gate = diffeq_system.netlist.gates[sys_site.gate_index]
                assert gate.tag.startswith("ctrl")

    def test_collapsing_reduces_but_preserves_reachability(self, diffeq_system):
        from repro.logic.faults import enumerate_faults

        raw = enumerate_faults(diffeq_system.controller.netlist)
        collapsed = controller_fault_universe(diffeq_system)
        assert len(collapsed) < len(raw)
        assert set(collapsed) <= set(raw)
