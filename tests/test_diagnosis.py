"""Tests for power-signature fault diagnosis."""

import pytest

from repro.core.diagnosis import PowerSignature, build_dictionary


@pytest.fixture(scope="module")
def dictionary(facet_system, facet_pipeline):
    return build_dictionary(
        facet_system, facet_pipeline, batch_patterns=96, max_batches=2
    )


class TestSignature:
    def test_distance_symmetric(self):
        a = PowerSignature(1.0, {"dp:REG1": 2.0})
        b = PowerSignature(3.0, {"dp:REG2": 1.0})
        assert a.distance(b) == b.distance(a)

    def test_distance_zero_for_identical(self):
        a = PowerSignature(1.5, {"dp:REG1": 2.0, "dp:MUL1": -0.5})
        assert a.distance(a) == 0.0

    def test_missing_components_treated_as_zero(self):
        a = PowerSignature(0.0, {"x": 3.0})
        b = PowerSignature(0.0, {})
        assert a.distance(b) == 3.0


class TestDictionary:
    def test_covers_all_sfr_faults(self, dictionary, facet_pipeline):
        assert len(dictionary.entries) == len(facet_pipeline.sfr_records)

    def test_fault_free_signature_is_null(self, dictionary):
        sig = dictionary.signature_of_machine(None)
        assert abs(sig.total_pct) < 1e-9
        assert all(abs(v) < 1e-9 for v in sig.component_pct.values())

    def test_load_fault_heats_its_register(self, dictionary, facet_pipeline, facet_system):
        """A pure extra-load fault's biggest component deviation should sit
        on a register that the fault actually reloads."""
        for record in facet_pipeline.sfr_records:
            cls = record.classification
            if not cls.affects_load_line:
                continue
            load_regs = {e.register for e in cls.effects if e.register}
            sig = dictionary.entries[record.system_site]
            pos = {k: v for k, v in sig.component_pct.items() if v > 1e-6}
            if not pos or not load_regs:
                continue
            hottest = max(pos, key=pos.get)
            if hottest.startswith("dp:REG"):
                assert hottest.removeprefix("dp:") in load_regs
                return
        pytest.skip("no register-attributed load fault found")

    def test_self_diagnosis_is_exact(self, dictionary):
        """Diagnosing a machine carrying a dictionary fault (same data)
        must rank that fault at distance zero."""
        site = next(iter(dictionary.entries))
        observed = dictionary.signature_of_machine(site)
        ranked = dictionary.diagnose(observed, top=3)
        top_sites = [s for s, _ in ranked]
        assert site in top_sites
        best_distance = ranked[0][1]
        site_distance = dict(ranked)[site]
        assert site_distance <= best_distance + 1e-9

    def test_diagnosis_ranks_by_distance(self, dictionary):
        site = list(dictionary.entries)[-1]
        observed = dictionary.signature_of_machine(site)
        ranked = dictionary.diagnose(observed, top=10)
        distances = [d for _, d in ranked]
        assert distances == sorted(distances)
