"""Tests for the three benchmark designs and the catalog."""

import pytest

from repro.designs.catalog import DFG_BUILDERS, build_rtl, design_names
from repro.designs.diffeq import diffeq_dfg
from repro.designs.facet import facet_dfg
from repro.designs.poly import poly_dfg
from repro.hls.rtl import HOLD_STATE, RESET_STATE


class TestCatalog:
    def test_names(self):
        assert design_names() == ["diffeq", "facet", "poly", "biquad", "ewf"]

    def test_unknown_design(self):
        with pytest.raises(KeyError, match="unknown design"):
            build_rtl("zzz")

    @pytest.mark.parametrize("name", ["diffeq", "facet", "poly"])
    def test_builds_at_width_8(self, name):
        rtl = build_rtl(name, width=8)
        assert rtl.width == 8


class TestDiffeq:
    def test_paper_shape(self):
        rtl = build_rtl("diffeq")
        # Paper: 10 control states (RESET, CS1..CS8, HOLD).
        assert rtl.states == [RESET_STATE] + [f"CS{i}" for i in range(1, 9)] + [HOLD_STATE]
        assert rtl.cond_fu is not None
        assert rtl.cond_step == 8

    def test_reference_values(self):
        # Hand-checked single Euler step: x=1,y=2,u=3,dx=1,a=3 (4-bit wrap).
        dfg = diffeq_dfg()
        vals = dfg.eval_once({"x": 1, "y": 2, "u": 3, "dx": 1, "a": 3})
        assert vals["y1"] == 5 and vals["u1"] == 4 and vals["x1"] == 2
        assert vals["c"] == 1

    def test_loop_terminates_when_x_reaches_a(self):
        dfg = diffeq_dfg()
        outs, iters = dfg.execute({"x": 0, "y": 1, "u": 0, "dx": 2, "a": 4})
        assert iters == 2  # x: 0 -> 2 -> 4; 4 < 4 fails

    def test_loop_variables(self):
        assert set(diffeq_dfg().loop_updates) == {"x", "y", "u"}


class TestFacet:
    def test_straight_line(self):
        dfg = facet_dfg()
        assert dfg.loop_condition is None

    def test_shared_load_lines(self):
        rtl = build_rtl("facet")
        assert len(rtl.load_lines) < len(rtl.registers)

    def test_parallel_first_step(self):
        rtl = build_rtl("facet")
        step1 = [b.op for b in rtl.bindings.values() if b.step == 1]
        assert len(step1) == 3  # t1, t2, t3 in parallel

    def test_reference_value(self):
        dfg = facet_dfg()
        env = {"a": 1, "b": 2, "c": 7, "d": 3, "e": 2, "f": 3, "g": 5}
        vals = dfg.eval_once(env)
        t1, t2, t3 = 3, 4, 6
        t4, t5, t6 = t1 & t3, t2 | 5, (t3 * 5) & 15
        t7, t8 = (t4 + t5) & 15, (t6 - t5) & 15
        assert vals["o1"] == (t7 * t8) & 15


class TestPoly:
    def test_schedule_length(self):
        rtl = build_rtl("poly")
        assert rtl.schedule.n_steps == 7

    def test_long_lifespans(self):
        """The paper's property: inputs stay live deep into the schedule."""
        rtl = build_rtl("poly")
        reads_d = rtl.reg_read_states(rtl.value_reg["d"])
        assert "CS7" in reads_d  # d read in the last step

    def test_reference_polynomial(self):
        dfg = poly_dfg()
        env = {"a": 1, "b": 2, "c": 3, "d": 4, "x": 2}
        outs, _ = dfg.execute(env)
        assert outs["y_out"] == (1 * 8 + 2 * 4 + 3 * 2 + 4) & 15


class TestBiquad:
    def test_reference_semantics(self):
        from repro.designs.biquad import biquad_dfg

        dfg = biquad_dfg()
        env = {"x": 3, "a1": 1, "a2": 2, "b1": 1, "b2": 1,
               "z1": 1, "z2": 2, "k": 0, "n": 1}
        vals = dfg.eval_once(env)
        w = (3 + 1 * 1 + 2 * 2) & 15
        assert vals["w"] == w
        assert vals["y"] == (w + 1 * 1 + 1 * 2) & 15

    def test_delay_line_shift(self):
        from repro.designs.biquad import biquad_dfg

        dfg = biquad_dfg()
        env = {"x": 0, "a1": 0, "a2": 0, "b1": 0, "b2": 0,
               "z1": 5, "z2": 9, "k": 0, "n": 2}
        # After one pass: z2 <- old z1, z1 <- w = x = 0.
        outs, iters = dfg.execute(env, max_iterations=1)
        vals = dfg.eval_once(env)
        assert vals["z2n"] == 5 and vals["wn"] == 0

    def test_counter_controls_iterations(self):
        from repro.designs.biquad import biquad_dfg

        dfg = biquad_dfg()
        env = {"x": 1, "a1": 0, "a2": 0, "b1": 0, "b2": 0,
               "z1": 0, "z2": 0, "k": 0, "n": 3}
        _, iters = dfg.execute(env)
        assert iters == 3

    def test_rtl_builds_and_has_loop(self):
        rtl = build_rtl("biquad")
        assert rtl.cond_fu is not None
        assert rtl.schedule.n_steps == 7


class TestEwf:
    def test_op_mix(self):
        from repro.designs.ewf import ewf_dfg
        from repro.hls.dfg import OpKind

        dfg = ewf_dfg()
        adds = sum(1 for o in dfg.ops if o.kind is OpKind.ADD)
        muls = sum(1 for o in dfg.ops if o.kind is OpKind.MUL)
        assert (adds, muls) == (26, 8)

    def test_multiple_output_ports(self):
        rtl = build_rtl("ewf")
        assert len(rtl.outputs) == 3
        # distinct output registers
        assert len(set(rtl.outputs.values())) == 3

    def test_more_resources_shrink_schedule(self):
        from repro.designs.ewf import ewf_rtl

        slow = ewf_rtl(adders=1, multipliers=1)
        fast = ewf_rtl(adders=3, multipliers=2)
        assert fast.schedule.n_steps < slow.schedule.n_steps

    def test_system_computes_reference(self):
        import numpy as np

        from repro.designs.ewf import ewf_dfg
        from repro.hls.system import NormalModeStimulus, build_system
        from repro.logic.simulator import CycleSimulator

        rtl = build_rtl("ewf")
        system = build_system(rtl)
        dfg = ewf_dfg()
        rng = np.random.default_rng(21)
        data = {k: rng.integers(0, 16, 16) for k in rtl.dfg.inputs}
        stim = NormalModeStimulus(system, data, system.cycles_for(1))
        sim = CycleSimulator(system.netlist, 16)
        for c in range(stim.n_cycles):
            stim.apply(sim, c)
            sim.settle()
            sim.latch()
        for port, bus in system.output_buses.items():
            got = sim.sample_bus(bus)
            for p in range(16):
                outs, _ = dfg.execute({k: int(v[p]) for k, v in data.items()})
                assert got[p] == outs[port]
