"""Unit tests for RTL -> gate-level elaboration (FUs, muxes, registers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hls import gatelevel as gl
from repro.designs.catalog import build_rtl
from repro.hls.rtl import MuxSpec, Source
from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder

W = 4
MASK = (1 << W) - 1


def _exhaustive(builder_fn, ref):
    b = NetlistBuilder()
    a = b.input_bus("a", W)
    c = b.input_bus("c", W)
    out = builder_fn(b, a, c)
    for n in out:
        b.output(n)
    nl = b.done()
    av = np.arange(256) % 16
    cv = np.arange(256) // 16
    sim = CycleSimulator(nl, 256)
    sim.drive_bus(a, av)
    sim.drive_bus(c, cv)
    sim.settle()
    got = sim.sample_bus(out)
    for x, y, g in zip(av, cv, got):
        assert g == ref(int(x), int(y)), (x, y, g)


class TestArithmetic:
    def test_adder_exhaustive(self):
        _exhaustive(
            lambda b, a, c: gl._ripple_add(b, a, c, b.const0(), "t")[0],
            lambda x, y: (x + y) & MASK,
        )

    def test_adder_carry_out(self):
        b = NetlistBuilder()
        a = b.input_bus("a", W)
        c = b.input_bus("c", W)
        _, cout = gl._ripple_add(b, a, c, b.const0(), "t")
        b.output(cout)
        nl = b.done()
        sim = CycleSimulator(nl, 256)
        av, cv = np.arange(256) % 16, np.arange(256) // 16
        sim.drive_bus(a, av)
        sim.drive_bus(c, cv)
        sim.settle()
        assert (sim.sample(cout) == ((av + cv) > MASK)).all()

    def test_subtractor_exhaustive(self):
        _exhaustive(lambda b, a, c: gl._subtract(b, a, c, "t")[0], lambda x, y: (x - y) & MASK)

    def test_multiplier_exhaustive(self):
        _exhaustive(lambda b, a, c: gl._multiply(b, a, c, "t"), lambda x, y: (x * y) & MASK)

    def test_comparator_exhaustive(self):
        _exhaustive(lambda b, a, c: [gl._less_than(b, a, c, "t")], lambda x, y: int(x < y))

    def test_bitwise_ops(self):
        from repro.hls.dfg import OpKind

        _exhaustive(lambda b, a, c: gl._fu_logic(b, OpKind.AND, a, c, "t"), lambda x, y: x & y)
        _exhaustive(lambda b, a, c: gl._fu_logic(b, OpKind.OR, a, c, "t"), lambda x, y: x | y)
        _exhaustive(lambda b, a, c: gl._fu_logic(b, OpKind.XOR, a, c, "t"), lambda x, y: x ^ y)


class TestMuxTree:
    @pytest.mark.parametrize("n_sources", [2, 3, 4, 5, 8])
    def test_selects_correct_source(self, n_sources):
        b = NetlistBuilder()
        buses = [b.input_bus(f"s{i}", W) for i in range(n_sources)]
        n_bits = (n_sources - 1).bit_length()
        sels = [b.input(f"sel{i}") for i in range(n_bits)]
        mux = MuxSpec(name="m", sources=[Source("reg", f"s{i}") for i in range(n_sources)])
        out = gl._mux_tree(b, mux, buses, sels, "t")
        for n in out:
            b.output(n)
        nl = b.done()
        sim = CycleSimulator(nl, 1)
        for i, bus in enumerate(buses):
            sim.drive_bus(bus, [i + 1])
        for index in range(n_sources):
            for k, s in enumerate(sels):
                sim.drive_const(s, (index >> k) & 1)
            sim.settle()
            assert sim.sample_bus(out)[0] == index + 1

    def test_padded_indices_alias_source_zero(self):
        b = NetlistBuilder()
        buses = [b.input_bus(f"s{i}", W) for i in range(3)]
        sels = [b.input("sel0"), b.input("sel1")]
        mux = MuxSpec(name="m", sources=[Source("reg", f"s{i}") for i in range(3)])
        out = gl._mux_tree(b, mux, buses, sels, "t")
        for n in out:
            b.output(n)
        nl = b.done()
        sim = CycleSimulator(nl, 1)
        for i, bus in enumerate(buses):
            sim.drive_bus(bus, [i + 5])
        sim.drive_const(sels[0], 1)
        sim.drive_const(sels[1], 1)  # index 3 -> padded -> source 0
        sim.settle()
        assert sim.sample_bus(out)[0] == 5

    def test_single_source_passthrough(self):
        b = NetlistBuilder()
        bus = b.input_bus("s", W)
        mux = MuxSpec(name="m", sources=[Source("reg", "s")])
        out = gl._mux_tree(b, mux, [bus], [], "t")
        assert out == bus


class TestElaboratedDatapath:
    @pytest.fixture(scope="class")
    def dp(self):
        return gl.elaborate_datapath(build_rtl("diffeq"))

    def test_interface_nets_exist(self, dp):
        rtl_lines = set(dp.control_nets)
        assert "LD1" in rtl_lines and "MS1" in rtl_lines

    def test_cond_net_is_output(self, dp):
        assert dp.cond_net in dp.netlist.outputs

    def test_every_register_has_width_ffs(self, dp):
        from repro.netlist.gates import GateType

        dffe = [g for g in dp.netlist.gates if g.gtype is GateType.DFFE]
        assert len(dffe) == W * len(dp.reg_q)

    def test_gates_tagged_dp(self, dp):
        assert all(g.tag.startswith("dp:") for g in dp.netlist.gates)

    def test_output_buses_are_register_qs(self, dp):
        for port, bus in dp.output_buses.items():
            assert bus in dp.reg_q.values()
