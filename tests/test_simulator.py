"""Unit + property tests for the pattern-parallel cycle simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.faults import FaultSite
from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType, eval_gate_ints


def _comb_netlist():
    """y = (a & b) ^ ~c ; z = mux(a, b, c)."""
    b = NetlistBuilder()
    a, c, d = b.input("a"), b.input("b"), b.input("c")
    y = b.xor_([b.and_([a, c]), b.not_(d)], output=b.net("y"))
    z = b.mux2_(a, c, d, output=b.net("z"))
    b.output(y)
    b.output(z)
    return b.done(), (a, c, d), (y, z)


class TestCombinational:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)),
            min_size=1,
            max_size=130,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, rows):
        nl, (a, c, d), (y, z) = _comb_netlist()
        sim = CycleSimulator(nl, len(rows))
        sim.drive(a, [r[0] for r in rows])
        sim.drive(c, [r[1] for r in rows])
        sim.drive(d, [r[2] for r in rows])
        sim.settle()
        got_y = sim.sample(y)
        got_z = sim.sample(z)
        for p, (va, vb, vc) in enumerate(rows):
            ref_y = (va & vb) ^ (1 - vc)
            ref_z = vc if va else vb
            assert got_y[p] == ref_y
            assert got_z[p] == ref_z

    def test_unknown_inputs_propagate_x(self):
        nl, (a, c, d), (y, z) = _comb_netlist()
        sim = CycleSimulator(nl, 4)
        sim.drive_const(a, 1)  # b, c left undriven -> X
        sim.settle()
        assert (sim.sample(y) == -1).all()

    def test_and_with_controlling_zero_kills_x(self):
        b = NetlistBuilder()
        a, c = b.input("a"), b.input("c")
        y = b.and_([a, c])
        b.output(y)
        nl = b.done()
        sim = CycleSimulator(nl, 2)
        sim.drive_const(a, 0)  # c is X
        sim.settle()
        assert (sim.sample(y) == 0).all()


class TestSequential:
    def _counter(self):
        """2-bit counter built from XOR/AND + DFFs, reset via input."""
        b = NetlistBuilder()
        rst = b.input("rst")
        q0, q1 = b.net("q0"), b.net("q1")
        nrst = b.not_(rst)
        d0 = b.and_([b.not_(q0), nrst])
        d1 = b.and_([b.xor_([q0, q1]), nrst])
        b.dff(d0, output=q0)
        b.dff(d1, output=q1)
        b.output(q0)
        b.output(q1)
        return b.done(), rst, (q0, q1)

    def test_counter_counts(self):
        nl, rst, (q0, q1) = self._counter()
        sim = CycleSimulator(nl, 1)
        seq = []
        for cyc in range(6):
            sim.drive_const(rst, 1 if cyc == 0 else 0)
            sim.settle()
            sim.latch()
            seq.append((int(sim.sample(q0)[0]), int(sim.sample(q1)[0])))
        # after reset: 00 -> 10 -> 01 -> 11 -> 00 ...
        assert seq[:5] == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 0)]

    def test_flipflops_power_up_x(self):
        nl, rst, (q0, q1) = self._counter()
        sim = CycleSimulator(nl, 3)
        assert (sim.sample(q0) == -1).all()

    def test_dffe_holds_when_disabled(self):
        b = NetlistBuilder()
        en, d = b.input("en"), b.input("d")
        q = b.dffe(en, d, output=b.net("q"))
        b.output(q)
        nl = b.done()
        sim = CycleSimulator(nl, 1)
        sim.drive_const(en, 1)
        sim.drive_const(d, 1)
        sim.settle(); sim.latch()
        assert sim.sample(q)[0] == 1
        sim.drive_const(en, 0)
        sim.drive_const(d, 0)
        sim.settle(); sim.latch()
        assert sim.sample(q)[0] == 1  # held

    def test_dffe_x_enable_keeps_equal_value(self):
        b = NetlistBuilder()
        en, d = b.input("en"), b.input("d")
        q = b.dffe(en, d, output=b.net("q"))
        b.output(q)
        nl = b.done()
        sim = CycleSimulator(nl, 1)
        sim.drive_const(en, 1)
        sim.drive_const(d, 1)
        sim.settle(); sim.latch()
        # en X, d == q -> q stays 1; then d != q -> q becomes X
        sim.drive_words(en, np.zeros(1, np.uint64), np.zeros(1, np.uint64))
        sim.settle(); sim.latch()
        assert sim.sample(q)[0] == 1
        sim.drive_const(d, 0)
        sim.settle(); sim.latch()
        assert sim.sample(q)[0] == -1


class TestToggleCounting:
    def test_exact_toggles(self):
        b = NetlistBuilder()
        a = b.input("a")
        y = b.not_(a, output=b.net("y"))
        b.output(y)
        nl = b.done()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        for bit in [0, 1, 1, 0, 1]:
            sim.drive_const(a, bit)
            sim.settle()
            sim.latch()
        # a toggles 0->1,1->0,0->1 = 3; y the same count.
        assert sim.toggles[a] == 3
        assert sim.toggles[y] == 3

    def test_x_transitions_not_counted(self):
        b = NetlistBuilder()
        a = b.input("a")
        y = b.buf_(a, output=b.net("y"))
        b.output(y)
        nl = b.done()
        sim = CycleSimulator(nl, 1, count_toggles=True)
        sim.settle(); sim.latch()  # X
        sim.drive_const(a, 1)
        sim.settle(); sim.latch()  # X -> 1 : not a toggle
        assert sim.toggles[y] == 0

    def test_load_events_counted_per_dffe(self):
        b = NetlistBuilder()
        en, d = b.input("en"), b.input("d")
        b.output(b.dffe(en, d, output=b.net("q")))
        nl = b.done()
        sim = CycleSimulator(nl, 2, count_toggles=True)
        sim.drive(en, [1, 0])
        sim.drive_const(d, 1)
        for _ in range(3):
            sim.settle()
            sim.latch()
        assert sim.load_events[0] == 3  # one enabled pattern x 3 cycles


class TestBlockToggleCounting:
    """Per-block counters of one wide fault-parallel run vs standalone sims."""

    def _dffe_netlist(self):
        """en/d -> DFFE -> inverter, so both counter kinds are exercised."""
        b = NetlistBuilder()
        en, d = b.input("en"), b.input("d")
        q = b.dffe(en, d, output=b.net("q"))
        y = b.not_(q, output=b.net("y"))
        b.output(y)
        return b.done(), en, d, q

    def test_block_counters_match_standalone_sims(self):
        nl, en, d, q = self._dffe_netlist()
        g = nl.driver_of(q)
        faults = [FaultSite(g.index, -1, q, 1), FaultSite(g.index, -1, q, 0)]
        rng = np.random.default_rng(7)
        en_bits = [rng.integers(0, 2, 64) for _ in faults]
        d_bits = [rng.integers(0, 2, 64) for _ in faults]

        wide = CycleSimulator(
            nl,
            128,
            faults=faults,
            fault_blocks=[(0, 1), (1, 2)],
            count_toggles=True,
            toggle_blocks=2,
        )
        wide.drive(en, np.concatenate(en_bits))
        wide.drive(d, np.concatenate(d_bits))
        for _ in range(4):
            wide.settle()
            wide.latch()

        for blk, fault in enumerate(faults):
            solo = CycleSimulator(nl, 64, faults=[fault], count_toggles=True)
            solo.drive(en, en_bits[blk])
            solo.drive(d, d_bits[blk])
            for _ in range(4):
                solo.settle()
                solo.latch()
            assert np.array_equal(wide.toggles[blk], solo.toggles)
            assert np.array_equal(wide.load_events[blk], solo.load_events)

    def test_toggle_blocks_must_divide_words(self):
        nl, en, d, q = self._dffe_netlist()
        with pytest.raises(ValueError, match="toggle_blocks"):
            CycleSimulator(nl, 64, count_toggles=True, toggle_blocks=2)


class TestFaultInjection:
    def test_stem_fault_forces_net(self):
        nl, (a, c, d), (y, z) = _comb_netlist()
        g = nl.driver_of(y)
        sim = CycleSimulator(nl, 4, faults=[FaultSite(g.index, -1, y, 1)])
        sim.drive(a, [0, 0, 1, 1])
        sim.drive(c, [0, 1, 0, 1])
        sim.drive(d, [1, 1, 1, 1])
        sim.settle()
        assert (sim.sample(y) == 1).all()

    def test_branch_fault_affects_single_reader(self):
        b = NetlistBuilder()
        a = b.input("a")
        y1 = b.buf_(a, output=b.net("y1"))
        y2 = b.buf_(a, output=b.net("y2"))
        b.output(y1)
        b.output(y2)
        nl = b.done()
        g1 = nl.driver_of(y1)
        sim = CycleSimulator(nl, 2, faults=[FaultSite(g1.index, 0, a, 1)])
        sim.drive(a, [0, 0])
        sim.settle()
        assert (sim.sample(y1) == 1).all()  # poisoned
        assert (sim.sample(y2) == 0).all()  # untouched

    def test_stem_fault_on_pi(self):
        nl, (a, c, d), (y, z) = _comb_netlist()
        sim = CycleSimulator(nl, 2, faults=[FaultSite(None, -1, a, 0)])
        sim.drive(a, [1, 1])
        sim.drive(c, [1, 1])
        sim.drive(d, [0, 1])
        sim.settle()
        # a forced 0 -> z = mux(0, b, c) = b = 1
        assert (sim.sample(z) == 1).all()

    def test_fault_on_dff_output(self):
        b = NetlistBuilder()
        d = b.input("d")
        q = b.dff(d, output=b.net("q"))
        b.output(q)
        nl = b.done()
        g = nl.driver_of(q)
        sim = CycleSimulator(nl, 1, faults=[FaultSite(g.index, -1, q, 0)])
        sim.drive_const(d, 1)
        sim.settle(); sim.latch()
        sim.settle()
        assert sim.sample(q)[0] == 0


class TestBusHelpers:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=70))
    @settings(max_examples=20, deadline=None)
    def test_drive_sample_bus_roundtrip(self, vals):
        b = NetlistBuilder()
        bus_in = b.input_bus("v", 4)
        bus_out = [b.buf_(n) for n in bus_in]
        for n in bus_out:
            b.output(n)
        nl = b.done()
        sim = CycleSimulator(nl, len(vals))
        sim.drive_bus(bus_in, vals)
        sim.settle()
        assert list(sim.sample_bus(bus_out)) == vals

    def test_sample_bus_x_is_minus_one(self):
        b = NetlistBuilder()
        bus = b.input_bus("v", 4)
        outs = [b.buf_(n) for n in bus]
        for n in outs:
            b.output(n)
        nl = b.done()
        sim = CycleSimulator(nl, 1)
        sim.settle()
        assert sim.sample_bus(outs)[0] == -1
