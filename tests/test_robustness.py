"""Crash, timeout, checkpoint/resume and fail-fast validation tests.

The contract under test: the resilience layer is invisible in the
results.  A campaign that loses workers, times out hung chunks, or is
killed and resumed from its checkpoint journal produces bit-identical
verdicts and Monte-Carlo powers to a clean uninterrupted run -- and bad
inputs are rejected loudly *before* any fan-out burns compute.

The crash/timeout tests fake a 4-core machine (``os.cpu_count`` is
monkeypatched) so the multi-process paths are exercised even on 1-core
CI runners; the worker processes are real either way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

import repro.core.parallel as parallel_mod
from repro.core.checkpoint import (
    CampaignJournal,
    campaign_fingerprint,
    fault_key,
    open_journal,
)
from repro.core.errors import (
    CampaignError,
    CheckpointMismatch,
    ChunkTimeout,
    WorkerCrash,
    validate_config,
    validate_netlist,
    validate_stimulus,
)
from repro.core.grading import grade_sfr_faults
from repro.core.parallel import ParallelExecutor
from repro.core.pipeline import PipelineConfig, controller_fault_universe, run_pipeline
from repro.hls.system import NormalModeStimulus, hold_masks
from repro.logic.faultsim import fault_simulate
from repro.netlist.netlist import Netlist
from repro.tpg.tpgr import TPGR


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the machine has 4 cores so n_jobs > 1 builds a real pool."""
    monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)


# ------------------------------------------------------------ test workers
def _double(context, item):
    return item * 2


def _crash_once(context, item):
    """Die hard (no exception, no cleanup) on the first attempt only."""
    flag = Path(context) / "crashed"
    if not flag.exists():
        flag.write_text("x")
        os._exit(13)
    return item * 2


def _always_crash(context, item):
    os._exit(13)


def _hang_once(context, item):
    """Hang far past any test timeout on the first attempt per item."""
    flag = Path(context) / f"hung-{item}"
    if not flag.exists():
        flag.write_text("x")
        time.sleep(300)
    return item * 2


def _always_hang(context, item):
    time.sleep(300)


def _raise_on_three(context, item):
    if item == 3:
        raise ValueError("boom on 3")
    return item


class TestExecutorCrashRecovery:
    def test_worker_crash_rebuilds_pool_and_recovers(self, multicore, tmp_path):
        ex = ParallelExecutor(n_jobs=2, chunk_size=4, max_retries=2, backoff=0.01)
        out = ex.run(_crash_once, [1, 2, 3, 4], str(tmp_path))
        assert out == [2, 4, 6, 8]
        report = ex.last_report
        assert report.crashes >= 1
        assert report.pool_rebuilds >= 1
        assert report.retries >= 1
        assert report.completed == 4
        assert all(c.status in ("ok", "serial") for c in report.chunks)

    def test_persistent_crash_degrades_to_serial(self, multicore, tmp_path):
        """A chunk that always kills its worker still completes -- in-process."""
        calls = tmp_path / "log"

        ex = ParallelExecutor(n_jobs=2, chunk_size=2, max_retries=1, backoff=0.01)
        out = ex.run(_crash_in_pool_only, [1, 2], str(calls))
        assert out == [2, 4]
        assert ex.last_report.serial_fallbacks == 1
        assert ex.last_report.crashes >= 1

    def test_persistent_crash_without_fallback_raises(self, multicore, tmp_path):
        ex = ParallelExecutor(
            n_jobs=2, chunk_size=2, max_retries=1, backoff=0.01, serial_fallback=False
        )
        with pytest.raises(WorkerCrash):
            ex.run(_always_crash, [1, 2], None)
        assert ex.last_report.crashes >= 2  # initial attempt + retry

    def test_worker_exception_is_retried_then_reraised(self, multicore):
        ex = ParallelExecutor(n_jobs=2, chunk_size=2, max_retries=1, backoff=0.01)
        with pytest.raises(ValueError, match="boom on 3"):
            ex.run(_raise_on_three, [1, 2, 3, 4], None)
        report = ex.last_report
        assert report.retries >= 1
        assert report.serial_fallbacks == 1  # the in-process replay that raised


def _crash_in_pool_only(context, item):
    """Crash only when running inside a worker process (pool attempts),
    succeed when replayed in-process by the serial fallback."""
    import repro.core.parallel as P

    if P._WORKER_STATE is not None:
        os._exit(13)
    return item * 2


class TestExecutorTimeouts:
    def test_hung_worker_killed_and_retried(self, multicore, tmp_path):
        ex = ParallelExecutor(
            n_jobs=2, chunk_size=2, timeout=2.0, max_retries=3, backoff=0.01
        )
        out = ex.run(_hang_once, [5, 6], str(tmp_path))
        assert out == [10, 12]
        report = ex.last_report
        assert report.timeouts >= 1
        assert report.pool_rebuilds >= 1
        assert report.completed == 2

    def test_timeout_budget_exhausted_raises_chunk_timeout(self, multicore):
        ex = ParallelExecutor(
            n_jobs=2, chunk_size=2, timeout=0.4, max_retries=1, backoff=0.01
        )
        start = time.monotonic()
        with pytest.raises(ChunkTimeout):
            ex.run(_always_hang, [1, 2], None)
        # two attempts at 0.4 s each, not the worker's 300 s sleep
        assert time.monotonic() - start < 30
        assert ex.last_report.timeouts >= 2
        assert isinstance(ChunkTimeout("x"), TimeoutError)


class TestExecutorEdgeCases:
    def test_empty_items_never_builds_a_pool(self, multicore, monkeypatch):
        def _no_pool(*args, **kwargs):
            raise AssertionError("pool must not be constructed")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _no_pool)
        ex = ParallelExecutor(n_jobs=4)
        assert ex.run(_double, [], None) == []
        assert ex.last_report.n_chunks == 0

    def test_single_item_never_builds_a_pool(self, multicore, monkeypatch):
        def _no_pool(*args, **kwargs):
            raise AssertionError("pool must not be constructed")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _no_pool)
        assert ParallelExecutor(n_jobs=4).run(_double, [7], None) == [14]

    def test_none_context_ships_to_workers(self, multicore):
        out = ParallelExecutor(n_jobs=2, chunk_size=2).run(_double, [1, 2, 3], None)
        assert out == [2, 4, 6]

    def test_on_chunk_fires_for_every_item(self, multicore):
        seen: list[tuple[int, int]] = []

        def observer(items, results):
            seen.extend(zip(items, results))

        out = ParallelExecutor(n_jobs=2, chunk_size=2).run(
            _double, [1, 2, 3, 4, 5], None, on_chunk=observer
        )
        assert out == [2, 4, 6, 8, 10]
        assert sorted(seen) == [(1, 2), (2, 4), (3, 6), (4, 8), (5, 10)]


# ---------------------------------------------------------------- journals
class TestCampaignJournal:
    def test_fingerprint_is_deterministic_and_sensitive(self):
        base = campaign_fingerprint("faultsim", "diffeq", ["1:2:3:0"], {"seed": 1})
        assert base == campaign_fingerprint("faultsim", "diffeq", ["1:2:3:0"], {"seed": 1})
        assert base != campaign_fingerprint("grading", "diffeq", ["1:2:3:0"], {"seed": 1})
        assert base != campaign_fingerprint("faultsim", "facet", ["1:2:3:0"], {"seed": 1})
        assert base != campaign_fingerprint("faultsim", "diffeq", ["1:2:3:1"], {"seed": 1})
        assert base != campaign_fingerprint("faultsim", "diffeq", ["1:2:3:0"], {"seed": 2})

    def test_record_and_resume_roundtrip(self, tmp_path):
        j = open_journal(tmp_path, "faultsim", "f" * 20)
        j.record("a", ["detected", 4])
        j.record("b", ["undetected", -1])
        j2 = open_journal(tmp_path, "faultsim", "f" * 20, resume=True)
        assert j2.done == {"a": ["detected", 4], "b": ["undetected", -1]}
        assert j2.n_resumed == 2

    def test_fresh_open_discards_previous_run(self, tmp_path):
        j = open_journal(tmp_path, "faultsim", "f" * 20)
        j.record("a", [1])
        j2 = open_journal(tmp_path, "faultsim", "f" * 20, resume=False)
        assert j2.done == {} and j2.n_resumed == 0

    def test_foreign_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "faultsim-xyz.jsonl"
        CampaignJournal(path, "a" * 20, "faultsim").record("k", [1])
        with pytest.raises(CheckpointMismatch, match="refusing to resume"):
            CampaignJournal(path, "b" * 20, "faultsim", resume=True)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "faultsim-xyz.jsonl"
        path.write_text("this is not a checkpoint\n")
        with pytest.raises(CheckpointMismatch):
            CampaignJournal(path, "a" * 20, "faultsim", resume=True)

    def test_torn_tail_from_a_kill_is_dropped(self, tmp_path):
        path = tmp_path / "faultsim-xyz.jsonl"
        j = CampaignJournal(path, "a" * 20, "faultsim")
        j.record("done", [1])
        with open(path, "a") as f:
            f.write('{"key": "torn", "val')  # no newline: a SIGKILL signature
        j2 = CampaignJournal(path, "a" * 20, "faultsim", resume=True)
        assert j2.done == {"done": [1]}

    def test_interior_corruption_rejected(self, tmp_path):
        path = tmp_path / "faultsim-xyz.jsonl"
        j = CampaignJournal(path, "a" * 20, "faultsim")
        j.record("a", [1])
        lines = path.read_text().splitlines()
        lines[1] = "garbage {{{"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointMismatch, match="corrupt"):
            CampaignJournal(path, "a" * 20, "faultsim", resume=True)

    def test_bit_flip_inside_a_record_fails_its_crc(self, tmp_path):
        """A flipped digit still parses as JSON; only the CRC notices."""
        path = tmp_path / "faultsim-xyz.jsonl"
        j = CampaignJournal(path, "a" * 20, "faultsim")
        j.record("fault0", ["detected", 41])
        j.record("fault1", ["undetected", -1])
        lines = path.read_text().splitlines()
        assert '"value": ["detected", 41]' in lines[1]
        lines[1] = lines[1].replace('["detected", 41]', '["detected", 43]')
        path.write_text("\n".join(lines) + "\n")
        json.loads(lines[1])  # the tampered line is still valid JSON
        with pytest.raises(CheckpointMismatch, match="CRC"):
            CampaignJournal(path, "a" * 20, "faultsim", resume=True)

    def test_torn_tail_without_crc_is_still_forgiven(self, tmp_path):
        """A SIGKILL can tear the line before the CRC field is written."""
        path = tmp_path / "faultsim-xyz.jsonl"
        j = CampaignJournal(path, "a" * 20, "faultsim")
        j.record("done", [1])
        with open(path, "a") as f:
            f.write('{"key": "torn", "value": [2], "crc": "dead')  # no newline
        j2 = CampaignJournal(path, "a" * 20, "faultsim", resume=True)
        assert j2.done == {"done": [1]}

    def test_non_finite_values_rejected_at_write_time(self, tmp_path):
        j = CampaignJournal(tmp_path / "g.jsonl", "a" * 20, "grading")
        with pytest.raises(ValueError):
            j.record("bad", {"power_uw": float("nan")})
        assert "bad" not in j.done  # the in-memory state stayed consistent
        j.record("good", {"power_uw": 1.5})  # journal still usable


# ------------------------------------------------- campaign resume (faults)
@pytest.fixture(scope="module")
def facet_campaign(facet_system):
    system = facet_system
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=0xACE1)
    data = {k: np.asarray(v) for k, v in tpgr.generate(64).items()}
    stim = NormalModeStimulus(system, data, system.cycles_for(3))
    masks = hold_masks(system, stim)
    observe = [n for bus in system.output_buses.values() for n in bus]
    faults = [system.to_system_fault(s) for s in controller_fault_universe(system)]
    return system, stim, masks, observe, faults


class TestFaultSimResume:
    def test_interrupted_campaign_resumes_bit_identical(self, facet_campaign, tmp_path):
        system, stim, masks, observe, faults = facet_campaign
        clean = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks
        )
        # "Kill" the campaign after an arbitrary prefix of the fault list...
        fp = "c" * 20
        half = len(faults) // 2
        j = open_journal(tmp_path, "faultsim", fp)
        partial = fault_simulate(
            system.netlist, faults[:half], stim, observe=observe, valid_masks=masks,
            checkpoint=j,
        )
        assert partial.campaign.completed == half
        # ...then resume the full fault list against the journal.
        j2 = open_journal(tmp_path, "faultsim", fp, resume=True)
        resumed = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            checkpoint=j2,
        )
        assert resumed.campaign.resumed == half
        assert resumed.campaign.completed == len(faults) - half
        assert resumed.verdicts == clean.verdicts
        assert resumed.detect_cycle == clean.detect_cycle

    def test_fully_journaled_campaign_skips_all_simulation(self, facet_campaign, tmp_path):
        system, stim, masks, observe, faults = facet_campaign
        fp = "d" * 20
        j = open_journal(tmp_path, "faultsim", fp)
        clean = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            checkpoint=j,
        )
        j2 = open_journal(tmp_path, "faultsim", fp, resume=True)
        replayed = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            checkpoint=j2,
        )
        assert replayed.campaign.resumed == len(faults)
        assert replayed.campaign.completed == 0
        assert replayed.verdicts == clean.verdicts
        assert replayed.detect_cycle == clean.detect_cycle


class TestPipelineResume:
    def test_pipeline_checkpoint_roundtrip(self, facet_system, tmp_path):
        config = PipelineConfig(n_patterns=64, checkpoint_dir=str(tmp_path))
        first = run_pipeline(facet_system, config)
        resumed = run_pipeline(
            facet_system,
            PipelineConfig(n_patterns=64, checkpoint_dir=str(tmp_path), resume=True),
        )
        assert resumed.campaign.resumed == first.total_faults
        assert [r.category for r in resumed.records] == [
            r.category for r in first.records
        ]
        assert resumed.counts() == first.counts()


class TestGradingResume:
    def test_grading_checkpoint_roundtrip(self, facet_system, facet_pipeline, tmp_path):
        kwargs = dict(batch_patterns=64, max_batches=2)
        clean = grade_sfr_faults(facet_system, facet_pipeline, **kwargs)
        first = grade_sfr_faults(
            facet_system, facet_pipeline, checkpoint_dir=str(tmp_path), **kwargs
        )
        resumed = grade_sfr_faults(
            facet_system,
            facet_pipeline,
            checkpoint_dir=str(tmp_path),
            resume=True,
            **kwargs,
        )
        assert resumed.campaign.resumed == len(clean.graded)
        for a, b in zip(clean.graded, resumed.graded):
            assert a.power_uw == b.power_uw  # bit-identical, not approx
            assert a.pct_change == b.pct_change
            assert a.group == b.group
        assert resumed.fault_free_uw == clean.fault_free_uw

    def test_tampered_grading_checkpoint_rejected(
        self, facet_system, facet_pipeline, tmp_path
    ):
        kwargs = dict(batch_patterns=64, max_batches=2)
        grade_sfr_faults(
            facet_system, facet_pipeline, checkpoint_dir=str(tmp_path), **kwargs
        )
        (journal_path,) = tmp_path.glob("grading-*.jsonl")
        lines = journal_path.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 20  # somebody else's campaign
        lines[0] = json.dumps(header)
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointMismatch):
            grade_sfr_faults(
                facet_system,
                facet_pipeline,
                checkpoint_dir=str(tmp_path),
                resume=True,
                **kwargs,
            )


# ---------------------------------------------------- fail-fast validation
class TestFailFastValidation:
    def test_bad_configs_rejected(self):
        for bad in [
            PipelineConfig(n_patterns=0),
            PipelineConfig(iterations_window=0),
            PipelineConfig(hold_cycles=0),
            PipelineConfig(iteration_counts=()),
            PipelineConfig(iteration_counts=(0,)),
            PipelineConfig(tpgr_seed=-1),
            PipelineConfig(timeout=-2.0),
            PipelineConfig(max_retries=-1),
        ]:
            with pytest.raises(CampaignError):
                validate_config(bad)
        validate_config(PipelineConfig())  # the defaults are valid

    def test_pipeline_rejects_bad_config_before_simulating(self, facet_system):
        with pytest.raises(CampaignError, match="n_patterns"):
            run_pipeline(facet_system, PipelineConfig(n_patterns=0))

    def test_grading_rejects_bad_knobs(self, facet_system, facet_pipeline):
        with pytest.raises(CampaignError, match="threshold"):
            grade_sfr_faults(facet_system, facet_pipeline, threshold=1.5)
        with pytest.raises(CampaignError, match="max_batches"):
            grade_sfr_faults(facet_system, facet_pipeline, max_batches=0)
        with pytest.raises(CampaignError, match="timeout"):
            grade_sfr_faults(facet_system, facet_pipeline, timeout=0)

    def test_empty_netlist_rejected(self):
        with pytest.raises(CampaignError, match="no gates"):
            validate_netlist(Netlist(name="empty"))

    def test_degenerate_stimulus_rejected(self):
        with pytest.raises(CampaignError, match="patterns"):
            validate_stimulus(SimpleNamespace(n_patterns=0, n_cycles=5, apply=lambda s, c: None))
        with pytest.raises(CampaignError, match="cycles"):
            validate_stimulus(SimpleNamespace(n_patterns=8, n_cycles=0, apply=lambda s, c: None))
        with pytest.raises(CampaignError, match="apply"):
            validate_stimulus(SimpleNamespace(n_patterns=8, n_cycles=5, apply=None))

    def test_valid_system_passes(self, facet_system):
        validate_netlist(facet_system.netlist)  # must not raise


class TestFaultKey:
    def test_fault_keys_unique_per_universe(self, facet_campaign):
        _, _, _, _, faults = facet_campaign
        keys = [fault_key(f) for f in faults]
        assert len(set(keys)) == len(keys)
