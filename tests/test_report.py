"""Tests for the table/figure rendering layer."""

import pytest

from repro.core.grading import GradedFault, GradingResult, Table3Row
from repro.core.pipeline import FaultRecord, PipelineResult
from repro.core.report import (
    figure7_series,
    render_figure7,
    render_table,
    render_table1,
    render_table2,
    render_table3,
    table1_rows,
    table2_rows,
)


def _fake_grading(facet_pipeline):
    """Grading result with synthetic power numbers (no simulation)."""
    graded = []
    for i, rec in enumerate(facet_pipeline.sfr_records[:6]):
        group = "load" if rec.classification.affects_load_line else "select"
        pct = (-3.0 + 2.5 * i)
        graded.append(
            GradedFault(record=rec, power_uw=1000.0 * (1 + pct / 100), pct_change=pct, group=group)
        )
    graded.sort(key=lambda g: (g.group != "select", g.power_uw))
    return GradingResult(design="facet", fault_free_uw=1000.0, threshold=0.05, graded=graded)


class TestGenericTable:
    def test_render_table_alignment(self):
        text = render_table(["A", "Blong"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5


class TestTable1:
    def test_rows_start_with_fault_free(self, facet_pipeline):
        g = _fake_grading(facet_pipeline)
        rows = table1_rows(g, g.graded[:3])
        assert rows[0]["fault"] == "fault-free"
        assert rows[0]["pct"] is None
        assert len(rows) == 4

    def test_render_contains_effects(self, facet_pipeline):
        g = _fake_grading(facet_pipeline)
        text = render_table1(g, g.graded[:2])
        assert "Table 1" in text
        assert "Power mW" in text


class TestTable2:
    def test_rows(self, facet_pipeline):
        rows = table2_rows([facet_pipeline])
        assert rows[0]["design"] == "facet"

    def test_render(self, facet_pipeline):
        text = render_table2([facet_pipeline])
        assert "Total Faults" in text and "facet" in text


class TestTable3:
    def test_render(self):
        rows = [
            Table3Row("fault-free", 1000.0, [990.0, 1010.0]),
            Table3Row("f1", 1100.0, [1090.0, 1111.0], 10.0, [10.1, 10.0]),
        ]
        text = render_table3(rows, "diffeq")
        assert "Test set 1" in text and "Test set 2" in text
        assert "(+10.10%)" in text


class TestFigure7:
    def test_series_flags(self, facet_pipeline):
        g = _fake_grading(facet_pipeline)
        series = figure7_series(g)
        assert len(series) == len(g.graded)
        for s, gf in zip(series, g.graded):
            assert s["detected"] == (abs(gf.pct_change) > 5.0)

    def test_render_has_band_markers(self, facet_pipeline):
        g = _fake_grading(facet_pipeline)
        text = render_figure7(g)
        assert "[" in text and "]" in text and "|" in text
        assert "Figure 7" in text

    def test_render_empty(self):
        g = GradingResult(design="x", fault_free_uw=1.0, threshold=0.05, graded=[])
        assert "no SFR faults" in render_figure7(g)
