"""Tests for the structural Verilog writer/parser."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import NetlistError
from repro.netlist.verilog import parse_verilog, write_verilog


def _sample():
    b = NetlistBuilder("samp")
    a = b.input("a")
    c = b.input("esc[0]")  # needs escaping
    y = b.and_([a, c], output=b.net("y"), name="g_and")
    q = b.dffe(a, y, output=b.net("q"))
    m = b.mux2_(a, y, q, output=b.net("m"))
    k = b.const1(output=b.net("k"))
    z = b.xor_([m, k], output=b.net("z"))
    b.output(z)
    return b.done()


class TestRoundTrip:
    def test_structure_preserved(self):
        nl = _sample()
        nl2 = parse_verilog(write_verilog(nl))
        assert len(nl2.gates) == len(nl.gates)
        assert sorted(g.gtype.value for g in nl2.gates) == sorted(
            g.gtype.value for g in nl.gates
        )
        assert len(nl2.inputs) == len(nl.inputs)
        assert len(nl2.outputs) == len(nl.outputs)

    def test_names_preserved(self):
        nl = _sample()
        nl2 = parse_verilog(write_verilog(nl))
        assert nl2.has_net("esc[0]")
        assert nl2.has_net("y")
        assert any(g.name == "g_and" for g in nl2.gates)

    def test_connectivity_preserved(self):
        nl = _sample()
        nl2 = parse_verilog(write_verilog(nl))
        g = next(g for g in nl2.gates if g.name == "g_and")
        assert [nl2.net_names[i] for i in g.inputs] == ["a", "esc[0]"]
        assert nl2.net_names[g.output] == "y"

    def test_roundtrip_of_benchmark_system(self, facet_system):
        nl = facet_system.netlist
        nl2 = parse_verilog(write_verilog(nl))
        assert len(nl2.gates) == len(nl.gates)
        # behaviour: simulate a pattern through both and compare an output
        from repro.logic.simulator import CycleSimulator

        def run(netlist):
            sim = CycleSimulator(netlist, 4)
            for cyc in range(12):
                sim.drive_const(netlist.net_id("reset"), 1 if cyc == 0 else 0)
                sim.drive_const(netlist.net_id("start"), 1)
                for name in facet_system.rtl.dfg.inputs:
                    for i in range(4):
                        sim.drive(netlist.net_id(f"{name}[{i}]"), [1, 0, 1, 0])
                sim.settle()
                sim.latch()
            return [tuple(sim.sample(o)) for o in netlist.outputs]

        assert run(nl) == run(nl2)


class TestParserErrors:
    def test_unknown_cell(self):
        with pytest.raises(NetlistError, match="unknown gate"):
            parse_verilog("module m (a);\n input a;\n FROB u1(.Y(a));\nendmodule")

    def test_missing_ports(self):
        src = "module m (a, y);\n input a;\n output y;\n DFF u1(.D(a));\nendmodule"
        with pytest.raises(NetlistError, match="missing ports"):
            parse_verilog(src)

    def test_truncated_input(self):
        with pytest.raises(NetlistError):
            parse_verilog("module m (a")

    def test_comments_ignored(self):
        src = (
            "// line comment\nmodule m (a, y); /* block */\n"
            " input a;\n output y;\n buf g0(y, a);\nendmodule"
        )
        nl = parse_verilog(src)
        assert len(nl.gates) == 1


def _random_netlist_for_io(seed: int):
    import numpy as np

    from repro.netlist.builder import NetlistBuilder

    rng = np.random.default_rng(seed)
    b = NetlistBuilder(f"io{seed}")
    nets = [b.input(f"in{k}") for k in range(3)]
    for i in range(12):
        kind = rng.choice(
            ["and", "or", "nand", "nor", "xor", "xnor", "not", "buf",
             "mux", "dff", "dffe", "c0", "c1"]
        )
        pick = lambda: nets[int(rng.integers(len(nets)))]
        if kind in ("and", "or", "nand", "nor", "xor", "xnor"):
            op = getattr(b, f"{kind}_")
            nets.append(op([pick() for _ in range(int(rng.integers(2, 4)))]))
        elif kind == "not":
            nets.append(b.not_(pick()))
        elif kind == "buf":
            nets.append(b.buf_(pick()))
        elif kind == "mux":
            nets.append(b.mux2_(pick(), pick(), pick()))
        elif kind == "dff":
            nets.append(b.dff(pick()))
        elif kind == "dffe":
            nets.append(b.dffe(pick(), pick()))
        elif kind == "c0":
            nets.append(b.const0())
        else:
            nets.append(b.const1())
    b.output(nets[-1])
    b.output(nets[-2])
    return b.done()


class TestRandomRoundTrip:
    """Property: write/parse preserves structure for arbitrary netlists."""

    @pytest.mark.parametrize("seed", range(12))
    def test_verilog_roundtrip_random(self, seed):
        nl = _random_netlist_for_io(seed)
        nl2 = parse_verilog(write_verilog(nl))
        assert len(nl2.gates) == len(nl.gates)
        for g1, g2 in zip(nl.gates, nl2.gates):
            assert g1.gtype is g2.gtype
            assert [nl.net_names[i] for i in g1.inputs] == [
                nl2.net_names[i] for i in g2.inputs
            ]
            assert nl.net_names[g1.output] == nl2.net_names[g2.output]

    @pytest.mark.parametrize("seed", range(12))
    def test_bench_roundtrip_random(self, seed):
        from repro.netlist.bench import parse_bench, write_bench

        nl = _random_netlist_for_io(seed)
        nl2 = parse_bench(write_bench(nl))
        assert len(nl2.gates) == len(nl.gates)
        assert sorted(g.gtype.value for g in nl2.gates) == sorted(
            g.gtype.value for g in nl.gates
        )
