"""Unit tests for the gate library."""

import pytest

from repro.netlist.gates import (
    FIXED_ARITY,
    GateType,
    VARIADIC_TYPES,
    eval_gate_ints,
    is_constant,
    is_sequential,
    valid_arity,
)


class TestArity:
    def test_variadic_types_accept_two_or_more(self):
        for t in VARIADIC_TYPES:
            assert not valid_arity(t, 1)
            assert valid_arity(t, 2)
            assert valid_arity(t, 7)

    def test_fixed_arity_exact(self):
        for t, n in FIXED_ARITY.items():
            assert valid_arity(t, n)
            assert not valid_arity(t, n + 1)
            if n > 0:
                assert not valid_arity(t, n - 1)

    def test_every_type_classified(self):
        for t in GateType:
            assert t in VARIADIC_TYPES or t in FIXED_ARITY


class TestPredicates:
    def test_sequential(self):
        assert is_sequential(GateType.DFF)
        assert is_sequential(GateType.DFFE)
        assert not is_sequential(GateType.AND)

    def test_constant(self):
        assert is_constant(GateType.CONST0)
        assert is_constant(GateType.CONST1)
        assert not is_constant(GateType.BUF)


class TestEval:
    @pytest.mark.parametrize(
        "gtype,inputs,expected",
        [
            (GateType.AND, [1, 1], 1),
            (GateType.AND, [1, 0], 0),
            (GateType.AND, [1, 1, 1], 1),
            (GateType.OR, [0, 0], 0),
            (GateType.OR, [0, 1], 1),
            (GateType.NAND, [1, 1], 0),
            (GateType.NAND, [0, 1], 1),
            (GateType.NOR, [0, 0], 1),
            (GateType.NOR, [1, 0], 0),
            (GateType.XOR, [1, 0], 1),
            (GateType.XOR, [1, 1], 0),
            (GateType.XOR, [1, 1, 1], 1),
            (GateType.XNOR, [1, 0], 0),
            (GateType.XNOR, [1, 1], 1),
            (GateType.NOT, [0], 1),
            (GateType.NOT, [1], 0),
            (GateType.BUF, [1], 1),
            (GateType.MUX2, [0, 1, 0], 1),  # sel=0 -> a
            (GateType.MUX2, [1, 1, 0], 0),  # sel=1 -> b
            (GateType.CONST0, [], 0),
            (GateType.CONST1, [], 1),
        ],
    )
    def test_truth_tables(self, gtype, inputs, expected):
        assert eval_gate_ints(gtype, inputs) == expected

    def test_sequential_not_evaluable(self):
        with pytest.raises(ValueError):
            eval_gate_ints(GateType.DFF, [1])
