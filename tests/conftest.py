"""Shared fixtures: built systems and pipeline results are expensive, so
they are session-scoped and reused across the test modules."""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.designs.catalog import build_rtl
from repro.hls.system import build_system


@pytest.fixture(scope="session")
def diffeq_system():
    return build_system(build_rtl("diffeq"))


@pytest.fixture(scope="session")
def facet_system():
    return build_system(build_rtl("facet"))


@pytest.fixture(scope="session")
def poly_system():
    return build_system(build_rtl("poly"))


@pytest.fixture(scope="session")
def facet_pipeline(facet_system):
    return run_pipeline(facet_system, PipelineConfig(n_patterns=128))


@pytest.fixture(scope="session")
def diffeq_pipeline(diffeq_system):
    return run_pipeline(diffeq_system, PipelineConfig(n_patterns=128))
