"""Shared fixtures: built systems and pipeline results are expensive, so
they are session-scoped and reused across the test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, controller_fault_universe, run_pipeline
from repro.designs.catalog import build_rtl
from repro.hls.system import NormalModeStimulus, build_system, hold_masks
from repro.tpg.tpgr import TPGR


@pytest.fixture(scope="session")
def diffeq_system():
    return build_system(build_rtl("diffeq"))


@pytest.fixture(scope="session")
def facet_system():
    return build_system(build_rtl("facet"))


@pytest.fixture(scope="session")
def poly_system():
    return build_system(build_rtl("poly"))


@pytest.fixture(scope="session")
def facet_pipeline(facet_system):
    return run_pipeline(facet_system, PipelineConfig(n_patterns=128))


@pytest.fixture(scope="session")
def diffeq_pipeline(diffeq_system):
    return run_pipeline(diffeq_system, PipelineConfig(n_patterns=128))


@pytest.fixture(scope="session")
def facet_faultsim_setup(facet_system):
    """A complete facet fault-simulation campaign setup (128 patterns)."""
    system = facet_system
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=0xACE1)
    data = {k: np.asarray(v) for k, v in tpgr.generate(128).items()}
    stim = NormalModeStimulus(system, data, system.cycles_for(3))
    masks = hold_masks(system, stim)
    observe = [n for bus in system.output_buses.values() for n in bus]
    faults = [system.to_system_fault(s) for s in controller_fault_universe(system)]
    return system, stim, masks, observe, faults
