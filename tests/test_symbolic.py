"""Unit tests for the symbolic value-numbering replay oracle."""

import pytest

from repro.core.effects import make_scenarios, golden_control_trace
from repro.core.symbolic import ValueTable, compare_replays, replay
from repro.hls.dfg import OpKind


class TestValueTable:
    def test_hash_consing(self):
        t = ValueTable()
        assert t.input("x") == t.input("x")
        assert t.input("x") != t.input("y")
        assert t.const("c") != t.input("c")

    def test_op_identity(self):
        t = ValueTable()
        a, b = t.input("a"), t.input("b")
        assert t.op(OpKind.ADD, a, b) == t.op(OpKind.ADD, a, b)

    def test_commutative_canonicalisation(self):
        t = ValueTable()
        a, b = t.input("a"), t.input("b")
        assert t.op(OpKind.MUL, a, b) == t.op(OpKind.MUL, b, a)
        assert t.op(OpKind.ADD, a, b) == t.op(OpKind.ADD, b, a)

    def test_noncommutative_order_matters(self):
        t = ValueTable()
        a, b = t.input("a"), t.input("b")
        assert t.op(OpKind.SUB, a, b) != t.op(OpKind.SUB, b, a)
        assert t.op(OpKind.LT, a, b) != t.op(OpKind.LT, b, a)

    def test_garbage_always_fresh(self):
        t = ValueTable()
        assert t.garbage() != t.garbage()

    def test_uninit_keyed_by_register(self):
        t = ValueTable()
        assert t.uninit("REG1") == t.uninit("REG1")
        assert t.uninit("REG1") != t.uninit("REG2")


class TestReplay:
    def test_golden_replay_is_self_equivalent(self, diffeq_system):
        rtl = diffeq_system.rtl
        for sc in make_scenarios(rtl):
            trace = golden_control_trace(diffeq_system.controller, sc)
            table = ValueTable()
            g1 = replay(rtl, trace, table)
            g2 = replay(rtl, trace, table)
            cmp = compare_replays(g1, g2)
            assert cmp.equivalent

    def test_golden_outputs_are_not_garbage(self, diffeq_system):
        rtl = diffeq_system.rtl
        sc = make_scenarios(rtl)[0]
        trace = golden_control_trace(diffeq_system.controller, sc)
        table = ValueTable()
        result = replay(rtl, trace, table)
        assert result.output_samples
        assert not result.saw_unknown_control
        # Output at HOLD must be a composed op value, not uninit garbage.
        uninit_ids = {table.uninit(r.name) for r in rtl.registers}
        for _, outs in result.output_samples:
            for vid in outs.values():
                assert vid not in uninit_ids

    def test_cond_decisions_recorded_per_iteration(self, diffeq_system):
        rtl = diffeq_system.rtl
        sc = make_scenarios(rtl)[2]  # 3 iterations
        trace = golden_control_trace(diffeq_system.controller, sc)
        result = replay(rtl, trace, ValueTable())
        assert len(result.cond_decisions) == 3

    def test_skipped_input_load_changes_outputs(self, diffeq_system):
        """Forcing a load line low in the last RESET cycle leaves the
        register at its uninitialised value -> outputs must differ."""
        rtl = diffeq_system.rtl
        sc = make_scenarios(rtl)[0]
        trace = golden_control_trace(diffeq_system.controller, sc)
        table = ValueTable()
        golden = replay(rtl, trace, table)
        import copy

        broken = copy.deepcopy(trace)
        y_line = rtl.line_of_register(rtl.value_reg["y"])
        for cycle in range(sc.first_body_cycle):
            broken.lines[cycle][y_line] = 0
        faulty = replay(rtl, broken, table)
        cmp = compare_replays(golden, faulty)
        assert not cmp.equivalent

    def test_extra_load_in_hold_is_equivalent(self, diffeq_system):
        """An extra load of a non-output register during HOLD does not
        change any observed output (the classic SFR case)."""
        rtl = diffeq_system.rtl
        sc = make_scenarios(rtl)[0]
        trace = golden_control_trace(diffeq_system.controller, sc)
        table = ValueTable()
        golden = replay(rtl, trace, table)
        import copy

        out_regs = set(rtl.outputs.values())
        victim = next(
            r for r in rtl.registers
            if r.name not in out_regs and len(r.input_mux.sources) == 1
        )
        broken = copy.deepcopy(trace)
        for cycle in range(sc.n_cycles):
            if sc.golden_state(cycle) == "HOLD":
                broken.lines[cycle][victim.load_line] = 0 if False else 1
        faulty = replay(rtl, broken, table)
        assert compare_replays(golden, faulty).equivalent

    def test_x_load_of_changing_value_flags_unknown(self, diffeq_system):
        rtl = diffeq_system.rtl
        sc = make_scenarios(rtl)[0]
        trace = golden_control_trace(diffeq_system.controller, sc)
        import copy

        broken = copy.deepcopy(trace)
        # A temp register fed by a single FU: the incoming op value can
        # never equal the register's current (uninitialised) content, so an
        # X load must go conservative.
        temp = rtl.value_reg["s1"]
        line = rtl.line_of_register(temp)
        broken.lines[sc.first_body_cycle][line] = -1
        table = ValueTable()
        faulty = replay(rtl, broken, table)
        assert faulty.saw_unknown_control
