"""End-to-end HLS property: random behaviours compile to correct hardware.

Generates random straight-line data-flow graphs, pushes each through the
complete flow (schedule -> bind -> controller synthesis -> gate-level
elaboration -> flattening) and checks the resulting netlist computes the
reference semantics for random data.  This is the single highest-leverage
test in the suite: it exercises every layer at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hls.bind import bind_design
from repro.hls.dfg import DFG, OpKind
from repro.hls.schedule import list_schedule
from repro.hls.system import NormalModeStimulus, build_system
from repro.logic.simulator import CycleSimulator

_KINDS = [OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND, OpKind.OR, OpKind.XOR]


def _random_dfg(seed: int, width: int = 4) -> DFG:
    rng = np.random.default_rng(seed)
    n_inputs = int(rng.integers(2, 5))
    n_ops = int(rng.integers(3, 9))
    d = DFG(name=f"rnd{seed}", width=width,
            inputs=[f"i{k}" for k in range(n_inputs)])
    if rng.integers(2):
        d.constants["k0"] = int(rng.integers(1 << width))
    values = list(d.inputs) + list(d.constants)
    produced = []
    for i in range(n_ops):
        kind = _KINDS[int(rng.integers(len(_KINDS)))]
        a = values[int(rng.integers(len(values)))]
        b = values[int(rng.integers(len(values)))]
        name = f"t{i}"
        d.op(name, kind, a, b)
        values.append(name)
        produced.append(name)
    # Fold every otherwise-unused result into the output so nothing is dead.
    used = {op.a for op in d.ops} | {op.b for op in d.ops}
    dangling = [v for v in produced if v not in used]
    acc = dangling[0]
    for i, v in enumerate(dangling[1:]):
        acc = d.op(f"fold{i}", OpKind.XOR, acc, v)
    d.outputs = {"out": acc}
    d.validate()
    return d


def _random_resources(seed: int) -> dict:
    rng = np.random.default_rng(seed + 999)
    return {k: int(rng.integers(1, 3)) for k in _KINDS}


@given(st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_random_behaviour_compiles_correctly(seed):
    dfg = _random_dfg(seed)
    schedule = list_schedule(dfg, resources=_random_resources(seed))
    rtl = bind_design(dfg, schedule, share_load_lines=bool(seed % 2))
    system = build_system(rtl)

    rng = np.random.default_rng(seed + 1)
    P = 24
    data = {k: rng.integers(0, 16, P) for k in dfg.inputs}
    stim = NormalModeStimulus(system, data, system.cycles_for(1))
    sim = CycleSimulator(system.netlist, P)
    for c in range(stim.n_cycles):
        stim.apply(sim, c)
        sim.settle()
        sim.latch()
    got = sim.sample_bus(system.output_buses["out"])
    for p in range(P):
        outs, _ = dfg.execute({k: int(v[p]) for k, v in data.items()})
        assert got[p] == outs["out"], (seed, p)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_random_behaviour_structural_invariants(seed):
    """Structural invariants hold for arbitrary behaviours."""
    dfg = _random_dfg(seed)
    schedule = list_schedule(dfg, resources=_random_resources(seed))
    rtl = bind_design(dfg, schedule)
    # Every op's operands are readable when it executes: the producing
    # register is loaded strictly before (or the value is an input/const).
    for b in rtl.bindings.values():
        op = rtl.dfg.op_by_name(b.op)
        for operand in (op.a, op.b):
            if operand in rtl.dfg.constants or operand in rtl.dfg.inputs:
                continue
            assert rtl.schedule.steps[operand] < b.step
    # Two values sharing a register never have overlapping lifetimes
    # (checked indirectly: the control table never double-loads a register
    # for two different FU sources in the same state).
    for state in rtl.states:
        for reg in rtl.registers:
            if rtl.control.loads[state][reg.load_line] != 1:
                continue
            writers = [
                bb
                for bb in rtl.bindings.values()
                if bb.dest_register == reg.name
                and f"CS{bb.step}" == state
            ]
            assert len(writers) <= 1


@given(st.integers(0, 5_000), st.integers(2, 4))
@settings(max_examples=6, deadline=None)
def test_random_behaviour_wider_datapaths(seed, half_width):
    width = 2 * half_width
    dfg = _random_dfg(seed, width=width)
    schedule = list_schedule(dfg, resources=_random_resources(seed))
    rtl = bind_design(dfg, schedule)
    system = build_system(rtl)
    rng = np.random.default_rng(seed + 2)
    P = 8
    data = {k: rng.integers(0, 1 << width, P) for k in dfg.inputs}
    stim = NormalModeStimulus(system, data, system.cycles_for(1))
    sim = CycleSimulator(system.netlist, P)
    for c in range(stim.n_cycles):
        stim.apply(sim, c)
        sim.settle()
        sim.latch()
    got = sim.sample_bus(system.output_buses["out"])
    for p in range(P):
        outs, _ = dfg.execute({k: int(v[p]) for k, v in data.items()})
        assert got[p] == outs["out"]
