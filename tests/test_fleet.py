"""Tests for the fleet calibration layer (:mod:`repro.fleet`).

Covers the three layers and their contracts: the activity artifact (the
per-fault integer counters and their store round trip), the population
kernel (sigma=0 reproduces the scalar grading verdicts; ROC monotone;
deterministic JSON; engine equivalence), and the integration surface
(calibrate end-to-end with warm-store zero-simulation replay, the serve
endpoint's validation boundary, and the CLI subcommand).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.core.checkpoint import fault_key
from repro.core.errors import CampaignError
from repro.core.grading import grade_sfr_faults, power_detected
from repro.fleet import (
    FleetConfig,
    FleetResult,
    activity_campaign,
    activity_matrix,
    calibrate_fleet,
    calibrate_report_dict,
    choose_threshold,
    recovered_power_uw,
    run_population,
)
from repro.power.estimator import PowerEstimator
from repro.power.montecarlo import DATAPATH_TAG, ActivityTrace
from repro.store.cache import CampaignStore
from repro.store.server import make_server

#: small-but-real Monte-Carlo knobs shared by every campaign in this file
MC = {"seed": 11, "batch_patterns": 64, "max_batches": 3}


@pytest.fixture(scope="module")
def facet_estimator(facet_system):
    return PowerEstimator(facet_system.netlist)


@pytest.fixture(scope="module")
def facet_activity(facet_system, facet_pipeline, facet_estimator):
    return activity_campaign(
        facet_system, facet_pipeline, estimator=facet_estimator, **MC
    )


@pytest.fixture(scope="module")
def facet_seeded_grading(facet_system, facet_pipeline, facet_estimator, facet_activity):
    return grade_sfr_faults(
        facet_system,
        facet_pipeline,
        estimator=facet_estimator,
        threshold=0.05,
        seed_results=facet_activity.grading_seed_results(),
        **MC,
    )


# ------------------------------------------------------------- activity
class TestActivityTrace:
    def test_json_round_trip(self):
        trace = ActivityTrace(
            toggles=np.arange(6, dtype=np.int64).reshape(2, 3),
            load_events=np.array([[7], [9]], dtype=np.int64),
            cycles=4,
            patterns=8,
        )
        back = ActivityTrace.from_json_dict(trace.to_json_dict())
        np.testing.assert_array_equal(back.toggles, trace.toggles)
        np.testing.assert_array_equal(back.load_events, trace.load_events)
        assert back.toggles.dtype == np.int64
        assert (back.cycles, back.patterns) == (4, 8)

    def test_round_trip_with_zero_counter_rows(self):
        # A design without DFFEs serializes (batches, 0) arrays, which JSON
        # flattens to empty lists -- the reshape guard must restore them.
        trace = ActivityTrace(
            toggles=np.ones((2, 3), dtype=np.int64),
            load_events=np.empty((2, 0), dtype=np.int64),
            cycles=4,
            patterns=8,
        )
        back = ActivityTrace.from_json_dict(trace.to_json_dict())
        assert back.load_events.shape == (2, 0)

    def test_mean_activity_normalizes_once(self):
        trace = ActivityTrace(
            toggles=np.array([[8, 0], [8, 16]], dtype=np.int64),
            load_events=np.array([[4], [12]], dtype=np.int64),
            cycles=2,
            patterns=4,
        )
        toggles, loads = trace.mean_activity()
        np.testing.assert_allclose(toggles, [1.0, 1.0])
        np.testing.assert_allclose(loads, [1.0])


class TestActivityCampaign:
    def test_campaign_covers_every_sfr_fault(self, facet_activity, facet_pipeline):
        keys = [fault_key(r.system_site) for r in facet_pipeline.sfr_records]
        assert facet_activity.fault_keys == keys
        assert not facet_activity.store_hit
        assert facet_activity.campaign.completed == len(keys)
        assert facet_activity.baseline.activity is not None
        for key in keys:
            assert facet_activity.by_key[key].activity is not None

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_parallel_campaign_bit_identical(
        self, facet_system, facet_pipeline, facet_estimator, facet_activity, n_jobs
    ):
        parallel = activity_campaign(
            facet_system,
            facet_pipeline,
            estimator=facet_estimator,
            n_jobs=n_jobs,
            **MC,
        )
        assert parallel.baseline.power_uw == facet_activity.baseline.power_uw
        for key in facet_activity.fault_keys:
            a, b = facet_activity.by_key[key], parallel.by_key[key]
            assert a.power_uw == b.power_uw
            np.testing.assert_array_equal(a.activity.toggles, b.activity.toggles)
            np.testing.assert_array_equal(
                a.activity.load_events, b.activity.load_events
            )

    def test_store_round_trip_replays_without_simulation(
        self, facet_system, facet_pipeline, facet_estimator, tmp_path
    ):
        store = CampaignStore(tmp_path / "store")
        cold = activity_campaign(
            facet_system, facet_pipeline, estimator=facet_estimator, store=store, **MC
        )
        assert not cold.store_hit and cold.campaign.completed > 0
        warm = activity_campaign(
            facet_system, facet_pipeline, estimator=facet_estimator, store=store, **MC
        )
        assert warm.store_hit
        assert warm.campaign.completed == 0
        assert warm.campaign.resumed == len(cold.fault_keys)
        for key in cold.fault_keys:
            assert warm.by_key[key].power_uw == cold.by_key[key].power_uw
            np.testing.assert_array_equal(
                warm.by_key[key].activity.toggles, cold.by_key[key].activity.toggles
            )

    def test_seeded_grading_is_bit_identical_to_plain(
        self, facet_system, facet_pipeline, facet_estimator, facet_seeded_grading
    ):
        plain = grade_sfr_faults(
            facet_system,
            facet_pipeline,
            estimator=facet_estimator,
            threshold=0.05,
            **MC,
        )
        seeded = facet_seeded_grading
        assert seeded.campaign.resumed == len(plain.graded)
        assert seeded.campaign.completed == 0
        assert seeded.fault_free_uw == plain.fault_free_uw
        assert [g.power_uw for g in seeded.graded] == [
            g.power_uw for g in plain.graded
        ]
        assert [g.pct_change for g in seeded.graded] == [
            g.pct_change for g in plain.graded
        ]


# ------------------------------------------------------------ population
class TestFleetConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"instances": 0},
            {"sigma_cap": -0.1},
            {"sigma_meas": 1.0},
            {"yield_budget": 1.5},
            {"thresholds": (0.1, 0.05)},
            {"thresholds": (0.05, 0.05)},
            {"thresholds": (0.0, 0.05)},
            {"thresholds": ()},
            {"engine": "gpu"},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(CampaignError):
            FleetConfig(**kwargs).validate()

    def test_default_config_is_valid(self):
        FleetConfig().validate()


def test_choose_threshold_walks_from_tight_end():
    thresholds = [0.01, 0.05, 0.10]
    chosen = choose_threshold(
        thresholds, [50, 10, 0], [[0], [3], [9]], instances=100, yield_budget=0.10
    )
    assert chosen == {
        "threshold": 0.05,
        "yield_loss": 0.10,
        "escape_rate": 0.03,
        "met_budget": True,
    }
    # Budget unreachable: loosest threshold, flagged.
    chosen = choose_threshold(
        thresholds, [50, 40, 30], [[0], [3], [9]], instances=100, yield_budget=0.01
    )
    assert chosen["threshold"] == 0.10
    assert not chosen["met_budget"]


class TestPopulationKernel:
    @pytest.fixture(scope="class")
    def matrices(self, facet_estimator, facet_activity):
        decomp = facet_estimator.cap_decomposition(tag_prefix=DATAPATH_TAG)
        A = activity_matrix(facet_activity, facet_estimator)
        return decomp, A

    def _run(self, facet_estimator, facet_activity, matrices, grading, **overrides):
        decomp, A = matrices
        config = FleetConfig(instances=overrides.pop("instances", 4000), **overrides)
        return run_population(
            facet_estimator,
            decomp,
            A,
            facet_activity.fault_keys,
            config,
            p_ref_uw=grading.fault_free_uw,
            design="facet",
        )

    def test_sigma_zero_reproduces_scalar_grading(
        self, facet_estimator, facet_activity, matrices, facet_seeded_grading
    ):
        grading = facet_seeded_grading
        result = self._run(
            facet_estimator,
            facet_activity,
            matrices,
            grading,
            instances=100,
            sigma_cap=0.0,
            sigma_leak=0.0,
            sigma_meas=0.0,
        )
        # Column 0 is the fault-free machine, then campaign fault-key
        # order (grading.graded is pct-sorted); the matmul agrees with
        # the scalar Monte-Carlo mean to float-summation-order precision.
        by_key = {fault_key(g.record.system_site): g for g in grading.graded}
        expected = [grading.fault_free_uw] + [
            by_key[k].power_uw for k in facet_activity.fault_keys
        ]
        np.testing.assert_allclose(result.nominal_uw, expected, rtol=1e-9)
        # Every instance is the nominal chip: zero yield loss everywhere,
        # and per-threshold escapes match the scalar detection verdicts.
        assert result.yield_fail == [0] * len(result.thresholds)
        for i, t in enumerate(result.thresholds):
            undetected = sum(
                1 for g in grading.graded if not power_detected(g.pct_change, t)
            )
            assert sum(result.escapes[i]) == 100 * undetected

    def test_roc_is_monotone_and_chooser_consistent(
        self, facet_estimator, facet_activity, matrices, facet_seeded_grading
    ):
        result = self._run(
            facet_estimator, facet_activity, matrices, facet_seeded_grading
        )
        roc = result.roc()
        losses = [r["yield_loss"] for r in roc]
        escapes = [r["escape_rate"] for r in roc]
        assert losses == sorted(losses, reverse=True)
        assert escapes == sorted(escapes)
        chosen = result.chosen
        assert chosen["threshold"] in result.thresholds
        if chosen["met_budget"]:
            assert chosen["yield_loss"] <= result.params["yield_budget"]

    def test_engines_agree_on_counts(
        self, facet_estimator, facet_activity, matrices, facet_seeded_grading
    ):
        rowwise = self._run(
            facet_estimator, facet_activity, matrices, facet_seeded_grading
        )
        factored = self._run(
            facet_estimator,
            facet_activity,
            matrices,
            facet_seeded_grading,
            engine="factored",
        )
        assert factored.yield_fail == rowwise.yield_fail
        assert factored.escapes == rowwise.escapes
        assert factored.chosen == rowwise.chosen

    def test_json_is_deterministic_and_round_trips(
        self, facet_estimator, facet_activity, matrices, facet_seeded_grading
    ):
        a = self._run(facet_estimator, facet_activity, matrices, facet_seeded_grading)
        b = self._run(facet_estimator, facet_activity, matrices, facet_seeded_grading)
        dump = lambda r: json.dumps(r.to_json_dict(), sort_keys=True)  # noqa: E731
        assert dump(a) == dump(b)
        back = FleetResult.from_json_dict(a.to_json_dict())
        assert back.to_json_dict() == a.to_json_dict()
        assert back == FleetResult.from_json_dict(b.to_json_dict())


# ------------------------------------------------------------ integration
def test_calibrate_end_to_end_with_warm_store(
    facet_system, facet_pipeline, facet_estimator, tmp_path
):
    store = CampaignStore(tmp_path / "store")
    config = FleetConfig(instances=2000)
    cold_fleet, cold_campaign, cold_grading = calibrate_fleet(
        facet_system,
        facet_pipeline,
        config,
        estimator=facet_estimator,
        store=store,
        **MC,
    )
    assert not cold_campaign.store_hit
    assert cold_fleet.instances == 2000

    warm_fleet, warm_campaign, warm_grading = calibrate_fleet(
        facet_system,
        facet_pipeline,
        config,
        estimator=facet_estimator,
        store=store,
        **MC,
    )
    # Warm replay: zero simulation anywhere, and the fleet ROC comes back
    # byte-identical from the store (the matmul is skipped entirely).
    assert warm_campaign.store_hit
    assert warm_campaign.campaign.completed == 0
    assert warm_grading.campaign.completed == 0
    assert warm_fleet.to_json_dict() == cold_fleet.to_json_dict()
    assert warm_fleet.matmul_s == 0.0

    report = calibrate_report_dict(warm_fleet)
    assert report["command"] == "calibrate"
    assert report["design"] == "facet"
    assert len(report["roc"]) == len(config.thresholds)


def test_cli_calibrate_cold_then_warm(tmp_path, capsys):
    args = [
        "--patterns",
        "64",
        "--store-dir",
        str(tmp_path / "store"),
        "--result-json",
        str(tmp_path / "result.json"),
        "calibrate",
        "facet",
        "--instances",
        "2000",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Fleet ROC" in out
    assert "chosen threshold" in out
    result = json.loads((tmp_path / "result.json").read_text())
    assert result["command"] == "calibrate"
    assert result["fleet"]["params"]["instances"] == 2000

    assert main(args) == 0
    out = capsys.readouterr().out
    assert "0 faults computed" in out
    warm = json.loads((tmp_path / "result.json").read_text())
    assert warm == result


# -------------------------------------------------------- serve endpoint
def _fetch(url: str):
    req = urllib.request.Request(url)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture()
def fleet_server(tmp_path):
    started = []

    def start(compute_calibrate=None, **knobs):
        store = CampaignStore(tmp_path / "store")
        server = make_server(
            "127.0.0.1",
            0,
            store,
            compute_calibrate=compute_calibrate,
            designs=("facet", "diffeq", "poly"),
            **knobs,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        return f"http://127.0.0.1:{server.server_address[1]}", server.service

    yield start
    for server, thread in started:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestCalibrateEndpoint:
    def test_params_parsed_and_forwarded(self, fleet_server):
        seen = []

        def compute_calibrate(design, params):
            seen.append((design, params))
            return {"command": "calibrate", "design": design, "params": params}

        base, _svc = fleet_server(compute_calibrate=compute_calibrate)
        status, body = _fetch(
            f"{base}/campaigns/facet/calibrate"
            "?instances=5000&sigma_cap=0.1&engine=factored"
        )
        assert status == 200
        assert body["design"] == "facet"
        assert seen == [
            ("facet", {"instances": 5000, "sigma_cap": 0.1, "engine": "factored"})
        ]

    def test_identical_requests_coalesce_to_one_compute(self, fleet_server):
        calls = []

        def compute_calibrate(design, params):
            calls.append(design)
            return {"design": design, "params": params}

        base, _svc = fleet_server(compute_calibrate=compute_calibrate)
        for _ in range(2):
            status, _ = _fetch(f"{base}/campaigns/facet/calibrate?instances=5000")
            assert status == 200
        # Second hit rides the per-configuration job key: admitted jobs
        # are keyed by (design, params), so the finished holder is reused
        # only while in flight -- two sequential hits both compute.
        assert calls == ["facet", "facet"]

    @pytest.mark.parametrize(
        "query",
        [
            "instances=zero",
            "instances=0",
            "sigma_cap=1.5",
            "sigma_cap=lots",
            "seed=-1",
            "engine=gpu",
            "threshold=0.05",  # campaign knob, not a fleet knob
            "bogus=1",
        ],
    )
    def test_bad_params_rejected_at_http_boundary(self, fleet_server, query):
        computed = []

        def compute_calibrate(design, params):
            computed.append(design)
            return {}

        base, _svc = fleet_server(compute_calibrate=compute_calibrate)
        status, body = _fetch(f"{base}/campaigns/facet/calibrate?{query}")
        assert status == 400
        assert body["error"] == "InputValidationError"
        assert computed == []

    def test_missing_hook_yields_404(self, fleet_server):
        base, _svc = fleet_server(compute_calibrate=None)
        status, body = _fetch(f"{base}/campaigns/facet/calibrate")
        assert status == 404
        assert body["error"] == "NotCached"
