"""Unit tests for the data-flow graph model."""

import pytest

from repro.hls.dfg import DFG, DFGError, OpKind


def _straight():
    d = DFG("t", width=4, inputs=["a", "b"], constants={"two": 2})
    d.op("s", OpKind.ADD, "a", "b")
    d.op("p", OpKind.MUL, "s", "two")
    d.outputs = {"o": "p"}
    return d


def _looped():
    d = DFG("l", width=4, inputs=["x", "lim"])
    d.op("x1", OpKind.ADD, "x", "lim")
    d.op("c", OpKind.LT, "x1", "lim")
    d.outputs = {"o": "x"}
    d.loop_condition = "c"
    d.loop_updates = {"x": "x1"}
    return d


class TestValidation:
    def test_valid(self):
        _straight().validate()
        _looped().validate()

    def test_duplicate_names_rejected(self):
        d = DFG("t", 4, inputs=["a"])
        d.op("a", OpKind.ADD, "a", "a")  # collides with input 'a'
        with pytest.raises(DFGError, match="unique"):
            d.validate()

    def test_unknown_operand(self):
        d = DFG("t", 4, inputs=["a"])
        d.op("s", OpKind.ADD, "a", "zzz")
        with pytest.raises(DFGError, match="unknown value"):
            d.validate()

    def test_forward_reference_rejected(self):
        d = DFG("t", 4, inputs=["a"])
        d.op("s", OpKind.ADD, "a", "t2")
        d.op("t2", OpKind.ADD, "a", "a")
        with pytest.raises(DFGError, match="before definition"):
            d.validate()

    def test_loop_var_must_be_input(self):
        d = _straight()
        d.loop_condition = "s"
        d.loop_updates = {"s": "p"}
        with pytest.raises(DFGError, match="primary input"):
            d.validate()

    def test_loop_without_updates_rejected(self):
        d = _straight()
        d.loop_condition = "s"
        with pytest.raises(DFGError, match="loop-carried"):
            d.validate()

    def test_constant_range_checked(self):
        d = DFG("t", 4, inputs=["a"], constants={"big": 99})
        d.op("s", OpKind.ADD, "a", "big")
        d.outputs = {"o": "s"}
        with pytest.raises(DFGError, match="does not fit"):
            d.validate()

    def test_unknown_output_value(self):
        d = _straight()
        d.outputs = {"o": "nope"}
        with pytest.raises(DFGError, match="unknown value"):
            d.validate()


class TestSemantics:
    def test_eval_once(self):
        vals = _straight().eval_once({"a": 3, "b": 4})
        assert vals["s"] == 7
        assert vals["p"] == 14

    def test_eval_wraps_modulo_width(self):
        vals = _straight().eval_once({"a": 15, "b": 15})
        assert vals["s"] == 14  # (15+15) & 15

    def test_all_op_kinds(self):
        d = DFG("ops", 4, inputs=["a", "b"])
        for kind in OpKind:
            d.op(f"r{kind.name}", kind, "a", "b")
        vals = d.eval_once({"a": 5, "b": 3})
        assert vals["rADD"] == 8
        assert vals["rSUB"] == 2
        assert vals["rMUL"] == 15
        assert vals["rLT"] == 0
        assert vals["rAND"] == 1
        assert vals["rOR"] == 7
        assert vals["rXOR"] == 6

    def test_execute_straight_line(self):
        outs, iterations = _straight().execute({"a": 1, "b": 2})
        assert outs == {"o": 6}
        assert iterations == 1

    def test_execute_loop_counts_iterations(self):
        d = _looped()
        # x=0, lim=4: x1 = x+4 each pass; 4 < 4 fails after first pass.
        outs, iterations = d.execute({"x": 0, "lim": 4})
        assert iterations == 1
        assert outs == {"o": 4}  # loop var register holds post-update value

    def test_execute_iteration_cap(self):
        d = _looped()
        # lim=0 -> x1 = x, condition x1 < 0 is always false... choose data
        # that loops: x=0, lim=15 -> x1 = 15, 15<15 false. Use lim=8, x=0:
        # x1=8, 8<8 false. Construct infinite loop: lim=0 -> c = x1<0 false.
        # For a guaranteed cap test use max_iterations=1 with looping data.
        outs, iterations = d.execute({"x": 0, "lim": 1}, max_iterations=3)
        assert iterations <= 3

    def test_readers_of(self):
        d = _straight()
        assert [o.name for o in d.readers_of("s")] == ["p"]
        assert [o.name for o in d.readers_of("a")] == ["s"]

    def test_loop_vars(self):
        assert _looped().loop_vars() == ["x"]
        assert _straight().loop_vars() == []
