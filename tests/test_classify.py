"""Tests for the Section-3 classifier: labels and fault categories."""

import pytest

from repro.core.classify import Classifier, EffectLabel, NON_DISRUPTIVE_LABELS
from repro.core.pipeline import controller_fault_universe
from repro.logic.faults import FaultSite


@pytest.fixture(scope="module")
def classifier(diffeq_system):
    return Classifier(diffeq_system.rtl, diffeq_system.controller)


@pytest.fixture(scope="module")
def classifications(diffeq_system, classifier):
    universe = controller_fault_universe(diffeq_system)
    return [classifier.classify(site) for site in universe]


class TestCategories:
    def test_every_fault_classified(self, classifications):
        assert all(c.category in ("CFR", "SFR", "SFI") for c in classifications)

    def test_cfr_faults_have_no_effects(self, classifications):
        for c in classifications:
            if c.category == "CFR":
                assert c.effects == []

    def test_non_cfr_faults_have_effects(self, classifications):
        for c in classifications:
            if c.category != "CFR":
                assert c.effects

    def test_sfr_faults_have_reasons(self, classifications):
        for c in classifications:
            if c.category == "SFR":
                assert "match" in c.reason

    def test_all_three_categories_present(self, classifications):
        cats = {c.category for c in classifications}
        assert cats == {"CFR", "SFR", "SFI"}


class TestLabelConsistency:
    def test_sfr_faults_only_carry_nondisruptive_select_and_load_labels(
        self, classifications
    ):
        """The taxonomy and the oracle must broadly agree: an SFR verdict
        with a LOAD_SKIPPED label is legal only when the skipped load is
        recovered (RESET reload); disruptive labels should be rare."""
        for c in classifications:
            if c.category != "SFR":
                continue
            for e in c.effects:
                # The oracle is authoritative; a disruptive label on an SFR
                # fault may only occur for skipped loads that the analysis
                # cannot see are recovered, never for garbage extra loads.
                assert e.label is not EffectLabel.UNKNOWN_CONTROL

    def test_sfi_faults_have_a_disruptive_explanation_or_flow_change(
        self, classifications
    ):
        for c in classifications:
            if c.category != "SFI":
                continue
            has_disruptive = any(e.label not in NON_DISRUPTIVE_LABELS for e in c.effects)
            assert has_disruptive or "condition" in c.reason or "output" in c.reason

    def test_select_only_property(self, classifications):
        for c in classifications:
            if c.select_only:
                assert all(e.effect.line.startswith("MS") for e in c.effects)
                assert not c.affects_load_line


class TestEffectSummaries:
    def test_summaries_deduplicate(self, classifications):
        for c in classifications:
            summary = c.effect_summary()
            assert len(summary) == len(set(summary))

    def test_shared_line_expands_register_names(self, facet_system):
        from repro.core.classify import Classifier as C

        clf = C(facet_system.rtl, facet_system.controller)
        universe = controller_fault_universe(facet_system)
        # Find a fault producing extra loads on a shared line.
        for site in universe:
            c = clf.classify(site)
            load_effects = [e for e in c.effects if e.effect.line.startswith("LD")]
            if load_effects and any(e.register for e in load_effects):
                line = load_effects[0].effect.line
                regs = {e.register for e in load_effects if e.effect.line == line}
                expected = set(facet_system.rtl.regs_on_line[line])
                assert regs <= expected
                return
        pytest.fail("no load-line fault found on facet")


class TestOracleSoundness:
    def test_sfr_oracle_agrees_with_gate_level(self, diffeq_system, classifications):
        """Every analytically-SFR fault must be *undetectable* by a
        gate-level random test of the integrated system (sampled at
        fault-free HOLD times) -- the paper's core claim."""
        import numpy as np

        from repro.hls.system import NormalModeStimulus, hold_masks
        from repro.logic.faultsim import Verdict, fault_simulate
        from repro.core.pipeline import controller_fault_universe

        universe = controller_fault_universe(diffeq_system)
        sfr_sites = [
            diffeq_system.to_system_fault(site)
            for site, c in zip(universe, classifications)
            if c.category == "SFR"
        ]
        rng = np.random.default_rng(99)
        data = {
            k: rng.integers(0, 16, 64) for k in diffeq_system.rtl.dfg.inputs
        }
        stim = NormalModeStimulus(diffeq_system, data, diffeq_system.cycles_for(5))
        masks = hold_masks(diffeq_system, stim)
        observe = [n for bus in diffeq_system.output_buses.values() for n in bus]
        res = fault_simulate(
            diffeq_system.netlist, sfr_sites, stim, observe=observe, valid_masks=masks
        )
        detected = [f for f, v in res.verdicts.items() if v is Verdict.DETECTED]
        assert detected == []
