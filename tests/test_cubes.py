"""Unit + property tests for the cube algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.cubes import (
    Cube,
    cover_eval,
    cover_minterms,
    irredundant,
    remove_contained,
    try_merge,
)

N = 4
cubes = st.builds(
    lambda care, sub: Cube(sub & care, care),
    st.integers(0, (1 << N) - 1),
    st.integers(0, (1 << N) - 1),
)


class TestBasics:
    def test_from_to_string_roundtrip(self):
        for s in ["1-0-", "----", "0000", "111-"]:
            assert Cube.from_string(s).to_string(4) == s

    def test_bad_character_rejected(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_value_outside_care_rejected(self):
        with pytest.raises(ValueError):
            Cube(value=0b10, care=0b01)

    def test_contains_minterm(self):
        c = Cube.from_string("1-0")
        assert c.contains_minterm(0b001)  # var0=1, var2=0
        assert c.contains_minterm(0b011)
        assert not c.contains_minterm(0b000)

    def test_universal_cube(self):
        c = Cube(0, 0)
        assert all(c.contains_minterm(m) for m in range(8))
        assert c.num_literals() == 0

    def test_literals(self):
        c = Cube.from_string("1-0")
        assert c.literals(3) == [(0, 1), (2, 0)]

    def test_minterms_enumeration(self):
        c = Cube.from_string("1--")
        assert sorted(c.minterms(3)) == [1, 3, 5, 7]


class TestRelations:
    @given(cubes, cubes)
    @settings(max_examples=100)
    def test_covers_iff_minterm_subset(self, a, b):
        sa, sb = set(a.minterms(N)), set(b.minterms(N))
        assert a.covers(b) == (sb <= sa)

    @given(cubes, cubes)
    @settings(max_examples=100)
    def test_intersects_iff_common_minterm(self, a, b):
        assert a.intersects(b) == bool(set(a.minterms(N)) & set(b.minterms(N)))


class TestMerge:
    def test_merge_distance_one(self):
        a = Cube.from_string("101")
        b = Cube.from_string("100")
        m = try_merge(a, b)
        assert m is not None and m.to_string(3) == "10-"

    def test_no_merge_distance_two(self):
        assert try_merge(Cube.from_string("101"), Cube.from_string("010")) is None

    def test_no_merge_different_care(self):
        assert try_merge(Cube.from_string("10-"), Cube.from_string("100")) is None

    @given(cubes, cubes)
    @settings(max_examples=100)
    def test_merge_is_exact_union(self, a, b):
        m = try_merge(a, b)
        if m is not None:
            assert set(m.minterms(N)) == set(a.minterms(N)) | set(b.minterms(N))


class TestCovers:
    def test_cover_eval(self):
        cover = [Cube.from_string("1--"), Cube.from_string("-11")]
        assert cover_eval(cover, 0b001)
        assert cover_eval(cover, 0b110)
        assert not cover_eval(cover, 0b010)

    def test_cover_minterms(self):
        cover = [Cube.from_string("11-")]
        assert cover_minterms(cover, 3) == {3, 7}

    def test_remove_contained(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("11-")
        assert remove_contained([big, small]) == [big]

    def test_remove_contained_keeps_one_duplicate(self):
        c = Cube.from_string("1-0")
        assert remove_contained([c, c]) == [c]

    def test_irredundant_drops_covered_cube(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("11-")  # subsumed given onset below
        onset = set(a.minterms(3))
        out = irredundant([a, b], onset, set())
        assert out == [a]

    def test_irredundant_keeps_needed_cubes(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-11")
        onset = {0b001, 0b110}
        out = irredundant([a, b], onset, set())
        assert set(out) == {a, b}
