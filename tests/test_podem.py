"""Tests for PODEM test generation: found tests work, redundancy is real."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.podem import Podem, Status, run_atpg
from repro.logic.faults import FaultSite, enumerate_faults
from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder


def _detects(netlist, fault, assignment) -> bool:
    """Ground truth: simulate good and faulty machines on the assignment."""
    def run(f):
        sim = CycleSimulator(netlist, 1, faults=[f] if f else None)
        for net in netlist.inputs:
            sim.drive_const(net, assignment.get(net, 0))
        sim.settle()
        return [int(sim.sample(o)[0]) for o in netlist.outputs]

    good = run(None)
    bad = run(fault)
    return any(g != X_ and b != X_ and g != b for g, b, X_ in zip(good, bad, [-1] * len(good)))


def _exhaustively_redundant(netlist, fault) -> bool:
    inputs = list(netlist.inputs)
    for m in range(1 << len(inputs)):
        assignment = {net: (m >> i) & 1 for i, net in enumerate(inputs)}
        if _detects(netlist, fault, assignment):
            return False
    return True


def _c17():
    """The ISCAS-85 c17 benchmark (6 NAND gates)."""
    b = NetlistBuilder("c17")
    g1, g2, g3, g6, g7 = (b.input(f"G{i}") for i in (1, 2, 3, 6, 7))
    g10 = b.nand_([g1, g3], name="g10")
    g11 = b.nand_([g3, g6], name="g11")
    g16 = b.nand_([g2, g11], name="g16")
    g19 = b.nand_([g11, g7], name="g19")
    g22 = b.nand_([g10, g16], name="g22")
    g23 = b.nand_([g16, g19], name="g23")
    b.output(g22)
    b.output(g23)
    return b.done()


def _redundant_circuit():
    """y = a | (a & b): the AND gate's output s-a-0 is undetectable."""
    b = NetlistBuilder("red")
    a, c = b.input("a"), b.input("b")
    n = b.and_([a, c], name="gand")
    y = b.or_([a, n], name="gor")
    b.output(y)
    return b.done()


class TestKnownCircuits:
    def test_c17_fully_testable(self):
        nl = _c17()
        faults = enumerate_faults(nl, include_pi_stems=True)
        summary = run_atpg(nl, faults)
        assert summary.aborted == 0
        assert summary.redundant == 0  # c17 is irredundant
        assert summary.tested == len(faults)

    def test_c17_tests_actually_detect(self):
        nl = _c17()
        faults = enumerate_faults(nl, include_pi_stems=True)
        summary = run_atpg(nl, faults)
        for fault, assignment in summary.tests.items():
            assert _detects(nl, fault, assignment), fault.describe(nl)

    def test_redundant_fault_proven(self):
        nl = _redundant_circuit()
        gand = next(g for g in nl.gates if g.name == "gand")
        fault = FaultSite(gand.index, -1, gand.output, 0)
        result = Podem(nl).generate(fault)
        assert result.status is Status.REDUNDANT
        assert _exhaustively_redundant(nl, fault)

    def test_testable_fault_in_redundant_circuit(self):
        nl = _redundant_circuit()
        gor = next(g for g in nl.gates if g.name == "gor")
        fault = FaultSite(gor.index, -1, gor.output, 1)
        result = Podem(nl).generate(fault)
        assert result.status is Status.TEST
        assert _detects(nl, fault, result.assignment)


class TestValidation:
    def test_sequential_netlist_rejected(self, facet_system):
        with pytest.raises(ValueError, match="combinational"):
            Podem(facet_system.netlist)

    def test_mux_and_xor_circuits(self):
        b = NetlistBuilder("mx")
        s, a, c, d = (b.input(n) for n in "sabd")
        m = b.mux2_(s, a, c)
        y = b.xor_([m, d])
        b.output(y)
        nl = b.done()
        faults = enumerate_faults(nl, include_pi_stems=True)
        summary = run_atpg(nl, faults)
        assert summary.aborted == 0
        for fault, assignment in summary.tests.items():
            assert _detects(nl, fault, assignment)


def _random_comb_netlist(seed: int):
    rng = np.random.default_rng(seed)
    b = NetlistBuilder(f"r{seed}")
    nets = [b.input(f"i{k}") for k in range(4)]
    for _ in range(10):
        kind = rng.choice(["and", "or", "nand", "nor", "xor", "not", "mux"])
        pick = lambda: nets[int(rng.integers(len(nets)))]
        if kind == "not":
            nets.append(b.not_(pick()))
        elif kind == "mux":
            nets.append(b.mux2_(pick(), pick(), pick()))
        else:
            op = {"and": b.and_, "or": b.or_, "nand": b.nand_,
                  "nor": b.nor_, "xor": b.xor_}[kind]
            nets.append(op([pick(), pick()]))
    b.output(nets[-1])
    b.output(nets[-2])
    return b.done()


@given(st.integers(0, 5_000))
@settings(max_examples=20, deadline=None)
def test_podem_verdicts_are_ground_truth(seed):
    """On random circuits small enough to brute-force: every TEST detects,
    every REDUNDANT verdict survives exhaustive enumeration."""
    nl = _random_comb_netlist(seed)
    faults = enumerate_faults(nl)
    summary = run_atpg(nl, faults[:24])
    assert summary.aborted == 0
    for fault, assignment in summary.tests.items():
        assert _detects(nl, fault, assignment), fault.describe(nl)
    for fault in summary.redundant_faults:
        assert _exhaustively_redundant(nl, fault), fault.describe(nl)


def test_controller_scan_view_atpg(facet_system):
    """ATPG over the controller's scan view: near-total coverage, with any
    undetected fault *proven* redundant -- the strong form of the paper's
    'separately the parts test completely'."""
    from repro.core.pipeline import controller_fault_universe
    from repro.dft.scan import map_fault_to_view, scan_view

    ctrl = facet_system.controller.netlist
    view = scan_view(ctrl, "ctrl")
    universe = controller_fault_universe(facet_system)
    mapped = [map_fault_to_view(ctrl, view, s) for s in universe]
    summary = run_atpg(view.netlist, [m for m in mapped if m is not None])
    assert summary.aborted == 0
    assert summary.coverage == 1.0
