"""Unit tests for NetlistBuilder, including hierarchy flattening."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import NetlistError


class TestBasics:
    def test_bus_names(self):
        b = NetlistBuilder()
        bus = b.bus("d", 3)
        assert [b.netlist.net_names[n] for n in bus] == ["d[0]", "d[1]", "d[2]"]

    def test_net_is_idempotent_by_name(self):
        b = NetlistBuilder()
        assert b.net("x") == b.net("x")

    def test_fresh_names_unique(self):
        b = NetlistBuilder()
        assert b.net() != b.net()

    def test_const_bus_lsb_first(self):
        b = NetlistBuilder()
        bus = b.const_bus(0b101, 3)
        types = [b.netlist.driver_of(n).gtype for n in bus]
        assert types == [GateType.CONST1, GateType.CONST0, GateType.CONST1]

    def test_default_tag_applied(self):
        b = NetlistBuilder()
        b.default_tag = "dp"
        a = b.input("a")
        y = b.not_(a)
        assert b.netlist.driver_of(y).tag == "dp"

    def test_done_validates(self):
        b = NetlistBuilder()
        a = b.input("a")
        b.output(b.buf_(a))
        nl = b.done()
        assert len(nl.gates) == 1


def _half_adder():
    sub = NetlistBuilder("ha")
    a = sub.input("a")
    c = sub.input("b")
    sub.output(sub.xor_([a, c], name="sx", output=sub.net("s")))
    sub.output(sub.and_([a, c], name="cx", output=sub.net("co"), tag="carry"))
    return sub.done()


class TestInstantiate:
    def test_flattening_connects_ports(self):
        ha = _half_adder()
        top = NetlistBuilder("top")
        x = top.input("x")
        y = top.input("y")
        s = top.net("sum")
        mapping = top.instantiate(ha, {"a": x, "b": y, "s": s}, prefix="u1")
        assert mapping["s"] == s
        assert top.netlist.has_net("u1/co")
        top.output(s)
        top.done()

    def test_unbound_input_rejected(self):
        ha = _half_adder()
        top = NetlistBuilder("top")
        x = top.input("x")
        with pytest.raises(NetlistError, match="unbound input"):
            top.instantiate(ha, {"a": x}, prefix="u1")

    def test_gate_names_prefixed(self):
        ha = _half_adder()
        top = NetlistBuilder("top")
        top.instantiate(ha, {"a": top.input("x"), "b": top.input("y")}, prefix="u9")
        names = {g.name for g in top.netlist.gates}
        assert "u9/sx" in names

    def test_tags_kept_or_defaulted(self):
        ha = _half_adder()
        top = NetlistBuilder("top")
        top.instantiate(ha, {"a": top.input("x"), "b": top.input("y")}, prefix="u")
        tags = {g.name: g.tag for g in top.netlist.gates}
        assert tags["u/cx"] == "carry"  # kept
        assert tags["u/sx"] == "u"  # defaulted to prefix

    def test_tag_override(self):
        ha = _half_adder()
        top = NetlistBuilder("top")
        top.instantiate(
            ha, {"a": top.input("x"), "b": top.input("y")}, prefix="u", tag="forced"
        )
        assert all(g.tag == "forced" for g in top.netlist.gates)

    def test_two_instances_coexist(self):
        ha = _half_adder()
        top = NetlistBuilder("top")
        x, y = top.input("x"), top.input("y")
        top.instantiate(ha, {"a": x, "b": y}, prefix="u1")
        top.instantiate(ha, {"a": x, "b": y}, prefix="u2")
        assert len(top.netlist.gates) == 4
