"""Tests for FSM -> gate-level controller synthesis.

The central property: for every encoding and output style, the synthesized
netlist, simulated cycle by cycle, tracks ``FSM.simulate`` exactly (states
via the encoding, outputs with don't-cares free).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.simulator import CycleSimulator
from repro.synth.controller import synthesize_controller
from repro.synth.fsm import FSM


def _machine():
    fsm = FSM("m", ["go"], ["p", "q"], [], "IDLE")
    fsm.add_state("IDLE", {"p": 0, "q": None})
    fsm.add_state("RUN1", {"p": 1, "q": 0})
    fsm.add_state("RUN2", {"p": 0, "q": 1})
    fsm.add_state("DONE", {"p": 1, "q": 1})
    fsm.add_transition("IDLE", "RUN1", {"go": 1})
    fsm.add_transition("IDLE", "IDLE", {"go": 0})
    fsm.add_transition("RUN1", "RUN2")
    fsm.add_transition("RUN2", "DONE", {"go": 1})
    fsm.add_transition("RUN2", "RUN1", {"go": 0})
    fsm.add_transition("DONE", "IDLE")
    return fsm


def _run(ctrl, input_seq):
    """Simulate the netlist; return (state names, output dicts) per cycle."""
    sim = CycleSimulator(ctrl.netlist, 1)
    states, outputs = [], []
    rev = {v: k for k, v in ctrl.encoding.codes.items()}
    for cycle, assign in enumerate(input_seq):
        sim.drive_const(ctrl.input_nets["reset"], 1 if cycle == 0 else 0)
        for name, val in assign.items():
            sim.drive_const(ctrl.input_nets[name], val)
        sim.settle()
        code = sim.sample_bus(ctrl.state_nets)[0]
        states.append(rev.get(int(code), f"?{code}"))
        outputs.append({o: int(sim.sample(n)[0]) for o, n in ctrl.output_nets.items()})
        sim.latch()
    return states, outputs


@pytest.mark.parametrize("encoding", ["binary", "gray", "onehot"])
@pytest.mark.parametrize("style", ["pla", "decoded", "minimized"])
def test_matches_symbolic_simulation(encoding, style):
    fsm = _machine()
    ctrl = synthesize_controller(fsm, encoding_kind=encoding, output_style=style)
    seq = [{"go": v} for v in [1, 1, 1, 0, 1, 0, 0, 1, 1, 1]]
    states, outputs = _run(ctrl, seq)
    ref = fsm.simulate(seq[1:])  # netlist spends cycle 0 in reset
    # After the reset cycle the netlist state tracks the FSM exactly.
    for i, (ref_state, ref_out) in enumerate(ref[: len(seq) - 1]):
        assert states[i + 1] == ref_state
        for o, val in ref_out.items():
            if val is not None:
                assert outputs[i + 1][o] == val, (i, o)


@given(st.lists(st.integers(0, 1), min_size=1, max_size=20))
@settings(max_examples=20, deadline=None)
def test_random_input_sequences(bits):
    fsm = _machine()
    ctrl = synthesize_controller(fsm)
    seq = [{"go": v} for v in [0] + bits]
    states, _ = _run(ctrl, seq)
    ref = fsm.simulate(seq[1:])
    assert states[1:] == [s for s, _ in ref][: len(seq) - 1]


def test_reset_recovers_from_x_state():
    ctrl = synthesize_controller(_machine())
    sim = CycleSimulator(ctrl.netlist, 1)
    assert sim.sample_bus(ctrl.state_nets)[0] == -1  # X at power-up
    sim.drive_const(ctrl.input_nets["reset"], 1)
    sim.drive_const(ctrl.input_nets["go"], 0)
    sim.settle()
    sim.latch()
    assert sim.sample_bus(ctrl.state_nets)[0] == ctrl.encoding.codes["IDLE"]


def test_unknown_style_rejected():
    with pytest.raises(ValueError):
        synthesize_controller(_machine(), output_style="nonsense")


def test_outputs_marked_as_ports():
    ctrl = synthesize_controller(_machine())
    assert set(ctrl.output_nets.values()) == set(ctrl.netlist.outputs)


def test_gates_carry_ctrl_tag():
    ctrl = synthesize_controller(_machine(), tag="ctrl")
    assert all(g.tag == "ctrl" for g in ctrl.netlist.gates)
