"""Unit tests for binding: registers, FUs, muxes, control table."""

import pytest

from repro.designs.catalog import build_rtl
from repro.designs.diffeq import diffeq_dfg
from repro.designs.facet import facet_rtl
from repro.hls.bind import _left_edge, bind_design
from repro.hls.dfg import OpKind
from repro.hls.rtl import HOLD_STATE, RESET_STATE, Source
from repro.hls.schedule import list_schedule


@pytest.fixture(scope="module")
def diffeq():
    return build_rtl("diffeq")


class TestLeftEdge:
    def test_disjoint_intervals_share(self):
        groups = _left_edge({"a": (1, 2), "b": (3, 4)})
        assert groups == [["a", "b"]]

    def test_overlap_separates(self):
        groups = _left_edge({"a": (1, 3), "b": (2, 4)})
        assert len(groups) == 2

    def test_same_step_write_after_read_not_shared(self):
        # strict rule: last == def may NOT share
        groups = _left_edge({"a": (1, 2), "b": (2, 3)})
        assert len(groups) == 2

    def test_no_overlap_invariant(self):
        intervals = {f"v{i}": (i % 5 + 1, i % 5 + 1 + i % 3) for i in range(12)}
        groups = _left_edge(intervals)
        for group in groups:
            spans = sorted(intervals[v] for v in group)
            for (d1, l1), (d2, l2) in zip(spans, spans[1:]):
                assert l1 < d2


class TestRegisters:
    def test_loop_vars_get_dedicated_registers(self, diffeq):
        for var in ("x", "y", "u"):
            reg = diffeq.value_reg[var]
            spec = diffeq.register(reg)
            assert var in spec.holds
            kinds = {s.kind for s in spec.input_mux.sources}
            assert kinds == {"input", "fu"}

    def test_plain_inputs_have_input_source_only(self, diffeq):
        for var in ("dx", "a"):
            spec = diffeq.register(diffeq.value_reg[var])
            assert [s.kind for s in spec.input_mux.sources] == ["input"]

    def test_every_stored_value_has_register(self, diffeq):
        dfg = diffeq.dfg
        for op in dfg.ops:
            if op.name == dfg.loop_condition:
                assert op.name not in diffeq.value_reg
            else:
                assert op.name in diffeq.value_reg

    def test_register_names_sequential(self, diffeq):
        names = [r.name for r in diffeq.registers]
        assert names == [f"REG{i + 1}" for i in range(len(names))]


class TestControlTable:
    def test_reset_loads_inputs_only(self, diffeq):
        loads = diffeq.control.loads[RESET_STATE]
        loaded = {r.name for r in diffeq.registers if loads[r.load_line]}
        input_regs = {diffeq.value_reg[v] for v in diffeq.dfg.inputs}
        assert loaded == input_regs

    def test_hold_loads_nothing(self, diffeq):
        assert not any(diffeq.control.loads[HOLD_STATE].values())

    def test_hold_selects_all_dc(self, diffeq):
        assert all(v is None for v in diffeq.control.selects[HOLD_STATE].values())

    def test_every_op_register_loads_at_its_step(self, diffeq):
        for b in diffeq.bindings.values():
            if b.dest_register is None:
                continue
            line = diffeq.line_of_register(b.dest_register)
            assert diffeq.control.loads[f"CS{b.step}"][line] == 1

    def test_active_mux_selects_are_specified(self, diffeq):
        for b in diffeq.bindings.values():
            fu = diffeq.fu(b.fu)
            state = f"CS{b.step}"
            for mux in (fu.mux_a, fu.mux_b):
                for sel in mux.sel_names:
                    assert diffeq.control.selects[state][sel] is not None


class TestSharedLoadLines:
    def test_facet_shares_lines(self):
        rtl = facet_rtl()
        assert len(rtl.load_lines) < len(rtl.registers)
        # all seven input registers load together in RESET on one line
        input_regs = {rtl.value_reg[v] for v in rtl.dfg.inputs}
        lines = {rtl.line_of_register(r) for r in input_regs}
        assert len(lines) == 1

    def test_shared_line_registers_have_identical_schedules(self):
        rtl = facet_rtl()
        for line, regs in rtl.regs_on_line.items():
            schedules = {frozenset(rtl.reg_load_states(r)) for r in regs}
            assert len(schedules) == 1

    def test_unshared_lines_one_to_one(self, diffeq):
        assert len(diffeq.load_lines) == len(diffeq.registers)


class TestMuxStructure:
    def test_select_bits_match_source_count(self, diffeq):
        for mux in diffeq.all_muxes():
            n = len(mux.sources)
            expected = 0 if n <= 1 else (n - 1).bit_length()
            assert len(mux.sel_names) == expected

    def test_sel_names_globally_unique(self, diffeq):
        seen = []
        for mux in diffeq.all_muxes():
            seen.extend(mux.sel_names)
        assert len(seen) == len(set(seen))
        assert sorted(seen, key=lambda s: int(s[2:])) == diffeq.sel_lines

    def test_sel_bits_for_roundtrip(self, diffeq):
        for mux in diffeq.all_muxes():
            for i in range(len(mux.sources)):
                bits = mux.sel_bits_for(i)
                back = sum(bits[name] << k for k, name in enumerate(mux.sel_names))
                assert back == i

    def test_fu_port_muxes_read_regs_or_consts(self, diffeq):
        for f in diffeq.fus:
            for mux in (f.mux_a, f.mux_b):
                assert all(s.kind in ("reg", "const") for s in mux.sources)


class TestErrors:
    def test_dead_op_rejected(self):
        d = diffeq_dfg()
        d.op("dead", OpKind.ADD, "x", "y")
        s = list_schedule(d, resources={OpKind.MUL: 1, OpKind.ADD: 1, OpKind.SUB: 1})
        with pytest.raises(Exception, match="never used"):
            bind_design(d, s)
