"""Tests for the Section-5 pipeline end to end."""

import pytest

from repro.core.pipeline import (
    PipelineConfig,
    controller_fault_universe,
    run_pipeline,
)
from repro.logic.faultsim import Verdict


class TestUniverse:
    def test_universe_is_collapsed(self, facet_system):
        from repro.logic.faults import enumerate_faults

        raw = enumerate_faults(facet_system.controller.netlist)
        collapsed = controller_fault_universe(facet_system)
        assert 0 < len(collapsed) < len(raw)

    def test_universe_deterministic(self, facet_system):
        assert controller_fault_universe(facet_system) == controller_fault_universe(
            facet_system
        )


class TestPipelineResult:
    def test_buckets_partition_universe(self, facet_pipeline, facet_system):
        counts = facet_pipeline.counts()
        assert sum(counts.values()) == facet_pipeline.total_faults
        assert facet_pipeline.total_faults == len(controller_fault_universe(facet_system))

    def test_all_categories_valid(self, facet_pipeline):
        valid = {"SFI-detected", "SFI-practical", "SFI-escaped", "CFR", "SFR"}
        assert set(facet_pipeline.counts()) <= valid

    def test_detected_faults_not_classified(self, facet_pipeline):
        for r in facet_pipeline.records:
            if r.simulation is Verdict.DETECTED:
                assert r.classification is None
                assert r.category == "SFI-detected"

    def test_undetected_faults_classified(self, facet_pipeline):
        for r in facet_pipeline.records:
            if r.simulation is Verdict.UNDETECTED:
                assert r.classification is not None

    def test_sfr_records_match_category(self, facet_pipeline):
        for r in facet_pipeline.sfr_records:
            assert r.category == "SFR"
            assert r.classification.category == "SFR"

    def test_table2_row_fields(self, facet_pipeline):
        row = facet_pipeline.table2_row()
        assert row["design"] == "facet"
        assert row["total_faults"] > 0
        assert 0 <= row["pct_sfr"] <= 100
        assert row["sfr_faults"] == len(facet_pipeline.sfr_records)

    def test_by_category(self, facet_pipeline):
        sfr = facet_pipeline.by_category("SFR")
        assert all(r.category == "SFR" for r in sfr)


class TestPaperShapeClaims:
    """Coarse reproduction claims from the paper's Table 2 narrative."""

    def test_sfr_fraction_in_regime(self, facet_pipeline, diffeq_pipeline):
        # Paper: 13--21% of controller faults are SFR.  Our synthesis
        # differs; assert the same order of magnitude (5--35%).
        for res in (facet_pipeline, diffeq_pipeline):
            pct = res.table2_row()["pct_sfr"]
            assert 5.0 <= pct <= 35.0

    def test_most_faults_are_sfi(self, facet_pipeline, diffeq_pipeline):
        for res in (facet_pipeline, diffeq_pipeline):
            counts = res.counts()
            sfi = sum(v for k, v in counts.items() if k.startswith("SFI"))
            assert sfi > counts.get("SFR", 0)

    def test_sfr_faults_never_detected_by_logic_test(self, facet_pipeline):
        for r in facet_pipeline.sfr_records:
            assert r.simulation is Verdict.UNDETECTED

    def test_diffeq_has_both_select_and_load_sfr(self, diffeq_pipeline):
        sel = [r for r in diffeq_pipeline.sfr_records if r.classification.select_only]
        load = [
            r for r in diffeq_pipeline.sfr_records if r.classification.affects_load_line
        ]
        assert sel and load


class TestConfig:
    def test_small_pattern_count_runs(self, facet_system):
        res = run_pipeline(facet_system, PipelineConfig(n_patterns=32))
        assert res.total_faults > 0

    def test_more_patterns_detect_no_fewer(self, facet_system):
        small = run_pipeline(facet_system, PipelineConfig(n_patterns=32))
        big = run_pipeline(facet_system, PipelineConfig(n_patterns=256))
        assert len(big.by_category("SFI-detected")) >= len(small.by_category("SFI-detected"))

    def test_sfr_set_stable_across_pattern_counts(self, facet_system):
        small = run_pipeline(facet_system, PipelineConfig(n_patterns=64))
        big = run_pipeline(facet_system, PipelineConfig(n_patterns=256))
        assert {r.site for r in small.sfr_records} == {r.site for r in big.sfr_records}
