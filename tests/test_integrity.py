"""Result-integrity guard layer tests.

The contract under test: the guard layer is invisible on a clean run
(auditing a correct campaign changes nothing, bit for bit), catches
silently corrupted results on an independent path, and either
quarantines the offending fault (default) or aborts (strict mode).
"""

from __future__ import annotations

from types import SimpleNamespace

import re

import numpy as np
import pytest

import repro.core.grading as grading_mod
import repro.logic.faultsim as faultsim_mod
from repro.core.checkpoint import fault_key
from repro.core.classify import EffectLabel
from repro.core.errors import CampaignError, IntegrityError, validate_config
from repro.core.grading import grade_sfr_faults
from repro.core.integrity import (
    IntegrityGuard,
    IntegrityViolation,
    adds_register_loads,
    audit_fraction,
    check_finite_power,
    check_load_monotonicity,
    check_power_ceiling,
    check_sfr_is_cfi,
    select_audit,
)
from repro.core.parallel import RunReport
from repro.core.pipeline import PipelineConfig, controller_fault_universe, run_pipeline
from repro.hls.system import NormalModeStimulus, hold_masks
from repro.logic.faultsim import Verdict, fault_simulate
from repro.power.estimator import PowerEstimator
from repro.power.montecarlo import MonteCarloResult, measure_power
from repro.tpg.tpgr import TPGR


# ---------------------------------------------------------- audit selection
class TestAuditSelection:
    def test_fraction_is_deterministic_and_uniform_range(self):
        keys = [f"{g}:{p}:{n}:0" for g in range(20) for p in range(3) for n in (1, 2)]
        for k in keys:
            f = audit_fraction(k)
            assert 0.0 <= f < 1.0
            assert f == audit_fraction(k)  # pure function of the key

    def test_selection_independent_of_order(self):
        keys = [f"k{i}" for i in range(200)]
        fwd = set(select_audit(keys, 0.1))
        rev = set(select_audit(list(reversed(keys)), 0.1))
        assert fwd == rev
        assert 0 < len(fwd) < len(keys)

    def test_zero_rate_selects_nothing(self):
        assert select_audit([f"k{i}" for i in range(100)], 0.0) == []

    def test_salt_decorrelates_stages(self):
        keys = [f"k{i}" for i in range(300)]
        a = set(select_audit(keys, 0.1, salt="faultsim"))
        b = set(select_audit(keys, 0.1, salt="grading"))
        assert a != b  # different stages audit different subsets


# ------------------------------------------------------------------- guard
class TestIntegrityGuard:
    def _violation(self, fault="f1"):
        return IntegrityViolation(check="test", fault=fault, detail="boom")

    def test_default_mode_quarantines_and_continues(self):
        guard = IntegrityGuard(strict=False)
        guard.flag(self._violation("a"))
        guard.flag(self._violation("a"))
        guard.flag(self._violation("b"))
        assert len(guard.violations) == 3
        assert guard.quarantined == 2  # distinct faults

    def test_strict_mode_raises_on_first_violation(self):
        guard = IntegrityGuard(strict=True)
        with pytest.raises(IntegrityError, match="strict mode"):
            guard.flag(self._violation())

    def test_attach_publishes_to_run_report(self):
        guard = IntegrityGuard()
        guard.flag(self._violation("a"))
        report = RunReport(n_items=10)
        guard.attach(report, audited=4)
        assert report.audited == 4
        assert report.quarantined == 1
        assert [v.fault for v in report.violations] == ["a"]
        assert report.has_incidents()

    def test_violation_json_and_describe(self):
        v = IntegrityViolation(
            check="c", fault="f", detail="d", site="s", cycle=7,
            expected="x", actual="y",
        )
        d = v.to_json_dict()
        assert d["check"] == "c" and d["cycle"] == 7
        text = v.describe()
        assert "f" in text and "cycle 7" in text


# -------------------------------------------------------- invariant checks
class TestInvariantChecks:
    def test_finite_power(self):
        guard = IntegrityGuard()
        assert check_finite_power(guard, "k", 12.5)
        assert not check_finite_power(guard, "k", float("nan"))
        assert not check_finite_power(guard, "k", float("inf"))
        assert not check_finite_power(guard, "k", -1.0)
        assert not check_finite_power(guard, "k", 0.0)
        assert len(guard.violations) == 4

    def test_power_ceiling(self):
        guard = IntegrityGuard()
        assert check_power_ceiling(guard, "k", 10.0, 20.0)
        assert not check_power_ceiling(guard, "k", 30.0, 20.0)
        assert guard.violations[0].check == "power-ceiling"

    def test_load_monotonicity_tolerates_noise(self):
        guard = IntegrityGuard()
        assert check_load_monotonicity(guard, "k", +3.0)
        assert check_load_monotonicity(guard, "k", -0.4)  # within tolerance
        assert not check_load_monotonicity(guard, "k", -5.0)
        assert guard.violations[0].check == "load-monotonicity"

    def test_adds_register_loads_label_logic(self):
        def cls(*labels):
            return SimpleNamespace(effects=[SimpleNamespace(label=l) for l in labels])

        assert adds_register_loads(cls(EffectLabel.EXTRA_LOAD_IDLE))
        assert adds_register_loads(
            cls(EffectLabel.EXTRA_LOAD_REWRITE, EffectLabel.SELECT_INACTIVE)
        )
        # A fault that also skips loads may legitimately lower power.
        assert not adds_register_loads(
            cls(EffectLabel.EXTRA_LOAD_IDLE, EffectLabel.LOAD_SKIPPED)
        )
        assert not adds_register_loads(cls(EffectLabel.SELECT_ACTIVE))
        assert not adds_register_loads(cls())

    def test_sfr_without_effects_flagged(self):
        guard = IntegrityGuard()
        good = SimpleNamespace(classification=SimpleNamespace(effects=[object()]))
        bad = SimpleNamespace(classification=SimpleNamespace(effects=[]))
        assert check_sfr_is_cfi(guard, "k", good)
        assert not check_sfr_is_cfi(guard, "k", bad)
        assert guard.violations[0].check == "sfr-without-effects"


# ------------------------------------------------- power estimator guards
class TestEstimatorGuards:
    def test_theoretical_ceiling_bounds_real_power(self, facet_system):
        estimator = PowerEstimator(facet_system.netlist)
        rng = np.random.default_rng(5)
        data = {
            k: rng.integers(0, 16, 8) for k in facet_system.rtl.dfg.inputs
        }
        result = measure_power(facet_system, estimator, data, tag_prefix=None)
        ceiling = estimator.theoretical_max_uw()
        assert 0 < result.total_uw <= ceiling

    def test_corrupt_toggle_counter_names_the_net(self, facet_system):
        from repro.logic.simulator import CycleSimulator

        system = facet_system
        sim = CycleSimulator(system.netlist, 8, count_toggles=True)
        stim = NormalModeStimulus(
            system,
            {k: np.zeros(8, dtype=np.int64) for k in system.rtl.dfg.inputs},
            system.cycles_for(1),
        )
        for cyc in range(stim.n_cycles):
            stim.apply(sim, cyc)
            sim.settle()
            sim.latch()
        estimator = PowerEstimator(system.netlist)
        estimator.power(sim)  # sane counters pass
        sim.toggles[3] = sim.cycles_run * sim.n_patterns + 1  # corrupt
        with pytest.raises(IntegrityError, match=re.escape(system.netlist.net_names[3])):
            estimator.power(sim)


# --------------------------------------------- fault-simulation audit layer
@pytest.fixture(scope="module")
def small_campaign(facet_system):
    system = facet_system
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=0xACE1)
    data = {k: np.asarray(v) for k, v in tpgr.generate(64).items()}
    stim = NormalModeStimulus(system, data, system.cycles_for(3))
    masks = hold_masks(system, stim)
    observe = [n for bus in system.output_buses.values() for n in bus]
    faults = [system.to_system_fault(s) for s in controller_fault_universe(system)]
    return system, stim, masks, observe, faults[:24]


_REAL_CHUNK_WORKER = faultsim_mod._fault_chunk_worker


def _flip_all_verdicts(context, chunk):
    """Stand-in worker returning corrupted verdicts for every fault."""
    out = []
    for verdict, cycle in _REAL_CHUNK_WORKER(context, chunk):
        if verdict is Verdict.DETECTED:
            out.append((Verdict.UNDETECTED, -1))
        else:
            out.append((Verdict.DETECTED, max(0, cycle)))
    return out


class TestFaultSimAudit:
    def test_audit_of_a_clean_run_changes_nothing(self, small_campaign):
        system, stim, masks, observe, faults = small_campaign
        plain = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            audit_rate=0.0,
        )
        audited = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            audit_rate=0.9,
        )
        assert audited.verdicts == plain.verdicts
        assert audited.detect_cycle == plain.detect_cycle
        assert audited.campaign.audited > 0
        assert audited.campaign.violations == []
        assert audited.campaign.quarantined == 0

    def test_divergence_caught_and_quarantined_to_reference(
        self, small_campaign, monkeypatch
    ):
        system, stim, masks, observe, faults = small_campaign
        clean = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            audit_rate=0.0,
        )
        monkeypatch.setattr(faultsim_mod, "_fault_chunk_worker", _flip_all_verdicts)
        result = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            audit_rate=0.999,
        )
        report = result.campaign
        assert report.audited > 0
        # every audited fault diverged, was flagged, and fell back to the
        # trusted serial reference
        diffs = [v for v in report.violations if v.check == "faultsim-differential"]
        assert len(diffs) == report.audited
        audited_keys = {v.fault for v in diffs}
        for fault in faults:
            if fault_key(fault) in audited_keys:
                assert result.verdicts[fault] == clean.verdicts[fault]

    def test_strict_mode_aborts_on_divergence(self, small_campaign, monkeypatch):
        system, stim, masks, observe, faults = small_campaign
        monkeypatch.setattr(faultsim_mod, "_fault_chunk_worker", _flip_all_verdicts)
        with pytest.raises(IntegrityError, match="strict mode"):
            fault_simulate(
                system.netlist, faults, stim, observe=observe, valid_masks=masks,
                audit_rate=0.999, strict=True,
            )

    def test_audit_set_survives_resume(self, small_campaign, tmp_path):
        """A resumed campaign audits the same faults as an uninterrupted one."""
        from repro.core.checkpoint import open_journal

        system, stim, masks, observe, faults = small_campaign
        clean = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            audit_rate=0.5,
        )
        fp = "e" * 20
        half = len(faults) // 2
        j = open_journal(tmp_path, "faultsim", fp)
        fault_simulate(
            system.netlist, faults[:half], stim, observe=observe,
            valid_masks=masks, checkpoint=j, audit_rate=0.5,
        )
        j2 = open_journal(tmp_path, "faultsim", fp, resume=True)
        resumed = fault_simulate(
            system.netlist, faults, stim, observe=observe, valid_masks=masks,
            checkpoint=j2, audit_rate=0.5,
        )
        assert resumed.campaign.audited == clean.campaign.audited
        assert resumed.verdicts == clean.verdicts
        assert resumed.campaign.violations == []


# ------------------------------------------------------ grading guard layer
class TestGradingGuards:
    def test_poisoned_baseline_always_aborts(
        self, facet_system, facet_pipeline, monkeypatch
    ):
        real = grading_mod.monte_carlo_power

        def poisoned(system, estimator, fault=None, **kwargs):
            if fault is None:
                return MonteCarloResult(power_uw=float("inf"), batches=1, patterns=1)
            return real(system, estimator, fault=fault, **kwargs)

        monkeypatch.setattr(grading_mod, "monte_carlo_power", poisoned)
        with pytest.raises(IntegrityError, match="baseline"):
            grade_sfr_faults(
                facet_system, facet_pipeline, batch_patterns=32, max_batches=2,
                audit_rate=0.0, strict=False,  # not even quarantine saves it
            )

    def test_nonfinite_fault_power_quarantined(
        self, facet_system, facet_pipeline, monkeypatch
    ):
        records = facet_pipeline.sfr_records
        assert records, "facet must have SFR faults for this test"
        poisoned_key = fault_key(records[0].system_site)
        real = grading_mod.monte_carlo_power

        def poison_one(system, estimator, fault=None, **kwargs):
            if fault is not None and fault_key(fault) == poisoned_key:
                return MonteCarloResult(power_uw=float("nan"), batches=1, patterns=1)
            return real(system, estimator, fault=fault, **kwargs)

        monkeypatch.setattr(grading_mod, "monte_carlo_power", poison_one)
        grading = grade_sfr_faults(
            facet_system, facet_pipeline, batch_patterns=32, max_batches=2,
            audit_rate=0.0,
        )
        assert len(grading.graded) == len(records) - 1
        assert poisoned_key not in {
            fault_key(g.record.system_site) for g in grading.graded
        }
        kinds = {v.check for v in grading.campaign.violations}
        assert "non-finite-power" in kinds
        assert grading.campaign.quarantined == 1

    def test_clean_grading_audit_is_invisible(self, facet_system, facet_pipeline):
        kwargs = dict(batch_patterns=32, max_batches=2)
        plain = grade_sfr_faults(facet_system, facet_pipeline, audit_rate=0.0, **kwargs)
        audited = grade_sfr_faults(
            facet_system, facet_pipeline, audit_rate=0.9, **kwargs
        )
        assert audited.campaign.audited > 0
        assert audited.campaign.violations == []
        assert [g.power_uw for g in audited.graded] == [
            g.power_uw for g in plain.graded
        ]  # bit-identical, not approx


# ---------------------------------------------------------- config plumbing
class TestConfigValidation:
    def test_audit_rate_range_enforced(self):
        with pytest.raises(CampaignError, match="audit_rate"):
            validate_config(PipelineConfig(audit_rate=1.0))
        with pytest.raises(CampaignError, match="audit_rate"):
            validate_config(PipelineConfig(audit_rate=-0.1))
        validate_config(PipelineConfig(audit_rate=0.0))
        validate_config(PipelineConfig(audit_rate=0.5))

    def test_integrity_knobs_do_not_change_the_fingerprint(self):
        a = PipelineConfig().fingerprint_params()
        b = PipelineConfig(audit_rate=0.5, strict=True).fingerprint_params()
        assert a == b  # toggling audit knobs must not orphan journals

    def test_pipeline_sfr_audit_runs_by_default(self, facet_pipeline):
        assert facet_pipeline.campaign.audited > 0
        assert facet_pipeline.campaign.violations == []
