"""Tests for Monte-Carlo power grading of SFR faults."""

import pytest

import repro.core.parallel as parallel_mod
from repro.cli import main
from repro.core.checkpoint import fault_key
from repro.core.grading import (
    grade_sfr_faults,
    pick_representative,
    table3_rows,
    power_under_test_set,
)
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.power.estimator import PowerEstimator
from repro.power.montecarlo import (
    monte_carlo_power,
    monte_carlo_power_block,
    shared_batches,
)
from repro.store.cache import CampaignStore


@pytest.fixture(scope="module")
def facet_grading(facet_system, facet_pipeline):
    return grade_sfr_faults(
        facet_system, facet_pipeline, batch_patterns=96, max_batches=4
    )


class TestGrading:
    def test_every_sfr_fault_graded(self, facet_grading, facet_pipeline):
        assert len(facet_grading.graded) == len(facet_pipeline.sfr_records)

    def test_figure7_ordering(self, facet_grading):
        groups = [g.group for g in facet_grading.graded]
        # select-only faults first, then load faults
        if "select" in groups and "load" in groups:
            assert groups.index("load") > groups.index("select")
            first_load = groups.index("load")
            assert all(g == "load" for g in groups[first_load:])
        for name in ("select", "load"):
            powers = [g.power_uw for g in facet_grading.graded if g.group == name]
            assert powers == sorted(powers)

    def test_load_faults_increase_power(self, facet_grading):
        """The paper's guarantee: extra-load SFR faults only increase power
        (gated clocks).  Allow tiny negative noise for zero-effect faults."""
        for g in facet_grading.group("load"):
            assert g.pct_change > -0.5

    def test_group_assignment_matches_classification(self, facet_grading):
        for g in facet_grading.graded:
            expected = "load" if g.record.classification.affects_load_line else "select"
            assert g.group == expected

    def test_detected_flags_respect_threshold(self, facet_grading):
        flags = facet_grading.detected_flags()
        for flag, g in zip(flags, facet_grading.graded):
            assert flag == (abs(g.pct_change) > 100 * facet_grading.threshold)

    def test_summary_counts(self, facet_grading):
        s = facet_grading.summary()
        assert s["n_sfr"] == len(facet_grading.graded)
        assert s["n_select_only"] + s["n_load"] == s["n_sfr"]
        assert s["select_detected"] <= s["n_select_only"]
        assert s["load_detected"] <= s["n_load"]

    def test_some_load_fault_beyond_band(self, facet_grading):
        """Facet's shared load lines produce large increases (paper 7b)."""
        assert facet_grading.summary()["load_detected"] >= 1


class TestRepresentativePicks:
    def test_picks_span_range(self, facet_grading):
        picks = pick_representative(facet_grading, count=5)
        assert len(picks) >= 2
        pcts = [p.pct_change for p in picks]
        assert pcts == sorted(pcts)
        assert picks[0].pct_change == min(g.pct_change for g in facet_grading.graded)
        assert picks[-1].pct_change == max(g.pct_change for g in facet_grading.graded)

    def test_small_set_returns_all(self, facet_grading):
        picks = pick_representative(facet_grading, count=10**6)
        assert len(picks) == len(facet_grading.graded)


class TestTestSets:
    def test_fault_free_power_under_test_set_positive(self, facet_system):
        est = PowerEstimator(facet_system.netlist)
        p = power_under_test_set(facet_system, est, None, seed=0xACE1, n_patterns=64)
        assert p > 0

    def test_different_seeds_different_power(self, facet_system):
        est = PowerEstimator(facet_system.netlist)
        p1 = power_under_test_set(facet_system, est, None, seed=0xACE1, n_patterns=64)
        p2 = power_under_test_set(facet_system, est, None, seed=1, n_patterns=64)
        assert p1 != p2

    def test_table3_rows_structure(self, facet_system, facet_grading):
        est = PowerEstimator(facet_system.netlist)
        picks = pick_representative(facet_grading, count=2)
        rows = table3_rows(
            facet_system, est, facet_grading, picks, seeds=(0xACE1, 1), n_patterns=64
        )
        assert rows[0].label == "fault-free"
        assert len(rows) == 1 + len(picks)
        for row in rows[1:]:
            assert len(row.per_set_uw) == 2
            assert row.per_set_pct is not None

    def test_pct_consistency_across_test_sets(self, facet_system, facet_grading):
        """Paper Table 3: the percentage increase is reasonably consistent
        from test set to test set.  Check the biggest-effect fault agrees
        within a few points between two seeds."""
        est = PowerEstimator(facet_system.netlist)
        picks = [facet_grading.graded[-1]]  # largest power effect
        rows = table3_rows(
            facet_system, est, facet_grading, picks, seeds=(0xACE1, 0xBEEF), n_patterns=256
        )
        pcts = rows[1].per_set_pct
        assert abs(pcts[0] - pcts[1]) < 6.0


# --------------------------------------------- batched-kernel bit identity
def _assert_mc_equal(a, b):
    """Bit-identical MonteCarloResult: exact floats, not approx."""
    assert a.power_uw == b.power_uw
    assert a.batches == b.batches
    assert a.patterns == b.patterns
    assert a.history == b.history
    assert a.converged == b.converged


def _assert_grading_equal(a, b):
    assert a.fault_free_uw == b.fault_free_uw
    assert len(a.graded) == len(b.graded)
    for ga, gb in zip(a.graded, b.graded):
        assert fault_key(ga.record.system_site) == fault_key(gb.record.system_site)
        assert ga.power_uw == gb.power_uw
        assert ga.pct_change == gb.pct_change
        assert ga.group == gb.group


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the machine has 4 cores so n_jobs > 1 builds a real pool."""
    monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)


@pytest.fixture(scope="module")
def poly_pipeline(poly_system):
    return run_pipeline(poly_system, PipelineConfig(n_patterns=128))


class TestBlockKernelBitIdentity:
    """monte_carlo_power_block vs the serial per-fault reference."""

    @pytest.mark.parametrize("design", ["facet", "diffeq", "poly"])
    @pytest.mark.parametrize("cone_power", [False, True])
    def test_matches_serial_per_fault(self, design, cone_power, request):
        system = request.getfixturevalue(f"{design}_system")
        pipeline = request.getfixturevalue(f"{design}_pipeline")
        faults = [r.system_site for r in pipeline.sfr_records][:6]
        assert faults, f"{design} has no SFR faults to grade"
        est = PowerEstimator(system.netlist)
        kwargs = dict(batch_patterns=64, max_batches=4)
        batches = shared_batches(system, **kwargs)
        block = monte_carlo_power_block(
            system, est, faults, batches=batches, cone_power=cone_power, **kwargs
        )
        for fault, got in zip(faults, block):
            ref = monte_carlo_power(
                system, est, fault=fault, batches=batches, **kwargs
            )
            _assert_mc_equal(got, ref)

    @pytest.mark.parametrize("rel_tol", [0.5, 1e-12])
    def test_early_and_late_convergence(self, facet_system, facet_pipeline, rel_tol):
        """rel_tol=0.5 converges at min_batches; 1e-12 exhausts the budget
        (converged=False) -- compaction and the non-converged tail must
        both reproduce the serial loop exactly."""
        faults = [r.system_site for r in facet_pipeline.sfr_records][:4]
        est = PowerEstimator(facet_system.netlist)
        kwargs = dict(batch_patterns=64, max_batches=5, rel_tol=rel_tol)
        block = monte_carlo_power_block(
            facet_system, est, faults, cone_power=True, **kwargs
        )
        for fault, got in zip(faults, block):
            ref = monte_carlo_power(facet_system, est, fault=fault, **kwargs)
            _assert_mc_equal(got, ref)
        if rel_tol == 0.5:
            assert all(r.converged and r.batches == 3 for r in block)
        else:
            assert not any(r.converged for r in block)

    def test_unaligned_batch_falls_back_to_serial(self, facet_system, facet_pipeline):
        """batch_patterns not a multiple of 64 cannot be block-partitioned;
        the kernel must hand each fault to the serial path unchanged."""
        faults = [r.system_site for r in facet_pipeline.sfr_records][:3]
        est = PowerEstimator(facet_system.netlist)
        kwargs = dict(batch_patterns=96, max_batches=3)
        block = monte_carlo_power_block(facet_system, est, faults, **kwargs)
        for fault, got in zip(faults, block):
            _assert_mc_equal(
                got, monte_carlo_power(facet_system, est, fault=fault, **kwargs)
            )


class TestBatchedGradingBitIdentity:
    """grade_sfr_faults(batched=True) vs the retained serial path."""

    @pytest.fixture(scope="class")
    def serial_grading(self, facet_system, facet_pipeline):
        return grade_sfr_faults(
            facet_system,
            facet_pipeline,
            batch_patterns=64,
            max_batches=3,
            batched=False,
        )

    @pytest.mark.parametrize("cone_power", [False, True])
    def test_batched_matches_serial(
        self, facet_system, facet_pipeline, serial_grading, cone_power
    ):
        batched = grade_sfr_faults(
            facet_system,
            facet_pipeline,
            batch_patterns=64,
            max_batches=3,
            batched=True,
            cone_power=cone_power,
        )
        _assert_grading_equal(serial_grading, batched)

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_bit_identical_across_jobs(
        self, facet_system, facet_pipeline, serial_grading, multicore, n_jobs
    ):
        batched = grade_sfr_faults(
            facet_system,
            facet_pipeline,
            batch_patterns=64,
            max_batches=3,
            n_jobs=n_jobs,
        )
        _assert_grading_equal(serial_grading, batched)

    def test_resume_serial_journal_into_batched(
        self, facet_system, facet_pipeline, serial_grading, tmp_path
    ):
        """A checkpoint journal written by the serial path resumes into a
        batched campaign bit-identically (and vice versa: the journal
        format carries no kernel fingerprint, only result-relevant knobs)."""
        kwargs = dict(batch_patterns=64, max_batches=3)
        grade_sfr_faults(
            facet_system,
            facet_pipeline,
            checkpoint_dir=str(tmp_path),
            batched=False,
            **kwargs,
        )
        # Truncate the journal to the baseline + the first two fault
        # records: the batched resume replays those and recomputes the
        # rest through the block kernel.
        (journal_path,) = tmp_path.glob("grading-*.jsonl")
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[:4]) + "\n")
        resumed = grade_sfr_faults(
            facet_system,
            facet_pipeline,
            checkpoint_dir=str(tmp_path),
            resume=True,
            batched=True,
            **kwargs,
        )
        assert resumed.campaign.resumed == 2
        _assert_grading_equal(serial_grading, resumed)

    def test_warm_store_replay(
        self, facet_system, facet_pipeline, serial_grading, tmp_path
    ):
        """A batched campaign publishes to the store under the same key the
        serial path uses; a warm serial rerun replays it bit-identically."""
        store = CampaignStore(tmp_path / "store")
        kwargs = dict(batch_patterns=64, max_batches=3)
        cold = grade_sfr_faults(
            facet_system, facet_pipeline, store=store, batched=True, **kwargs
        )
        warm = grade_sfr_faults(
            facet_system, facet_pipeline, store=store, batched=False, **kwargs
        )
        assert any(p.hit for p in store.provenance)
        _assert_grading_equal(serial_grading, cold)
        _assert_grading_equal(cold, warm)

    def test_cli_result_json_byte_identical(self, tmp_path):
        """The deterministic --result-json report must not change a byte
        between the batched kernel and the serial reference path."""
        batched = tmp_path / "batched.json"
        serial = tmp_path / "serial.json"
        argv = ["--patterns", "64"]
        tail = ["grade", "facet"]
        assert main([*argv, "--result-json", str(batched), *tail]) == 0
        assert (
            main(
                [*argv, "--no-batched-grading", "--result-json", str(serial), *tail]
            )
            == 0
        )
        assert batched.read_bytes() == serial.read_bytes()
