"""Tests for Monte-Carlo power grading of SFR faults."""

import pytest

from repro.core.grading import (
    grade_sfr_faults,
    pick_representative,
    table3_rows,
    power_under_test_set,
)
from repro.power.estimator import PowerEstimator


@pytest.fixture(scope="module")
def facet_grading(facet_system, facet_pipeline):
    return grade_sfr_faults(
        facet_system, facet_pipeline, batch_patterns=96, max_batches=4
    )


class TestGrading:
    def test_every_sfr_fault_graded(self, facet_grading, facet_pipeline):
        assert len(facet_grading.graded) == len(facet_pipeline.sfr_records)

    def test_figure7_ordering(self, facet_grading):
        groups = [g.group for g in facet_grading.graded]
        # select-only faults first, then load faults
        if "select" in groups and "load" in groups:
            assert groups.index("load") > groups.index("select")
            first_load = groups.index("load")
            assert all(g == "load" for g in groups[first_load:])
        for name in ("select", "load"):
            powers = [g.power_uw for g in facet_grading.graded if g.group == name]
            assert powers == sorted(powers)

    def test_load_faults_increase_power(self, facet_grading):
        """The paper's guarantee: extra-load SFR faults only increase power
        (gated clocks).  Allow tiny negative noise for zero-effect faults."""
        for g in facet_grading.group("load"):
            assert g.pct_change > -0.5

    def test_group_assignment_matches_classification(self, facet_grading):
        for g in facet_grading.graded:
            expected = "load" if g.record.classification.affects_load_line else "select"
            assert g.group == expected

    def test_detected_flags_respect_threshold(self, facet_grading):
        flags = facet_grading.detected_flags()
        for flag, g in zip(flags, facet_grading.graded):
            assert flag == (abs(g.pct_change) > 100 * facet_grading.threshold)

    def test_summary_counts(self, facet_grading):
        s = facet_grading.summary()
        assert s["n_sfr"] == len(facet_grading.graded)
        assert s["n_select_only"] + s["n_load"] == s["n_sfr"]
        assert s["select_detected"] <= s["n_select_only"]
        assert s["load_detected"] <= s["n_load"]

    def test_some_load_fault_beyond_band(self, facet_grading):
        """Facet's shared load lines produce large increases (paper 7b)."""
        assert facet_grading.summary()["load_detected"] >= 1


class TestRepresentativePicks:
    def test_picks_span_range(self, facet_grading):
        picks = pick_representative(facet_grading, count=5)
        assert len(picks) >= 2
        pcts = [p.pct_change for p in picks]
        assert pcts == sorted(pcts)
        assert picks[0].pct_change == min(g.pct_change for g in facet_grading.graded)
        assert picks[-1].pct_change == max(g.pct_change for g in facet_grading.graded)

    def test_small_set_returns_all(self, facet_grading):
        picks = pick_representative(facet_grading, count=10**6)
        assert len(picks) == len(facet_grading.graded)


class TestTestSets:
    def test_fault_free_power_under_test_set_positive(self, facet_system):
        est = PowerEstimator(facet_system.netlist)
        p = power_under_test_set(facet_system, est, None, seed=0xACE1, n_patterns=64)
        assert p > 0

    def test_different_seeds_different_power(self, facet_system):
        est = PowerEstimator(facet_system.netlist)
        p1 = power_under_test_set(facet_system, est, None, seed=0xACE1, n_patterns=64)
        p2 = power_under_test_set(facet_system, est, None, seed=1, n_patterns=64)
        assert p1 != p2

    def test_table3_rows_structure(self, facet_system, facet_grading):
        est = PowerEstimator(facet_system.netlist)
        picks = pick_representative(facet_grading, count=2)
        rows = table3_rows(
            facet_system, est, facet_grading, picks, seeds=(0xACE1, 1), n_patterns=64
        )
        assert rows[0].label == "fault-free"
        assert len(rows) == 1 + len(picks)
        for row in rows[1:]:
            assert len(row.per_set_uw) == 2
            assert row.per_set_pct is not None

    def test_pct_consistency_across_test_sets(self, facet_system, facet_grading):
        """Paper Table 3: the percentage increase is reasonably consistent
        from test set to test set.  Check the biggest-effect fault agrees
        within a few points between two seeds."""
        est = PowerEstimator(facet_system.netlist)
        picks = [facet_grading.graded[-1]]  # largest power effect
        rows = table3_rows(
            facet_system, est, facet_grading, picks, seeds=(0xACE1, 0xBEEF), n_patterns=256
        )
        pcts = rows[1].per_set_pct
        assert abs(pcts[0] - pcts[1]) < 6.0
