"""Tests for the DFT alternatives: scan chains, scan views, test points."""

import numpy as np
import pytest

from repro.core.pipeline import controller_fault_universe
from repro.dft.observe import insert_observation_muxes, translate_fault
from repro.dft.scan import (
    insert_scan_chain,
    map_fault_to_view,
    scan_fault_coverage,
    scan_view,
)
from repro.logic.simulator import CycleSimulator
from repro.netlist.gates import GateType


class TestScanChain:
    def test_chain_covers_all_controller_ffs(self, facet_system):
        chain = insert_scan_chain(facet_system.netlist, "ctrl")
        n_ffs = sum(
            1
            for g in facet_system.netlist.gates
            if g.gtype is GateType.DFF and g.tag.startswith("ctrl")
        )
        assert len(chain.chain) == n_ffs
        assert chain.added_gates == n_ffs + 1

    def test_shift_path_works(self, facet_system):
        chain = insert_scan_chain(facet_system.netlist, "ctrl")
        sim = CycleSimulator(chain.netlist, 1)
        nl = chain.netlist
        # Hold the machine in reset; shift a 1 through the whole chain.
        for name in ("reset", "start"):
            if nl.has_net(name):
                sim.drive_const(nl.net_id(name), 0)
        for name in facet_system.rtl.dfg.inputs:
            for i in range(4):
                sim.drive_const(nl.net_id(f"{name}[{i}]"), 0)
        sim.drive_const(chain.scan_en, 1)
        seen = []
        for cycle in range(len(chain.chain) + 2):
            sim.drive_const(chain.scan_in, 1 if cycle == 0 else 0)
            sim.settle()
            seen.append(int(sim.sample(chain.scan_out)[0]))
            sim.latch()
        # After N shifts the injected 1 sits in the last cell; one more
        # shift pushes it out again.
        n = len(chain.chain)
        assert seen[n] == 1
        assert seen[n + 1] == 0

    def test_functional_mode_unchanged(self, facet_system):
        """With scan_en=0 the scanned system behaves like the original."""
        chain = insert_scan_chain(facet_system.netlist, "ctrl")
        data = {k: np.arange(8) % 16 for k in facet_system.rtl.dfg.inputs}

        def run(netlist, extra=None):
            sim = CycleSimulator(netlist, 8)
            outs = []
            for cyc in range(14):
                sim.drive_const(netlist.net_id("reset"), 1 if cyc == 0 else 0)
                sim.drive_const(netlist.net_id("start"), 1)
                for name, vals in data.items():
                    for i in range(4):
                        sim.drive(netlist.net_id(f"{name}[{i}]"), (vals >> i) & 1)
                if extra:
                    extra(sim)
                sim.settle()
                sim.latch()
            bus = [netlist.net_id(f"dp/REG{facet_system.rtl.outputs['o1_out'][3:]}_q[{i}]")
                   for i in range(4)] if False else None
            return [tuple(sim.sample(o)) for o in netlist.outputs[:4]]

        base = run(facet_system.netlist)
        scanned = run(
            chain.netlist,
            extra=lambda sim: (
                sim.drive_const(chain.scan_en, 0),
                sim.drive_const(chain.scan_in, 0),
            ),
        )
        assert base == scanned


class TestScanView:
    def test_ffs_opened(self, facet_system):
        ctrl = facet_system.controller.netlist
        view = scan_view(ctrl, "ctrl")
        assert len(view.opened) == len(ctrl.sequential_gates())
        assert len(view.netlist.sequential_gates()) == 0

    def test_ppi_ppo_marked(self, facet_system):
        ctrl = facet_system.controller.netlist
        view = scan_view(ctrl, "ctrl")
        for q in view.ppi.values():
            assert q in view.netlist.inputs
        for d in view.ppo.values():
            assert d in view.netlist.outputs

    def test_fault_mapping(self, facet_system):
        ctrl = facet_system.controller.netlist
        view = scan_view(ctrl, "ctrl")
        universe = controller_fault_universe(facet_system)
        mapped = [map_fault_to_view(ctrl, view, s) for s in universe]
        # flip-flop pin faults map to None, the rest keep their pin/value
        assert any(m is None for m in mapped)
        for site, m in zip(universe, mapped):
            if m is not None:
                assert m.value == site.value and m.pin == site.pin

    def test_coverage_near_complete(self, facet_system):
        universe = controller_fault_universe(facet_system)
        cov, detected, total = scan_fault_coverage(
            facet_system.controller.netlist, universe, n_patterns=512
        )
        assert total == len(universe)
        assert cov > 0.95  # the paper: separately the halves test ~100%


class TestObservationMuxes:
    def test_overhead_reported(self, facet_system):
        obs = insert_observation_muxes(facet_system)
        report = obs.overhead_report()
        assert report["added_gates"] == len(facet_system.netlist.outputs)
        assert report["added_gate_pct"] > 0

    def test_normal_mode_passthrough(self, facet_system):
        obs = insert_observation_muxes(facet_system)
        sim = CycleSimulator(obs.netlist, 4)
        nl = obs.netlist
        data = {k: np.arange(4) + 1 for k in facet_system.rtl.dfg.inputs}
        for cyc in range(12):
            sim.drive_const(nl.net_id("reset"), 1 if cyc == 0 else 0)
            sim.drive_const(nl.net_id("start"), 1)
            sim.drive_const(obs.test_mode_net, 0)
            for name, vals in data.items():
                for i in range(4):
                    sim.drive(nl.net_id(f"{name}[{i}]"), (vals >> i) & 1)
            sim.settle()
            sim.latch()
        # In normal mode the observed pins carry the datapath outputs.
        base_outs = [nl.net_id(f"u/{facet_system.netlist.net_names[n]}")
                     if not nl.has_net(facet_system.netlist.net_names[n])
                     else nl.net_id(facet_system.netlist.net_names[n])
                     for n in facet_system.netlist.outputs]
        for pin, src in zip(obs.observed_outputs, base_outs):
            assert list(sim.sample(pin)) == list(sim.sample(src))

    def test_test_mode_exposes_control_lines(self, facet_system):
        obs = insert_observation_muxes(facet_system)
        sim = CycleSimulator(obs.netlist, 1)
        nl = obs.netlist
        for cyc in range(4):
            sim.drive_const(nl.net_id("reset"), 1 if cyc == 0 else 0)
            sim.drive_const(nl.net_id("start"), 1)
            sim.drive_const(obs.test_mode_net, 1)
            for name in facet_system.rtl.dfg.inputs:
                for i in range(4):
                    sim.drive_const(nl.net_id(f"{name}[{i}]"), 0)
            sim.settle()
            if cyc >= 1:
                for i, line in obs.observation_map.items():
                    ctl_name = facet_system.netlist.net_names[
                        facet_system.control_nets[line]
                    ]
                    net = (nl.net_id(ctl_name) if nl.has_net(ctl_name)
                           else nl.net_id(f"u/{ctl_name}"))
                    assert sim.sample(obs.observed_outputs[i])[0] == sim.sample(net)[0]
            sim.latch()

    def test_translate_fault(self, facet_system):
        obs = insert_observation_muxes(facet_system)
        site = controller_fault_universe(facet_system)[0]
        mapped = translate_fault(facet_system, obs, site)
        assert mapped.value == site.value
        assert mapped.pin == site.pin


class TestStrategyComparison:
    def test_rows_and_ordering(self, facet_system, facet_pipeline):
        from repro.core.grading import grade_sfr_faults
        from repro.core.teststrategies import compare_strategies

        grading = grade_sfr_faults(
            facet_system, facet_pipeline, batch_patterns=64, max_batches=3
        )
        rows = compare_strategies(
            facet_system, facet_pipeline, grading, n_patterns=256
        )
        by_name = {r.strategy: r for r in rows}
        scan = by_name["separate controller test (scan)"]
        integ = by_name["integrated logic test"]
        power = next(r for r in rows if r.strategy.startswith("integrated + power"))
        # The Dey et al. observation: integration degrades coverage.
        assert scan.coverage > integ.coverage
        # The paper's method recovers some of it without DFT.
        assert power.coverage >= integ.coverage
        assert not integ.requires_dft and not power.requires_dft
        assert scan.requires_dft
        for r in rows:
            assert 0.0 <= r.coverage <= 1.0
