"""Unit + property tests for the packed 3-valued logic planes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic import values as V

# 3-valued scalars: (zero_bit, one_bit); X = (0, 0).
ZERO, ONE, X = (1, 0), (0, 1), (0, 0)
TRIT = st.sampled_from([ZERO, ONE, X])


def _planes(scalar):
    z, o = scalar
    return np.array([z], dtype=np.uint64), np.array([o], dtype=np.uint64)


def _scalar(planes):
    z, o = int(planes[0][0]) & 1, int(planes[1][0]) & 1
    return (z, o)


def _ref_and(a, b):
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return X


def _ref_or(a, b):
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return X


def _ref_xor(a, b):
    if X in (a, b):
        return X
    return ONE if a != b else ZERO


def _ref_mux(s, a, b):
    if s == ZERO:
        return a
    if s == ONE:
        return b
    return a if a == b and a != X else X


class TestPacking:
    def test_num_words(self):
        assert V.num_words(1) == 1
        assert V.num_words(64) == 1
        assert V.num_words(65) == 2

    def test_num_words_rejects_zero(self):
        with pytest.raises(ValueError):
            V.num_words(0)

    def test_tail_mask(self):
        m = V.tail_mask(70)
        assert m[0] == np.uint64(2**64 - 1)
        assert m[1] == np.uint64(0b111111)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    def test_pack_unpack_roundtrip(self, bits):
        words = V.pack_bits(bits)
        assert list(V.unpack_bits(words, len(bits))) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    def test_popcount_matches_sum(self, bits):
        assert V.popcount(V.pack_bits(bits)) == sum(bits)


class TestOps:
    @given(TRIT, TRIT)
    def test_and(self, a, b):
        za, oa = _planes(a)
        zb, ob = _planes(b)
        assert _scalar(V.v_and2(za, oa, zb, ob)) == _ref_and(a, b)

    @given(TRIT, TRIT)
    def test_or(self, a, b):
        za, oa = _planes(a)
        zb, ob = _planes(b)
        assert _scalar(V.v_or2(za, oa, zb, ob)) == _ref_or(a, b)

    @given(TRIT, TRIT)
    def test_xor(self, a, b):
        za, oa = _planes(a)
        zb, ob = _planes(b)
        assert _scalar(V.v_xor2(za, oa, zb, ob)) == _ref_xor(a, b)

    @given(TRIT)
    def test_not_involution(self, a):
        z, o = _planes(a)
        z2, o2 = V.v_not(*V.v_not(z, o))
        assert _scalar((z2, o2)) == a

    @given(TRIT, TRIT, TRIT)
    def test_mux(self, s, a, b):
        zs, os = _planes(s)
        za, oa = _planes(a)
        zb, ob = _planes(b)
        assert _scalar(V.v_mux2(zs, os, za, oa, zb, ob)) == _ref_mux(s, a, b)

    @given(TRIT, TRIT, TRIT)
    def test_reduce_matches_pairwise(self, a, b, c):
        planes = [_planes(x) for x in (a, b, c)]
        got = _scalar(V.v_reduce(V.v_and2, planes))
        assert got == _ref_and(_ref_and(a, b), c)


class TestMasks:
    def test_known_mask(self):
        z, o = _planes(X)
        assert int(V.known_mask(z, o)[0]) == 0
        z, o = _planes(ONE)
        assert int(V.known_mask(z, o)[0]) == 1

    @given(TRIT, TRIT)
    def test_diff_mask_only_on_known_difference(self, a, b):
        za, oa = _planes(a)
        zb, ob = _planes(b)
        diff = int(V.diff_mask(za, oa, zb, ob)[0]) & 1
        expected = int(X not in (a, b) and a != b)
        assert diff == expected

    @given(TRIT, TRIT)
    def test_toggle_count(self, prev, cur):
        zp, op = _planes(prev)
        zc, oc = _planes(cur)
        expected = int(X not in (prev, cur) and prev != cur)
        assert V.toggle_count(zp, op, zc, oc) == expected
