"""Tests for the content-addressed campaign store (:mod:`repro.store`).

Covers the acceptance surface of the store subsystem: fingerprint
stability across processes, single-writer exclusion, corrupted-blob
degradation (recompute, never crash, violation logged), gc safety,
cold/warm bit-identity at the CLI level, journal retirement, chaos
quarantine-not-published, and the query/serve layers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.store.artifacts import ArtifactCorrupt, ArtifactStore, StoreLockError
from repro.store.cache import CampaignStore
from repro.store.fingerprint import (
    canonical_json,
    digest,
    netlist_fingerprint,
    stage_key,
)
from repro.store.query import query_campaigns, query_json
from repro.store.server import make_server

REPO_SRC = str(Path(repro.__file__).parents[1])


# ------------------------------------------------------------- fingerprints
def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": [2, {"y": 0, "x": 1}]}) == canonical_json(
        {"a": [2, {"x": 1, "y": 0}], "b": 1}
    )
    assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})
    assert digest({"a": [1, 2]}) != digest({"a": [2, 1]})  # list order is data


def test_canonical_json_rejects_nan():
    with pytest.raises(ValueError):
        canonical_json({"power": float("nan")})


_FP_SCRIPT = """
from repro.designs.catalog import cached_system
from repro.store.fingerprint import netlist_fingerprint, stage_key
system = cached_system("facet")
fp = netlist_fingerprint(system.netlist)
print(fp)
print(stage_key("faultsim", fp, {"n": 64, "nested": {"b": 2.5, "a": "x"}}))
"""


def test_fingerprint_stable_across_processes():
    """Keys must not depend on per-process state (hash seed, dict order):
    two fresh interpreters and the current one all agree."""

    def run_once() -> list[str]:
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env.pop("PYTHONHASHSEED", None)  # let each process pick its own
        out = subprocess.run(
            [sys.executable, "-c", _FP_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return out.stdout.split()

    first, second = run_once(), run_once()
    assert first == second
    from repro.designs.catalog import cached_system

    system = cached_system("facet")
    fp = netlist_fingerprint(system.netlist)
    assert fp == first[0]
    assert stage_key("faultsim", fp, {"n": 64, "nested": {"b": 2.5, "a": "x"}}) == first[1]


# ---------------------------------------------------------- artifact store
def test_put_get_roundtrip_and_dedup(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    payload = {"verdicts": {"a": [1, 2], "b": [0, -1]}}
    store.put("faultsim", "key-one", payload, design="facet", wall_s=1.5)
    store.put("faultsim", "key-two", payload, design="facet")  # same bytes
    assert store.get("key-one") == payload
    row = store.row("key-one")
    assert row.kind == "faultsim" and row.design == "facet" and row.wall_s == 1.5
    stats = store.stats()
    assert stats["artifacts"] == 2
    assert stats["blobs"] == 1  # content addressing dedups identical payloads
    assert store.get("missing") is None


def test_concurrent_writer_exclusion(tmp_path):
    """A second writer must fail fast (not deadlock, not interleave) while
    the first holds the store lock."""
    root = tmp_path / "store"
    first = ArtifactStore(root)
    second = ArtifactStore(root, lock_timeout=0.2)
    with first.writer():
        with pytest.raises(StoreLockError):
            second.put("faultsim", "k", {"v": 1})
    # lock released -> the same writer succeeds
    second.put("faultsim", "k", {"v": 1})
    assert second.get("k") == {"v": 1}


def _corrupt_blob(store: ArtifactStore, key: str) -> None:
    row = store.row(key)
    path = store._blob_path(row.blob_sha)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x40  # flip one bit mid-payload
    path.write_bytes(bytes(data))


def test_corrupted_blob_detected_and_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("grading", "k", {"baseline": 123.25})
    _corrupt_blob(store, "k")
    with pytest.raises(ArtifactCorrupt):
        store.get("k")
    # quarantined: the entry is gone, the next read is a clean miss and a
    # recompute can republish under the same key
    assert store.get("k") is None
    store.put("grading", "k", {"baseline": 123.25})
    assert store.get("k") == {"baseline": 123.25}


def test_campaign_store_degrades_corruption_to_logged_miss(tmp_path):
    store = CampaignStore(tmp_path / "store")
    store.artifacts.put("faultsim", "k", {"verdicts": {}})
    _corrupt_blob(store.artifacts, "k")
    assert store.lookup("faultsim", "k") is None  # miss, not a crash
    assert [v.check for v in store.violations] == ["store-blob-corrupt"]


def test_verify_reports_defects(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("report", "good", {"a": 1})
    store.put("report", "bad", {"b": 2})
    row = store.row("bad")
    store._blob_path(row.blob_sha).write_bytes(b"garbage")
    defects = store.verify()
    assert [d["key"] for d in defects] == ["bad"]
    assert defects[0]["defect"] == "hash-mismatch"


def test_gc_never_deletes_referenced_blobs(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("faultsim", "keep", {"v": 1}, design="facet")
    # plant an orphan blob (as a crashed publish would leave behind)
    orphan = store.root / "objects" / "zz" / ("z" * 64)
    orphan.parent.mkdir(parents=True)
    orphan.write_bytes(b"orphaned bytes")
    result = store.gc()
    assert result["removed_blobs"] == 1
    assert not orphan.exists()
    assert store.get("keep") == {"v": 1}  # referenced artifact untouched
    assert store.verify() == []


# ------------------------------------------------------- CLI cold/warm runs
def test_cli_cold_warm_bit_identity(tmp_path, capsys):
    """The acceptance loop: a warm store-backed grade replays faultsim and
    Monte-Carlo results from the store, reports a full stage hit ratio,
    and writes a byte-identical deterministic result report."""
    store_dir = str(tmp_path / "store")
    cold, warm = tmp_path / "cold.json", tmp_path / "warm.json"
    cold_rep, warm_rep = tmp_path / "cold-rep.json", tmp_path / "warm-rep.json"
    base = ["--patterns", "64", "--store-dir", store_dir]
    assert main(base + ["--result-json", str(cold), "--report-json", str(cold_rep), "grade", "facet"]) == 0
    capsys.readouterr()
    assert main(base + ["--result-json", str(warm), "--report-json", str(warm_rep), "grade", "facet"]) == 0
    out = capsys.readouterr().out
    assert "store: 3/3 stage hits" in out
    assert cold.read_bytes() == warm.read_bytes()
    warm_store = json.loads(warm_rep.read_text())["store"]
    assert warm_store["hit_ratio"] == 1.0
    assert [s["stage"] for s in warm_store["stages"]] == ["faultsim", "grading", "report"]
    assert all(s["hit"] for s in warm_store["stages"])
    # the cold run published all three stages
    cold_store = json.loads(cold_rep.read_text())["store"]
    assert all(s["published"] and not s["hit"] for s in cold_store["stages"])

    # corrupt the cached faultsim blob: the next run must fall back to
    # recompute, log the violation, and still produce identical results
    artifacts = ArtifactStore(store_dir)
    fs_key = next(r.key for r in artifacts.rows(kind="faultsim"))
    _corrupt_blob(artifacts, fs_key)
    again = tmp_path / "again.json"
    again_rep = tmp_path / "again-rep.json"
    assert main(base + ["--result-json", str(again), "--report-json", str(again_rep), "grade", "facet"]) == 0
    assert again.read_bytes() == cold.read_bytes()
    again_store = json.loads(again_rep.read_text())["store"]
    assert [v["check"] for v in again_store["violations"]] == ["store-blob-corrupt"]
    fs_stage = next(s for s in again_store["stages"] if s["stage"] == "faultsim")
    assert not fs_stage["hit"] and fs_stage["published"]  # recomputed + republished


def test_store_refresh_forces_recompute(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    base = ["--patterns", "64", "--store-dir", store_dir]
    assert main(base + ["classify", "facet"]) == 0
    capsys.readouterr()
    assert main(base + ["--store-refresh", "classify", "facet"]) == 0
    out = capsys.readouterr().out
    assert "0/2 stage hits" in out  # faultsim + report both recomputed


def test_cli_store_maintenance_commands(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert main(["--patterns", "64", "--store-dir", store_dir, "classify", "facet"]) == 0
    capsys.readouterr()
    assert main(["--store-dir", store_dir, "store", "stats"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["artifacts"] >= 2 and stats["orphan_blobs"] == 0
    assert main(["--store-dir", store_dir, "store", "gc"]) == 0
    capsys.readouterr()
    assert main(["--store-dir", store_dir, "store", "verify"]) == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True
    # maintenance without a store dir is a usage error
    assert main(["store", "stats"]) == 2


def test_journal_retired_once_published(tmp_path, capsys):
    """Checkpoint + store compose: once a completed campaign graduates
    into the store, its crash-recovery journal is set aside."""
    ckpt = tmp_path / "ckpt"
    rc = main(
        [
            "--patterns", "64",
            "--checkpoint-dir", str(ckpt),
            "--store-dir", str(tmp_path / "store"),
            "classify", "facet",
        ]
    )
    assert rc == 0
    assert not list(ckpt.glob("faultsim-*.jsonl"))
    assert len(list(ckpt.glob("faultsim-*.jsonl.published"))) == 1


def test_chaos_tainted_campaign_never_published(tmp_path, capsys):
    """Audit-quarantined results must not be served stale: a campaign that
    flagged integrity violations publishes nothing."""
    store_dir = tmp_path / "store"
    rc = main(
        [
            "--patterns", "64",
            "--chaos", "bitflip:1,seed:7",
            "--store-dir", str(store_dir),
            "grade", "facet",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "integrity violation" in out
    artifacts = ArtifactStore(store_dir)
    assert list(artifacts.rows()) == []  # nothing published, any kind


# ------------------------------------------------------------- query layer
def _fake_report(design: str = "facet", threshold: float = 0.05) -> dict:
    return {
        "schema": 1,
        "command": "grade",
        "design": design,
        "params": {},
        "counts": {"SFR": 2, "SFI-detected": 1},
        "table2": {
            "design": design, "total_faults": 3, "sfr_faults": 2, "pct_sfr": 66.7,
        },
        "faults": [
            {"fault": "1:out:5:0", "site": "g1", "category": "SFR", "quarantined": False},
            {"fault": "2:out:6:1", "site": "g2", "category": "SFR", "quarantined": False},
            {"fault": "3:out:7:0", "site": "g3", "category": "SFI-detected", "quarantined": False},
        ],
        "grading": {
            "fault_free_uw": 100.0,
            "threshold": threshold,
            "summary": {},
            "figure7": [],
            "graded": [
                {"fault": "1:out:5:0", "site": "g1", "group": "select",
                 "power_uw": 90.0, "pct": -10.0, "detected": True},
                {"fault": "2:out:6:1", "site": "g2", "group": "load",
                 "power_uw": 101.0, "pct": 1.0, "detected": False},
            ],
        },
    }


def _publish_fake(store: CampaignStore, design: str, threshold: float = 0.05) -> str:
    report = _fake_report(design, threshold)
    key = digest({"design": design, "threshold": threshold})
    store.publish("report", key, report, design=design, meta={"command": "grade"})
    return key


def test_query_filters(tmp_path):
    store = CampaignStore(tmp_path / "store")
    _publish_fake(store, "facet", 0.05)
    _publish_fake(store, "diffeq", 0.10)
    assert len(query_campaigns(store)) == 2
    assert [m.design for m in query_campaigns(store, design="facet")] == ["facet"]
    assert [m.design for m in query_campaigns(store, threshold=0.10)] == ["diffeq"]
    sfr = query_campaigns(store, verdict="SFR")
    assert all(len(m.faults) == 2 for m in sfr)
    power = query_campaigns(store, design="facet", verdict="power-detected")
    assert [f["fault"] for f in power[0].faults] == ["1:out:5:0"]
    missed = query_campaigns(store, design="facet", verdict="power-missed")
    assert [f["fault"] for f in missed[0].faults] == ["2:out:6:1"]
    rows = query_json(power)
    assert rows[0]["design"] == "facet" and rows[0]["matched_faults"] == 1


def test_cli_query(tmp_path, capsys):
    store_dir = tmp_path / "store"
    _publish_fake(CampaignStore(store_dir), "facet")
    assert main(["--store-dir", str(store_dir), "query", "--verdict", "SFR", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows[0]["design"] == "facet" and rows[0]["matched_faults"] == 2
    assert main(["--store-dir", str(store_dir), "query"]) == 0
    assert "Cached campaigns" in capsys.readouterr().out
    assert main(["query"]) == 2  # needs --store-dir


# ------------------------------------------------------------- serve layer
@pytest.fixture()
def serving(tmp_path):
    store = CampaignStore(tmp_path / "store")
    _publish_fake(store, "facet", 0.05)
    computed: list[str] = []

    def compute(design: str, threshold: float) -> dict:
        computed.append(design)
        report = _fake_report(design, threshold)
        store.publish("report", digest({"design": design, "threshold": threshold}),
                      report, design=design)
        return report

    server = make_server("127.0.0.1", 0, store, compute=compute,
                         designs=("facet", "diffeq"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, computed
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def test_serve_endpoints(serving):
    base, computed = serving
    assert _get(f"{base}/healthz") == (200, {"ok": True})

    status, campaigns = _get(f"{base}/campaigns")
    assert status == 200 and [c["design"] for c in campaigns] == ["facet"]

    status, report = _get(f"{base}/campaigns/facet")
    assert status == 200 and report["design"] == "facet"
    assert computed == []  # cached campaign served without computing

    status, faults = _get(f"{base}/campaigns/facet/faults?verdict=power-detected")
    assert status == 200 and [f["fault"] for f in faults] == ["1:out:5:0"]

    # miss -> compute-on-miss exactly once, then cached
    status, report = _get(f"{base}/campaigns/diffeq?threshold=0.05")
    assert status == 200 and report["design"] == "diffeq"
    _get(f"{base}/campaigns/diffeq?threshold=0.05")
    assert computed == ["diffeq"]

    status, stats = _get(f"{base}/stats")
    assert status == 200 and stats["computed"] == 1 and stats["served_cached"] >= 2

    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _get(f"{base}/campaigns/unknown-design")
    assert exc_info.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _get(f"{base}/campaigns/facet?threshold=2.0")
    assert exc_info.value.code == 400
