"""Catalog-wide engine equivalence sweep.

Every design in the catalog is driven through the three simulation
paths -- the compiled pattern-parallel :class:`CycleSimulator` (fresh
compile), the same simulator reusing a shared :class:`CompiledNetlist`
from the compile cache, and the scalar event-driven reference engine --
and their traces must be identical.  This is the integrity layer's
foundation: the differential audit is only meaningful if the paths it
compares are bit-identical on correct hardware.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import controller_fault_universe
from repro.designs.catalog import build_rtl, design_names
from repro.hls.system import NormalModeStimulus, build_system
from repro.logic.eventsim import crosscheck_compiled
from repro.logic.simulator import _COMPILE_CACHE, CycleSimulator, compile_netlist


def _system_and_stimulus(name: str):
    system = build_system(build_rtl(name))
    rng = np.random.default_rng(hash(name) % (2**32))
    data = {
        k: rng.integers(0, 1 << system.rtl.width, 4)
        for k in system.rtl.dfg.inputs
    }
    stim = NormalModeStimulus(system, data, system.cycles_for(2))
    observe = [n for bus in system.output_buses.values() for n in bus]
    return system, stim, observe


def _trace(netlist, stim, observe, fault=None, precompile: bool = False):
    """Per-cycle sampled values of the observed nets."""
    _COMPILE_CACHE.clear()
    if precompile:
        compile_netlist(netlist)  # simulator reuses the shared artifact
    sim = CycleSimulator(
        netlist, stim.n_patterns, faults=[fault] if fault else None
    )
    out = []
    for cycle in range(stim.n_cycles):
        stim.apply(sim, cycle)
        sim.settle()
        out.append([sim.sample(n).tolist() for n in observe])
        sim.latch()
    return out


@pytest.mark.parametrize("name", design_names())
def test_compiled_engine_matches_eventsim(name):
    """Compiled vs event-driven traces agree on every catalog design."""
    system, stim, observe = _system_and_stimulus(name)
    assert crosscheck_compiled(system.netlist, stim, observe) == -1


@pytest.mark.parametrize("name", design_names())
def test_engines_agree_under_an_injected_fault(name):
    system, stim, observe = _system_and_stimulus(name)
    fault = system.to_system_fault(controller_fault_universe(system)[0])
    assert crosscheck_compiled(system.netlist, stim, observe, fault=fault) == -1


@pytest.mark.parametrize("name", design_names())
def test_shared_compile_artifact_is_bit_identical(name):
    """A simulator reusing the compile cache traces exactly like a fresh one."""
    system, stim, observe = _system_and_stimulus(name)
    fresh = _trace(system.netlist, stim, observe, precompile=False)
    shared = _trace(system.netlist, stim, observe, precompile=True)
    assert fresh == shared


class _TwoFacedStimulus:
    """Drives one primary input *differently* into the two engines.

    ``crosscheck_compiled`` applies the stimulus to the compiled
    simulator first and the event-sim shim second each cycle; counting
    the apply calls lets this stimulus feed them opposite values of one
    PI from ``flip_cycle`` on, forcing a genuine divergence at a known
    cycle (PIs are sampled as driven -- settle never recomputes them).
    """

    def __init__(self, inner, pi_net: int, flip_cycle: int):
        self._inner = inner
        self._pi = pi_net
        self._flip_cycle = flip_cycle
        self._calls = 0
        self.n_patterns = inner.n_patterns
        self.n_cycles = inner.n_cycles

    def apply(self, sim, cycle: int) -> None:
        self._inner.apply(sim, cycle)
        second_engine = self._calls % 2 == 1
        self._calls += 1
        if cycle >= self._flip_cycle:
            sim.drive_const(self._pi, 1 if second_engine else 0)


def test_crosscheck_reports_first_divergent_cycle(facet_system):
    """A true divergence must be pinpointed to its first cycle."""
    system, stim, _ = _system_and_stimulus("facet")
    pi = system.netlist.inputs[0]
    two_faced = _TwoFacedStimulus(stim, pi, flip_cycle=2)
    assert crosscheck_compiled(system.netlist, two_faced, [pi]) == 2
