"""Unit + property tests for SOP technology mapping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.simulator import CycleSimulator
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.synth.cubes import Cube, cover_eval
from repro.synth.mapper import map_sop

N = 4
cube_st = st.builds(
    lambda care, sub: Cube(sub & care, care),
    st.integers(0, (1 << N) - 1),
    st.integers(0, (1 << N) - 1),
)


def _map_and_simulate(covers: dict, max_fanin=4, share_inverters=False):
    b = NetlistBuilder()
    var_nets = [b.input(f"v{i}") for i in range(N)]
    out_nets = {name: b.net(f"out_{name}") for name in covers}
    map_sop(b, var_nets, covers, out_nets, max_fanin=max_fanin,
            share_inverters=share_inverters)
    for n in out_nets.values():
        b.output(n)
    nl = b.done()
    sim = CycleSimulator(nl, 1 << N)
    for i, net in enumerate(var_nets):
        sim.drive(net, [(m >> i) & 1 for m in range(1 << N)])
    sim.settle()
    return nl, {name: sim.sample(net) for name, net in out_nets.items()}


class TestMapping:
    @given(st.lists(cube_st, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_with_cover_eval(self, cover):
        _, got = _map_and_simulate({"f": cover})
        for m in range(1 << N):
            assert got["f"][m] == int(cover_eval(cover, m))

    def test_empty_cover_is_const0(self):
        nl, got = _map_and_simulate({"f": []})
        assert (got["f"] == 0).all()
        assert any(g.gtype is GateType.CONST0 for g in nl.gates)

    def test_universal_cube_is_const1(self):
        nl, got = _map_and_simulate({"f": [Cube(0, 0)]})
        assert (got["f"] == 1).all()

    def test_single_literal_cover_gets_buffer(self):
        cover = [Cube.from_string("1---")]
        nl, got = _map_and_simulate({"f": cover})
        assert any(g.gtype is GateType.BUF for g in nl.gates)
        for m in range(16):
            assert got["f"][m] == (m & 1)

    def test_fanin_decomposition(self):
        # A 4-literal cube with max_fanin=2 forces an AND tree.
        cover = [Cube.from_string("1111")]
        nl, got = _map_and_simulate({"f": cover}, max_fanin=2)
        and_gates = [g for g in nl.gates if g.gtype is GateType.AND]
        assert len(and_gates) >= 2
        assert all(len(g.inputs) <= 2 for g in and_gates)
        assert got["f"][15] == 1 and got["f"][7] == 0

    def test_per_output_inverters_by_default(self):
        cover = [Cube.from_string("0---")]
        b = NetlistBuilder()
        var_nets = [b.input(f"v{i}") for i in range(N)]
        outs = {"f": b.net("f"), "g": b.net("g")}
        map_sop(b, var_nets, {"f": cover, "g": cover}, outs)
        n_inverters = sum(1 for g in b.netlist.gates if g.gtype is GateType.NOT)
        assert n_inverters == 2

    def test_shared_inverters_option(self):
        cover = [Cube.from_string("0---")]
        b = NetlistBuilder()
        var_nets = [b.input(f"v{i}") for i in range(N)]
        outs = {"f": b.net("f"), "g": b.net("g")}
        map_sop(b, var_nets, {"f": cover, "g": cover}, outs, share_inverters=True)
        n_inverters = sum(1 for g in b.netlist.gates if g.gtype is GateType.NOT)
        assert n_inverters == 1

    def test_gates_tagged(self):
        _, _ = _map_and_simulate({"f": [Cube.from_string("11--")]})
        b = NetlistBuilder()
        var_nets = [b.input(f"v{i}") for i in range(N)]
        map_sop(b, var_nets, {"f": [Cube.from_string("11--")]}, {"f": b.net("f")},
                tag="mytag")
        assert all(g.tag == "mytag" for g in b.netlist.gates)
