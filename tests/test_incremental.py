"""Incremental recompute: netlist diffing, fault-granular replay, reuse.

Covers the :mod:`repro.incremental` subsystem end to end:

* canonical (permutation-invariant) netlist fingerprints and the
  payload round-trip behind ``--baseline``;
* the structural diff engine, its typed delta, the scripted one-gate
  edit helpers and the 3-valued region equivalence certifier;
* Hypothesis properties -- self-diffs are empty, edits dirty exactly
  the right fault sites, renames dirty nothing;
* the full pipeline replay: an incremental run after a one-gate edit is
  byte-identical to a cold run of the edited design while re-simulating
  only a small dirty fraction, and rename-only edits additionally
  transfer Monte-Carlo grading powers.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import (
    PipelineConfig,
    controller_fault_universe,
    run_pipeline,
)
from repro.core.report import build_result_report, canonical_report_json
from repro.incremental import (
    apply_gate_edit,
    certify_delta,
    diff_netlists,
    edit_system_controller,
    grading_seed_results,
    pick_editable_gate,
)
from repro.incremental.netdiff import EDIT_MODES, RESTRUCTURE_MAP, RETYPE_MAP
from repro.incremental.replay import (
    project_dirty,
    resolve_baseline,
    structural_dirty_sites,
)
from repro.store.cache import CampaignStore
from repro.store.fingerprint import (
    netlist_fingerprint,
    netlist_from_payload,
    netlist_payload,
)

CONFIG = PipelineConfig(n_patterns=64, audit_rate=0.05)


def _classify_report(system, result) -> str:
    params = {
        "command": "classify",
        "design": result.design,
        "pipeline": CONFIG.fingerprint_params(),
    }
    return canonical_report_json(
        build_result_report(
            result, None, system=system, params=params, command="classify"
        )
    )


# ------------------------------------------------------- fingerprints


class TestCanonicalFingerprint:
    def test_permuted_netlist_fingerprints_identically(self, facet_system):
        """Gate insertion order must not leak into the fingerprint (v2)."""
        netlist = facet_system.netlist
        payload = netlist_payload(netlist)
        shuffled = dict(payload)
        shuffled["gates"] = list(reversed(payload["gates"]))
        permuted = netlist_from_payload(shuffled)
        assert netlist_fingerprint(permuted) == netlist_fingerprint(netlist)

    def test_renamed_gate_changes_fingerprint(self, facet_system):
        netlist = facet_system.controller.netlist
        gate = pick_editable_gate(facet_system, "rename")
        renamed = apply_gate_edit(netlist, gate, "rename")
        assert netlist_fingerprint(renamed) != netlist_fingerprint(netlist)

    def test_payload_round_trip(self, facet_system):
        netlist = facet_system.netlist
        clone = netlist_from_payload(netlist_payload(netlist))
        assert netlist_fingerprint(clone) == netlist_fingerprint(netlist)
        assert clone.net_names == netlist.net_names
        assert [g.name for g in clone.gates] == [g.name for g in netlist.gates]
        assert clone.inputs == netlist.inputs
        assert clone.outputs == netlist.outputs

    def test_payload_survives_json(self, facet_system, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(netlist_payload(facet_system.netlist)))
        clone = netlist_from_payload(json.loads(path.read_text()))
        assert netlist_fingerprint(clone) == netlist_fingerprint(
            facet_system.netlist
        )


# --------------------------------------------------------------- diff


class TestNetlistDiff:
    def test_self_diff_is_structurally_empty(self, facet_system):
        delta = diff_netlists(facet_system.netlist, facet_system.netlist)
        assert delta.structurally_empty
        assert not delta.io_changed
        assert len(delta.gate_map) == len(facet_system.netlist.gates)
        report = certify_delta(
            facet_system.netlist, facet_system.netlist, delta
        )
        assert report.equivalent and report.reason == "structurally-empty"

    def test_restructure_delta_and_certification(self, facet_system):
        system = facet_system
        gate = pick_editable_gate(system, "restructure")
        edited = edit_system_controller(system, gate, "restructure")
        delta = diff_netlists(system.netlist, edited.netlist)
        s = delta.summary()
        assert s["modified_gates"] == 1 and s["added_gates"] == 1
        assert not delta.io_changed
        report = certify_delta(system.netlist, edited.netlist, delta)
        assert report.equivalent, report.reason
        assert report.checked_patterns == 3**report.boundary_inputs

    def test_retype_is_not_certified(self, facet_system):
        system = facet_system
        gate = pick_editable_gate(system, "retype")
        edited = edit_system_controller(system, gate, "retype")
        delta = diff_netlists(system.netlist, edited.netlist)
        assert delta.summary()["modified_gates"] == 1
        report = certify_delta(system.netlist, edited.netlist, delta)
        assert not report.equivalent
        assert report.reason.startswith("region-diverges-at")

    def test_rename_matches_structurally(self, facet_system):
        system = facet_system
        gate = pick_editable_gate(system, "rename")
        edited = edit_system_controller(system, gate, "rename")
        delta = diff_netlists(system.netlist, edited.netlist)
        assert delta.structurally_empty
        assert delta.renamed_gates and delta.renamed_nets
        universe = [
            edited.to_system_fault(s) for s in controller_fault_universe(edited)
        ]
        dirty, _why = structural_dirty_sites(
            edited.netlist,
            delta,
            certify_delta(system.netlist, edited.netlist, delta),
            universe,
        )
        assert dirty == set()

    def test_stability_report(self, facet_system):
        system = facet_system
        edited = edit_system_controller(
            system, pick_editable_gate(system, "rename"), "rename"
        )
        stability = diff_netlists(system.netlist, edited.netlist).stability()
        assert stability.matched_fraction == 1.0
        assert stability.io_stable


class TestProjectDirty:
    def test_projection_bounds_replay(self, facet_system):
        system = facet_system
        edited = edit_system_controller(
            system, pick_editable_gate(system, "restructure"), "restructure"
        )
        sites = [
            edited.to_system_fault(s) for s in controller_fault_universe(edited)
        ]
        _delta, region, summary = project_dirty(system.netlist, edited, sites)
        assert region.equivalent
        assert 0.0 < summary["projected_dirty_fraction"] < 0.25


# --------------------------------------------------- hypothesis properties


def _eligible(system, mode):
    from repro.netlist.gates import is_constant, is_sequential

    netlist = system.controller.netlist
    table = RESTRUCTURE_MAP if mode == "restructure" else RETYPE_MAP
    out = []
    for g in netlist.gates:
        if mode == "rename":
            if not is_sequential(g.gtype) and not is_constant(g.gtype):
                out.append(g.name)
        elif g.gtype in table:
            out.append(g.name)
    return out


class TestDiffProperties:
    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_edit_dirties_exactly_the_edited_sites(self, facet_system, data):
        """diff(n, edit(n)) touches exactly the edited gates, nothing else."""
        system = facet_system
        mode = data.draw(st.sampled_from(EDIT_MODES))
        gates = _eligible(system, mode)
        gate = data.draw(st.sampled_from(gates))
        edited = edit_system_controller(system, gate, mode)
        delta = diff_netlists(system.netlist, edited.netlist)
        assert not delta.io_changed
        touched_names = {edited.netlist.gates[i].name for i in delta.touched_new}
        if mode == "rename":
            assert delta.structurally_empty
            assert touched_names == set()
        elif mode == "retype":
            assert touched_names == {f"ctrl/{gate}"}
        else:  # restructure: the rewritten gate plus its appended inverter
            assert touched_names == {f"ctrl/{gate}", f"ctrl/{gate}__inv"}

    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_rename_never_dirties_faults(self, facet_system, data):
        system = facet_system
        gate = data.draw(st.sampled_from(_eligible(system, "rename")))
        edited = edit_system_controller(system, gate, "rename")
        delta = diff_netlists(system.netlist, edited.netlist)
        region = certify_delta(system.netlist, edited.netlist, delta)
        sites = [
            edited.to_system_fault(s) for s in controller_fault_universe(edited)
        ]
        dirty, _ = structural_dirty_sites(edited.netlist, delta, region, sites)
        assert not dirty

    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_restructure_preserves_behavior(self, facet_system, data):
        """Every mapped restructure certifies: NAND+NOT == AND, 3-valued."""
        system = facet_system
        gate = data.draw(st.sampled_from(_eligible(system, "restructure")))
        edited = edit_system_controller(system, gate, "restructure")
        delta = diff_netlists(system.netlist, edited.netlist)
        report = certify_delta(system.netlist, edited.netlist, delta)
        assert report.equivalent, report.reason


# ------------------------------------------------------- pipeline replay


@pytest.fixture(scope="module")
def facet_campaign(facet_system, tmp_path_factory):
    """One cold store-backed facet campaign shared by the replay tests."""
    root = tmp_path_factory.mktemp("inc-store")
    store = CampaignStore(root)
    result = run_pipeline(facet_system, CONFIG, store=store)
    return root, result


class TestIncrementalReplay:
    def test_one_gate_edit_is_byte_identical_and_mostly_replayed(
        self, facet_system, facet_campaign
    ):
        root, _cold = facet_campaign
        system = facet_system
        edited = edit_system_controller(
            system, pick_editable_gate(system, "restructure"), "restructure"
        )
        reference = run_pipeline(edited, CONFIG)
        store = CampaignStore(root)
        inc = run_pipeline(edited, CONFIG, store=store, baseline=system.netlist)
        assert inc.incremental is not None
        assert inc.incremental["dirty_fraction"] < 0.25
        assert inc.incremental["region_equivalent"]
        assert inc.campaign.replayed == inc.incremental["reusable"] > 0
        assert any(
            p.stage == "faultsim-incremental" and p.hit for p in store.provenance
        )
        assert _classify_report(edited, inc) == _classify_report(
            edited, reference
        )

    def test_merged_campaign_graduates_to_stage_blob(
        self, facet_system, facet_campaign
    ):
        """A plain warm rerun of the edited design hits without a planner."""
        root, _cold = facet_campaign
        system = facet_system
        edited = edit_system_controller(
            system, pick_editable_gate(system, "restructure"), "restructure"
        )
        run_pipeline(
            edited, CONFIG, store=CampaignStore(root), baseline=system.netlist
        )
        warm_store = CampaignStore(root)
        warm = run_pipeline(edited, CONFIG, store=warm_store)
        assert warm.incremental is None
        assert any(
            p.stage == "faultsim" and p.hit for p in warm_store.provenance
        )

    def test_behavior_changing_edit_stays_honest(
        self, facet_system, facet_campaign
    ):
        """A retype flips verdicts; the planner must not replay stale ones."""
        root, _cold = facet_campaign
        system = facet_system
        edited = edit_system_controller(
            system, pick_editable_gate(system, "retype"), "retype"
        )
        reference = run_pipeline(edited, CONFIG)
        inc = run_pipeline(
            edited, CONFIG, store=CampaignStore(root), baseline=system.netlist
        )
        assert _classify_report(edited, inc) == _classify_report(
            edited, reference
        )

    def test_rename_transfers_grading_powers(self, facet_system, tmp_path):
        from repro.core.grading import grade_sfr_faults
        from repro.power.montecarlo import (
            MC_DEFAULT_BATCH_PATTERNS,
            MC_DEFAULT_ITERATIONS_WINDOW,
            MC_DEFAULT_SEED,
        )

        system = facet_system
        store = CampaignStore(tmp_path)
        cold = run_pipeline(system, CONFIG, store=store)
        graded = grade_sfr_faults(
            system, cold, store=store, audit_rate=0.0, max_batches=2
        )
        edited = edit_system_controller(
            system, pick_editable_gate(system, "rename"), "rename"
        )
        store2 = CampaignStore(tmp_path)
        inc = run_pipeline(
            edited, CONFIG, store=store2, baseline=system.netlist
        )
        assert inc.incremental_plan is not None
        seeds = grading_seed_results(
            store2,
            inc.incremental_plan,
            inc.design,
            [r.system_site for r in inc.sfr_records],
            MC_DEFAULT_SEED,
            MC_DEFAULT_BATCH_PATTERNS,
            2,
            MC_DEFAULT_ITERATIONS_WINDOW,
        )
        assert seeds is not None and len(seeds) == len(inc.sfr_records) + 1
        regraded = grade_sfr_faults(
            edited, inc, audit_rate=0.0, max_batches=2, seed_results=seeds
        )
        assert regraded.campaign.completed == 0
        assert sorted(g.power_uw for g in regraded.graded) == sorted(
            g.power_uw for g in graded.graded
        )

    def test_refresh_disables_replay(self, facet_system, facet_campaign):
        root, _cold = facet_campaign
        system = facet_system
        edited = edit_system_controller(
            system, pick_editable_gate(system, "restructure"), "restructure"
        )
        store = CampaignStore(root, refresh=True)
        inc = run_pipeline(edited, CONFIG, store=store, baseline=system.netlist)
        assert inc.incremental is None


class TestResolveBaseline:
    def test_netlist_passthrough(self, facet_system):
        assert (
            resolve_baseline(None, facet_system.netlist)
            is facet_system.netlist
        )

    def test_payload_path(self, facet_system, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(netlist_payload(facet_system.netlist)))
        loaded = resolve_baseline(None, str(path))
        assert netlist_fingerprint(loaded) == netlist_fingerprint(
            facet_system.netlist
        )

    def test_fingerprint_and_auto(self, facet_system, tmp_path):
        # A private store: the shared module store also holds edited
        # variants of facet, which "auto" would legitimately resolve to.
        store = CampaignStore(tmp_path)
        run_pipeline(facet_system, CONFIG, store=store)
        fp = netlist_fingerprint(facet_system.netlist)
        loaded = resolve_baseline(store, fp)
        assert loaded is not None and netlist_fingerprint(loaded) == fp
        auto = resolve_baseline(store, "auto", design="facet", exclude_fp="0" * 64)
        assert auto is not None and netlist_fingerprint(auto) == fp
        assert resolve_baseline(store, "auto", design="facet", exclude_fp=fp) is None

    def test_unresolvable_specs(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert resolve_baseline(store, "f" * 64) is None
        assert resolve_baseline(store, "no/such/file.json") is None
        assert resolve_baseline(store, "") is None
