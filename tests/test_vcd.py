"""Tests for the VCD waveform writer."""

import re

import numpy as np
import pytest

from repro.logic.simulator import CycleSimulator
from repro.logic.vcd import VcdTrace, _identifier, dump_system_run
from repro.netlist.builder import NetlistBuilder


def _toggler():
    b = NetlistBuilder("t")
    a = b.input("a")
    y = b.not_(a, output=b.net("y"))
    b.output(y)
    return b.done(), a, y


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        for s in ids:
            assert all(33 <= ord(c) <= 126 for c in s)


class TestTrace:
    def test_header_and_vars(self):
        nl, a, y = _toggler()
        trace = VcdTrace(nl)
        sim = CycleSimulator(nl, 1)
        sim.drive_const(a, 0)
        sim.settle()
        trace.sample(sim)
        text = trace.render()
        assert "$timescale 1ns $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert re.search(r"\$var wire 1 \S+ a \$end", text)

    def test_value_changes_recorded(self):
        nl, a, y = _toggler()
        trace = VcdTrace(nl, nets=[a, y], timescale_ns=10)
        sim = CycleSimulator(nl, 1)
        for bit in [0, 1, 1, 0]:
            sim.drive_const(a, bit)
            sim.settle()
            trace.sample(sim)
            sim.latch()
        text = trace.render()
        body = text.split("$enddefinitions $end")[1]
        # Time markers at cycles where something changed: 0, 10, 30 (and
        # the closing timestamp 40); nothing changed at cycle 2.
        times = re.findall(r"^#(\d+)$", body, flags=re.MULTILINE)
        assert times == ["0", "10", "30", "40"]
        # Inputs always driven: no unknown values in the dump.
        changes = re.findall(r"^([01x])\S+$", body, flags=re.MULTILINE)
        assert changes and "x" not in changes

    def test_x_values_rendered(self):
        nl, a, y = _toggler()
        trace = VcdTrace(nl, nets=[y])
        sim = CycleSimulator(nl, 1)
        sim.settle()  # a undriven -> y is X
        trace.sample(sim)
        body = trace.render().split("$enddefinitions $end")[1]
        assert "x" in body

    def test_default_net_selection_skips_generated_names(self):
        nl, a, y = _toggler()
        trace = VcdTrace(nl)
        names = [nl.net_names[n] for n in trace.nets]
        assert "a" in names and "y" in names


def test_dump_system_run(tmp_path, facet_system):
    data = {k: np.array([3]) for k in facet_system.rtl.dfg.inputs}
    path = tmp_path / "run.vcd"
    text = dump_system_run(
        facet_system, data, facet_system.cycles_for(1), str(path)
    )
    assert path.read_text() == text
    assert "$dumpvars" in text
    # control lines included by default
    assert re.search(r"\$var wire 1 \S+ ctl_LD1 \$end", text)
