"""Tests for the IDDQ model: blind to stuck-ats, sharp on bridges."""

import numpy as np

from repro.core.pipeline import controller_fault_universe
from repro.hls.system import NormalModeStimulus
from repro.power.iddq import BridgingFault, iddq_detectable, iddq_screen_bridges


def test_stuck_at_faults_never_iddq_detectable(facet_system):
    """The paper's Section-1 remark, over the whole fault universe."""
    for site in controller_fault_universe(facet_system):
        verdict = iddq_detectable(facet_system.netlist, site)
        assert not verdict.detectable
        assert "IDDQ unchanged" in verdict.reason


def test_bridge_between_complementary_nets_detected(facet_system):
    nl = facet_system.netlist
    # reset and start are driven to opposite values from cycle 1 onward.
    bridge = BridgingFault(nl.net_id("reset"), nl.net_id("start"))
    data = {k: np.zeros(4, dtype=int) for k in facet_system.rtl.dfg.inputs}
    stim = NormalModeStimulus(facet_system, data, facet_system.cycles_for(1))
    result = iddq_screen_bridges(nl, [bridge], stim)
    assert result[bridge]


def test_bridge_between_tied_nets_not_detected(facet_system):
    nl = facet_system.netlist
    # A net bridged to itself can never see opposite values.
    net = nl.net_id("start")
    bridge = BridgingFault(net, net)
    data = {k: np.zeros(4, dtype=int) for k in facet_system.rtl.dfg.inputs}
    stim = NormalModeStimulus(facet_system, data, facet_system.cycles_for(1))
    result = iddq_screen_bridges(nl, [bridge], stim)
    assert not result[bridge]


def test_bridge_describe(facet_system):
    nl = facet_system.netlist
    b = BridgingFault(nl.net_id("reset"), nl.net_id("start"))
    assert "reset" in b.describe(nl) and "start" in b.describe(nl)
