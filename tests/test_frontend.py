"""Tests for the behavioural text front end."""

import pytest

from repro.designs.catalog import DFG_BUILDERS
from repro.hls.frontend import BehaviorSyntaxError, format_behavior, parse_behavior

DIFFEQ_SRC = """
# forward-Euler differential equation solver
design diffeq
width 4
inputs x y u dx a
const three 3
m1 = three * x
m2 = m1 * u
m3 = m2 * dx
m4 = three * y
m5 = m4 * dx
m6 = u * dx
s1 = u - m3
u1 = s1 - m5
y1 = y + m6
x1 = x + dx
c = x1 < a
loop c
update x x1
update u u1
update y y1
output y_out y
"""


class TestParse:
    def test_parses_diffeq(self):
        dfg = parse_behavior(DIFFEQ_SRC)
        assert dfg.name == "diffeq"
        assert dfg.width == 4
        assert dfg.inputs == ["x", "y", "u", "dx", "a"]
        assert dfg.loop_condition == "c"
        assert set(dfg.loop_updates) == {"x", "u", "y"}

    def test_matches_coded_design_semantics(self):
        parsed = parse_behavior(DIFFEQ_SRC)
        coded = DFG_BUILDERS["diffeq"]()
        env = {"x": 1, "y": 2, "u": 3, "dx": 1, "a": 3}
        assert parsed.execute(env) == coded.execute(env)

    def test_all_operators(self):
        src = """
        inputs a b
        r1 = a + b
        r2 = a - b
        r3 = a * b
        r4 = a < b
        r5 = a & b
        r6 = a | b
        r7 = a ^ b
        s = r1 + r2
        t = r3 + r4
        v = r5 + r6
        w = r7 + s
        x2 = t + v
        final = w + x2
        output o final
        """
        dfg = parse_behavior(src)
        assert len(dfg.ops) == 13

    def test_hex_constants(self):
        dfg = parse_behavior("inputs a\nconst k 0xA\ns = a + k\noutput o s\n")
        assert dfg.constants["k"] == 10

    def test_comments_and_blank_lines(self):
        dfg = parse_behavior("\n# hi\ninputs a\n  # indented\ns = a + a\noutput o s\n")
        assert len(dfg.ops) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "src,match",
        [
            ("inputs a\ns = a +\noutput o s", "unparseable"),
            ("width four\ninputs a", "bad width"),
            ("inputs a\nconst k\ns = a + a\noutput o s", "const NAME VALUE"),
            ("inputs a\nconst k zz\ns = a + a\noutput o s", "bad constant"),
            ("inputs a\ns = a + a\nupdate x\noutput o s", "update VAR VALUE"),
            ("inputs a\ns = a + a\noutput o s t", "output PORT VALUE"),
            ("design\ninputs a\ns = a + a\noutput o s", "design needs a name"),
        ],
    )
    def test_syntax_errors(self, src, match):
        with pytest.raises(BehaviorSyntaxError, match=match):
            parse_behavior(src)

    def test_line_numbers_reported(self):
        try:
            parse_behavior("inputs a\nbogus line here\n")
        except BehaviorSyntaxError as exc:
            assert exc.lineno == 2
        else:
            pytest.fail("expected a syntax error")

    def test_semantic_errors_surface(self):
        with pytest.raises(BehaviorSyntaxError, match="unknown value"):
            parse_behavior("inputs a\ns = a + zzz\noutput o s\n")


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["diffeq", "facet", "poly"])
    def test_format_parse_roundtrip(self, name):
        original = DFG_BUILDERS[name]()
        text = format_behavior(original)
        again = parse_behavior(text)
        assert again.name == original.name
        assert again.inputs == original.inputs
        assert again.constants == original.constants
        assert [(o.name, o.kind, o.a, o.b) for o in again.ops] == [
            (o.name, o.kind, o.a, o.b) for o in original.ops
        ]
        assert again.outputs == original.outputs
        assert again.loop_condition == original.loop_condition
        assert again.loop_updates == original.loop_updates
