"""Tests for the repro-faults command line interface."""

import pytest

from repro.cli import main


def test_classify_facet(capsys):
    rc = main(["--patterns", "64", "classify", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 2 row" in out
    assert "SFR" in out


def test_stats(capsys):
    rc = main(["stats", "poly"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gates" in out and "DFFE" in out


def test_export_verilog(tmp_path, capsys):
    target = tmp_path / "facet.v"
    rc = main(["export", "facet", str(target)])
    assert rc == 0
    text = target.read_text()
    assert text.startswith("//")
    assert "endmodule" in text


def test_export_bench(tmp_path):
    target = tmp_path / "facet.bench"
    rc = main(["export", "facet", str(target)])
    assert rc == 0
    assert "INPUT(" in target.read_text()


def test_grade_facet(capsys):
    rc = main(["--patterns", "64", "grade", "facet", "--threshold", "0.05"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "Table 1" in out
    assert "detected by power test" in out


def test_bad_design_rejected():
    with pytest.raises(SystemExit):
        main(["classify", "nonexistent"])


@pytest.mark.parametrize(
    "argv",
    [
        ["--patterns", "0", "classify", "facet"],
        ["--patterns", "lots", "classify", "facet"],
        ["--jobs", "0", "classify", "facet"],
        ["--jobs", "-3", "classify", "facet"],
        ["--jobs", "many", "classify", "facet"],
        ["--width", "0", "classify", "facet"],
        ["--timeout", "-5", "classify", "facet"],
        ["--timeout", "0", "classify", "facet"],
        ["--max-retries", "-1", "classify", "facet"],
        ["grade", "facet", "--threshold", "0"],
        ["grade", "facet", "--threshold", "1.5"],
        ["dump-vcd", "facet", "out.vcd", "--seed", "-2"],
    ],
)
def test_bad_argument_values_rejected_by_argparse(argv, capsys):
    """Out-of-range knob values die in argparse, not deep in a campaign."""
    with pytest.raises(SystemExit) as exc_info:
        main(argv)
    assert exc_info.value.code == 2  # argparse usage error
    assert "usage:" in capsys.readouterr().err


def test_checkpoint_and_resume_roundtrip(tmp_path, capsys):
    """A checkpointed classify rerun with --resume skips every fault and
    says so, with identical Table-2 output."""
    base = ["--patterns", "64", "--checkpoint-dir", str(tmp_path)]
    assert main([*base, "classify", "facet"]) == 0
    first = capsys.readouterr().out
    assert main([*base, "--resume", "classify", "facet"]) == 0
    second = capsys.readouterr().out
    assert "resumed from checkpoint" in second
    assert list(tmp_path.glob("faultsim-*.jsonl"))
    # everything after the campaign-summary line is identical
    strip = lambda out: [l for l in out.splitlines() if "campaign" not in l]
    assert strip(first) == strip(second)


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_encoding_option(capsys):
    rc = main(["--encoding", "gray", "stats", "facet"])
    assert rc == 0


def test_datapath_command(capsys):
    rc = main(["--patterns", "64", "datapath", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "integrated datapath test" in out
    assert "hardest components" in out


def test_worstcase_command(capsys):
    rc = main(["worstcase", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worst case" in out


def test_compile_command(tmp_path, capsys):
    src = tmp_path / "beh.txt"
    src.write_text(
        "design mini\nwidth 4\ninputs a b\ns = a + b\np = s * b\noutput o p\n"
    )
    rc = main(["--patterns", "64", "compile", str(src)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mini:" in out and "fault buckets" in out


def test_dump_vcd_command(tmp_path, capsys):
    target = tmp_path / "wave.vcd"
    rc = main(["dump-vcd", "facet", str(target)])
    assert rc == 0
    assert "$enddefinitions" in target.read_text()


def test_strategies_command(capsys):
    rc = main(["--patterns", "64", "strategies", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Test strategy comparison" in out
    assert "integrated logic test" in out


@pytest.mark.parametrize(
    "argv",
    [
        ["--audit-rate", "1.0", "classify", "facet"],
        ["--audit-rate", "-0.1", "classify", "facet"],
        ["--audit-rate", "most", "classify", "facet"],
        ["--chaos", "explode:1", "classify", "facet"],
        ["--chaos", "crash:1.5", "classify", "facet"],
        ["--chaos", "bitflip:maybe", "classify", "facet"],
    ],
)
def test_bad_integrity_flags_rejected_by_argparse(argv, capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(argv)
    assert exc_info.value.code == 2
    assert "usage:" in capsys.readouterr().err


def test_chaos_hang_without_timeout_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["--chaos", "hang:0.5", "classify", "facet"])
    assert "timeout" in capsys.readouterr().err


def test_classify_reports_audit_and_writes_report_json(tmp_path, capsys):
    import json

    report = tmp_path / "report.json"
    rc = main(
        ["--patterns", "64", "--audit-rate", "0.25",
         "--report-json", str(report), "classify", "facet"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "audited" in out
    data = json.loads(report.read_text())
    assert data["clean"] is True
    assert data["total_violations"] == 0
    assert data["campaigns"]["faultsim"]["audited"] > 0


def test_chaos_bitflip_run_quarantines_and_reports(tmp_path, capsys):
    import json

    report = tmp_path / "chaos-report.json"
    rc = main(
        ["--patterns", "64", "--audit-rate", "0.5",
         "--chaos", "bitflip:1,seed:7", "--report-json", str(report),
         "classify", "facet"]
    )
    assert rc == 0  # quarantined, not fatal
    out = capsys.readouterr().out
    assert "integrity" in out
    data = json.loads(report.read_text())
    assert data["clean"] is False
    assert data["total_violations"] >= 1
    assert any(
        v["check"] == "faultsim-differential" for v in data["violations"]
    )


def test_strict_chaos_run_aborts(capsys):
    from repro.core.errors import IntegrityError

    with pytest.raises(IntegrityError, match="strict mode"):
        main(
            ["--patterns", "64", "--audit-rate", "0.5", "--strict",
             "--chaos", "bitflip:1,seed:7", "classify", "facet"]
        )
