"""Tests for the repro-faults command line interface."""

import pytest

from repro.cli import main


def test_classify_facet(capsys):
    rc = main(["--patterns", "64", "classify", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 2 row" in out
    assert "SFR" in out


def test_stats(capsys):
    rc = main(["stats", "poly"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gates" in out and "DFFE" in out


def test_export_verilog(tmp_path, capsys):
    target = tmp_path / "facet.v"
    rc = main(["export", "facet", str(target)])
    assert rc == 0
    text = target.read_text()
    assert text.startswith("//")
    assert "endmodule" in text


def test_export_bench(tmp_path):
    target = tmp_path / "facet.bench"
    rc = main(["export", "facet", str(target)])
    assert rc == 0
    assert "INPUT(" in target.read_text()


def test_grade_facet(capsys):
    rc = main(["--patterns", "64", "grade", "facet", "--threshold", "0.05"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "Table 1" in out
    assert "detected by power test" in out


def test_bad_design_rejected():
    with pytest.raises(SystemExit):
        main(["classify", "nonexistent"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_encoding_option(capsys):
    rc = main(["--encoding", "gray", "stats", "facet"])
    assert rc == 0


def test_datapath_command(capsys):
    rc = main(["--patterns", "64", "datapath", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "integrated datapath test" in out
    assert "hardest components" in out


def test_worstcase_command(capsys):
    rc = main(["worstcase", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worst case" in out


def test_compile_command(tmp_path, capsys):
    src = tmp_path / "beh.txt"
    src.write_text(
        "design mini\nwidth 4\ninputs a b\ns = a + b\np = s * b\noutput o p\n"
    )
    rc = main(["--patterns", "64", "compile", str(src)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mini:" in out and "fault buckets" in out


def test_dump_vcd_command(tmp_path, capsys):
    target = tmp_path / "wave.vcd"
    rc = main(["dump-vcd", "facet", str(target)])
    assert rc == 0
    assert "$enddefinitions" in target.read_text()


def test_strategies_command(capsys):
    rc = main(["--patterns", "64", "strategies", "facet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Test strategy comparison" in out
    assert "integrated logic test" in out
