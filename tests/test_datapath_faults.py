"""Tests for the integrated datapath-fault test."""

import pytest

from repro.core.datapath_faults import (
    datapath_fault_universe,
    integrated_datapath_test,
)
from repro.core.pipeline import controller_fault_universe
from repro.logic.faultsim import Verdict


@pytest.fixture(scope="module")
def facet_dp_result(facet_system):
    return integrated_datapath_test(facet_system, n_patterns=192)


class TestUniverse:
    def test_only_datapath_gates(self, facet_system):
        universe = datapath_fault_universe(facet_system)
        for site in universe:
            gate = facet_system.netlist.gates[site.gate_index]
            assert gate.tag.startswith("dp")

    def test_disjoint_from_controller_universe(self, facet_system):
        dp = set(datapath_fault_universe(facet_system))
        ctrl_sys = {
            facet_system.to_system_fault(s)
            for s in controller_fault_universe(facet_system)
        }
        assert not dp & ctrl_sys


class TestCoverage:
    def test_reasonable_integrated_coverage(self, facet_dp_result):
        """The paper's [17] claim: datapaths test acceptably through the
        integrated machine (far better than the controller's SFR gap)."""
        assert facet_dp_result.coverage() > 0.65

    def test_every_fault_has_verdict(self, facet_dp_result, facet_system):
        assert facet_dp_result.total == len(datapath_fault_universe(facet_system))
        assert all(isinstance(v, Verdict) for v in facet_dp_result.verdicts.values())

    def test_component_counts_sum(self, facet_dp_result):
        tot = sum(t for _, t in facet_dp_result.by_component.values())
        det = sum(d for d, _ in facet_dp_result.by_component.values())
        assert tot == facet_dp_result.total
        assert det == facet_dp_result.detected()

    def test_hardest_components_sorted(self, facet_dp_result):
        hardest = facet_dp_result.hardest_components(top=3)
        rates = [r for _, r in hardest]
        assert rates == sorted(rates)

    def test_strict_coverage_not_above_lenient(self, facet_dp_result):
        assert facet_dp_result.coverage(False) <= facet_dp_result.coverage(True)
