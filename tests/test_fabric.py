"""Tests for the replicated shard fabric (:mod:`repro.store.shards`,
:mod:`repro.store.fabric`) and its integration with the campaign cache.

Covers the robustness acceptance surface of the store layer: shard
placement properties, geometry persistence and flag reconciliation,
write-through replication, failover reads around deleted / locked /
corrupted shards with read repair, divergence vs. unavailability
classification, the anti-entropy scrub, rebalance and legacy-store
conversion, the shared/exclusive whole-pass store locks, and the
kill-a-node acceptance scenario (two serve processes over one fabric,
one SIGKILLed mid-campaign, zero client-visible failures and
bit-identical bodies).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.errors import CampaignError, ReplicaDivergence, ShardUnavailable
from repro.core.integrity import STORE_CORRUPT_CHECK
from repro.store.artifacts import ArtifactStore, StoreLockError
from repro.store.cache import CampaignStore
from repro.store.client import StoreClient
from repro.store.fabric import FabricStore
from repro.store.fingerprint import digest
from repro.store.shards import (
    MAX_SHARDS,
    ShardMap,
    load_geometry,
    resolve_geometry,
    save_geometry,
    shard_root,
)
from repro.testing.chaos import ServiceChaos


# ----------------------------------------------------------------- helpers
def _keys(n: int) -> list[str]:
    """Realistic store keys: canonical sha-256 fingerprints."""
    return [digest({"test-key": i}) for i in range(n)]


def _seed(fabric: FabricStore, n: int = 8) -> dict[str, dict]:
    payloads = {}
    for i, key in enumerate(_keys(n)):
        payloads[key] = {"design": "facet", "n": i}
        fabric.put("report", key, payloads[key], design="facet")
    return payloads


def _holders(fabric: FabricStore, key: str) -> list[int]:
    """Shard ids whose index currently has a row for ``key``."""
    return [i for i, s in enumerate(fabric.shards) if s.row(key) is not None]


# ---------------------------------------------------------- shard placement
def test_shard_map_placement_properties():
    smap = ShardMap(n_shards=5, n_replicas=3)
    for key in _keys(50):
        placement = smap.placement(key)
        assert len(placement) == 3
        assert len(set(placement)) == 3  # replicas on distinct shards
        assert placement[0] == smap.primary(key)
        assert all(0 <= s < 5 for s in placement)
        assert placement == smap.placement(key)  # pure / deterministic
    # the fingerprint prefix is the partition function
    key = _keys(1)[0]
    assert smap.primary(key) == int(key[:8], 16) % 5


def test_shard_map_caps_replicas_at_shard_count():
    # two copies of a key on one shard share a SQLite file and die
    # together: zero extra redundancy, so the cap is silent
    assert ShardMap(n_shards=2, n_replicas=5).copies == 2
    assert ShardMap(n_shards=2, n_replicas=5).placement("ab" * 32) != ()


def test_shard_map_hashes_non_fingerprint_keys():
    smap = ShardMap(n_shards=4, n_replicas=2)
    placement = smap.placement("not-a-fingerprint!")
    assert placement == smap.placement("not-a-fingerprint!")
    assert all(0 <= s < 4 for s in placement)


def test_shard_map_rejects_absurd_geometry():
    with pytest.raises(CampaignError):
        ShardMap(n_shards=0, n_replicas=1)
    with pytest.raises(CampaignError):
        ShardMap(n_shards=MAX_SHARDS + 1, n_replicas=1)
    with pytest.raises(CampaignError):
        ShardMap(n_shards=2, n_replicas=0)


# -------------------------------------------------------- geometry handling
def test_geometry_persists_and_resolves(tmp_path):
    root = tmp_path / "store"
    assert load_geometry(root) is None
    assert resolve_geometry(root) is None  # plain single-file store
    requested = resolve_geometry(root, 3, 2)
    assert requested == ShardMap(n_shards=3, n_replicas=2)
    save_geometry(root, requested)
    assert load_geometry(root) == requested
    # later opens need no flags: serve nodes and queries agree for free
    assert resolve_geometry(root) == requested
    assert resolve_geometry(root, 3, 2) == requested


def test_geometry_flag_mismatch_refuses_to_misplace(tmp_path):
    root = tmp_path / "store"
    save_geometry(root, ShardMap(n_shards=3, n_replicas=2))
    with pytest.raises(CampaignError, match="rebalance"):
        resolve_geometry(root, 4, 2)
    with pytest.raises(CampaignError, match="rebalance"):
        resolve_geometry(root, None, 3)


def test_fabric_refuses_a_plain_root_without_flags(tmp_path):
    with pytest.raises(ShardUnavailable, match="not a fabric"):
        FabricStore(tmp_path / "store")


# ------------------------------------------------------ replication basics
def test_put_writes_through_to_every_placement_shard(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=4, n_replicas=2)
    payloads = _seed(fabric, n=6)
    for key, payload in payloads.items():
        assert _holders(fabric, key) == sorted(fabric.map.placement(key))
        assert fabric.get(key) == payload
    stats = fabric.stats()
    assert stats["artifacts"] == 6  # unique keys, not physical copies
    assert stats["fabric"]["writes"] == 6
    assert stats["fabric"]["shards"] == 4 and stats["fabric"]["replicas"] == 2
    assert len(stats["shards"]) == 4


def test_rows_deduplicate_replicas(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=3, n_replicas=2)
    payloads = _seed(fabric, n=6)
    rows = list(fabric.rows())
    assert sorted(r.key for r in rows) == sorted(payloads)
    assert [r.key for r in rows] == [
        r.key for r in sorted(rows, key=lambda r: (r.created_at, r.key))
    ]


# ----------------------------------------------------------- failover reads
def test_deleted_shard_db_fails_over_and_read_repairs(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=3, n_replicas=2)
    payloads = _seed(fabric)
    key, payload = next(iter(payloads.items()))
    primary = fabric.map.placement(key)[0]
    ServiceChaos().delete_shard_db(fabric, primary)
    # the replica answers; the miss is repaired back onto the primary,
    # healing its wiped schema along the way
    assert fabric.get(key) == payload
    assert fabric.failovers >= 1
    assert fabric.read_repairs >= 1
    assert fabric.shards[primary].get(key) == payload
    # a later read is served by the healed primary without failover
    failovers = fabric.failovers
    assert fabric.get(key) == payload
    assert fabric.failovers == failovers


def test_locked_shard_fails_over_to_replica(tmp_path):
    # short lock timeout: the whole point of replication is to fail over
    # instead of queueing behind a wedged writer
    fabric = FabricStore(
        tmp_path / "store", n_shards=3, n_replicas=2, lock_timeout=0.2
    )
    payloads = _seed(fabric)
    key, payload = next(iter(payloads.items()))
    primary = fabric.map.placement(key)[0]
    release = ServiceChaos().lock_shard(fabric, primary)
    try:
        assert fabric.get(key) == payload
        assert fabric.failovers >= 1
    finally:
        release()
    assert fabric.get(key) == payload


def test_corrupt_primary_copy_is_quarantined_and_repaired(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=3, n_replicas=2)
    payloads = _seed(fabric)
    key, payload = next(iter(payloads.items()))
    primary = fabric.map.placement(key)[0]
    assert ServiceChaos().corrupt_shard_copy(fabric, key) is True
    assert fabric.get(key) == payload  # replica wins, CRC intact
    assert fabric.read_repairs >= 1
    # the primary's copy verifies again after read repair
    assert fabric.shards[primary].get(key) == payload


def test_every_replica_corrupt_raises_divergence(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=2, n_replicas=2)
    payloads = _seed(fabric, n=2)
    key = next(iter(payloads))
    chaos = ServiceChaos()
    for shard_id in fabric.map.placement(key):
        assert chaos.corrupt_shard_copy(fabric, key, shard_id=shard_id) is True
    with pytest.raises(ReplicaDivergence):
        fabric.get(key)
    # both bad copies were quarantined: the key is now an honest miss,
    # so the campaign layer recomputes and republishes a trusted copy
    assert fabric.get(key) is None


def test_no_reachable_replica_raises_shard_unavailable(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=2, n_replicas=2)
    payloads = _seed(fabric, n=2)
    key = next(iter(payloads))
    chaos = ServiceChaos()
    for shard_id in range(2):
        chaos.delete_shard_db(fabric, shard_id)
    with pytest.raises(ShardUnavailable):
        fabric.get(key)


def test_partially_replicated_key_degrades_to_a_miss(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=3, n_replicas=2)
    payloads = _seed(fabric, n=4)
    key = next(iter(payloads))
    primary, replica = fabric.map.placement(key)
    fabric._drop_row(primary, key)  # never replicated here (clean miss)
    ServiceChaos().delete_shard_db(fabric, replica)  # the copy is unreachable
    # absent on one shard + unreachable on the other: a miss (recompute
    # and republish), not a hard failure
    assert fabric.get(key) is None


def test_hedged_read_races_a_wedged_primary(tmp_path):
    fabric = FabricStore(
        tmp_path / "store",
        n_shards=3,
        n_replicas=2,
        lock_timeout=1.0,
        hedge_delay=0.05,
    )
    payloads = _seed(fabric)
    key, payload = next(iter(payloads.items()))
    primary = fabric.map.placement(key)[0]
    release = ServiceChaos().lock_shard(fabric, primary)
    try:
        t0 = time.monotonic()
        assert fabric.get(key) == payload
        # the replica's answer won the race long before the primary's
        # one-second lock timeout expired
        assert time.monotonic() - t0 < 1.0
        assert fabric.hedged >= 1
        assert fabric.hedge_wins >= 1
        assert fabric.failovers >= 1
    finally:
        release()


# ------------------------------------------------------------- anti-entropy
def test_scrub_restores_full_replication_after_shard_loss(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=3, n_replicas=2)
    payloads = _seed(fabric, n=9)
    chaos = ServiceChaos()
    chaos.delete_shard_db(fabric, 0)
    other_key = next(
        k for k in payloads if 0 not in fabric.map.placement(k)
    )
    assert chaos.corrupt_shard_copy(fabric, other_key) is True
    report = fabric.scrub()
    assert report["keys"] == 9
    assert report["repaired"] >= 1
    assert report["lost"] == []
    assert report["full_replication"] is True
    # idempotent: a second pass finds nothing to do
    second = fabric.scrub()
    assert second["repaired"] == 0 and second["full_replication"] is True
    # every copy of every key verifies again
    assert fabric.verify() == []
    for key, payload in payloads.items():
        assert _holders(fabric, key) == sorted(fabric.map.placement(key))
        assert fabric.get(key) == payload


def test_scrub_replaces_stranded_copies(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=3, n_replicas=2)
    payloads = _seed(fabric, n=3)
    key = next(iter(payloads))
    stray = next(
        s for s in range(3) if s not in fabric.map.placement(key)
    )
    fabric.shards[stray].put("report", key, payloads[key], design="facet")
    report = fabric.scrub()
    assert report["replaced"] == 1
    assert report["full_replication"] is True
    assert _holders(fabric, key) == sorted(fabric.map.placement(key))


def test_scrub_reports_lost_keys(tmp_path):
    fabric = FabricStore(tmp_path / "store", n_shards=2, n_replicas=1)
    payloads = _seed(fabric, n=4)
    key = next(iter(payloads))
    # single-replica fabric: corrupting the only copy loses the key
    assert ServiceChaos().corrupt_shard_copy(fabric, key) is True
    report = fabric.scrub()
    assert key in report["lost"]
    assert report["full_replication"] is False


# --------------------------------------------------- rebalance + conversion
def test_rebalance_migrates_every_key_to_the_new_geometry(tmp_path):
    root = tmp_path / "store"
    fabric = FabricStore(root, n_shards=2, n_replicas=2)
    payloads = _seed(fabric, n=10)
    info = fabric.rebalance(4, 2)
    assert info["keys"] == 10
    assert load_geometry(root) == ShardMap(n_shards=4, n_replicas=2)
    for key, payload in payloads.items():
        assert fabric.get(key) == payload
        assert _holders(fabric, key) == sorted(fabric.map.placement(key))
    assert fabric.scrub()["full_replication"] is True
    # a later flag-less open sees the new geometry
    reopened = FabricStore(root)
    assert reopened.map == ShardMap(n_shards=4, n_replicas=2)
    assert reopened.get(next(iter(payloads))) is not None


def test_convert_legacy_single_file_store(tmp_path):
    root = tmp_path / "store"
    legacy = ArtifactStore(root)
    keys = _keys(5)
    for i, key in enumerate(keys):
        legacy.put("report", key, {"n": i}, design="facet")
    fabric, info = FabricStore.convert(root, 3, 2)
    assert info["migrated"] == 5
    assert load_geometry(root) == ShardMap(n_shards=3, n_replicas=2)
    for i, key in enumerate(keys):
        assert fabric.get(key) == {"n": i}
        assert _holders(fabric, key) == sorted(fabric.map.placement(key))
    # the legacy index is left in place (delete once satisfied), but a
    # fresh open is fabric-shaped from now on
    assert (root / "index.db").exists()
    assert CampaignStore(root).is_fabric


# --------------------------------------------------- campaign-cache bridge
def test_campaign_store_autodetects_fabric_roots(tmp_path):
    root = tmp_path / "store"
    store = CampaignStore(root, shards=3, replicas=2)
    assert store.is_fabric
    key = _keys(1)[0]
    assert store.publish("report", key, {"design": "facet"}, design="facet")
    # reopened without flags: fabric.json is the source of truth
    warm = CampaignStore(root)
    assert warm.is_fabric
    assert warm.lookup("report", key) == {"design": "facet"}
    assert not CampaignStore(tmp_path / "plain").is_fabric


def test_campaign_store_degrades_divergence_to_violation(tmp_path):
    store = CampaignStore(tmp_path / "store", shards=2, replicas=2)
    key = _keys(1)[0]
    store.publish("report", key, {"design": "facet"}, design="facet")
    chaos = ServiceChaos()
    for shard_id in store.artifacts.map.placement(key):
        assert chaos.corrupt_shard_copy(store.artifacts, key, shard_id=shard_id)
    assert store.lookup("report", key) is None  # miss, not a crash
    assert store.violations and store.violations[0].check == STORE_CORRUPT_CHECK


def test_campaign_store_degrades_unavailable_fabric_to_miss(tmp_path):
    store = CampaignStore(tmp_path / "store", shards=2, replicas=2)
    key = _keys(1)[0]
    store.publish("report", key, {"design": "facet"}, design="facet")
    chaos = ServiceChaos()
    for shard_id in range(2):
        chaos.delete_shard_db(store.artifacts, shard_id)
    assert store.lookup("report", key) is None
    assert store.violations == []  # unavailability is not corruption


# --------------------------------------- gc/verify vs publish (shared lock)
def test_reader_lock_blocks_writers_for_the_whole_pass(tmp_path):
    store = ArtifactStore(tmp_path / "store", lock_timeout=0.1)
    store.put("report", _keys(1)[0], {"n": 0})
    with store.reader():
        # a publish cannot land mid-verify: the maintenance pass owns
        # the store until it releases the shared lock
        with pytest.raises(StoreLockError):
            store.put("report", _keys(2)[1], {"n": 1})
        # and gc (an exclusive whole-pass writer) cannot start either
        with pytest.raises(StoreLockError):
            store.gc()


def test_reader_locks_are_shared(tmp_path):
    store = ArtifactStore(tmp_path / "store", lock_timeout=0.1)
    store.put("report", _keys(1)[0], {"n": 0})
    with store.reader():
        with store.reader():  # two scrubbers/verifiers coexist
            assert store.verify() == []


def test_writer_lock_blocks_scrub_readers(tmp_path):
    store = ArtifactStore(tmp_path / "store", lock_timeout=0.1)
    with store.writer():
        with pytest.raises(StoreLockError):
            with store.reader():
                pass  # pragma: no cover - the acquire raises


# --------------------------------------------------------------------- CLI
def test_cli_creates_scrubs_and_rebalances_a_fabric(tmp_path, capsys):
    root = str(tmp_path / "store")
    store = CampaignStore(root, shards=3, replicas=2)
    for i, key in enumerate(_keys(4)):
        store.publish("report", key, {"n": i}, design="facet")

    assert main(["--store-dir", root, "store", "stats"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["fabric"]["shards"] == 3 and stats["artifacts"] == 4

    ServiceChaos().delete_shard_db(store.artifacts, 1)
    assert main(["--store-dir", root, "store", "scrub"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["full_replication"] is True

    assert main(["--store-dir", root, "--shards", "4", "--replicas", "2",
                 "store", "rebalance"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["converted"] is False and out["keys"] == 4
    assert load_geometry(root) == ShardMap(n_shards=4, n_replicas=2)


def test_cli_scrub_requires_a_fabric(tmp_path, capsys):
    root = str(tmp_path / "store")
    ArtifactStore(root).put("report", _keys(1)[0], {"n": 0})
    assert main(["--store-dir", root, "store", "scrub"]) == 2
    assert "rebalance" in capsys.readouterr().err


def test_cli_rebalance_converts_a_legacy_store(tmp_path, capsys):
    root = str(tmp_path / "store")
    legacy = ArtifactStore(root)
    for i, key in enumerate(_keys(3)):
        legacy.put("report", key, {"n": i}, design="facet")
    assert main(["--store-dir", root, "--shards", "3",
                 "store", "rebalance"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["converted"] is True and out["migrated"] == 3
    assert CampaignStore(root).is_fabric


# ----------------------------------------------- kill-a-node (acceptance)
def _report(design: str, threshold: float) -> dict:
    return {
        "schema": 1,
        "command": "grade",
        "design": design,
        "params": {},
        "counts": {"SFR": 1},
        "table2": {"design": design, "total_faults": 2,
                   "sfr_faults": 1, "pct_sfr": 50.0},
        "faults": [
            {"fault": "1:out:5:0", "site": "g1", "category": "SFR",
             "quarantined": False},
        ],
        "grading": {
            "fault_free_uw": 100.0,
            "threshold": threshold,
            "summary": {},
            "figure7": [],
            "graded": [],
        },
    }


def _spawn_serve(root: Path) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-c",
            "from repro.cli import main; raise SystemExit(main())",
            "--store-dir", str(root),
            "serve", "--port", "0", "--no-compute",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"on (http://[0-9.]+:\d+)", line)
    assert match, f"serve did not announce its address: {line!r}"
    return proc, match.group(1)


def _raw_get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.read()


def _wait_ready(base: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if json.loads(_raw_get(f"{base}/readyz")).get("ready"):
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError(f"{base} never became ready")


def test_kill_a_node_zero_failures_bit_identical(tmp_path):
    """The issue's acceptance scenario: two serve nodes over one
    3-shard/2-replica fabric; one node is SIGKILLed mid-campaign and one
    shard database is destroyed, yet the multi-endpoint client sees zero
    failed requests and byte-identical result bodies throughout, and a
    scrub reports the fabric back at full replication."""
    root = tmp_path / "store"
    store = CampaignStore(root, shards=3, replicas=2)
    key = digest({"design": "facet", "threshold": 0.05})
    store.publish("report", key, _report("facet", 0.05), design="facet",
                  meta={"command": "grade"})

    procs = []
    try:
        node_a, base_a = _spawn_serve(root)
        procs.append(node_a)
        node_b, base_b = _spawn_serve(root)
        procs.append(node_b)
        _wait_ready(base_a)
        _wait_ready(base_b)

        client = StoreClient(
            [base_a, base_b], timeout=10, backoff=0.05, jitter=0.0
        )
        url = "campaigns/facet?threshold=0.05"
        before = json.dumps(
            client.request(url), indent=2, allow_nan=False
        ).encode()
        assert json.loads(before)["design"] == "facet"

        node_a.kill()  # SIGKILL, mid-campaign: no drain, no goodbye
        node_a.wait(timeout=10)
        for _ in range(5):
            after = json.dumps(
                client.request(url), indent=2, allow_nan=False
            ).encode()
            assert after == before  # bit-identical across the failover

        # byte-level check straight off the surviving node's socket
        assert _raw_get(f"{base_b}/{url}") == before

        # now lose a shard out from under the survivor: the fabric
        # fails over to the replica and the request still succeeds
        fabric = FabricStore(root)
        primary = fabric.map.placement(key)[0]
        ServiceChaos().delete_shard_db(fabric, primary)
        assert _raw_get(f"{base_b}/{url}") == before

        # the fabric endpoint on the survivor reports the topology
        topo = json.loads(_raw_get(f"{base_b}/fabric"))
        assert topo["shards"] == 3 and topo["replicas"] == 2
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)

    # anti-entropy on restart: the scrubbed fabric is whole again
    assert main(["--store-dir", str(root), "store", "scrub"]) == 0
    assert FabricStore(root).scrub()["full_replication"] is True
