"""Ablation A4 -- the gated-clock assumption behind the power test.

Section 4 of the paper: "in the case of SFR faults affecting register
load lines, we are guaranteed that power consumption will increase ...
In essence, such a fault undermines the gated clock scheme used for low
power design."  The guarantee comes from the register style: an
enable-gated flip-flop burns clock energy only when it loads.

This bench rebuilds Diffeq with free-running register clocks (recirculating
mux + plain DFF) and re-grades the same SFR faults.  The expected collapse:
without clock gating an extra load costs only the data-dependent toggles,
so the load-fault power signal shrinks dramatically and fewer faults cross
the 5% band.
"""

from repro.core.grading import grade_sfr_faults
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.report import render_table
from repro.designs.catalog import build_rtl
from repro.hls.system import build_system

from _config import MC_BATCH, PATTERNS


def test_gated_clock_ablation(benchmark, save_result):
    rtl = build_rtl("diffeq")

    def run():
        out = {}
        for gated in (True, False):
            system = build_system(rtl, gated_clocks=gated)
            result = run_pipeline(system, PipelineConfig(n_patterns=PATTERNS))
            grading = grade_sfr_faults(
                system, result, batch_patterns=MC_BATCH, max_batches=3
            )
            out[gated] = (result, grading)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for gated, (result, grading) in out.items():
        s = grading.summary()
        loads = grading.group("load")
        mean_load_pct = sum(g.pct_change for g in loads) / max(1, len(loads))
        rows.append(
            [
                "gated (DFFE)" if gated else "free-running (mux+DFF)",
                f"{grading.fault_free_uw:.1f}",
                str(s["n_load"]),
                f"{mean_load_pct:+.2f}%",
                f"{s['load_detected']}/{s['n_load']}",
            ]
        )
    save_result(
        "gated_clocks",
        render_table(
            ["Register style", "Fault-free uW", "Load SFR", "Mean load effect", "Detected@5%"],
            rows,
            title="A4 -- clock gating vs the power test's load-fault signal (Diffeq)",
        ),
    )

    gated_result, gated_grading = out[True]
    free_result, free_grading = out[False]
    # The controller (and hence the SFR set) is unchanged by register style.
    assert {r.site for r in gated_result.sfr_records} == {
        r.site for r in free_result.sfr_records
    }

    def mean_load(g):
        loads = g.group("load")
        return sum(x.pct_change for x in loads) / max(1, len(loads))

    # The load-fault power signal collapses without clock gating.
    assert mean_load(free_grading) < 0.5 * mean_load(gated_grading)
    assert (
        free_grading.summary()["load_detected"]
        <= gated_grading.summary()["load_detected"]
    )
