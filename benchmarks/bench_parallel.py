"""Serial-vs-parallel scaling of the fault-parallel engine.

Times the two fan-out stages of the pipeline -- fault simulation and
Monte-Carlo power grading -- at increasing ``n_jobs``, verifies the
results stay bit-identical, and records the wall-clock table in
``benchmarks/results/parallel.txt``.  On a single-core host the parallel
rows only show process overhead; the bit-identity assertions are the
point there.
"""

import os
import time

import numpy as np

from repro.core.grading import grade_sfr_faults
from repro.core.pipeline import controller_fault_universe
from repro.hls.system import NormalModeStimulus, hold_masks
from repro.logic.faultsim import fault_simulate
from repro.tpg.tpgr import TPGR

from _config import MC_BATCH, MC_MAX_BATCHES, PATTERNS

JOB_COUNTS = (1, 2, 4)


def _fault_sim_once(system, n_jobs):
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=0xACE1)
    data = {k: np.asarray(v) for k, v in tpgr.generate(PATTERNS).items()}
    stim = NormalModeStimulus(system, data, system.cycles_for(4))
    masks = hold_masks(system, stim)
    observe = [n for bus in system.output_buses.values() for n in bus]
    faults = [system.to_system_fault(s) for s in controller_fault_universe(system)]
    t0 = time.perf_counter()
    result = fault_simulate(
        system.netlist, faults, stim, observe=observe, valid_masks=masks, n_jobs=n_jobs
    )
    return time.perf_counter() - t0, result


def test_parallel_scaling(systems, pipelines, save_result):
    system = systems["diffeq"]
    lines = [
        "parallel scaling (diffeq)",
        f"host cores: {os.cpu_count()}",
        "",
        f"{'stage':<16}{'n_jobs':>8}{'wall s':>10}{'speedup':>10}",
    ]

    base_time, base_result = None, None
    for n_jobs in JOB_COUNTS:
        elapsed, result = _fault_sim_once(system, n_jobs)
        if base_result is None:
            base_time, base_result = elapsed, result
        assert result.verdicts == base_result.verdicts
        assert result.detect_cycle == base_result.detect_cycle
        lines.append(
            f"{'fault_sim':<16}{n_jobs:>8}{elapsed:>10.2f}{base_time / elapsed:>10.2f}"
        )

    base_time, base_grading = None, None
    for n_jobs in JOB_COUNTS:
        t0 = time.perf_counter()
        grading = grade_sfr_faults(
            system,
            pipelines["diffeq"],
            batch_patterns=MC_BATCH,
            max_batches=MC_MAX_BATCHES,
            n_jobs=n_jobs,
        )
        elapsed = time.perf_counter() - t0
        if base_grading is None:
            base_time, base_grading = elapsed, grading
        assert grading.fault_free_uw == base_grading.fault_free_uw
        assert [
            (g.power_uw, g.pct_change, g.group) for g in grading.graded
        ] == [(g.power_uw, g.pct_change, g.group) for g in base_grading.graded]
        lines.append(
            f"{'grading':<16}{n_jobs:>8}{elapsed:>10.2f}{base_time / elapsed:>10.2f}"
        )

    lines += ["", "all rows bit-identical to the n_jobs=1 baseline"]
    save_result("parallel", "\n".join(lines))
