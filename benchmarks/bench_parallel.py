"""Serial-vs-parallel scaling of the fault-parallel engine.

Times the two fan-out stages of the pipeline -- fault simulation and
Monte-Carlo power grading -- at increasing ``n_jobs``, compares the
cone-restricted engine against the unrestricted one on the same
campaign, verifies the results stay bit-identical, and records the
wall-clock table in ``benchmarks/results/parallel.txt``.  On a
single-core host the parallel rows only show process overhead; the
bit-identity assertions are the point there.
"""

import os
import time

import numpy as np

from repro.core.grading import grade_sfr_faults
from repro.core.pipeline import controller_fault_universe
from repro.hls.system import NormalModeStimulus, hold_masks
from repro.logic.faultsim import fault_simulate
from repro.store.cache import CampaignStore
from repro.store.fingerprint import netlist_fingerprint, stage_key
from repro.tpg.tpgr import TPGR

from _config import MC_BATCH, MC_MAX_BATCHES, PATTERNS

JOB_COUNTS = (1, 2, 4)


def _fault_sim_once(system, n_jobs, store=None, cone_sim=True, audit_rate=None):
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=0xACE1)
    data = {k: np.asarray(v) for k, v in tpgr.generate(PATTERNS).items()}
    stim = NormalModeStimulus(system, data, system.cycles_for(4))
    masks = hold_masks(system, stim)
    observe = [n for bus in system.output_buses.values() for n in bus]
    faults = [system.to_system_fault(s) for s in controller_fault_universe(system)]
    store_key = None
    if store is not None:
        store_key = stage_key(
            "faultsim",
            netlist_fingerprint(system.netlist),
            {"bench": "parallel", "patterns": PATTERNS},
        )
    kwargs = {} if audit_rate is None else {"audit_rate": audit_rate}
    t0 = time.perf_counter()
    result = fault_simulate(
        system.netlist,
        faults,
        stim,
        observe=observe,
        valid_masks=masks,
        n_jobs=n_jobs,
        store=store,
        store_key=store_key,
        cone_sim=cone_sim,
        **kwargs,
    )
    return time.perf_counter() - t0, result


def test_parallel_scaling(systems, pipelines, save_result, save_json, tmp_path):
    system = systems["diffeq"]
    lines = [
        "parallel scaling (diffeq)",
        f"host cores: {os.cpu_count()}",
        "",
        f"{'stage':<16}{'n_jobs':>8}{'wall s':>10}{'speedup':>10}",
    ]

    metrics = {"bench": "parallel", "design": "diffeq", "host_cores": os.cpu_count(),
               "patterns": PATTERNS, "stages": []}
    base_time, base_result = None, None
    for n_jobs in JOB_COUNTS:
        elapsed, result = _fault_sim_once(system, n_jobs)
        if base_result is None:
            base_time, base_result = elapsed, result
        assert result.verdicts == base_result.verdicts
        assert result.detect_cycle == base_result.detect_cycle
        lines.append(
            f"{'fault_sim':<16}{n_jobs:>8}{elapsed:>10.2f}{base_time / elapsed:>10.2f}"
        )
        metrics["stages"].append(
            {
                "stage": "fault_sim",
                "n_jobs": n_jobs,
                "wall_s": elapsed,
                "faults_per_s": len(result.verdicts) / elapsed,
            }
        )

    base_time, base_grading = None, None
    for n_jobs in JOB_COUNTS:
        t0 = time.perf_counter()
        grading = grade_sfr_faults(
            system,
            pipelines["diffeq"],
            batch_patterns=MC_BATCH,
            max_batches=MC_MAX_BATCHES,
            n_jobs=n_jobs,
        )
        elapsed = time.perf_counter() - t0
        if base_grading is None:
            base_time, base_grading = elapsed, grading
        assert grading.fault_free_uw == base_grading.fault_free_uw
        assert [
            (g.power_uw, g.pct_change, g.group) for g in grading.graded
        ] == [(g.power_uw, g.pct_change, g.group) for g in base_grading.graded]
        lines.append(
            f"{'grading':<16}{n_jobs:>8}{elapsed:>10.2f}{base_time / elapsed:>10.2f}"
        )
        metrics["stages"].append(
            {
                "stage": "grading",
                "n_jobs": n_jobs,
                "wall_s": elapsed,
                "faults_per_s": len(pipelines["diffeq"].sfr_records) / elapsed,
            }
        )

    # Grading kernel: the serial per-fault reference vs the block-parallel
    # kernel, flat and cone-restricted, all bit-identical by contract.
    n_sfr = len(pipelines["diffeq"].sfr_records)
    kernel_rows = {}
    for label, kwargs in (
        ("serial", dict(batched=False)),
        ("batched_flat", dict(batched=True, cone_power=False)),
        ("batched_cone", dict(batched=True, cone_power=True)),
    ):
        t0 = time.perf_counter()
        grading = grade_sfr_faults(
            system,
            pipelines["diffeq"],
            batch_patterns=MC_BATCH,
            max_batches=MC_MAX_BATCHES,
            audit_rate=0.0,
            **kwargs,
        )
        elapsed = time.perf_counter() - t0
        assert grading.fault_free_uw == base_grading.fault_free_uw
        assert [
            (g.power_uw, g.pct_change, g.group) for g in grading.graded
        ] == [(g.power_uw, g.pct_change, g.group) for g in base_grading.graded]
        kernel_rows[label] = {"wall_s": elapsed, "faults_per_s": n_sfr / elapsed}

    fault_sim_fps = next(
        s["faults_per_s"]
        for s in metrics["stages"]
        if s["stage"] == "fault_sim" and s["n_jobs"] == 1
    )
    grading_fps = kernel_rows["batched_cone"]["faults_per_s"]
    ratio = fault_sim_fps / grading_fps
    metrics["grading_kernel"] = {
        **{f"{k}_{f}": v[f] for k, v in kernel_rows.items() for f in v},
        "speedup_flat": kernel_rows["serial"]["wall_s"]
        / kernel_rows["batched_flat"]["wall_s"],
        "speedup_cone": kernel_rows["serial"]["wall_s"]
        / kernel_rows["batched_cone"]["wall_s"],
        "fault_sim_faults_per_s": fault_sim_fps,
        "fault_sim_to_grading_ratio": ratio,
    }
    lines += [
        "",
        "grading kernel (audits off, bit-identical):",
    ] + [
        f"  {label:<14}{row['wall_s']:>8.2f}s{row['faults_per_s']:>10.1f} faults/s"
        for label, row in kernel_rows.items()
    ] + [
        f"  fault_sim/grading throughput ratio: {ratio:.1f}x",
    ]
    if ratio > 8.0:
        msg = (
            f"LOUD: grading is still {ratio:.1f}x slower than fault "
            f"simulation (target <= 8x) -- the power kernel has regressed"
        )
        print(msg)
        lines.append(f"  {msg}")

    # Cone-restricted vs unrestricted engine on the same campaign.  Audits
    # are disabled so the comparison times the engines themselves, not the
    # (identical, serial) audit re-simulations both sides would share.
    cone_on_s = min(
        _fault_sim_once(system, 1, audit_rate=0.0, cone_sim=True)[0]
        for _ in range(3)
    )
    cone_result = _fault_sim_once(system, 1, audit_rate=0.0, cone_sim=True)[1]
    cone_off_s = min(
        _fault_sim_once(system, 1, audit_rate=0.0, cone_sim=False)[0]
        for _ in range(3)
    )
    flat_result = _fault_sim_once(system, 1, audit_rate=0.0, cone_sim=False)[1]
    assert cone_result.verdicts == flat_result.verdicts == base_result.verdicts
    assert cone_result.detect_cycle == flat_result.detect_cycle
    assert cone_result.cone is not None
    metrics["cone"] = {
        "cone_wall_s": cone_on_s,
        "flat_wall_s": cone_off_s,
        "speedup": cone_off_s / cone_on_s,
        "evaluated_gate_fraction": cone_result.cone.evaluated_gate_fraction,
        "early_death_rate": cone_result.cone.early_death_rate,
    }
    lines += [
        "",
        f"cone engine: flat {cone_off_s:.2f}s -> cone {cone_on_s:.2f}s "
        f"({cone_off_s / cone_on_s:.2f}x, "
        f"gate fraction {cone_result.cone.evaluated_gate_fraction:.2f}, "
        f"early death {cone_result.cone.early_death_rate:.2f}, bit-identical)",
    ]

    # Store replay: publish once cold, then measure the warm hit path and
    # confirm it stays bit-identical to the simulated baseline.
    store_root = tmp_path / "store"
    cold_s, cold_result = _fault_sim_once(system, 1, store=CampaignStore(store_root))
    warm_store = CampaignStore(store_root)
    warm_s, warm_result = _fault_sim_once(system, 1, store=warm_store)
    assert warm_store.hit_ratio() == 1.0
    assert warm_result.verdicts == cold_result.verdicts == base_result.verdicts
    metrics["store"] = {
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "warm_hit_ratio": warm_store.hit_ratio(),
        "warm_speedup": cold_s / warm_s if warm_s else None,
        "faults": len(cold_result.verdicts),
    }
    lines += [
        "",
        f"store replay: cold {cold_s:.2f}s -> warm {warm_s:.3f}s "
        f"(hit ratio {warm_store.hit_ratio():.0%}, bit-identical)",
    ]

    lines += ["", "all rows bit-identical to the n_jobs=1 baseline"]
    save_result("parallel", "\n".join(lines))
    save_json("parallel", metrics)


#: per-design dirty-fraction ceilings for a single-gate restructure; the
#: CI replay job asserts the diffeq one independently (see ci.yml)
DIRTY_CEILING = {"diffeq": 0.25, "ewf": 0.25, "biquad": 0.25}


def test_incremental_replay(save_result, save_json, tmp_path):
    """Cold vs incremental wall time after a one-gate edit, per design.

    For each design: publish a cold campaign, apply a scripted
    behavior-preserving restructure (AND -> NAND+NOT), rerun with the
    original netlist as ``--baseline`` and record the wall-clock ratio
    plus the dirty fraction the planner actually re-simulated.  Appends
    an ``incremental`` section to ``BENCH_parallel.json`` (the scaling
    test writes the rest of the file first).
    """
    import json as _json

    from repro.core.pipeline import PipelineConfig, run_pipeline
    from repro.designs.catalog import cached_system
    from repro.incremental import edit_system_controller, pick_editable_gate

    from conftest import RESULTS

    cfg = PipelineConfig(n_patterns=PATTERNS)
    rows = {}
    lines = ["incremental replay (one-gate restructure edit)", ""]
    for name in ("diffeq", "ewf", "biquad"):
        system = cached_system(name)
        store_root = tmp_path / f"store-{name}"
        t0 = time.perf_counter()
        run_pipeline(system, cfg, store=CampaignStore(store_root))
        cold_s = time.perf_counter() - t0
        edited = edit_system_controller(
            system, pick_editable_gate(system, "restructure"), "restructure"
        )
        t0 = time.perf_counter()
        inc = run_pipeline(
            edited,
            cfg,
            store=CampaignStore(store_root),
            baseline=system.netlist,
        )
        inc_s = time.perf_counter() - t0
        assert inc.incremental is not None, f"{name}: planner never engaged"
        fraction = inc.incremental["dirty_fraction"]
        assert fraction < DIRTY_CEILING[name], (
            f"{name}: dirty fraction {fraction:.3f} over the "
            f"{DIRTY_CEILING[name]:.2f} ceiling"
        )
        assert inc.campaign.replayed > 0
        rows[name] = {
            "cold_wall_s": cold_s,
            "incremental_wall_s": inc_s,
            "speedup": cold_s / inc_s if inc_s else None,
            "faults": inc.incremental["faults"],
            "dirty": inc.incremental["dirty"],
            "dirty_fraction": fraction,
            "region_equivalent": inc.incremental["region_equivalent"],
        }
        lines.append(
            f"  {name:<8} cold {cold_s:>7.2f}s -> incremental {inc_s:>6.2f}s "
            f"({cold_s / inc_s:>5.1f}x), dirty {rows[name]['dirty']}/"
            f"{rows[name]['faults']} ({fraction:.1%})"
        )

    path = RESULTS / "BENCH_parallel.json"
    metrics = _json.loads(path.read_text()) if path.exists() else {
        "bench": "parallel"
    }
    metrics["incremental"] = {"patterns": PATTERNS, "designs": rows}
    save_json("parallel", metrics)
    save_result("incremental_replay", "\n".join(lines))
