"""Table 2 -- breakdown of controller faults for the three examples.

Paper numbers (for reference): Diffeq 284 faults / 37 SFR (13.0%),
Facet 177 / 36 (20.3%), Poly 207 / 28 (13.5%).  Absolute counts depend on
the logic synthesis; the claim under test is that a consistent 10-30%
of controller faults are system-functionally redundant.
"""

import time

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.report import render_table2
from repro.designs.catalog import PAPER_DESIGNS
from repro.store.cache import CampaignStore

from _config import PATTERNS


def test_table2(benchmark, systems, save_result, save_json, tmp_path):
    def run(store=None):
        cfg = PipelineConfig(n_patterns=PATTERNS)
        return [
            run_pipeline(systems[name], cfg, store=store) for name in PAPER_DESIGNS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [render_table2(results), ""]
    lines.append("full bucket breakdown:")
    for res in results:
        lines.append(f"  {res.design}: {res.counts()}")
    save_result("table2", "\n".join(lines))

    # Store replay over all three designs: cold pass publishes, warm pass
    # must be all hits, much faster, and render the identical table.
    store_root = tmp_path / "store"
    t0 = time.perf_counter()
    cold_results = run(store=CampaignStore(store_root))
    cold_s = time.perf_counter() - t0
    warm_store = CampaignStore(store_root)
    t0 = time.perf_counter()
    warm_results = run(store=warm_store)
    warm_s = time.perf_counter() - t0
    assert warm_store.hit_ratio() == 1.0
    assert render_table2(warm_results) == render_table2(results)
    total_faults = sum(r.total_faults for r in results)
    save_json(
        "table2",
        {
            "bench": "table2",
            "designs": list(PAPER_DESIGNS),
            "patterns": PATTERNS,
            "total_faults": total_faults,
            "cold_wall_s": cold_s,
            "warm_wall_s": warm_s,
            "cold_faults_per_s": total_faults / cold_s,
            "warm_hit_ratio": warm_store.hit_ratio(),
            "warm_speedup": cold_s / warm_s if warm_s else None,
        },
    )

    for res in results:
        pct = res.table2_row()["pct_sfr"]
        assert 5.0 <= pct <= 35.0, "SFR share out of the paper's regime"
