"""Table 2 -- breakdown of controller faults for the three examples.

Paper numbers (for reference): Diffeq 284 faults / 37 SFR (13.0%),
Facet 177 / 36 (20.3%), Poly 207 / 28 (13.5%).  Absolute counts depend on
the logic synthesis; the claim under test is that a consistent 10-30%
of controller faults are system-functionally redundant.
"""

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.report import render_table2
from repro.designs.catalog import PAPER_DESIGNS

from _config import PATTERNS


def test_table2(benchmark, systems, save_result):
    def run():
        cfg = PipelineConfig(n_patterns=PATTERNS)
        return [run_pipeline(systems[name], cfg) for name in PAPER_DESIGNS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [render_table2(results), ""]
    lines.append("full bucket breakdown:")
    for res in results:
        lines.append(f"  {res.design}: {res.counts()}")
    save_result("table2", "\n".join(lines))

    for res in results:
        pct = res.table2_row()["pct_sfr"]
        assert 5.0 <= pct <= 35.0, "SFR share out of the paper's regime"
