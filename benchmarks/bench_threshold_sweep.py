"""Ablation A1 -- SFR detection coverage vs the power threshold.

The paper fixes a 5% tolerance band and remarks: "The smaller the
threshold can be made in practice, the greater is the percentage of SFR
faults that can be detected with this technique."  This bench sweeps the
threshold from 1% to 20% and checks coverage is monotone non-increasing.

The sweep is the first consumer of the activity artifact: the designs
are graded once (the session's activity campaigns), and every threshold
is then priced against per-fault powers recovered from the stored
integer activity counters -- zero additional simulation per threshold.
"""

from repro.core.grading import power_detected
from repro.core.report import render_table
from repro.fleet import recovered_power_uw

THRESHOLDS = [0.01, 0.02, 0.05, 0.10, 0.20]


def test_threshold_sweep(benchmark, estimators, activities, gradings, save_result):
    # Recover per-fault powers from the activity counters; the campaign
    # guarantees these are bit-identical to the scalar grades, so pct
    # changes computed here match Figure 7 exactly.
    pcts = {}
    for name, campaign in activities.items():
        est = estimators[name]
        assert campaign.baseline.activity is not None
        p0 = recovered_power_uw(est, campaign.baseline.activity)
        assert p0 == gradings[name].fault_free_uw
        pcts[name] = [
            100.0 * (recovered_power_uw(est, campaign.by_key[key].activity) - p0) / p0
            for key in campaign.fault_keys
        ]

    def run():
        table = {}
        for name, pct_list in pcts.items():
            row = [
                sum(1 for pct in pct_list if power_detected(pct, t))
                for t in THRESHOLDS
            ]
            table[name] = (row, len(pct_list))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Design", "SFR"] + [f">{int(t * 100)}%" for t in THRESHOLDS]
    rows = [
        [name, str(total)] + [str(v) for v in row]
        for name, (row, total) in table.items()
    ]
    save_result(
        "threshold_sweep",
        render_table(headers, rows, title="A1 -- SFR faults detected vs power threshold"),
    )

    for name, (row, total) in table.items():
        assert total == len(gradings[name].graded)
        assert row == sorted(row, reverse=True), "coverage must shrink with threshold"
        assert row[0] <= total
        # At a 1% threshold a decent share of SFR faults is caught.
        assert row[0] >= total // 4
