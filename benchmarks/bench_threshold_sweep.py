"""Ablation A1 -- SFR detection coverage vs the power threshold.

The paper fixes a 5% tolerance band and remarks: "The smaller the
threshold can be made in practice, the greater is the percentage of SFR
faults that can be detected with this technique."  This bench sweeps the
threshold from 1% to 20% and checks coverage is monotone non-increasing.
"""

from repro.core.report import render_table

THRESHOLDS = [0.01, 0.02, 0.05, 0.10, 0.20]


def test_threshold_sweep(benchmark, gradings, save_result):
    def run():
        table = {}
        for name, grading in gradings.items():
            row = []
            for t in THRESHOLDS:
                detected = sum(
                    1 for g in grading.graded if abs(g.pct_change) > 100.0 * t
                )
                row.append(detected)
            table[name] = (row, len(grading.graded))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Design", "SFR"] + [f">{int(t * 100)}%" for t in THRESHOLDS]
    rows = [
        [name, str(total)] + [str(v) for v in row]
        for name, (row, total) in table.items()
    ]
    save_result(
        "threshold_sweep",
        render_table(headers, rows, title="A1 -- SFR faults detected vs power threshold"),
    )

    for name, (row, total) in table.items():
        assert row == sorted(row, reverse=True), "coverage must shrink with threshold"
        assert row[0] <= total
        # At a 1% threshold a decent share of SFR faults is caught.
        assert row[0] >= total // 4
