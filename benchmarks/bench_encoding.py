"""Ablation A3 -- controller synthesis style vs the SFR population.

Sweeps the state encoding (binary / gray / one-hot) and the Moore output
implementation (per-output PLA vs fully minimised don't-care fill) for
Diffeq.  This probes the paper's observation that "depending on how the
controller was synthesized, the select lines will be either 0s or 1s" in
don't-care steps -- the synthesis style decides how many faults end up
system-functionally redundant and how their power effects distribute.
"""

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.report import render_table
from repro.designs.catalog import build_rtl
from repro.hls.system import build_system

from _config import PATTERNS

CONFIGS = [
    ("binary", "pla"),
    ("gray", "pla"),
    ("onehot", "pla"),
    ("binary", "minimized"),
    ("binary", "decoded"),
]


def test_encoding_sweep(benchmark, save_result):
    rtl = build_rtl("diffeq")

    def run():
        out = {}
        for encoding, style in CONFIGS:
            system = build_system(rtl, encoding_kind=encoding, output_style=style)
            result = run_pipeline(system, PipelineConfig(n_patterns=PATTERNS))
            out[(encoding, style)] = (len(system.controller.netlist.gates), result)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Encoding", "Outputs", "Ctrl gates", "Faults", "SFR", "%SFR", "CFR"]
    rows = []
    for (encoding, style), (gates, result) in out.items():
        row = result.table2_row()
        counts = result.counts()
        rows.append(
            [
                encoding,
                style,
                str(gates),
                str(row["total_faults"]),
                str(row["sfr_faults"]),
                f"{row['pct_sfr']:.1f}%",
                str(counts.get("CFR", 0)),
            ]
        )
    save_result(
        "encoding_sweep",
        render_table(headers, rows, title="A3 -- synthesis style vs fault classes (Diffeq)"),
    )

    # Every configuration exhibits the core phenomenon: SFR faults exist.
    for (encoding, style), (gates, result) in out.items():
        assert len(result.sfr_records) > 0, (encoding, style)
    # The one-hot machine is bigger than the binary one.
    assert out[("onehot", "pla")][0] > out[("binary", "pla")][0]
