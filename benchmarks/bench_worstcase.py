"""Section 4's worst case: maximal non-disruptive corruption, Diffeq.

Paper: "the power increased by over 200% over the fault-free case.  While
it is highly unlikely that a single stuck-at fault within the controller
could cause such an extreme increase in power, this does represent a
'worst case' scenario possible with multiple faults."
"""

from repro.core.worstcase import find_worst_case
from repro.power.estimator import PowerEstimator
from repro.power.montecarlo import monte_carlo_power

from _config import MC_BATCH, MC_MAX_BATCHES


def test_worst_case_diffeq(benchmark, systems, save_result):
    system = systems["diffeq"]

    def run():
        wc = find_worst_case(system.rtl, system.controller)
        corrupted = wc.build()
        base = monte_carlo_power(
            system, PowerEstimator(system.netlist),
            batch_patterns=MC_BATCH, max_batches=MC_MAX_BATCHES,
        )
        worst = monte_carlo_power(
            corrupted, PowerEstimator(corrupted.netlist),
            batch_patterns=MC_BATCH, max_batches=MC_MAX_BATCHES,
        )
        return wc, base.power_uw, worst.power_uw

    wc, base_uw, worst_uw = benchmark.pedantic(run, rounds=1, iterations=1)
    pct = 100.0 * (worst_uw - base_uw) / base_uw
    lines = [
        "Worst-case multi-effect corruption (Diffeq)",
        f"  accepted flips : {len(wc.flips)} / {wc.candidates} candidates",
        f"  fault-free     : {base_uw:9.1f} uW",
        f"  worst case     : {worst_uw:9.1f} uW   ({pct:+.1f}%)",
        "  paper          : 'power increased by over 200%'",
    ]
    save_result("worstcase", "\n".join(lines))
    assert pct > 200.0
