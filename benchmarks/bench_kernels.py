"""Micro-benchmarks of the substrate kernels (true pytest-benchmark use).

These are the inner loops the whole reproduction stands on: compiled
cycle simulation, serial fault simulation, Quine-McCluskey minimisation,
and symbolic classification.  Useful for tracking performance regressions;
no paper claims attached.
"""

import numpy as np

from repro.core.classify import Classifier
from repro.core.pipeline import controller_fault_universe
from repro.hls.system import NormalModeStimulus
from repro.logic.faultsim import fault_simulate, simulate_one_fault, run_golden
from repro.logic.simulator import CycleSimulator
from repro.synth.qm import minimize_exact


def test_kernel_cycle_simulation(benchmark, systems):
    system = systems["diffeq"]
    data = {
        k: np.arange(256) % 16 for k in system.rtl.dfg.inputs
    }
    stim = NormalModeStimulus(system, data, system.cycles_for(4))

    def run():
        sim = CycleSimulator(system.netlist, 256, count_toggles=True)
        for c in range(stim.n_cycles):
            stim.apply(sim, c)
            sim.settle()
            sim.latch()
        return sim.cycles_run

    cycles = benchmark(run)
    assert cycles == stim.n_cycles


def test_kernel_single_fault_simulation(benchmark, systems):
    system = systems["diffeq"]
    data = {k: np.arange(128) % 16 for k in system.rtl.dfg.inputs}
    stim = NormalModeStimulus(system, data, system.cycles_for(3))
    observe = [n for bus in system.output_buses.values() for n in bus]
    golden = run_golden(system.netlist, stim, observe)
    fault = system.to_system_fault(controller_fault_universe(system)[0])

    def run():
        return simulate_one_fault(system.netlist, fault, stim, observe, golden)

    verdict, _ = benchmark(run)
    assert verdict is not None


def test_kernel_fault_list_simulation(benchmark, systems):
    """Block-parallel fault batching: a whole 32-fault chunk per pass.

    Compare the per-fault cost here against
    ``test_kernel_single_fault_simulation`` -- the batched engine shares
    each cycle's numpy work across the chunk.
    """
    system = systems["diffeq"]
    data = {k: np.arange(128) % 16 for k in system.rtl.dfg.inputs}
    stim = NormalModeStimulus(system, data, system.cycles_for(3))
    observe = [n for bus in system.output_buses.values() for n in bus]
    faults = [
        system.to_system_fault(s) for s in controller_fault_universe(system)[:32]
    ]

    def run():
        return fault_simulate(system.netlist, faults, stim, observe=observe)

    result = benchmark(run)
    assert len(result.verdicts) == len(faults)


def test_kernel_qm_minimisation(benchmark):
    onset = {0, 1, 2, 5, 6, 7, 8, 9, 10, 14, 17, 21, 27, 30}
    dc = {3, 11, 19, 25}

    def run():
        return minimize_exact(5, onset, dc)

    cover = benchmark(run)
    assert cover


def test_kernel_classify_one_fault(benchmark, systems):
    system = systems["diffeq"]
    clf = Classifier(system.rtl, system.controller)
    fault = controller_fault_universe(system)[3]

    def run():
        return clf.classify(fault)

    result = benchmark(run)
    assert result.category in ("CFR", "SFR", "SFI")
