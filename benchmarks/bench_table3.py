"""Table 3 -- SFR fault power under different fixed test sets.

The paper runs three 1200-pattern TPGR test sets (seeds differ; the third
is almost all zeros) over selected Diffeq and Poly faults and observes
that *percentage* increases stay consistent across test sets even when
absolute power moves.  That consistency is what makes the power test
practical: the fault-free power of the applied test set is the reference.
"""

import numpy as np

from repro.core.grading import pick_representative, table3_rows
from repro.core.report import render_table3
from repro.power.estimator import PowerEstimator

from _config import TESTSET

SEEDS = (0xACE1, 0xBEEF, 0x1)  # third = the paper's almost-all-zeros seed


def _rows_for(design, systems, gradings, count=4):
    system = systems[design]
    grading = gradings[design]
    est = PowerEstimator(system.netlist)
    picks = pick_representative(grading, count=count)
    return table3_rows(system, est, grading, picks, seeds=SEEDS, n_patterns=TESTSET)


def test_table3_diffeq(benchmark, systems, gradings, save_result):
    rows = benchmark.pedantic(
        lambda: _rows_for("diffeq", systems, gradings), rounds=1, iterations=1
    )
    save_result("table3_diffeq", render_table3(rows, "diffeq"))
    _assert_consistent(rows)


def test_table3_poly(benchmark, systems, gradings, save_result):
    rows = benchmark.pedantic(
        lambda: _rows_for("poly", systems, gradings), rounds=1, iterations=1
    )
    save_result("table3_poly", render_table3(rows, "poly"))
    _assert_consistent(rows)


def _assert_consistent(rows):
    """Percentage change varies by at most a few points across test sets
    for faults with a substantial effect (the paper's Table-3 claim)."""
    for row in rows[1:]:
        assert row.per_set_pct is not None
        spread = max(row.per_set_pct) - min(row.per_set_pct)
        if abs(row.monte_carlo_pct) > 5.0:
            assert spread < 8.0, (row.label, row.per_set_pct)
        # And the sign of a substantial effect never flips.
        if row.monte_carlo_pct > 5.0:
            assert all(p > 0 for p in row.per_set_pct)
