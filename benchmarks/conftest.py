"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index) and writes its rendering to ``benchmarks/results/``.
Scale is controlled by ``REPRO_FULL=1`` (paper-scale: 1200-pattern test
sets, full Monte-Carlo budgets); the default is a faster configuration
that preserves every qualitative conclusion.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.grading import grade_sfr_faults
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.designs.catalog import PAPER_DESIGNS, cached_system
from repro.fleet import activity_campaign
from repro.power.estimator import PowerEstimator

from _config import MC_BATCH, MC_MAX_BATCHES, PATTERNS

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    RESULTS.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Machine-readable benchmark metrics: ``results/BENCH_<name>.json``.

    CI and trend tooling parse these (wall seconds, faults/sec, cache hit
    ratios) instead of scraping the human-oriented ``.txt`` renderings.
    """
    RESULTS.mkdir(exist_ok=True)

    def _save(name: str, payload: dict) -> None:
        path = RESULTS / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
        )
        print(f"\nwrote {path}")

    return _save


@pytest.fixture(scope="session")
def systems():
    return {name: cached_system(name) for name in PAPER_DESIGNS}


@pytest.fixture(scope="session")
def pipelines(systems):
    cfg = PipelineConfig(n_patterns=PATTERNS)
    return {name: run_pipeline(system, cfg) for name, system in systems.items()}


@pytest.fixture(scope="session")
def estimators(systems):
    return {name: PowerEstimator(s.netlist) for name, s in systems.items()}


@pytest.fixture(scope="session")
def activities(systems, pipelines, estimators):
    """Per-design activity campaigns (same MC knobs as ``gradings``).

    Same seed, batch size, and budget as the grading fixture, so the
    per-fault powers recovered from the activity counters are
    bit-identical to the scalar grades.
    """
    return {
        name: activity_campaign(
            systems[name],
            pipelines[name],
            estimator=estimators[name],
            batch_patterns=MC_BATCH,
            max_batches=MC_MAX_BATCHES,
        )
        for name in systems
    }


@pytest.fixture(scope="session")
def gradings(systems, pipelines, activities):
    """Scalar SFR grades, replayed from the activity campaigns.

    The activity fixture is the session's single Monte-Carlo run; the
    grades here are seeded from its results, so no fault is simulated
    twice across the bench suite.
    """
    return {
        name: grade_sfr_faults(
            systems[name],
            pipelines[name],
            threshold=0.05,
            batch_patterns=MC_BATCH,
            max_batches=MC_MAX_BATCHES,
            seed_results=activities[name].grading_seed_results(),
        )
        for name in systems
    }
