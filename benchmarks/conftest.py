"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index) and writes its rendering to ``benchmarks/results/``.
Scale is controlled by ``REPRO_FULL=1`` (paper-scale: 1200-pattern test
sets, full Monte-Carlo budgets); the default is a faster configuration
that preserves every qualitative conclusion.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.grading import grade_sfr_faults
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.designs.catalog import PAPER_DESIGNS, cached_system

from _config import MC_BATCH, MC_MAX_BATCHES, PATTERNS

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    RESULTS.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Machine-readable benchmark metrics: ``results/BENCH_<name>.json``.

    CI and trend tooling parse these (wall seconds, faults/sec, cache hit
    ratios) instead of scraping the human-oriented ``.txt`` renderings.
    """
    RESULTS.mkdir(exist_ok=True)

    def _save(name: str, payload: dict) -> None:
        path = RESULTS / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
        )
        print(f"\nwrote {path}")

    return _save


@pytest.fixture(scope="session")
def systems():
    return {name: cached_system(name) for name in PAPER_DESIGNS}


@pytest.fixture(scope="session")
def pipelines(systems):
    cfg = PipelineConfig(n_patterns=PATTERNS)
    return {name: run_pipeline(system, cfg) for name, system in systems.items()}


@pytest.fixture(scope="session")
def gradings(systems, pipelines):
    return {
        name: grade_sfr_faults(
            systems[name],
            pipelines[name],
            threshold=0.05,
            batch_patterns=MC_BATCH,
            max_batches=MC_MAX_BATCHES,
        )
        for name in systems
    }
