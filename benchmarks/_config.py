"""Scale knobs shared by the benchmark harness (see conftest.py)."""

import os

FULL = bool(os.environ.get("REPRO_FULL"))

#: fault-simulation patterns for the classification pipeline
PATTERNS = 1200 if FULL else 256
#: Monte-Carlo batch size and budget for power grading
MC_BATCH = 192 if FULL else 128
MC_MAX_BATCHES = 12 if FULL else 4
#: fixed test-set size for the Table-3 consistency experiment
TESTSET = 1200 if FULL else 400
