"""Fleet-calibration population kernel -- instances*faults per second.

The headline claim of the fleet layer: because power is linear in the
per-row activity counters, a manufactured fleet of any size is priced by
chunked float64 matmuls over one Monte-Carlo campaign's activity
matrices, so million-instance threshold ROCs are interactive.  This
bench captures one activity campaign per paper design, runs the
population kernel at a fixed instance count, verifies the sigma=0 anchor
(recovered powers bit-identical to the scalar grading fixture), and
records the matmul throughput into ``BENCH_fleet.json``.
"""

from repro.core.checkpoint import fault_key
from repro.core.report import render_table
from repro.fleet import (
    FleetConfig,
    activity_matrix,
    recovered_power_uw,
    run_population,
)
from repro.power.montecarlo import DATAPATH_TAG

#: fleet size per design; large enough that the matmul dominates the
#: chunk loop, small enough for a CI smoke lane
INSTANCES = 250_000

#: the acceptance floor for the population kernel
MIN_THROUGHPUT = 1e6


def test_fleet_kernel(
    benchmark, systems, estimators, activities, gradings, save_result, save_json
):
    campaigns = activities

    # sigma=0 anchor: the integer counters recover the grading fixture's
    # scalar powers bit-identically (same knobs, same simulations).
    for name, grading in gradings.items():
        campaign = campaigns[name]
        est = estimators[name]
        assert campaign.baseline.activity is not None
        assert recovered_power_uw(est, campaign.baseline.activity) == grading.fault_free_uw
        for g in grading.graded:
            mc = campaign.by_key[fault_key(g.record.system_site)]
            assert mc.activity is not None
            assert recovered_power_uw(est, mc.activity) == g.power_uw

    config = FleetConfig(instances=INSTANCES)
    mats = {
        name: (
            estimators[name].cap_decomposition(tag_prefix=DATAPATH_TAG),
            activity_matrix(campaigns[name], estimators[name]),
        )
        for name in systems
    }

    def run():
        return {
            name: run_population(
                estimators[name],
                decomp,
                A,
                campaigns[name].fault_keys,
                config,
                p_ref_uw=gradings[name].fault_free_uw,
                design=name,
            )
            for name, (decomp, A) in mats.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    payload = {"instances": INSTANCES, "designs": {}}
    rows = []
    for name, result in results.items():
        n_faults = len(result.fault_keys)
        payload["designs"][name] = {
            "faults": n_faults,
            "rows": int(mats[name][1].shape[0]),
            "matmul_s": result.matmul_s,
            "wall_s": result.wall_s,
            "instances_faults_per_s": result.throughput,
            "chosen_threshold": result.chosen["threshold"],
            "chosen_yield_loss": result.chosen["yield_loss"],
            "chosen_escape_rate": result.chosen["escape_rate"],
        }
        rows.append(
            [
                name,
                str(n_faults),
                f"{result.matmul_s:.3f}s",
                f"{result.throughput:.3e}",
                f"{result.chosen['threshold']:.3f}",
            ]
        )
        assert result.throughput >= MIN_THROUGHPUT, (
            f"{name}: population kernel ran at {result.throughput:.3e} "
            f"instances*faults/s, below the {MIN_THROUGHPUT:.0e} floor"
        )
    payload["instances_faults_per_s"] = min(
        d["instances_faults_per_s"] for d in payload["designs"].values()
    )
    save_json("fleet", payload)
    save_result(
        "fleet",
        render_table(
            ["Design", "Faults", "Matmul", "inst*faults/s", "Chosen t"],
            rows,
            title=f"Fleet population kernel -- {INSTANCES} instances/design",
        ),
    )
