"""Ablation A2 -- datapath bit-width sweep (Diffeq at 4/8 bits).

The paper evaluates 4-bit datapaths.  Wider datapaths grow the datapath's
share of power while the controller fault universe stays identical, so:
(i) the SFR fault *set* is width-independent, and (ii) extra-load faults
keep increasing power (the percentage shifts with the register/logic
energy balance).
"""

from repro.core.grading import grade_sfr_faults
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.report import render_table
from repro.designs.catalog import build_rtl
from repro.hls.system import build_system

from _config import MC_BATCH, PATTERNS

WIDTHS = [4, 8]


def test_width_sweep(benchmark, save_result):
    def run():
        out = {}
        for width in WIDTHS:
            system = build_system(build_rtl("diffeq", width=width))
            result = run_pipeline(system, PipelineConfig(n_patterns=PATTERNS))
            grading = grade_sfr_faults(
                system, result, batch_patterns=MC_BATCH, max_batches=3
            )
            out[width] = (system, result, grading)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Width", "Ctrl faults", "SFR", "Fault-free uW", "Max SFR effect"]
    rows = []
    for width, (system, result, grading) in out.items():
        max_pct = max((g.pct_change for g in grading.graded), default=0.0)
        rows.append(
            [
                str(width),
                str(result.total_faults),
                str(len(result.sfr_records)),
                f"{grading.fault_free_uw:.1f}",
                f"{max_pct:+.1f}%",
            ]
        )
    save_result(
        "width_sweep",
        render_table(headers, rows, title="A2 -- Diffeq datapath width sweep"),
    )

    r4, r8 = out[4][1], out[8][1]
    # The controller is width-independent: identical fault universe & SFR set.
    assert r4.total_faults == r8.total_faults
    assert {r.site for r in r4.sfr_records} == {r.site for r in r8.sfr_records}
    # Wider datapath burns more absolute power.
    assert out[8][2].fault_free_uw > out[4][2].fault_free_uw
    # Load faults still only increase power at 8 bits.
    for g in out[8][2].group("load"):
        assert g.pct_change > -0.5
