"""Table 1 -- representative Diffeq SFR faults: effects + power change.

Paper reference points: fault 1 (two select changes) -3.02%; fault 6
(one select change) +0.06%; fault 21 (two extra loads + select) +2.56%;
fault 27 (four extra loads of one register) +9.17%; fault 37 (four
registers loading in all steps) +20.98%.  The claim under test: SFR
faults span a range from slight decreases (select-only) to >+20%
(many extra loads), and only load-line faults guarantee an increase.
"""

from repro.core.grading import pick_representative
from repro.core.report import render_table1


def test_table1(benchmark, gradings, save_result):
    grading = gradings["diffeq"]

    def run():
        return pick_representative(grading, count=5)

    picks = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table1", render_table1(grading, picks))

    pcts = [g.pct_change for g in picks]
    # Spans the range: a small/negative end and a large-increase end.
    assert pcts[0] < 1.0
    assert pcts[-1] > 10.0
    # Load-line faults never decrease power by a nontrivial amount.
    for g in grading.group("load"):
        assert g.pct_change > -0.5
