"""Section-2 strategy comparison: separate vs integrated vs power test.

Quantifies the paper's framing on every design:

* split-and-test-separately (scan) reaches near-complete coverage of the
  controller but requires DFT the hard core forbids;
* the integrated logic test leaves the whole SFR population (plus any
  CFR faults) undetected -- the Dey et al. coverage degradation;
* observation test points recover all CFI faults, again modifying the
  design (area overhead reported);
* the paper's power test raises integrated coverage without touching the
  core at all.
"""

from repro.core.report import render_table
from repro.core.teststrategies import compare_strategies
from repro.dft.observe import insert_observation_muxes
from repro.dft.scan import insert_scan_chain


def test_strategy_comparison(benchmark, systems, pipelines, gradings, save_result):
    def run():
        return {
            name: compare_strategies(
                systems[name], pipelines[name], gradings[name], n_patterns=512
            )
            for name in systems
        }

    tables = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, rows in tables.items():
        out = [
            [
                r.strategy,
                r.fault_universe,
                f"{r.detected}/{r.total}",
                f"{100 * r.coverage:.1f}%",
                "yes" if r.requires_dft else "no",
            ]
            for r in rows
        ]
        lines.append(
            render_table(
                ["Strategy", "Faults", "Detected", "Coverage", "Needs DFT"],
                out,
                title=f"Test strategy comparison -- {name}",
            )
        )
        # DFT overhead of the alternatives (the cost the paper avoids).
        chain = insert_scan_chain(systems[name].netlist, "ctrl")
        obs = insert_observation_muxes(systems[name])
        lines.append(
            f"  DFT overhead: scan +{chain.added_gates} gates, "
            f"test points +{obs.added_gates} gates "
            f"({obs.overhead_report()['added_gate_pct']:.1f}%)"
        )
        lines.append("")
    save_result("dft_comparison", "\n".join(lines))

    for name, rows in tables.items():
        by = {r.strategy: r for r in rows}
        scan = by["separate controller test (scan)"]
        integ = by["integrated logic test"]
        power = next(r for r in rows if r.strategy.startswith("integrated + power"))
        obs = by["observation muxes (test points)"]
        # The paper's Section-2 ordering.
        assert scan.coverage > obs.coverage >= integ.coverage
        assert power.coverage > integ.coverage
        assert scan.coverage > 0.95
