"""Figure 7 -- per-SFR-fault power vs the +/-5% band, all three designs.

Qualitative shape claims from the paper, asserted per panel:

* (a) Diffeq: select-only faults cluster inside/near the band with small
  effects in both directions; a substantial fraction of load-line faults
  exceed +5%.
* (b) Facet: shared load lines make single faults load many registers at
  once, so load-line faults are detected at the highest rate.
* (c) Poly: long variable lifespans leave fewer harmless extra loads, and
  load-line detections are comparatively sparse.
"""

from repro.core.report import figure7_series, render_figure7


def test_fig7_all_designs(benchmark, gradings, save_result):
    def run():
        return {name: figure7_series(g) for name, g in gradings.items()}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(render_figure7(gradings[name]) for name in ("diffeq", "facet", "poly"))
    save_result("figure7", text)

    # --- panel (a): diffeq --------------------------------------------------
    d = gradings["diffeq"].summary()
    assert d["n_select_only"] > 0 and d["n_load"] > 0
    # most select-only faults stay inside the band
    assert d["select_detected"] <= d["n_select_only"] // 2
    assert d["load_detected"] >= 3
    # select effects go both directions
    sel_pcts = [g.pct_change for g in gradings["diffeq"].group("select")]
    assert min(sel_pcts) < 0 < max(sel_pcts)

    # --- panel (b): facet ---------------------------------------------------
    f = gradings["facet"].summary()
    load_rate_facet = f["load_detected"] / max(1, f["n_load"])
    assert load_rate_facet >= 0.5, "shared load lines should detect most load faults"

    # --- panel (c): poly ----------------------------------------------------
    p = gradings["poly"].summary()
    load_rate_poly = p["load_detected"] / max(1, p["n_load"])
    assert load_rate_poly < load_rate_facet, "poly detects load faults at a lower rate"

    # Every design: load faults only increase power.
    for name, g in gradings.items():
        for fault in g.group("load"):
            assert fault.pct_change > -0.5, (name, fault.pct_change)
