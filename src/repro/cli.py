"""Command-line interface: ``repro-faults``.

Subcommands::

    repro-faults classify diffeq            # Section-5 pipeline, Table-2 row
    repro-faults grade diffeq               # + Monte-Carlo power, Figure 7
    repro-faults calibrate diffeq           # fleet-scale threshold ROC
    repro-faults table2                     # the paper's three designs
    repro-faults strategies diffeq          # separate/integrated/power compare
    repro-faults worstcase diffeq           # Section-4 max corruption
    repro-faults datapath diffeq            # integrated datapath-fault test
    repro-faults compile behavior.txt       # behavioural text -> pipeline
    repro-faults dump-vcd diffeq run.vcd    # waveform of one computation
    repro-faults export diffeq out.v        # write the system netlist
    repro-faults stats diffeq               # netlist statistics

Store-backed workflows (``--store-dir`` -- see docs/store.md)::

    repro-faults --store-dir .cache grade diffeq    # publishes + replays
    repro-faults --store-dir .cache query --verdict SFR
    repro-faults --store-dir .cache serve --port 8357
    repro-faults --store-dir .cache store stats|gc|verify
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.grading import grade_sfr_faults, pick_representative
from .core.integrity import DEFAULT_AUDIT_RATE
from .core.pipeline import PipelineConfig, run_pipeline
from .core.report import (
    build_json_report,
    build_result_report,
    canonical_report_json,
    render_campaign_summary,
    render_figure7,
    render_integrity_violations,
    render_store_summary,
    render_table1,
    render_table2,
)
from .designs.catalog import build_rtl, cached_system, design_names
from .hls.system import build_system
from .netlist.bench import write_bench
from .netlist.stats import analyze
from .netlist.verilog import write_verilog
from .store.cache import CampaignStore, StageProvenance, clean_campaign
from .store.fingerprint import netlist_fingerprint, stage_key
from .store.query import QUERY_VERDICTS


def _positive_int(text: str) -> int:
    """argparse type: an int >= 1, rejected with a readable error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _jobs_arg(text: str) -> int:
    """argparse type for --jobs: a positive worker count or -1 (all cores)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value != -1 and value < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs takes a worker count >= 1 or -1 for all cores, got {value}"
        )
    return value


def _port_arg(text: str) -> int:
    """argparse type for --port: a TCP port, 0 (ephemeral) to 65535."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port must be in [0, 65535] (0 = ephemeral), got {value}"
        )
    return value


def _queue_depth_arg(text: str) -> int:
    """argparse type for --queue-depth: admitted-job bound, 1..4096."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 1 <= value <= 4096:
        raise argparse.ArgumentTypeError(
            f"queue depth must be in [1, 4096], got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _fraction_arg(text: str) -> float:
    value = _positive_float(text)
    if value >= 1:
        raise argparse.ArgumentTypeError(f"must be a fraction in (0, 1), got {value}")
    return value


def _audit_rate_arg(text: str) -> float:
    """argparse type for --audit-rate: a fraction in [0, 1); 0 disables."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a fraction in [0, 1) (0 disables auditing), got {value}"
        )
    return value


def _sigma_arg(text: str) -> float:
    """argparse type for fleet sigmas/budgets: a fraction in [0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a fraction in [0, 1), got {value}"
        )
    return value


def _shards_arg(text: str) -> int:
    """argparse type for --shards: fabric shard count, 2..256."""
    from .store.shards import MAX_SHARDS

    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 2 <= value <= MAX_SHARDS:
        raise argparse.ArgumentTypeError(
            f"shard count must be in [2, {MAX_SHARDS}], got {value}"
        )
    return value


def _replicas_arg(text: str) -> int:
    """argparse type for --replicas: copies per key (incl. primary), 1..256."""
    from .store.shards import MAX_SHARDS

    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 1 <= value <= MAX_SHARDS:
        raise argparse.ArgumentTypeError(
            f"replication factor must be in [1, {MAX_SHARDS}], got {value}"
        )
    return value


def _chaos_arg(text: str) -> str:
    """argparse type for --chaos: validate the spec at the CLI boundary."""
    from .core.errors import CampaignError
    from .testing.chaos import ChaosSpec

    try:
        ChaosSpec.parse(text)
    except CampaignError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _print_campaign(campaign, title: str) -> None:
    """Surface retries/crashes/resumes whenever anything non-trivial ran."""
    if campaign is not None and (
        campaign.resumed or campaign.audited or campaign.has_incidents()
    ):
        print(render_campaign_summary(campaign, title=title))
    if campaign is not None and campaign.violations:
        print(render_integrity_violations(campaign, title=f"{title} integrity"))


def _write_report_json(args, campaigns: dict, store: CampaignStore | None = None) -> None:
    """Write the machine-readable campaign/integrity report if requested."""
    if not getattr(args, "report_json", None):
        return
    with open(args.report_json, "w", encoding="utf-8") as f:
        json.dump(build_json_report(campaigns, store=store), f, indent=2, allow_nan=False)
    print(f"wrote {args.report_json}")


def _write_result_json(args, report: dict) -> None:
    """Write the deterministic result report (canonical JSON) if requested."""
    if not getattr(args, "result_json", None):
        return
    with open(args.result_json, "w", encoding="utf-8") as f:
        f.write(canonical_report_json(report))
    print(f"wrote {args.result_json}")


def _store(args) -> CampaignStore | None:
    """The persistent campaign store of this invocation, if enabled."""
    if not getattr(args, "store_dir", None):
        return None
    return CampaignStore(
        args.store_dir,
        refresh=getattr(args, "store_refresh", False),
        shards=getattr(args, "shards", None),
        replicas=getattr(args, "replicas", None),
    )


def _print_store(store: CampaignStore | None) -> None:
    if store is not None and (store.provenance or store.violations):
        print(render_store_summary(store))


def _result_report(
    store: CampaignStore | None,
    system,
    config: PipelineConfig,
    result,
    grading=None,
    command: str = "classify",
) -> dict:
    """Build (or replay) the deterministic result report of one run.

    With a store, the report is its own cached stage: a warm run replays
    the published report dict verbatim; a cold clean run publishes it so
    ``query``/``serve`` can answer without simulating.  Campaigns that
    recorded integrity violations are never published.
    """
    from .power.montecarlo import (
        MC_DEFAULT_BATCH_PATTERNS,
        MC_DEFAULT_ITERATIONS_WINDOW,
        MC_DEFAULT_MAX_BATCHES,
        MC_DEFAULT_SEED,
        mc_campaign_params,
    )

    from .core.checkpoint import fault_key

    # The fault list pins the campaign identity: fingerprints are
    # permutation-invariant (v2), but report payloads carry index-based
    # fault keys, so two permuted-but-identical netlists must not alias
    # each other's cached reports.
    params: dict = {
        "command": command,
        "design": result.design,
        "pipeline": config.fingerprint_params(),
        "faults": [fault_key(r.system_site) for r in result.records],
    }
    if grading is not None:
        params["threshold"] = grading.threshold
        params["mc"] = mc_campaign_params(
            MC_DEFAULT_SEED,
            MC_DEFAULT_BATCH_PATTERNS,
            MC_DEFAULT_MAX_BATCHES,
            MC_DEFAULT_ITERATIONS_WINDOW,
        )
    if store is None:
        return build_result_report(
            result, grading, system=system, params=params, command=command
        )
    key = stage_key("report", netlist_fingerprint(system.netlist), params)
    cached = store.lookup("report", key)
    if cached is not None:
        row = store.artifacts.row(key)
        store.record(
            StageProvenance(
                stage="report", key=key, hit=True, saved_s=row.wall_s if row else 0.0
            )
        )
        return cached
    report = build_result_report(
        result, grading, system=system, params=params, command=command
    )
    published = False
    if clean_campaign(result.campaign) and (
        grading is None or clean_campaign(grading.campaign)
    ):
        published = store.publish(
            "report", key, report, design=result.design, meta={"command": command}
        )
    store.record(StageProvenance(stage="report", key=key, hit=False, published=published))
    return report


def _build(args):
    return cached_system(
        args.design,
        width=args.width,
        encoding_kind=args.encoding,
        output_style=args.output_style,
    )


def _baseline_spec(args, system):
    """Turn ``--baseline`` into what :func:`run_pipeline` accepts.

    A design name from the catalog resolves to that design's netlist
    (built with this invocation's width/encoding/output-style knobs);
    fingerprints, payload paths and ``auto`` pass through to
    :func:`~repro.incremental.replay.resolve_baseline`.
    """
    spec = getattr(args, "baseline", None)
    if not spec:
        return None
    if spec != system.rtl.name and spec in design_names():
        other = cached_system(
            spec,
            width=args.width,
            encoding_kind=args.encoding,
            output_style=args.output_style,
        )
        return other.netlist
    return spec


def _print_incremental(result) -> None:
    inc = getattr(result, "incremental", None)
    if inc:
        print(
            f"incremental: {inc['reusable']}/{inc['faults']} faults replayed "
            f"from baseline {inc['baseline']} "
            f"(dirty fraction {inc['dirty_fraction']:.1%}, "
            f"region: {inc['region_reason']})"
        )


def _config(args) -> PipelineConfig:
    return PipelineConfig(
        n_patterns=args.patterns,
        n_jobs=args.jobs,
        cone_sim=args.cone_sim,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        timeout=args.timeout,
        max_retries=args.max_retries,
        audit_rate=args.audit_rate,
        strict=args.strict,
        chaos=args.chaos,
    )


def _cmd_classify(args) -> int:
    system = _build(args)
    store = _store(args)
    config = _config(args)
    result = run_pipeline(
        system, config, store=store, baseline=_baseline_spec(args, system)
    )
    _print_campaign(result.campaign, "fault-sim campaign")
    _print_incremental(result)
    report = _result_report(store, system, config, result, command="classify")
    _print_store(store)
    _write_result_json(args, report)
    _write_report_json(args, {"faultsim": result.campaign}, store=store)
    print(system.rtl.summary())
    print("fault buckets:", result.counts())
    row = result.table2_row()
    print(
        f"Table 2 row: total={row['total_faults']} SFR={row['sfr_faults']} "
        f"({row['pct_sfr']:.1f}%)"
    )
    for record in result.sfr_records:
        effects = "; ".join(record.classification.effect_summary())
        print(f"  SFR {record.site.describe(system.controller.netlist)}: {effects}")
    return 0


def _cmd_grade(args) -> int:
    system = _build(args)
    store = _store(args)
    config = _config(args)
    result = run_pipeline(
        system, config, store=store, baseline=_baseline_spec(args, system)
    )
    _print_campaign(result.campaign, "fault-sim campaign")
    _print_incremental(result)
    chaos_engine = None
    if args.chaos:
        from .testing.chaos import ChaosEngine

        chaos_engine = ChaosEngine.from_spec(args.chaos)
    seeds = None
    if store is not None and result.incremental_plan is not None:
        from .incremental.replay import grading_seed_results
        from .power.montecarlo import (
            MC_DEFAULT_BATCH_PATTERNS,
            MC_DEFAULT_ITERATIONS_WINDOW,
            MC_DEFAULT_MAX_BATCHES,
            MC_DEFAULT_SEED,
        )

        seeds = grading_seed_results(
            store,
            result.incremental_plan,
            result.design,
            [r.system_site for r in result.sfr_records],
            MC_DEFAULT_SEED,
            MC_DEFAULT_BATCH_PATTERNS,
            MC_DEFAULT_MAX_BATCHES,
            MC_DEFAULT_ITERATIONS_WINDOW,
        )
    grading = grade_sfr_faults(
        system,
        result,
        threshold=args.threshold,
        n_jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        audit_rate=args.audit_rate,
        strict=args.strict,
        chaos=chaos_engine,
        store=store,
        batched=args.batched_grading,
        cone_power=args.cone_power,
        seed_results=seeds,
    )
    _print_campaign(grading.campaign, "grading campaign")
    report = _result_report(store, system, config, result, grading, command="grade")
    _print_store(store)
    _write_result_json(args, report)
    _write_report_json(
        args, {"faultsim": result.campaign, "grading": grading.campaign}, store=store
    )
    print(render_table1(grading, pick_representative(grading)))
    print()
    print(render_figure7(grading))
    s = grading.summary()
    print(
        f"\ndetected by power test: {s['select_detected']}/{s['n_select_only']} "
        f"select-only, {s['load_detected']}/{s['n_load']} load-line"
    )
    return 0


def _fleet_config(args):
    from .fleet import FleetConfig

    return FleetConfig(
        instances=args.instances,
        sigma_cap=args.sigma_cap,
        sigma_leak=args.sigma_leak,
        sigma_meas=args.sigma_meas,
        yield_budget=args.yield_budget,
        seed=args.fleet_seed,
        engine=args.fleet_engine,
    )


def _cmd_calibrate(args) -> int:
    from .core.report import render_table
    from .fleet import calibrate_fleet, calibrate_report_dict

    system = _build(args)
    store = _store(args)
    config = _config(args)
    result = run_pipeline(
        system, config, store=store, baseline=_baseline_spec(args, system)
    )
    _print_campaign(result.campaign, "fault-sim campaign")
    _print_incremental(result)
    fleet, campaign, grading = calibrate_fleet(
        system,
        result,
        _fleet_config(args),
        threshold=args.threshold,
        n_jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        audit_rate=args.audit_rate,
        strict=args.strict,
        cone_power=args.cone_power,
        store=store,
    )
    _print_campaign(campaign.campaign, "activity campaign")
    _print_campaign(grading.campaign, "grading campaign")
    _print_store(store)
    _write_result_json(args, calibrate_report_dict(fleet))
    _write_report_json(
        args,
        {
            "faultsim": result.campaign,
            "activity": campaign.campaign,
            "grading": grading.campaign,
        },
        store=store,
    )
    print(
        render_table(
            ["Threshold", "Yield loss", "Escape rate", "Escapes"],
            [
                [
                    f"{r['threshold']:.3f}",
                    f"{100 * r['yield_loss']:.3f}%",
                    f"{100 * r['escape_rate']:.3f}%",
                    str(r["escapes"]),
                ]
                for r in fleet.roc()
            ],
            title=(
                f"Fleet ROC -- {fleet.design} ({fleet.instances} instances, "
                f"{len(fleet.fault_keys)} faults)"
            ),
        )
    )
    chosen = fleet.chosen
    print(
        f"\nchosen threshold: +/-{100 * chosen['threshold']:.1f}% "
        f"(yield loss {100 * chosen['yield_loss']:.3f}%, escape rate "
        f"{100 * chosen['escape_rate']:.3f}%, budget "
        f"{'met' if chosen['met_budget'] else 'NOT met'})"
    )
    if fleet.matmul_s > 0:
        print(
            f"population kernel: {fleet.throughput:.3e} instances*faults/s "
            f"({fleet.matmul_s:.3f}s in matmuls)"
        )
    else:
        print("population kernel: replayed from store (no matmul run)")
    return 0


def _cmd_diff(args) -> int:
    """Structural delta + projected dirty fraction, without simulating."""
    from .core.pipeline import controller_fault_universe
    from .incremental.replay import project_dirty, resolve_baseline
    from .store.fingerprint import netlist_payload

    system = _build(args)
    store = _store(args)
    fp = netlist_fingerprint(system.netlist)
    if args.dump:
        with open(args.dump, "w", encoding="utf-8") as f:
            json.dump(netlist_payload(system.netlist), f)
        print(f"wrote netlist payload to {args.dump}")
    if not args.baseline:
        print(f"design {args.design}: fingerprint {fp}")
        print("no --baseline given; nothing to diff")
        return 0
    base = resolve_baseline(
        store, _baseline_spec(args, system), design=system.rtl.name, exclude_fp=fp
    )
    if base is None:
        print("error: could not resolve --baseline", file=sys.stderr)
        return 2
    universe = controller_fault_universe(system)
    sites = [system.to_system_fault(s) for s in universe]
    _delta, _region, summary = project_dirty(base, system, sites)
    print(json.dumps(summary, indent=2, allow_nan=False))
    return 0


def _cmd_table2(args) -> int:
    from .designs.catalog import PAPER_DESIGNS

    store = _store(args)
    results = []
    for name in PAPER_DESIGNS:
        system = cached_system(name, width=args.width)
        results.append(run_pipeline(system, _config(args), store=store))
    _print_store(store)
    print(render_table2(results))
    return 0


def _compute_campaign(args, store: CampaignStore, design: str, threshold: float) -> dict:
    """Full cache-aware grade flow for one design (the serve miss path)."""
    system = cached_system(
        design,
        width=args.width,
        encoding_kind=args.encoding,
        output_style=args.output_style,
    )
    config = _config(args)
    # "auto" replays from the most recent published version of this
    # design, so a near-duplicate upload hits warm per-fault entries.
    result = run_pipeline(system, config, store=store, baseline="auto")
    grading = grade_sfr_faults(
        system,
        result,
        threshold=threshold,
        n_jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        audit_rate=args.audit_rate,
        strict=args.strict,
        store=store,
        batched=args.batched_grading,
        cone_power=args.cone_power,
    )
    return _result_report(store, system, config, result, grading, command="grade")


def _compute_calibrate(args, store: CampaignStore, design: str, params: dict) -> dict:
    """Cache-aware fleet calibration for one design (the serve hook).

    ``params`` holds validated :class:`~repro.fleet.FleetConfig` field
    overrides straight from the endpoint's query string; everything the
    hook computes (activity counters, grading, fleet ROC) is store-backed,
    so a warm repeat is a pure replay.
    """
    from .fleet import FleetConfig, calibrate_fleet, calibrate_report_dict

    system = cached_system(
        design,
        width=args.width,
        encoding_kind=args.encoding,
        output_style=args.output_style,
    )
    config = _config(args)
    result = run_pipeline(system, config, store=store, baseline="auto")
    fleet, _campaign, _grading = calibrate_fleet(
        system,
        result,
        FleetConfig(**params),
        n_jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        audit_rate=args.audit_rate,
        strict=args.strict,
        cone_power=args.cone_power,
        store=store,
    )
    return calibrate_report_dict(fleet)


def _cmd_store(args) -> int:
    if not getattr(args, "store_dir", None):
        print("error: the store command needs --store-dir", file=sys.stderr)
        return 2
    if args.store_op == "rebalance":
        return _store_rebalance(args)
    store = _store(args)
    artifacts = store.artifacts
    if args.store_op == "stats":
        print(json.dumps(artifacts.stats(), indent=2))
    elif args.store_op == "gc":
        print(json.dumps(artifacts.gc(), indent=2))
    elif args.store_op == "scrub":
        from .store.fabric import FabricStore

        if not isinstance(artifacts, FabricStore):
            print(
                "error: store scrub needs a shard fabric; convert this store "
                "first with 'store rebalance --shards N --replicas R'",
                file=sys.stderr,
            )
            return 2
        report = artifacts.scrub()
        print(json.dumps(report, indent=2))
        if not report["full_replication"]:
            return 1
    else:  # verify
        defects = artifacts.verify()
        print(json.dumps({"ok": not defects, "defects": defects}, indent=2))
        if defects:
            return 1
    return 0


def _store_rebalance(args) -> int:
    """Migrate a store's fabric geometry (or convert a legacy store)."""
    from .store.fabric import FabricStore
    from .store.shards import load_geometry

    if args.shards is None:
        print(
            "error: store rebalance needs a target geometry: "
            "--shards N [--replicas R]",
            file=sys.stderr,
        )
        return 2
    n_shards = args.shards
    n_replicas = args.replicas if args.replicas is not None else 2
    persisted = load_geometry(args.store_dir)
    if persisted is None:
        fabric, info = FabricStore.convert(args.store_dir, n_shards, n_replicas)
        print(json.dumps({"converted": True, **info}, indent=2))
        return 0
    fabric = FabricStore(args.store_dir)  # open at the *current* geometry
    info = fabric.rebalance(n_shards, n_replicas)
    print(json.dumps({"converted": False, **info}, indent=2))
    return 0


def _cmd_query(args) -> int:
    from .store.query import query_campaigns, query_json, render_query

    store = _store(args)
    if store is None:
        print("error: query needs --store-dir", file=sys.stderr)
        return 2
    matches = query_campaigns(
        store, design=args.design, threshold=args.threshold, verdict=args.verdict
    )
    if args.json:
        print(json.dumps(query_json(matches), indent=2, allow_nan=False))
    else:
        print(render_query(matches, verdict=args.verdict))
    return 0


def _cmd_serve(args) -> int:
    import os

    from .store.server import make_server, serve_forever

    store = _store(args)
    if store is None:
        print("error: serve needs --store-dir", file=sys.stderr)
        return 2
    compute = None
    compute_calibrate = None
    if not args.no_compute:
        # Journal compute jobs under the store by default so a job-level
        # retry after a mid-request worker crash *resumes* the campaign
        # from its checkpoint instead of restarting it.
        if args.checkpoint_dir is None:
            args.checkpoint_dir = os.path.join(args.store_dir, "serve-ckpt")
            args.resume = True

        def compute(design: str, threshold: float) -> dict:
            return _compute_campaign(args, store, design, threshold)

        def compute_calibrate(design: str, params: dict) -> dict:
            return _compute_calibrate(args, store, design, params)

    server = make_server(
        args.host,
        args.port,
        store,
        compute=compute,
        compute_calibrate=compute_calibrate,
        designs=tuple(design_names()),
        queue_depth=args.queue_depth,
        workers=args.serve_workers,
        request_timeout=args.request_timeout,
    )
    host, port = server.server_address[:2]
    print(f"serving store {args.store_dir} on http://{host}:{port} (Ctrl-C stops)")
    serve_forever(server, drain_grace=args.drain_grace)
    return 0


def _cmd_export(args) -> int:
    system = _build(args)
    text = write_bench(system.netlist) if args.out.endswith(".bench") else write_verilog(
        system.netlist
    )
    with open(args.out, "w") as f:
        f.write(text)
    print(f"wrote {args.out}")
    return 0


def _cmd_stats(args) -> int:
    system = _build(args)
    stats = analyze(system.netlist)
    print(stats)
    for key, count in stats.by_type.items():
        print(f"  {key:8} {count}")
    return 0


def _cmd_strategies(args) -> int:
    from .core.grading import grade_sfr_faults
    from .core.report import render_table
    from .core.teststrategies import compare_strategies

    system = _build(args)
    result = run_pipeline(system, _config(args))
    grading = grade_sfr_faults(system, result, max_batches=4, n_jobs=args.jobs)
    rows = compare_strategies(system, result, grading, n_patterns=args.patterns)
    print(
        render_table(
            ["Strategy", "Faults", "Detected", "Coverage", "Needs DFT"],
            [
                [
                    r.strategy,
                    r.fault_universe,
                    f"{r.detected}/{r.total}",
                    f"{100 * r.coverage:.1f}%",
                    "yes" if r.requires_dft else "no",
                ]
                for r in rows
            ],
            title=f"Test strategy comparison -- {args.design}",
        )
    )
    return 0


def _cmd_worstcase(args) -> int:
    from .core.worstcase import find_worst_case
    from .power.estimator import PowerEstimator
    from .power.montecarlo import monte_carlo_power

    system = _build(args)
    wc = find_worst_case(system.rtl, system.controller)
    corrupted = wc.build()
    base = monte_carlo_power(system, PowerEstimator(system.netlist))
    worst = monte_carlo_power(corrupted, PowerEstimator(corrupted.netlist))
    pct = 100.0 * (worst.power_uw - base.power_uw) / base.power_uw
    print(f"accepted {len(wc.flips)}/{wc.candidates} non-disruptive corruptions")
    print(f"fault-free {base.power_uw:.1f} uW -> worst case {worst.power_uw:.1f} uW ({pct:+.1f}%)")
    return 0


def _cmd_datapath(args) -> int:
    from .core.datapath_faults import integrated_datapath_test

    system = _build(args)
    result = integrated_datapath_test(system, n_patterns=args.patterns)
    print(
        f"integrated datapath test: {result.detected()}/{result.total} "
        f"= {100 * result.coverage():.1f}% coverage"
    )
    print("hardest components:")
    for tag, rate in result.hardest_components():
        print(f"  {tag:16} {100 * rate:5.1f}%")
    return 0


def _cmd_compile(args) -> int:
    from .hls.bind import bind_design
    from .hls.frontend import parse_behavior
    from .hls.schedule import list_schedule

    with open(args.source) as f:
        dfg = parse_behavior(f.read())
    schedule = list_schedule(dfg, resources={})
    rtl = bind_design(dfg, schedule)
    print(rtl.summary())
    system = build_system(
        rtl, encoding_kind=args.encoding, output_style=args.output_style
    )
    result = run_pipeline(system, _config(args))
    print("fault buckets:", result.counts())
    return 0


def _cmd_dump_vcd(args) -> int:
    import numpy as np

    from .logic.vcd import dump_system_run

    system = _build(args)
    rng = np.random.default_rng(args.seed)
    data = {
        k: rng.integers(0, 1 << args.width, 1) for k in system.rtl.dfg.inputs
    }
    dump_system_run(system, data, system.cycles_for(4), args.out)
    print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="SFR controller-fault analysis via power (DATE 2000 reproduction)",
    )
    parser.add_argument(
        "--width", type=_positive_int, default=4, help="datapath bit width"
    )
    parser.add_argument(
        "--patterns", type=_positive_int, default=256, help="fault-sim patterns"
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="worker processes for per-fault loops (-1 = all cores, capped at "
        "the machine's core count; results are identical for any value -- "
        "see docs/performance.md)",
    )
    parser.add_argument(
        "--cone-sim",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="cone-restricted differential fault simulation: evaluate only "
        "each fault's sequential fanout cone against the recorded golden "
        "trace (verdicts are bit-identical either way; default: --cone-sim "
        "-- see docs/performance.md)",
    )
    parser.add_argument(
        "--batched-grading",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="block-parallel Monte-Carlo grading kernel: every fault of a "
        "chunk owns one pattern block of a single wide simulation per "
        "batch (powers are bit-identical either way; default: "
        "--batched-grading -- see docs/performance.md)",
    )
    parser.add_argument(
        "--cone-power",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="cone-restricted batched grading: simulate only each chunk's "
        "union fault cone per batch and splice every other counter from "
        "one fault-free reference run (bit-identical; default: "
        "--cone-power -- see docs/performance.md)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal per-fault results to DIR so a killed campaign can be "
        "resumed (see docs/robustness.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign from its --checkpoint-dir "
        "journal, skipping already-completed faults bit-identically",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-chunk timeout: a hung worker is killed and its chunk "
        "retried (default: wait forever)",
    )
    parser.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        help="extra attempts granted to a failed or timed-out chunk "
        "(default: 2)",
    )
    parser.add_argument(
        "--audit-rate",
        type=_audit_rate_arg,
        default=DEFAULT_AUDIT_RATE,
        metavar="FRACTION",
        help="fraction of faults re-simulated on an independent path to "
        "catch silent result corruption (0 disables; default: "
        f"{DEFAULT_AUDIT_RATE} -- see docs/integrity.md)",
    )
    parser.add_argument(
        "--strict",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="abort on the first integrity violation instead of "
        "quarantining the offending fault and continuing (default: "
        "--no-strict)",
    )
    parser.add_argument(
        "--chaos",
        type=_chaos_arg,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for testing the recovery and "
        "integrity layers, e.g. 'crash:0.15,hang:0.1,bitflip:1,seed:7' "
        "(see docs/integrity.md)",
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="FILE",
        help="write a machine-readable campaign/integrity report to FILE",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result store: completed stages are published "
        "to DIR and replayed bit-identically by later runs, query and serve "
        "(see docs/store.md)",
    )
    parser.add_argument(
        "--store-refresh",
        action="store_true",
        help="treat every store lookup as a miss: recompute and republish "
        "(cache busting without deleting the store)",
    )
    parser.add_argument(
        "--shards",
        type=_shards_arg,
        default=None,
        metavar="N",
        help="open --store-dir as a replicated shard fabric of N SQLite "
        "shards (persisted in fabric.json; a later mismatch needs 'store "
        "rebalance' -- see docs/store.md)",
    )
    parser.add_argument(
        "--replicas",
        type=_replicas_arg,
        default=None,
        metavar="R",
        help="copies of every artifact across the fabric, primary included "
        "(default 2 for a new fabric; capped at the shard count)",
    )
    parser.add_argument(
        "--result-json",
        default=None,
        metavar="FILE",
        help="write the deterministic result report (canonical JSON, "
        "byte-identical across cold, resumed and store-replayed runs) to FILE",
    )
    parser.add_argument("--encoding", default="binary", choices=["binary", "gray", "onehot"])
    parser.add_argument(
        "--output-style", default="pla", choices=["pla", "decoded", "minimized"]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    baseline_help = (
        "replay unaffected faults from an earlier design version: a "
        "published netlist fingerprint, a netlist-payload JSON path "
        "(see 'diff --dump'), a catalog design name, or 'auto' for the "
        "most recently published version of this design (needs --store-dir)"
    )

    p = sub.add_parser("classify", help="run the Section-5 classification pipeline")
    p.add_argument("design", choices=design_names())
    p.add_argument("--baseline", default=None, help=baseline_help)
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("grade", help="classify + Monte-Carlo power grading")
    p.add_argument("design", choices=design_names())
    p.add_argument("--threshold", type=_fraction_arg, default=0.05)
    p.add_argument("--baseline", default=None, help=baseline_help)
    p.set_defaults(func=_cmd_grade)

    p = sub.add_parser(
        "calibrate",
        help="fleet-scale threshold ROC: one activity campaign + the "
        "population matmul kernel (see docs/performance.md)",
    )
    p.add_argument("design", choices=design_names())
    p.add_argument(
        "--instances",
        type=_positive_int,
        default=100_000,
        help="manufactured instances to sample (default: 100000; the "
        "kernel is a matmul, so millions are fine)",
    )
    p.add_argument(
        "--sigma-cap",
        type=_sigma_arg,
        default=0.05,
        help="per-gate-type log-normal capacitance spread (default: 0.05)",
    )
    p.add_argument(
        "--sigma-leak",
        type=_sigma_arg,
        default=0.30,
        help="per-gate-type log-normal leakage spread (default: 0.30)",
    )
    p.add_argument(
        "--sigma-meas",
        type=_sigma_arg,
        default=0.02,
        help="multiplicative tester measurement noise (default: 0.02)",
    )
    p.add_argument(
        "--yield-budget",
        type=_sigma_arg,
        default=0.01,
        help="tolerated fault-free yield loss for the threshold chooser "
        "(default: 0.01)",
    )
    p.add_argument(
        "--fleet-seed",
        type=_nonnegative_int,
        default=7,
        help="population sampling seed (default: 7; results are "
        "byte-identical for a fixed configuration)",
    )
    p.add_argument(
        "--fleet-engine",
        choices=["rowwise", "factored"],
        default="rowwise",
        help="'rowwise' materialises C[instances x rows] (the full "
        "decomposition matmul); 'factored' precontracts the weight/"
        "activity product (default: rowwise)",
    )
    p.add_argument(
        "--threshold",
        type=_fraction_arg,
        default=0.05,
        help="threshold of the embedded scalar grading report (the fleet "
        "sweeps its own grid; default: 0.05)",
    )
    p.add_argument("--baseline", default=None, help=baseline_help)
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser(
        "diff",
        help="diff a design against a baseline and project the dirty fraction",
    )
    p.add_argument("design", choices=design_names())
    p.add_argument("--baseline", default=None, help=baseline_help)
    p.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="also write this design's netlist payload JSON (a portable "
        "--baseline input) to PATH",
    )
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("table2", help="Table 2 for all designs")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("store", help="inspect or maintain the --store-dir store")
    p.add_argument(
        "store_op",
        choices=["stats", "gc", "verify", "scrub", "rebalance"],
        help="stats/gc/verify work on any store; scrub runs the fabric's "
        "anti-entropy repair pass; rebalance migrates to the --shards/"
        "--replicas geometry (converting a legacy store in place)",
    )
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser("query", help="filter cached campaigns without simulating")
    p.add_argument("--design", choices=design_names(), default=None)
    p.add_argument("--threshold", type=_fraction_arg, default=None)
    p.add_argument("--verdict", choices=list(QUERY_VERDICTS), default=None)
    p.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("serve", help="HTTP endpoint over cached campaign results")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=_port_arg, default=8357)
    p.add_argument(
        "--no-compute",
        action="store_true",
        help="serve cached results only; a miss returns 404 instead of "
        "running the pipeline",
    )
    p.add_argument(
        "--queue-depth",
        type=_queue_depth_arg,
        default=8,
        help="max compute jobs admitted (queued + running); excess "
        "requests get 503 + Retry-After instead of piling up (default: 8)",
    )
    p.add_argument(
        "--request-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline: a compute that outlives it returns 504, "
        "is quarantined, and its worker slot is reclaimed (default: none)",
    )
    p.add_argument(
        "--serve-workers",
        type=_positive_int,
        default=2,
        help="compute worker threads draining the job queue (default: 2)",
    )
    p.add_argument(
        "--drain-grace",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help="SIGTERM drain budget: finish in-flight jobs for up to this "
        "long while refusing new work (default: 30)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("export", help="write the system netlist (.v or .bench)")
    p.add_argument("design", choices=design_names())
    p.add_argument("out")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("stats", help="netlist statistics")
    p.add_argument("design", choices=design_names())
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("strategies", help="separate vs integrated vs power test")
    p.add_argument("design", choices=design_names())
    p.set_defaults(func=_cmd_strategies)

    p = sub.add_parser("worstcase", help="Section-4 maximal non-disruptive corruption")
    p.add_argument("design", choices=design_names())
    p.set_defaults(func=_cmd_worstcase)

    p = sub.add_parser("datapath", help="integrated datapath fault test")
    p.add_argument("design", choices=design_names())
    p.set_defaults(func=_cmd_datapath)

    p = sub.add_parser("compile", help="behavioural text file -> full pipeline")
    p.add_argument("source")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("dump-vcd", help="waveform of one normal-mode run")
    p.add_argument("design", choices=design_names())
    p.add_argument("out")
    p.add_argument("--seed", type=_nonnegative_int, default=1)
    p.set_defaults(func=_cmd_dump_vcd)

    args = parser.parse_args(argv)
    if getattr(args, "chaos", None) and getattr(args, "timeout", None) is None:
        from .testing.chaos import ChaosSpec

        if ChaosSpec.parse(args.chaos).hang:
            parser.error(
                "--chaos hang injection needs --timeout "
                "(a hung worker would otherwise stall the campaign forever)"
            )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
