"""Structural Verilog subset: writer and parser (round-trippable).

The dialect is the flat gate-level style 1990s ASIC tools exchanged:

* one module, port list, ``input``/``output``/``wire`` declarations;
* standard gate primitives ``and or nand nor not xor xnor buf`` in
  positional form (output first);
* library cells ``MUX2`` (ports Y, S, A, B), ``DFF`` (Q, D), ``DFFE``
  (Q, EN, D), ``CONST0``/``CONST1`` (Y) in named-port form.

Net names that are not plain Verilog identifiers are emitted as escaped
identifiers (``\\name`` terminated by whitespace), so arbitrary internal
names like ``REG3_q[0]`` survive a round trip.
"""

from __future__ import annotations

import re

from .gates import GateType
from .netlist import Netlist, NetlistError

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.NOT: "not",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.BUF: "buf",
}
_PRIM_BY_NAME = {v: k for k, v in _PRIMITIVES.items()}

_CELL_PORTS = {
    GateType.MUX2: ("Y", ["S", "A", "B"]),
    GateType.DFF: ("Q", ["D"]),
    GateType.DFFE: ("Q", ["EN", "D"]),
    GateType.CONST0: ("Y", []),
    GateType.CONST1: ("Y", []),
}
_CELL_BY_NAME = {t.value: t for t in _CELL_PORTS}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    return name if _ID_RE.match(name) else f"\\{name} "


def write_verilog(netlist: Netlist) -> str:
    """Serialize ``netlist`` to the structural Verilog subset."""
    netlist.validate()
    nm = [_escape(n) for n in netlist.net_names]
    ports = [nm[n].strip() for n in netlist.inputs] + [
        nm[n].strip() for n in netlist.outputs if n not in netlist.inputs
    ]
    lines = [f"// netlist {netlist.name}", f"module {_escape(netlist.name).strip()} ("]
    lines.append("  " + ",\n  ".join(dict.fromkeys(ports)))
    lines.append(");")
    for n in netlist.inputs:
        lines.append(f"  input {nm[n]};")
    for n in netlist.outputs:
        if n not in netlist.inputs:
            lines.append(f"  output {nm[n]};")
    declared = set(netlist.inputs) | set(netlist.outputs)
    for n in range(netlist.num_nets):
        if n not in declared:
            lines.append(f"  wire {nm[n]};")
    for g in netlist.gates:
        gname = _escape(g.name)
        if g.gtype in _PRIMITIVES:
            args = ", ".join([nm[g.output]] + [nm[i] for i in g.inputs])
            lines.append(f"  {_PRIMITIVES[g.gtype]} {gname}({args});")
        else:
            out_port, in_ports = _CELL_PORTS[g.gtype]
            conns = [f".{out_port}({nm[g.output]})"] + [
                f".{p}({nm[i]})" for p, i in zip(in_ports, g.inputs)
            ]
            lines.append(f"  {g.gtype.value} {gname}({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_TOKEN_RE = re.compile(
    r"""\\[^\s]+      # escaped identifier
      | [A-Za-z_][A-Za-z0-9_$]*
      | [().,;]
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    tokens = []
    for m in _TOKEN_RE.finditer(text):
        tok = m.group(0)
        if tok.startswith("\\"):
            tok = tok[1:]
        tokens.append(tok)
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise NetlistError("unexpected end of Verilog input")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise NetlistError(f"expected {tok!r}, got {got!r}")

    def name_list_until(self, terminator: str) -> list[str]:
        names = []
        while True:
            tok = self.next()
            if tok == terminator:
                return names
            if tok != ",":
                names.append(tok)


def parse_verilog(text: str) -> Netlist:
    """Parse the structural subset back into a :class:`Netlist`."""
    p = _Parser(_tokenize(text))
    p.expect("module")
    name = p.next()
    p.expect("(")
    p.name_list_until(")")
    p.expect(";")

    netlist = Netlist(name=name)

    def net(n: str) -> int:
        return netlist.net_id(n) if netlist.has_net(n) else netlist.add_net(n)

    pending_outputs: list[str] = []
    while True:
        tok = p.next()
        if tok == "endmodule":
            break
        if tok in ("input", "output", "wire"):
            names = p.name_list_until(";")
            for n in names:
                nid = net(n)
                if tok == "input":
                    netlist.mark_input(nid)
                elif tok == "output":
                    pending_outputs.append(n)
            continue
        # Gate or cell instance.
        if tok in _PRIM_BY_NAME:
            gtype = _PRIM_BY_NAME[tok]
            inst = p.next()
            p.expect("(")
            args = p.name_list_until(")")
            p.expect(";")
            if not args:
                raise NetlistError(f"primitive instance {inst!r} has no connections")
            netlist.add_gate(gtype, net(args[0]), [net(a) for a in args[1:]], name=inst)
            continue
        if tok in _CELL_BY_NAME:
            gtype = _CELL_BY_NAME[tok]
            out_port, in_ports = _CELL_PORTS[gtype]
            inst = p.next()
            p.expect("(")
            conns: dict[str, str] = {}
            while True:
                t = p.next()
                if t == ")":
                    break
                if t == ",":
                    continue
                if t != ".":
                    raise NetlistError(f"expected named connection, got {t!r}")
                port = p.next()
                p.expect("(")
                conns[port] = p.next()
                p.expect(")")
            p.expect(";")
            missing = {out_port, *in_ports} - set(conns)
            if missing:
                raise NetlistError(f"instance {inst!r} missing ports {sorted(missing)}")
            netlist.add_gate(
                gtype, net(conns[out_port]), [net(conns[pp]) for pp in in_ports], name=inst
            )
            continue
        raise NetlistError(f"unknown gate or cell type {tok!r}")

    for n in pending_outputs:
        netlist.mark_output(netlist.net_id(n))
    netlist.validate()
    return netlist


def parse_verilog_upload(text: str, max_bytes: int | None = None) -> Netlist:
    """Fail-fast frontend for *untrusted* structural-Verilog uploads.

    Same contract as :func:`repro.netlist.bench.parse_bench_upload`:
    size cap before tokenizing, parse, then full structural +
    acyclicity validation -- every failure mode is a typed
    :class:`~repro.core.errors.InputValidationError` (HTTP 400 at the
    serve layer), never an arbitrary exception or a wedged worker.
    """
    from ..core.errors import (
        UPLOAD_MAX_BYTES,
        InputValidationError,
        validate_upload_netlist,
        validate_upload_text,
    )

    validate_upload_text(text, max_bytes if max_bytes is not None else UPLOAD_MAX_BYTES)
    try:
        netlist = parse_verilog(text)
    except NetlistError as exc:
        raise InputValidationError(f"bad Verilog upload: {exc}") from exc
    validate_upload_netlist(netlist)
    return netlist
