"""Gate library for the gate-level netlist substrate.

The library is intentionally small -- it mirrors the kind of standard-cell
subset a 1990s ASIC flow (the paper used COMPASS with a 0.8-micron CMOS
library) would map a two-level controller and a bit-sliced datapath onto:

* combinational: ``AND OR NAND NOR NOT XOR XNOR BUF MUX2 CONST0 CONST1``
* sequential:    ``DFF`` (plain flip-flop) and ``DFFE`` (enable-gated
  flip-flop used for datapath registers with gated clocks)

``MUX2`` input order is ``(sel, a, b)`` and computes ``b if sel else a``.
``DFFE`` input order is ``(en, d)`` and loads ``d`` only when ``en`` is 1.
"""

from __future__ import annotations

import enum


class GateType(enum.Enum):
    """Enumeration of supported gate types."""

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    NOT = "NOT"
    XOR = "XOR"
    XNOR = "XNOR"
    BUF = "BUF"
    MUX2 = "MUX2"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    DFF = "DFF"
    DFFE = "DFFE"


#: Gate types that accept a variable number of inputs (>= 2).
VARIADIC_TYPES = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR}
)

#: Fixed arity for the non-variadic types.
FIXED_ARITY = {
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.MUX2: 3,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.DFF: 1,
    GateType.DFFE: 2,
}

#: Gate types whose output is state (updated on the clock edge).
SEQUENTIAL_TYPES = frozenset({GateType.DFF, GateType.DFFE})

#: Gate types that drive constants.
CONST_TYPES = frozenset({GateType.CONST0, GateType.CONST1})


def valid_arity(gate_type: GateType, n_inputs: int) -> bool:
    """Return True if ``n_inputs`` is a legal input count for ``gate_type``."""
    if gate_type in VARIADIC_TYPES:
        return n_inputs >= 2
    return n_inputs == FIXED_ARITY[gate_type]


def is_sequential(gate_type: GateType) -> bool:
    """Return True for flip-flop gate types."""
    return gate_type in SEQUENTIAL_TYPES


def is_constant(gate_type: GateType) -> bool:
    """Return True for constant-driver gate types."""
    return gate_type in CONST_TYPES


def eval_gate_ints(gate_type: GateType, inputs: list[int]) -> int:
    """Evaluate a combinational gate on plain 0/1 integers.

    Used by tests and by the slow reference simulator; the production
    simulator works on packed 3-valued bit-planes instead.
    """
    t = GateType(gate_type)
    if t is GateType.AND:
        return int(all(inputs))
    if t is GateType.OR:
        return int(any(inputs))
    if t is GateType.NAND:
        return int(not all(inputs))
    if t is GateType.NOR:
        return int(not any(inputs))
    if t is GateType.NOT:
        return 1 - inputs[0]
    if t is GateType.BUF:
        return inputs[0]
    if t is GateType.XOR:
        return sum(inputs) % 2
    if t is GateType.XNOR:
        return 1 - (sum(inputs) % 2)
    if t is GateType.MUX2:
        sel, a, b = inputs
        return b if sel else a
    if t is GateType.CONST0:
        return 0
    if t is GateType.CONST1:
        return 1
    raise ValueError(f"{t} is not combinational")
