"""netlist subpackage."""
