"""Ergonomic construction of :class:`~repro.netlist.netlist.Netlist` objects.

The builder adds three conveniences over raw ``Netlist``:

* automatic net creation with fresh unique names;
* bus helpers (a bus is just a Python list of net ids, LSB first, named
  ``base[i]``);
* ``instantiate`` -- flatten a previously built netlist into this one with a
  name prefix, binding its ports to existing nets (this is how the
  controller and the datapath are merged into one system netlist).
"""

from __future__ import annotations

from .gates import GateType
from .netlist import Gate, Netlist, NetlistError


class NetlistBuilder:
    """Incrementally builds a flat netlist."""

    def __init__(self, name: str = "top"):
        self.netlist = Netlist(name=name)
        self._fresh = 0
        self.default_tag = ""

    # ------------------------------------------------------------------ nets
    def net(self, name: str | None = None) -> int:
        """Create (or return an existing) named net; fresh name if None."""
        nl = self.netlist
        if name is None:
            name = self._fresh_name()
        if nl.has_net(name):
            return nl.net_id(name)
        return nl.add_net(name)

    def _fresh_name(self) -> str:
        self._fresh += 1
        return f"_n{self._fresh}"

    def bus(self, base: str, width: int) -> list[int]:
        """Create a bus of ``width`` nets named ``base[0] .. base[width-1]``."""
        return [self.net(f"{base}[{i}]") for i in range(width)]

    def input(self, name: str) -> int:
        """Create a primary-input net."""
        nid = self.net(name)
        self.netlist.mark_input(nid)
        return nid

    def input_bus(self, base: str, width: int) -> list[int]:
        """Create a primary-input bus."""
        nets = self.bus(base, width)
        for nid in nets:
            self.netlist.mark_input(nid)
        return nets

    def output(self, net: int) -> int:
        """Mark an existing net as a primary output."""
        self.netlist.mark_output(net)
        return net

    def output_bus(self, nets: list[int]) -> list[int]:
        """Mark a bus as primary outputs."""
        for nid in nets:
            self.netlist.mark_output(nid)
        return nets

    # ----------------------------------------------------------------- gates
    def gate(
        self,
        gtype: GateType,
        inputs: list[int],
        output: int | None = None,
        name: str | None = None,
        tag: str | None = None,
    ) -> int:
        """Add a gate; returns the output net id."""
        if output is None:
            output = self.net()
        self.netlist.add_gate(
            gtype, output, inputs, name=name, tag=self.default_tag if tag is None else tag
        )
        return output

    # Convenience wrappers -- one per gate type, reading naturally at
    # call sites: ``s = b.xor_([a, c])``.
    def and_(self, inputs, output=None, name=None, tag=None):
        return self.gate(GateType.AND, list(inputs), output, name, tag)

    def or_(self, inputs, output=None, name=None, tag=None):
        return self.gate(GateType.OR, list(inputs), output, name, tag)

    def nand_(self, inputs, output=None, name=None, tag=None):
        return self.gate(GateType.NAND, list(inputs), output, name, tag)

    def nor_(self, inputs, output=None, name=None, tag=None):
        return self.gate(GateType.NOR, list(inputs), output, name, tag)

    def xor_(self, inputs, output=None, name=None, tag=None):
        return self.gate(GateType.XOR, list(inputs), output, name, tag)

    def xnor_(self, inputs, output=None, name=None, tag=None):
        return self.gate(GateType.XNOR, list(inputs), output, name, tag)

    def not_(self, a, output=None, name=None, tag=None):
        return self.gate(GateType.NOT, [a], output, name, tag)

    def buf_(self, a, output=None, name=None, tag=None):
        return self.gate(GateType.BUF, [a], output, name, tag)

    def mux2_(self, sel, a, b, output=None, name=None, tag=None):
        """2:1 mux -- returns ``b`` when ``sel`` is 1, else ``a``."""
        return self.gate(GateType.MUX2, [sel, a, b], output, name, tag)

    def const0(self, output=None, name=None, tag=None):
        return self.gate(GateType.CONST0, [], output, name, tag)

    def const1(self, output=None, name=None, tag=None):
        return self.gate(GateType.CONST1, [], output, name, tag)

    def dff(self, d, output=None, name=None, tag=None):
        """Plain D flip-flop."""
        return self.gate(GateType.DFF, [d], output, name, tag)

    def dffe(self, en, d, output=None, name=None, tag=None):
        """Enable-gated D flip-flop: loads ``d`` when ``en`` is 1."""
        return self.gate(GateType.DFFE, [en, d], output, name, tag)

    # ------------------------------------------------------------- hierarchy
    def instantiate(
        self,
        sub: Netlist,
        bindings: dict[str, int],
        prefix: str,
        tag: str | None = None,
    ) -> dict[str, int]:
        """Flatten ``sub`` into this netlist.

        Args:
            sub: the netlist to copy in.
            bindings: maps *port net names of sub* (inputs and/or outputs)
                to net ids already present in this builder.  Every primary
                input of ``sub`` must be bound; outputs may be bound to
                pre-created (undriven) nets or left to get prefixed names.
            prefix: prepended (with ``/``) to all unbound net and gate names.
            tag: overrides the copied gates' tags when given (otherwise the
                sub's own tags are kept; untagged gates get ``prefix``).

        Returns:
            Mapping of every sub net name to its net id in this netlist.
        """
        nl = self.netlist
        sub.validate()
        mapping: dict[int, int] = {}
        bound_ids = {sub.net_id(name): nid for name, nid in bindings.items()}
        for pi in sub.inputs:
            if pi not in bound_ids:
                raise NetlistError(
                    f"unbound input {sub.net_names[pi]!r} when instantiating {sub.name!r}"
                )
        for old_id, old_name in enumerate(sub.net_names):
            if old_id in bound_ids:
                mapping[old_id] = bound_ids[old_id]
            else:
                mapping[old_id] = self.net(f"{prefix}/{old_name}")
        for gate in sub.gates:
            new_tag = tag if tag is not None else (gate.tag or prefix)
            nl.add_gate(
                gate.gtype,
                mapping[gate.output],
                [mapping[i] for i in gate.inputs],
                name=f"{prefix}/{gate.name}",
                tag=new_tag,
            )
        return {name: mapping[i] for i, name in enumerate(sub.net_names)}

    # --------------------------------------------------------------- word ops
    def const_bus(self, value: int, width: int, tag=None) -> list[int]:
        """Drive a bus with a constant ``width``-bit value (LSB first)."""
        nets = []
        for i in range(width):
            if (value >> i) & 1:
                nets.append(self.const1(tag=tag))
            else:
                nets.append(self.const0(tag=tag))
        return nets

    def done(self) -> Netlist:
        """Validate and return the built netlist."""
        self.netlist.validate()
        return self.netlist
