"""ISCAS-89 ``.bench`` style writer and parser.

Classic test-community exchange format (the paper's fault-simulation world
speaks it):

.. code-block:: text

    INPUT(a)
    OUTPUT(y)
    y = AND(a, b)
    q = DFF(d)

Extensions beyond the classic format, needed by our library: ``DFFE(en, d)``,
``MUX2(s, a, b)``, ``CONST0()``, ``CONST1()``.  Net names are sanitised
(non-identifier characters become ``_``) with a collision-avoiding suffix,
so a parse->write round trip is structurally faithful even if names are
not identical.
"""

from __future__ import annotations

import re

from .gates import GateType
from .netlist import Netlist, NetlistError

_LINE_RE = re.compile(r"^\s*([^=\s]+)\s*=\s*([A-Za-z0-9]+)\s*\(([^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$")

_FUNCS = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "NOT": GateType.NOT,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "MUX2": GateType.MUX2,
    "DFF": GateType.DFF,
    "DFFE": GateType.DFFE,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}
_NAMES = {
    GateType.AND: "AND",
    GateType.OR: "OR",
    GateType.NAND: "NAND",
    GateType.NOR: "NOR",
    GateType.NOT: "NOT",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.BUF: "BUF",
    GateType.MUX2: "MUX2",
    GateType.DFF: "DFF",
    GateType.DFFE: "DFFE",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}


def _sanitise_names(netlist: Netlist) -> list[str]:
    used: set[str] = set()
    out: list[str] = []
    for name in netlist.net_names:
        clean = re.sub(r"[^A-Za-z0-9_]", "_", name) or "_net"
        candidate = clean
        k = 1
        while candidate in used:
            k += 1
            candidate = f"{clean}_{k}"
        used.add(candidate)
        out.append(candidate)
    return out


def write_bench(netlist: Netlist) -> str:
    """Serialize to .bench text."""
    netlist.validate()
    nm = _sanitise_names(netlist)
    lines = [f"# {netlist.name}"]
    for n in netlist.inputs:
        lines.append(f"INPUT({nm[n]})")
    for n in netlist.outputs:
        lines.append(f"OUTPUT({nm[n]})")
    for g in netlist.gates:
        args = ", ".join(nm[i] for i in g.inputs)
        lines.append(f"{nm[g.output]} = {_NAMES[g.gtype]}({args})")
    return "\n".join(lines) + "\n"


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse .bench text into a :class:`Netlist`."""
    netlist = Netlist(name=name)

    def net(n: str) -> int:
        return netlist.net_id(n) if netlist.has_net(n) else netlist.add_net(n)

    pending_outputs: list[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _IO_RE.match(line)
        if m:
            kind, n = m.groups()
            if kind == "INPUT":
                netlist.mark_input(net(n))
            else:
                pending_outputs.append(n)
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise NetlistError(f"unparseable bench line: {raw!r}")
        out, func, args = m.groups()
        func = func.upper()
        if func not in _FUNCS:
            raise NetlistError(f"unknown bench function {func!r}")
        inputs = [a.strip() for a in args.split(",") if a.strip()]
        netlist.add_gate(_FUNCS[func], net(out), [net(a) for a in inputs])
    for n in pending_outputs:
        netlist.mark_output(netlist.net_id(n))
    netlist.validate()
    return netlist


def parse_bench_upload(text: str, name: str = "upload", max_bytes: int | None = None) -> Netlist:
    """Fail-fast frontend for *untrusted* .bench uploads.

    Bounds the payload size before tokenizing, parses, and then runs the
    full structural + acyclicity validation, so a malformed or
    combinationally cyclic upload is rejected in milliseconds with a
    typed :class:`~repro.core.errors.InputValidationError` -- it can
    never wedge a compute worker or surface as a deep-stack error
    mid-campaign.  The serve layer maps the error to HTTP 400.
    """
    from ..core.errors import (
        UPLOAD_MAX_BYTES,
        InputValidationError,
        validate_upload_netlist,
        validate_upload_text,
    )

    validate_upload_text(text, max_bytes if max_bytes is not None else UPLOAD_MAX_BYTES)
    try:
        netlist = parse_bench(text, name=name)
    except NetlistError as exc:
        raise InputValidationError(f"bad .bench upload: {exc}") from exc
    validate_upload_netlist(netlist)
    return netlist
