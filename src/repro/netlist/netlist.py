"""Flat gate-level netlist data structure.

A :class:`Netlist` is a directed graph of single-output gates connected by
named nets.  It is deliberately flat (no hierarchy) -- hierarchy is handled
at construction time by :class:`repro.netlist.builder.NetlistBuilder`, which
can instantiate one netlist inside another with prefixed names.

Conventions
-----------
* Every net has exactly one driver: either a gate output or a primary input.
* Primary outputs are nets (a net may be both internal and observed).
* Each gate carries a free-form ``tag`` string used to partition the design
  (e.g. ``"ctrl"`` for controller gates, ``"dp:REG3"`` for a datapath
  register slice); fault universes and power breakdowns select on tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .gates import GateType, is_constant, is_sequential, valid_arity


@dataclass
class Gate:
    """One gate instance.

    Attributes:
        index: position in ``Netlist.gates`` (stable identifier).
        gtype: the :class:`GateType`.
        output: net id driven by this gate.
        inputs: net ids read by this gate, in pin order.
        name: instance name (unique within the netlist).
        tag: free-form partition label.
    """

    index: int
    gtype: GateType
    output: int
    inputs: list[int]
    name: str
    tag: str = ""


class NetlistError(ValueError):
    """Raised for structural netlist violations."""


@dataclass
class Netlist:
    """A flat, single-driver, single-clock gate-level netlist."""

    name: str = "top"
    net_names: list[str] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    inputs: list[int] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    _net_index: dict[str, int] = field(default_factory=dict, repr=False)
    _driver: dict[int, int] = field(default_factory=dict, repr=False)
    _fanout_cache: dict[int, list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ nets
    def add_net(self, name: str) -> int:
        """Create a new net and return its id.  Names must be unique."""
        if name in self._net_index:
            raise NetlistError(f"duplicate net name {name!r}")
        nid = len(self.net_names)
        self.net_names.append(name)
        self._net_index[name] = nid
        self._fanout_cache = None
        return nid

    def net_id(self, name: str) -> int:
        """Return the id of the net called ``name``."""
        try:
            return self._net_index[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def has_net(self, name: str) -> bool:
        """Return True if a net with this name exists."""
        return name in self._net_index

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    # ----------------------------------------------------------------- gates
    def add_gate(
        self,
        gtype: GateType,
        output: int,
        inputs: list[int],
        name: str | None = None,
        tag: str = "",
    ) -> Gate:
        """Attach a gate driving ``output`` from ``inputs``."""
        gtype = GateType(gtype)
        if not valid_arity(gtype, len(inputs)):
            raise NetlistError(f"{gtype.value} gate cannot take {len(inputs)} inputs")
        if output in self._driver:
            raise NetlistError(f"net {self.net_names[output]!r} already driven")
        for nid in [output, *inputs]:
            if not 0 <= nid < self.num_nets:
                raise NetlistError(f"net id {nid} out of range")
        gate = Gate(
            index=len(self.gates),
            gtype=gtype,
            output=output,
            inputs=list(inputs),
            name=name or f"g{len(self.gates)}",
            tag=tag,
        )
        self.gates.append(gate)
        self._driver[output] = gate.index
        self._fanout_cache = None
        return gate

    def driver_of(self, net: int) -> Gate | None:
        """Return the gate driving ``net``, or None for primary inputs."""
        idx = self._driver.get(net)
        return None if idx is None else self.gates[idx]

    # ----------------------------------------------------------------- ports
    def mark_input(self, net: int) -> None:
        """Declare ``net`` as a primary input."""
        if net in self._driver:
            raise NetlistError(f"net {self.net_names[net]!r} is gate-driven, cannot be an input")
        if net not in self.inputs:
            self.inputs.append(net)

    def mark_output(self, net: int) -> None:
        """Declare ``net`` as a primary output (observed)."""
        if net not in self.outputs:
            self.outputs.append(net)

    # ------------------------------------------------------------- structure
    def fanout_map(self) -> dict[int, list[tuple[int, int]]]:
        """Map net id -> list of (gate index, pin index) readers.

        The map is cached and invalidated whenever a net or gate is
        added; treat the returned dict as read-only.  Structural analyses
        (fault collapsing, cone closures, power fanout loads, the event
        simulator) all share one rebuild per netlist revision.
        """
        if self._fanout_cache is None:
            fanout: dict[int, list[tuple[int, int]]] = {
                n: [] for n in range(self.num_nets)
            }
            for gate in self.gates:
                for pin, nid in enumerate(gate.inputs):
                    fanout[nid].append((gate.index, pin))
            self._fanout_cache = fanout
        return self._fanout_cache

    def gates_with_tag(self, prefix: str) -> list[Gate]:
        """Return gates whose tag equals or starts with ``prefix``."""
        return [g for g in self.gates if g.tag == prefix or g.tag.startswith(prefix)]

    def validate(self) -> None:
        """Check the single-driver/no-floating-net invariants.

        Raises:
            NetlistError: describing the first violation found.
        """
        driven = set(self._driver)
        pi = set(self.inputs)
        if driven & pi:
            bad = next(iter(driven & pi))
            raise NetlistError(f"net {self.net_names[bad]!r} is both input and gate-driven")
        read: set[int] = set()
        for gate in self.gates:
            read.update(gate.inputs)
        observed = read | set(self.outputs)
        floating = observed - driven - pi
        if floating:
            names = sorted(self.net_names[n] for n in floating)
            raise NetlistError(f"floating nets (no driver): {names[:8]}")

    def stats(self) -> dict[str, int]:
        """Return simple size statistics (gate counts by type)."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.gtype.value] = counts.get(gate.gtype.value, 0) + 1
        counts["nets"] = self.num_nets
        counts["gates"] = len(self.gates)
        counts["inputs"] = len(self.inputs)
        counts["outputs"] = len(self.outputs)
        return counts

    # ------------------------------------------------------------ partitions
    def sequential_gates(self) -> list[Gate]:
        """Return all flip-flop gates."""
        return [g for g in self.gates if is_sequential(g.gtype)]

    def combinational_gates(self) -> list[Gate]:
        """Return all non-flip-flop, non-constant gates."""
        return [g for g in self.gates if not is_sequential(g.gtype) and not is_constant(g.gtype)]
