"""Netlist statistics: sizes, depth, fanout distribution, tag breakdown."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.levelize import levelize
from .netlist import Netlist


@dataclass
class NetlistStats:
    """Structural summary of a netlist."""

    name: str
    gates: int
    nets: int
    inputs: int
    outputs: int
    flip_flops: int
    depth: int
    by_type: dict[str, int] = field(default_factory=dict)
    by_tag: dict[str, int] = field(default_factory=dict)
    max_fanout: int = 0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.gates} gates / {self.nets} nets, "
            f"{self.flip_flops} FFs, depth {self.depth}, "
            f"max fanout {self.max_fanout}"
        )


def analyze(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for ``netlist``."""
    by_type: dict[str, int] = {}
    by_tag: dict[str, int] = {}
    for g in netlist.gates:
        by_type[g.gtype.value] = by_type.get(g.gtype.value, 0) + 1
        key = g.tag or "(untagged)"
        by_tag[key] = by_tag.get(key, 0) + 1
    fanout = netlist.fanout_map()
    max_fanout = max((len(readers) for readers in fanout.values()), default=0)
    return NetlistStats(
        name=netlist.name,
        gates=len(netlist.gates),
        nets=netlist.num_nets,
        inputs=len(netlist.inputs),
        outputs=len(netlist.outputs),
        flip_flops=len(netlist.sequential_gates()),
        depth=len(levelize(netlist)),
        by_type=dict(sorted(by_type.items())),
        by_tag=dict(sorted(by_tag.items())),
        max_fanout=max_fanout,
    )
