"""Test-point insertion: observing controller outputs directly.

The traditional alternative the paper argues against (Section 1, citing
Bhatia & Jha [5]): "the controller output signals are multiplexed with
some or all of the datapath primary outputs, thus making them directly
observable."  That works -- it makes every SFR fault a trivially
detectable fault -- but it modifies the design (impossible for a hard
core), costs area, and lengthens the output path.

``insert_observation_muxes`` rebuilds a system with a ``test_mode`` input
and one MUX2 per observed output bit: in normal mode the datapath outputs
pass through; in test mode the controller's control lines drive the pins
instead.  The returned structure reports the exact overhead so the paper's
cost argument can be quantified (see ``bench_dft.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hls.system import System
from ..logic.levelize import logic_depth
from ..netlist.builder import NetlistBuilder
from ..netlist.netlist import Netlist

TEST_MODE = "test_mode"


@dataclass
class ObservableSystem:
    """A system with controller outputs multiplexed onto the output pins."""

    netlist: Netlist
    base: System
    test_mode_net: int
    observed_outputs: list[int]
    #: control line observed on each output bit (None = passthrough only)
    observation_map: dict[int, str]

    @property
    def added_gates(self) -> int:
        return len(self.netlist.gates) - len(self.base.netlist.gates)

    def overhead_report(self) -> dict:
        """Area and depth cost of the DFT insertion."""
        return {
            "added_gates": self.added_gates,
            "added_gate_pct": 100.0 * self.added_gates / len(self.base.netlist.gates),
            "depth_before": logic_depth(self.base.netlist),
            "depth_after": logic_depth(self.netlist),
        }


def insert_observation_muxes(system: System) -> ObservableSystem:
    """Clone ``system`` with test-mode observation muxes on its outputs.

    Control lines are assigned round-robin to the available output bits; if
    there are more control lines than output bits, the remainder stays
    unobserved (exactly the partial observability the technique has on
    narrow datapaths -- part of the paper's case against it).
    """
    base = system.netlist
    b = NetlistBuilder(name=f"{base.name}_obs")
    # Recreate all nets/gates of the base system, then add the muxes.
    mapping = b.instantiate(
        base,
        {base.net_names[n]: b.net(base.net_names[n]) for n in base.inputs},
        prefix="u",
    )
    for n in base.inputs:
        b.netlist.mark_input(b.netlist.net_id(base.net_names[n]))

    test_mode = b.input(TEST_MODE)
    control_lines = list(system.control_nets)
    out_nets = [mapping[base.net_names[n]] for n in base.outputs]

    observed: list[int] = []
    observation_map: dict[int, str] = {}
    for i, net in enumerate(out_nets):
        pin = b.net(f"obs_out[{i}]")
        if i < len(control_lines):
            line = control_lines[i]
            ctl_net = mapping[base.net_names[system.control_nets[line]]]
            b.mux2_(test_mode, net, ctl_net, output=pin, name=f"obsmux{i}", tag="dft")
            observation_map[i] = line
        else:
            b.buf_(net, output=pin, name=f"obsbuf{i}", tag="dft")
        b.output(pin)
        observed.append(pin)

    netlist = b.done()
    return ObservableSystem(
        netlist=netlist,
        base=system,
        test_mode_net=test_mode,
        observed_outputs=observed,
        observation_map=observation_map,
    )


def translate_fault(system: System, obs: ObservableSystem, site):
    """Map a standalone-controller fault site into the observable netlist."""
    from ..logic.faults import FaultSite

    sys_site = system.to_system_fault(site)
    # Gates were copied in order with names prefixed by "u/".
    name = system.netlist.gates[sys_site.gate_index].name if sys_site.gate_index is not None else None
    gate_index = None
    if name is not None:
        gate_index = next(g.index for g in obs.netlist.gates if g.name == f"u/{name}")
    net_name = system.netlist.net_names[sys_site.net]
    if obs.netlist.has_net(net_name):
        net = obs.netlist.net_id(net_name)
    else:
        net = obs.netlist.net_id(f"u/{net_name}")
    return FaultSite(gate_index, sys_site.pin, net, sys_site.value)
