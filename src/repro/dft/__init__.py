"""dft subpackage."""
