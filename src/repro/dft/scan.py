"""Scan design-for-testability for the controller.

The paper's earlier work [16] and the classic literature ([6], [12]) make
controllers testable by scan: every state flip-flop gains a shift path, so
in test mode the machine's state is directly controllable and observable
and the controller reduces to a combinational circuit between (state,
inputs) and (next state, outputs).  This is exactly what a hard core
forbids -- the paper's power method exists because scan insertion is off
the table.  This module provides both:

* ``insert_scan_chain`` -- the structural transform (MUX2 in front of each
  flip-flop, ``scan_en``/``scan_in``/``scan_out`` ports), used to quantify
  the area/depth overhead of the DFT alternative;
* ``scan_view`` -- the combinational test view (flip-flops opened up:
  Q nets become pseudo-primary inputs, D nets pseudo-primary outputs),
  used to measure scan-mode fault coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..logic.faults import FaultSite
from ..logic.simulator import CycleSimulator
from ..netlist.builder import NetlistBuilder
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist


@dataclass
class ScanChain:
    """A netlist with a scan chain threaded through selected flip-flops."""

    netlist: Netlist
    scan_en: int
    scan_in: int
    scan_out: int
    chain: list[str]  # flip-flop gate names in shift order
    added_gates: int = 0


def insert_scan_chain(netlist: Netlist, tag_prefix: str = "ctrl") -> ScanChain:
    """Rebuild ``netlist`` with a mux-D scan chain through every DFF whose
    tag starts with ``tag_prefix``."""
    b = NetlistBuilder(name=f"{netlist.name}_scan")
    mapping = b.instantiate(
        netlist,
        {netlist.net_names[n]: b.net(netlist.net_names[n]) for n in netlist.inputs},
        prefix="u",
    )
    for n in netlist.inputs:
        b.netlist.mark_input(b.netlist.net_id(netlist.net_names[n]))
    for n in netlist.outputs:
        b.netlist.mark_output(mapping[netlist.net_names[n]])

    scan_en = b.input("scan_en")
    scan_in = b.input("scan_in")

    # The instantiated copy contains plain DFFs; rewire each scannable one:
    # its D pin gets MUX2(scan_en, original D, previous stage Q).
    chain: list[str] = []
    previous_q = scan_in
    added = 0
    scannable = [
        g
        for g in list(b.netlist.gates)
        if g.gtype is GateType.DFF and g.tag.startswith(tag_prefix)
    ]
    for gate in scannable:
        d_net = gate.inputs[0]
        scan_d = b.mux2_(
            scan_en, d_net, previous_q, name=f"scanmux_{len(chain)}", tag="dft"
        )
        gate.inputs[0] = scan_d
        previous_q = gate.output
        chain.append(gate.name)
        added += 1

    scan_out = b.buf_(previous_q, output=b.net("scan_out"), name="scanout_buf", tag="dft")
    b.output(scan_out)
    nl = b.done()
    return ScanChain(
        netlist=nl,
        scan_en=scan_en,
        scan_in=scan_in,
        scan_out=scan_out,
        chain=chain,
        added_gates=added + 1,
    )


@dataclass
class ScanView:
    """Combinational test view of a sequential netlist."""

    netlist: Netlist
    #: pseudo-primary inputs: state net name -> net id (in the view)
    ppi: dict[str, int] = field(default_factory=dict)
    #: pseudo-primary outputs: D-net name -> net id (in the view)
    ppo: dict[str, int] = field(default_factory=dict)
    #: original gate name -> view gate index (flip-flops absent)
    gate_map: dict[str, int] = field(default_factory=dict)
    #: flip-flop gate names that were opened (their pin faults are covered
    #: by the scan-cell test itself)
    opened: list[str] = field(default_factory=list)


def scan_view(netlist: Netlist, tag_prefix: str = "ctrl") -> ScanView:
    """Open every matching flip-flop: Q becomes a PPI, D a PPO."""
    view = Netlist(name=f"{netlist.name}_view")
    for name in netlist.net_names:
        view.add_net(name)
    for n in netlist.inputs:
        view.mark_input(n)
    result = ScanView(netlist=view)
    for gate in netlist.gates:
        if gate.gtype in (GateType.DFF, GateType.DFFE) and gate.tag.startswith(tag_prefix):
            q_name = netlist.net_names[gate.output]
            view.mark_input(gate.output)
            # D (and, for enable-gated registers, EN) become observable.
            for pin_net in gate.inputs:
                view.mark_output(pin_net)
            result.ppi[q_name] = gate.output
            result.ppo[netlist.net_names[gate.inputs[-1]]] = gate.inputs[-1]
            result.opened.append(gate.name)
            continue
        new = view.add_gate(gate.gtype, gate.output, list(gate.inputs),
                            name=gate.name, tag=gate.tag)
        result.gate_map[gate.name] = new.index
    for n in netlist.outputs:
        view.mark_output(n)
    view.validate()
    return result


def map_fault_to_view(netlist: Netlist, view: ScanView, site: FaultSite) -> FaultSite | None:
    """Translate a fault site into the scan view.

    Returns None for faults on opened flip-flop pins -- those are tested by
    the scan shift itself (a broken scan cell fails the flush test)."""
    if site.gate_index is None:
        return FaultSite(None, -1, site.net, site.value)
    gate = netlist.gates[site.gate_index]
    new_index = view.gate_map.get(gate.name)
    if new_index is None:
        return None
    return FaultSite(new_index, site.pin, site.net, site.value)


@dataclass
class ScanCoverage:
    """Result of a scan-mode random-pattern fault grading."""

    detected: int
    total: int
    undetected: list[FaultSite] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 1.0

    def __iter__(self):
        # Backwards-friendly unpacking: coverage, detected, total.
        return iter((self.coverage, self.detected, self.total))


def scan_fault_coverage(
    netlist: Netlist,
    faults: list[FaultSite],
    n_patterns: int = 256,
    seed: int = 11,
    tag_prefix: str = "ctrl",
) -> ScanCoverage:
    """Scan-mode coverage: random (state, input) patterns on the view.

    Faults on scan-cell pins count as detected (flush test).  This is the
    "test the controller separately" half of the paper's Section-2
    comparison.
    """
    view = scan_view(netlist, tag_prefix)
    rng = np.random.default_rng(seed)
    sim_inputs = list(view.netlist.inputs)
    observe = list(view.netlist.outputs)

    patterns = {net: rng.integers(0, 2, n_patterns) for net in sim_inputs}

    def response(fault: FaultSite | None):
        sim = CycleSimulator(view.netlist, n_patterns, faults=[fault] if fault else None)
        for net, bits in patterns.items():
            sim.drive(net, bits)
        sim.settle()
        return sim.Z[observe].copy(), sim.O[observe].copy()

    gz, go = response(None)
    detected = 0
    undetected: list[FaultSite] = []
    for site in faults:
        mapped = map_fault_to_view(netlist, view, site)
        if mapped is None:
            detected += 1  # scan-cell pin: flush test catches it
            continue
        fz, fo = response(mapped)
        if ((gz & fo) | (go & fz)).any():
            detected += 1
        else:
            undetected.append(site)
    return ScanCoverage(detected=detected, total=len(faults), undetected=undetected)
