"""Integrated datapath-fault testing (the paper's reference [17]).

Section 2: "Previous work outlines how to test a datapath in an integrated
test [17].  However, it is much more difficult to test the controller in
an integrated test."  This module supplies the datapath half of that
sentence so the asymmetry can be measured on the same systems: the full
collapsed stuck-at universe of the *datapath* is fault-simulated through
the integrated machine (pseudorandom data, outputs sampled when the
fault-free controller reaches HOLD) and coverage is broken down per
component, so the hard spots (mux padding configurations, deep multiplier
columns) are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hls.system import NormalModeStimulus, System, hold_masks
from ..logic.faults import FaultSite, collapse_faults, enumerate_faults
from ..logic.faultsim import Verdict, fault_simulate
from ..tpg.tpgr import TPGR


@dataclass
class DatapathTestResult:
    """Integrated-test coverage of the datapath fault universe."""

    design: str
    verdicts: dict[FaultSite, Verdict]
    by_component: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.verdicts)

    def detected(self, count_potential: bool = True) -> int:
        hits = sum(1 for v in self.verdicts.values() if v is Verdict.DETECTED)
        if count_potential:
            hits += sum(1 for v in self.verdicts.values() if v is Verdict.POTENTIAL)
        return hits

    def coverage(self, count_potential: bool = True) -> float:
        return self.detected(count_potential) / self.total if self.total else 1.0

    def hardest_components(self, top: int = 5) -> list[tuple[str, float]]:
        """Components with the lowest detection rate."""
        rates = [
            (tag, det / tot)
            for tag, (det, tot) in self.by_component.items()
            if tot > 0
        ]
        return sorted(rates, key=lambda kv: kv[1])[:top]


def datapath_fault_universe(system: System) -> list[FaultSite]:
    """Collapsed stuck-at faults on the system's datapath gates."""
    gates = system.datapath_gates()
    sites = enumerate_faults(system.netlist, gates=gates)
    reps, _ = collapse_faults(system.netlist, sites)
    return reps


def integrated_datapath_test(
    system: System,
    n_patterns: int = 256,
    tpgr_seed: int = 0xACE1,
    iterations_window: int = 4,
    hold_cycles: int = 3,
) -> DatapathTestResult:
    """Fault-simulate the datapath universe through the integrated system."""
    universe = datapath_fault_universe(system)
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=tpgr_seed)
    data = {k: np.asarray(v) for k, v in tpgr.generate(n_patterns).items()}
    n_cycles = system.cycles_for(iterations_window, hold_cycles)
    stimulus = NormalModeStimulus(system, data, n_cycles)
    masks = hold_masks(system, stimulus)
    observe = [net for bus in system.output_buses.values() for net in bus]
    sim_result = fault_simulate(
        system.netlist, universe, stimulus, observe=observe, valid_masks=masks
    )

    by_component: dict[str, tuple[int, int]] = {}
    for site, verdict in sim_result.verdicts.items():
        gate = system.netlist.gates[site.gate_index] if site.gate_index is not None else None
        tag = gate.tag if gate else "(pi)"
        det, tot = by_component.get(tag, (0, 0))
        hit = verdict in (Verdict.DETECTED, Verdict.POTENTIAL)
        by_component[tag] = (det + int(hit), tot + 1)
    return DatapathTestResult(
        design=system.rtl.name,
        verdicts=dict(sim_result.verdicts),
        by_component=by_component,
    )
