"""Section-3 classification of controller faults: CFR / SFR / SFI.

Combines three ingredients:

* :mod:`repro.core.effects` -- the control line effects a fault causes;
* a golden timeline (which registers load / are read each cycle, which
  muxes are active) derived from the fault-free control trace;
* the symbolic replay oracle of :mod:`repro.core.symbolic`.

The *verdict* (SFR vs SFI) comes from the oracle -- value-number equality
of every observed output and loop decision.  The *labels* attached to each
control line effect implement the paper's taxonomy (select change in an
active/inactive step; skipped load; extra load that is idle, overwritten,
a harmless rewrite, or garbage-disruptive) and are what Table 1 prints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..hls.rtl import HOLD_STATE, RTLDesign, cs_state
from ..logic.faults import FaultSite
from ..synth.controller import SynthesizedController
from .effects import (
    ControlLineEffect,
    ControlTrace,
    Scenario,
    diff_traces,
    faulty_control_trace,
    golden_control_trace,
    make_scenarios,
)
from .symbolic import ReplayResult, ValueTable, compare_replays, replay


class EffectLabel(enum.Enum):
    SELECT_ACTIVE = "select change while mux active"
    SELECT_ACTIVE_ALIASED = "select change while active but same source"
    SELECT_INACTIVE = "select change while mux inactive"
    LOAD_SKIPPED = "skipped load"
    EXTRA_LOAD_IDLE = "extra load while register idle"
    EXTRA_LOAD_OVERWRITTEN = "extra load overwritten before next read"
    EXTRA_LOAD_REWRITE = "extra load rewrites the same value"
    EXTRA_LOAD_DISRUPTIVE = "extra load writes garbage that is read"
    UNKNOWN_CONTROL = "control line unknown (X)"


#: Labels that, by the Section-3 analysis, cannot disturb the computation.
NON_DISRUPTIVE_LABELS = frozenset(
    {
        EffectLabel.SELECT_INACTIVE,
        EffectLabel.SELECT_ACTIVE_ALIASED,
        EffectLabel.EXTRA_LOAD_IDLE,
        EffectLabel.EXTRA_LOAD_OVERWRITTEN,
        EffectLabel.EXTRA_LOAD_REWRITE,
    }
)


@dataclass(frozen=True)
class LabeledEffect:
    effect: ControlLineEffect
    label: EffectLabel
    register: str = ""  # for load-line effects on shared lines

    def describe(self) -> str:
        base = self.effect.describe()
        if self.register and len(self.register) > 0:
            base = base.replace(self.effect.line, self.register, 1)
        return base


class GoldenTimeline:
    """Cycle-resolved fault-free activity derived from the control trace."""

    def __init__(self, rtl: RTLDesign, trace: ControlTrace, golden_replay: ReplayResult):
        self.rtl = rtl
        self.trace = trace
        self.replay = golden_replay
        n = trace.scenario.n_cycles
        self.loads: list[set[str]] = [set() for _ in range(n)]
        self.reads: list[set[str]] = [set() for _ in range(n)]
        self._mux_index: list[dict[str, int]] = [dict() for _ in range(n)]
        decision_state = cs_state(rtl.schedule.n_steps)
        out_regs = set(rtl.outputs.values())

        for c in range(1, n):
            controls = trace.lines[c]
            state = trace.scenario.golden_state(c)
            for mux in rtl.all_muxes():
                idx = 0
                ok = True
                for bit, sel in enumerate(mux.sel_names):
                    v = controls[sel]
                    if v == -1:
                        ok = False
                        break
                    idx |= v << bit
                if ok:
                    padded = len(mux.sources)
                    self._mux_index[c][mux.name] = idx if idx < padded else 0
            # Which registers load this cycle.
            loading = [r for r in rtl.registers if controls[r.load_line] == 1]
            self.loads[c] = {r.name for r in loading}
            # Which FUs are consumed this cycle.
            consumed: set[str] = set()
            for r in loading:
                src = self._selected_source(r.input_mux, c)
                if src is not None and src.kind == "fu":
                    consumed.add(src.ref)
            if rtl.cond_fu and state == decision_state:
                consumed.add(rtl.cond_fu)
            # Which registers those FUs read.
            for f in rtl.fus:
                if f.name not in consumed:
                    continue
                for mux in (f.mux_a, f.mux_b):
                    src = self._selected_source(mux, c)
                    if src is not None and src.kind == "reg":
                        self.reads[c].add(src.ref)
            if state == HOLD_STATE:
                self.reads[c] |= out_regs

    def _selected_source(self, mux, cycle: int):
        if len(mux.sources) == 1:
            return mux.sources[0]
        idx = self._mux_index[cycle].get(mux.name)
        return None if idx is None else mux.sources[idx]

    def mux_selected_source(self, mux, cycle: int):
        return self._selected_source(mux, cycle)

    def mux_active(self, mux_name: str, cycle: int) -> bool:
        """Is the mux's output consumed this cycle (its selects "cares")?"""
        rtl = self.rtl
        controls = self.trace.lines[cycle]
        state = self.trace.scenario.golden_state(cycle)
        for f in rtl.fus:
            for mux in (f.mux_a, f.mux_b):
                if mux.name == mux_name:
                    if rtl.cond_fu == f.name and state == cs_state(rtl.schedule.n_steps):
                        return True
                    for r in rtl.registers:
                        if controls[r.load_line] == 1:
                            src = self._selected_source(r.input_mux, cycle)
                            if src is not None and src.kind == "fu" and src.ref == f.name:
                                return True
                    return False
        for r in rtl.registers:
            if r.input_mux.name == mux_name:
                return controls[r.load_line] == 1
        raise KeyError(mux_name)

    def register_live(self, reg: str, cycle: int) -> bool:
        """Is ``reg`` holding a value still needed strictly after ``cycle``?

        True iff some fault-free read of the register occurs after ``cycle``
        before the next fault-free load."""
        n = self.trace.scenario.n_cycles
        for c in range(cycle + 1, n):
            if reg in self.reads[c]:
                return True
            if reg in self.loads[c]:
                return False
        return False

    def next_read(self, reg: str, cycle: int) -> int | None:
        for c in range(cycle + 1, self.trace.scenario.n_cycles):
            if reg in self.reads[c]:
                return c
        return None

    def next_load(self, reg: str, cycle: int) -> int | None:
        for c in range(cycle + 1, self.trace.scenario.n_cycles):
            if reg in self.loads[c]:
                return c
        return None


def _padded_source(mux, index: int):
    padded = list(mux.sources) + [mux.sources[0]] * ((1 << mux.n_sel_bits) - len(mux.sources))
    return padded[index]


def label_effects(
    rtl: RTLDesign,
    timeline: GoldenTimeline,
    faulty_trace: ControlTrace,
    faulty_replay: ReplayResult,
    effects: list[ControlLineEffect],
) -> list[LabeledEffect]:
    """Attach the Section-3 taxonomy label to every control line effect."""
    labeled: list[LabeledEffect] = []
    for eff in effects:
        if eff.faulty == -1:
            labeled.append(LabeledEffect(eff, EffectLabel.UNKNOWN_CONTROL))
            continue
        if eff.line in rtl.sel_lines:
            mux = rtl.mux_of_sel(eff.line)
            if not timeline.mux_active(mux.name, eff.cycle):
                labeled.append(LabeledEffect(eff, EffectLabel.SELECT_INACTIVE))
                continue
            # Active: disruptive unless padding aliases to the same source.
            g_idx = f_idx = 0
            ok = True
            for bit, sel in enumerate(mux.sel_names):
                gv = timeline.trace.lines[eff.cycle][sel]
                fv = faulty_trace.lines[eff.cycle][sel]
                if gv == -1 or fv == -1:
                    ok = False
                    break
                g_idx |= gv << bit
                f_idx |= fv << bit
            if ok and _padded_source(mux, g_idx) == _padded_source(mux, f_idx):
                labeled.append(LabeledEffect(eff, EffectLabel.SELECT_ACTIVE_ALIASED))
            else:
                labeled.append(LabeledEffect(eff, EffectLabel.SELECT_ACTIVE))
            continue
        # Load line effect: applies to every register on the line.
        for reg in rtl.regs_on_line[eff.line]:
            if eff.golden == 1:  # skipped load
                labeled.append(LabeledEffect(eff, EffectLabel.LOAD_SKIPPED, register=reg))
                continue
            # Extra load.
            c = eff.cycle
            if not timeline.register_live(reg, c):
                labeled.append(LabeledEffect(eff, EffectLabel.EXTRA_LOAD_IDLE, register=reg))
                continue
            written_golden = timeline.replay.reg_history[c + 1][reg] if c + 1 < len(
                timeline.replay.reg_history
            ) else None
            written_faulty = faulty_replay.reg_history[c + 1][reg] if c + 1 < len(
                faulty_replay.reg_history
            ) else None
            if written_golden is not None and written_golden == written_faulty:
                labeled.append(LabeledEffect(eff, EffectLabel.EXTRA_LOAD_REWRITE, register=reg))
                continue
            nread = timeline.next_read(reg, c)
            nload = timeline.next_load(reg, c)
            if nread is None or (nload is not None and nload < nread):
                labeled.append(
                    LabeledEffect(eff, EffectLabel.EXTRA_LOAD_OVERWRITTEN, register=reg)
                )
            else:
                labeled.append(
                    LabeledEffect(eff, EffectLabel.EXTRA_LOAD_DISRUPTIVE, register=reg)
                )
    return labeled


@dataclass
class FaultClassification:
    """Final classification of one controller fault."""

    fault: FaultSite
    category: str  # 'CFR' | 'SFR' | 'SFI'
    effects: list[LabeledEffect] = field(default_factory=list)
    reason: str = ""

    @property
    def affects_load_line(self) -> bool:
        return any(e.effect.line.startswith("LD") for e in self.effects)

    @property
    def select_only(self) -> bool:
        return bool(self.effects) and not self.affects_load_line

    def effect_summary(self) -> list[str]:
        """Deduplicated state-level effect descriptions (Table-1 style)."""
        seen: list[str] = []
        for e in self.effects:
            desc = e.describe()
            if desc not in seen:
                seen.append(desc)
        return seen


class Classifier:
    """Caches golden traces/replays and classifies faults one by one."""

    def __init__(
        self,
        rtl: RTLDesign,
        ctrl: SynthesizedController,
        iteration_counts=(1, 2, 3),
        hold_cycles: int | None = None,
    ):
        self.rtl = rtl
        self.ctrl = ctrl
        # The HOLD observation window must outlast any post-completion
        # divergence of a faulty controller: a corrupted machine can march
        # through its whole state space (and the full schedule) before it
        # first touches an output register.  Two state-space traversals
        # plus one schedule length is enough for any periodic behaviour to
        # show itself twice.
        n_states = len(rtl.states)
        self._n_states = n_states
        if hold_cycles is None:
            hold_cycles = rtl.schedule.n_steps + 2 * n_states + 2
        self.hold_cycles = hold_cycles
        self.scenarios = make_scenarios(rtl, iteration_counts, hold_cycles)
        self._golden: list[tuple[Scenario, ControlTrace, ValueTable, ReplayResult, GoldenTimeline]] = []
        for sc in self.scenarios:
            trace = golden_control_trace(ctrl, sc)
            table = ValueTable()
            greplay = replay(rtl, trace, table)
            timeline = GoldenTimeline(rtl, trace, greplay)
            self._golden.append((sc, trace, table, greplay, timeline))

    def _cond_divergence_reason(
        self,
        sc: Scenario,
        fault: FaultSite,
        ftrace: ControlTrace,
        greplay: ReplayResult,
        freplay: ReplayResult,
    ) -> str:
        """Guard against the comparator-corruption blind spot.

        The faulty controller was simulated under the fault-free ``cond``
        waveform.  If the faulty *datapath* would drive different
        comparator values at non-decision cycles (e.g. an extra load
        corrupting the comparator's operand register during HOLD), that
        assumption may be wrong: a faulty controller could sample ``cond``
        anywhere.  Probe it: rerun the faulty controller with ``cond``
        inverted at exactly those cycles; any behavioural difference means
        the control flow can diverge on real silicon -> conservative SFI.
        """
        if not self.rtl.cond_fu:
            return ""
        decision = {c for c, _ in greplay.cond_decisions}
        mismatch = {
            cycle
            for cycle in range(1, sc.n_cycles)
            if cycle not in decision
            and greplay.fu_history[cycle].get(self.rtl.cond_fu)
            != freplay.fu_history[cycle].get(self.rtl.cond_fu)
        }
        if not mismatch:
            return ""
        probe = faulty_control_trace(self.ctrl, sc, fault, cond_flips=mismatch)
        if probe.lines != ftrace.lines:
            return "comparator corrupted and faulty controller is cond-sensitive"
        return ""

    def _tail_is_periodic(self, ftrace: ControlTrace) -> bool:
        """True if the faulty control-word stream has settled into a cycle
        of period <= the state count by the end of the scenario.  A stream
        that is still aperiodic could corrupt an output arbitrarily late,
        so an SFR verdict is only sound for periodic tails."""
        words = [
            tuple(sorted(ftrace.lines[c].items()))
            for c in range(ftrace.scenario.n_cycles - 2 * self._n_states,
                           ftrace.scenario.n_cycles)
            if c >= 0
        ]
        for period in range(1, self._n_states + 1):
            if len(words) < 2 * period:
                break
            tail = words[-2 * period:]
            if tail[:period] == tail[period:]:
                return True
        return False

    def classify(self, fault: FaultSite) -> FaultClassification:
        all_effects: list[LabeledEffect] = []
        any_effect = False
        equivalent = True
        reason = ""
        for sc, gtrace, table, greplay, timeline in self._golden:
            ftrace = faulty_control_trace(self.ctrl, sc, fault)
            effects = diff_traces(gtrace, ftrace)
            if not effects:
                continue
            any_effect = True
            freplay = replay(self.rtl, ftrace, table)
            cmp = compare_replays(greplay, freplay)
            if not cmp.equivalent:
                equivalent = False
                reason = reason or f"{cmp.reason} ({sc.iterations} iteration(s))"
            elif equivalent:
                diverge = self._cond_divergence_reason(sc, fault, ftrace, greplay, freplay)
                if diverge:
                    equivalent = False
                    reason = reason or diverge
                elif not self._tail_is_periodic(ftrace):
                    equivalent = False
                    reason = reason or "faulty control stream not periodic at scenario end"
            all_effects.extend(label_effects(self.rtl, timeline, ftrace, freplay, effects))
        if not any_effect:
            return FaultClassification(fault, "CFR", [], "no control line effect in any scenario")
        category = "SFR" if equivalent else "SFI"
        if category == "SFR":
            reason = "all observed outputs and loop decisions match fault-free"
        return FaultClassification(fault, category, all_effects, reason)
