"""Exact SFR/SFI oracle: RT-level symbolic replay with value numbering.

Section 3 of the paper decides whether a control line effect disrupts the
datapath computation by tracing "the specific data involved ... at the
register transfer level".  This module mechanises that trace: it replays
the RTL schedule under a (golden or faulty) control trace, assigning
hash-consed *value numbers* to every register content --

* primary inputs and constants get named values;
* each FU application gets ``op(kind, a, b)`` with commutative operand
  canonicalisation;
* uninitialised registers hold ``uninit(reg)`` (the machine's power-up
  value: identical between the faulty and fault-free runs of the same
  silicon);
* anything unknowable (an X select or X load) gets a fresh *garbage*
  number -- reading it can never compare equal, which is exactly the
  paper's "the read references the garbage data, hence disruptive" rule.

A fault is system-functionally redundant (SFR) iff, in every scenario, the
faulty replay produces the same output value numbers at every fault-free
HOLD sample *and* the same comparator value numbers at every loop decision
(otherwise the control flow itself diverges).  Value-number equality
implies true value equality, so an SFR verdict is sound; inequality is
conservative (the paper's analysis makes the same choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hls.dfg import COMMUTATIVE, OpKind
from ..hls.rtl import HOLD_STATE, MuxSpec, RTLDesign, cs_state
from .effects import ControlTrace


class ValueTable:
    """Hash-consed value numbers shared between replays under comparison."""

    def __init__(self):
        self._intern: dict[tuple, int] = {}
        self._fresh = 0

    def _get(self, key: tuple) -> int:
        if key not in self._intern:
            self._intern[key] = len(self._intern)
        return self._intern[key]

    def input(self, name: str) -> int:
        return self._get(("in", name))

    def const(self, name: str) -> int:
        return self._get(("const", name))

    def uninit(self, reg: str) -> int:
        return self._get(("uninit", reg))

    def op(self, kind: OpKind, a: int, b: int) -> int:
        if kind in COMMUTATIVE and b < a:
            a, b = b, a
        return self._get(("op", kind.value, a, b))

    def garbage(self) -> int:
        self._fresh += 1
        return self._get(("garbage", self._fresh))


@dataclass
class ReplayResult:
    """Everything a replay observed."""

    #: (cycle, {port: value id}) at every fault-free HOLD sample point.
    output_samples: list[tuple[int, dict[str, int]]] = field(default_factory=list)
    #: (cycle, comparator value id) at every loop decision point.
    cond_decisions: list[tuple[int, int]] = field(default_factory=list)
    #: register contents at the *start* of each cycle.
    reg_history: list[dict[str, int]] = field(default_factory=list)
    #: FU output value ids per cycle.
    fu_history: list[dict[str, int]] = field(default_factory=list)
    #: True if any X control value forced a conservative garbage value.
    saw_unknown_control: bool = False


def _mux_index(mux: MuxSpec, controls: dict[str, int]) -> int:
    """Selected source index, or -1 if any select bit is X."""
    index = 0
    for bit, name in enumerate(mux.sel_names):
        val = controls[name]
        if val == -1:
            return -1
        index |= val << bit
    return index


def replay(rtl: RTLDesign, trace: ControlTrace, table: ValueTable) -> ReplayResult:
    """Symbolically execute the RTL under a control trace.

    The trace's scenario defines the fault-free timeline (which cycles are
    HOLD samples and loop decisions); the trace's line values define what
    the possibly-faulty controller actually drove.
    """
    result = ReplayResult()
    regs: dict[str, int] = {r.name: table.uninit(r.name) for r in rtl.registers}
    const_ids = {name: table.const(name) for name in rtl.dfg.constants}
    input_ids = {name: table.input(name) for name in rtl.dfg.inputs}
    decision_state = cs_state(rtl.schedule.n_steps)

    def mux_value(mux: MuxSpec, controls: dict[str, int], fu_vals: dict[str, int]) -> int:
        def source_id(src) -> int:
            if src.kind == "reg":
                return regs[src.ref]
            if src.kind == "const":
                return const_ids[src.ref]
            if src.kind == "input":
                return input_ids[src.ref]
            return fu_vals[src.ref]

        if len(mux.sources) == 1:
            return source_id(mux.sources[0])
        index = _mux_index(mux, controls)
        padded = list(mux.sources) + [mux.sources[0]] * (
            (1 << mux.n_sel_bits) - len(mux.sources)
        )
        if index >= 0:
            return source_id(padded[index])
        ids = {source_id(s) for s in padded}
        if len(ids) == 1:
            return ids.pop()
        result.saw_unknown_control = True
        return table.garbage()

    scenario = trace.scenario
    # Cycle 0 is the reset-assertion cycle: the fault-free control word is
    # X (the state register is uninitialised), and whatever a machine loads
    # there is power-up junk on top of power-up junk.  Replay starts at
    # cycle 1; registers simply stay at their uninit values through cycle 0.
    result.reg_history.append(dict(regs))
    result.fu_history.append({})
    for cycle in range(1, scenario.n_cycles):
        controls = trace.lines[cycle]
        state = scenario.golden_state(cycle)
        result.reg_history.append(dict(regs))
        if state == HOLD_STATE:
            result.output_samples.append(
                (cycle, {port: regs[reg] for port, reg in rtl.outputs.items()})
            )

        fu_vals: dict[str, int] = {}
        for f in rtl.fus:
            a = mux_value(f.mux_a, controls, fu_vals)
            b = mux_value(f.mux_b, controls, fu_vals)
            fu_vals[f.name] = table.op(f.kind, a, b)
        result.fu_history.append(dict(fu_vals))

        if rtl.cond_fu and state == decision_state:
            result.cond_decisions.append((cycle, fu_vals[rtl.cond_fu]))

        new_regs = dict(regs)
        for r in rtl.registers:
            load = controls[r.load_line]
            if load == 0:
                continue
            incoming = mux_value(r.input_mux, controls, fu_vals)
            if load == 1:
                new_regs[r.name] = incoming
            else:  # X load: content is old-or-new
                if incoming != regs[r.name]:
                    result.saw_unknown_control = True
                    new_regs[r.name] = table.garbage()
        regs = new_regs
    return result


@dataclass
class ReplayComparison:
    """Outcome of comparing a faulty replay against the golden one."""

    equivalent: bool
    reason: str = ""


def compare_replays(golden: ReplayResult, faulty: ReplayResult) -> ReplayComparison:
    """Decide system-functional equivalence of two replays."""
    for (gc, gid), (fc, fid) in zip(golden.cond_decisions, faulty.cond_decisions):
        if gid != fid:
            return ReplayComparison(False, f"loop condition differs at cycle {gc}")
    for (gc, gout), (fc, fout) in zip(golden.output_samples, faulty.output_samples):
        if gout != fout:
            ports = sorted(p for p in gout if gout[p] != fout[p])
            return ReplayComparison(False, f"output {ports} differs at cycle {gc}")
    return ReplayComparison(True)
