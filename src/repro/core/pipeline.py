"""The paper's Section-5 methodology, end to end.

Given an integrated controller-datapath system:

1. **Fault simulate** the entire system under TPGR pseudorandom data,
   sampling the data outputs whenever the fault-free machine is in HOLD.
   Faults definitely detected are SFI and leave consideration.
2. **Practical cleanup**: faults only *potentially* detected (the faulty
   machine drove X where a value was expected -- GENTEST's limitation with
   never-loaded registers) are, as the paper argues, detected on real
   silicon where the register holds some boot value; they are marked
   practically-SFI.
3. **CFR screen**: remaining faults are injected into the standalone
   controller and simulated through normal-mode scenarios; faults with no
   control line effect are controller-functionally redundant.
4. **SFR analysis**: the rest are classified by the symbolic RT-level
   oracle (with Section-3 taxonomy labels); equivalent faults are SFR,
   the rest are SFI that escaped the random test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hls.system import NormalModeStimulus, System, hold_masks
from ..logic.faults import FaultSite, collapse_faults, enumerate_faults
from ..logic.faultsim import FaultSimResult, Verdict, fault_simulate
from ..store.cache import CampaignStore, StageProvenance, StageTimer, clean_campaign
from ..store.fingerprint import netlist_fingerprint, stage_key
from ..tpg.tpgr import TPGR
from .checkpoint import campaign_fingerprint, fault_key, open_journal
from .classify import Classifier, FaultClassification
from .errors import validate_config, validate_netlist, validate_stimulus
from .integrity import DEFAULT_AUDIT_RATE, IntegrityGuard, check_sfr_is_cfi
from .parallel import RunReport


@dataclass
class PipelineConfig:
    """Tunables for the Section-5 pipeline."""

    n_patterns: int = 256
    tpgr_seed: int = 0xACE1
    iterations_window: int = 4
    hold_cycles: int = 3
    iteration_counts: tuple[int, ...] = (1, 2, 3)
    #: worker processes for the per-fault simulation loop (1 = serial,
    #: negative = one per core); results are identical for any value.
    n_jobs: int = 1
    #: run the fault simulation on the cone-restricted differential
    #: engine (see :mod:`repro.logic.cones`); a pure performance knob --
    #: verdicts are bit-identical either way.
    cone_sim: bool = True
    #: directory for crash-safe campaign journals (None disables
    #: checkpointing); see :mod:`repro.core.checkpoint`.
    checkpoint_dir: str | None = None
    #: resume a previously interrupted campaign from its journal instead
    #: of starting fresh -- results are bit-identical either way.
    resume: bool = False
    #: per-chunk seconds before a hung worker is killed and retried
    #: (None waits forever); only meaningful with ``n_jobs > 1``.
    timeout: float | None = None
    #: extra attempts granted to a failed/timed-out chunk of work.
    max_retries: int = 2
    #: fraction of faults re-simulated on an independent path after the
    #: campaign (see :mod:`repro.core.integrity`); 0 disables the audit.
    audit_rate: float = DEFAULT_AUDIT_RATE
    #: abort on the first integrity violation instead of quarantining the
    #: offending fault and continuing.
    strict: bool = False
    #: chaos-injection spec (test/CI only), e.g.
    #: ``"crash:0.15,hang:0.1,bitflip:1,seed:7"``; None disables it.
    chaos: str | None = None

    def fingerprint_params(self) -> dict:
        """The result-relevant knobs that key a campaign checkpoint.

        Audit, strict, chaos and cone_sim knobs are deliberately absent:
        none of them changes the results of a clean campaign, so toggling
        them must not orphan an existing journal (or miss a warm store
        entry).
        """
        return {
            "n_patterns": self.n_patterns,
            "tpgr_seed": self.tpgr_seed,
            "iterations_window": self.iterations_window,
            "hold_cycles": self.hold_cycles,
            "iteration_counts": list(self.iteration_counts),
        }


@dataclass
class FaultRecord:
    """Journey of one collapsed controller fault through the pipeline."""

    site: FaultSite
    system_site: FaultSite
    simulation: Verdict
    classification: FaultClassification | None = None
    #: set when an integrity check rejected this fault's result; a
    #: quarantined record is excluded from downstream grading.
    quarantined: bool = False

    @property
    def category(self) -> str:
        """Final bucket: 'SFI-detected', 'SFI-practical', 'CFR', 'SFR',
        or 'SFI-escaped'."""
        if self.simulation is Verdict.DETECTED:
            return "SFI-detected"
        if self.simulation is Verdict.POTENTIAL:
            return "SFI-practical"
        assert self.classification is not None
        if self.classification.category == "CFR":
            return "CFR"
        if self.classification.category == "SFR":
            return "SFR"
        return "SFI-escaped"


@dataclass
class PipelineResult:
    """Everything Table 2 (and the grading stage) needs."""

    design: str
    records: list[FaultRecord] = field(default_factory=list)
    #: resilience summary of the fault-simulation fan-out
    campaign: RunReport | None = None
    #: incremental-recompute plan summary when a ``baseline`` replayed
    #: part of the campaign (see :mod:`repro.incremental`); None for
    #: cold and plain warm-cache runs
    incremental: dict | None = None
    #: the live :class:`~repro.incremental.replay.IncrementalPlan` behind
    #: ``incremental`` -- the grading layer uses its alignment maps to
    #: transfer baseline powers across pure renames; never serialized
    incremental_plan: object | None = field(default=None, repr=False)

    def by_category(self, category: str) -> list[FaultRecord]:
        return [r for r in self.records if r.category == category]

    @property
    def total_faults(self) -> int:
        return len(self.records)

    @property
    def sfr_records(self) -> list[FaultRecord]:
        return [r for r in self.by_category("SFR") if not r.quarantined]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.category] = out.get(r.category, 0) + 1
        return out

    def table2_row(self) -> dict:
        """The paper's Table 2 row: total faults, SFR faults, % SFR."""
        sfr = len(self.sfr_records)
        total = self.total_faults
        return {
            "design": self.design,
            "total_faults": total,
            "sfr_faults": sfr,
            "pct_sfr": 100.0 * sfr / total if total else 0.0,
        }


def controller_fault_universe(system: System) -> list[FaultSite]:
    """Collapsed stuck-at faults within the controller (standalone ids)."""
    ctrl_netlist = system.controller.netlist
    sites = enumerate_faults(ctrl_netlist)
    reps, _ = collapse_faults(ctrl_netlist, sites)
    return reps


def run_pipeline(
    system: System,
    config: PipelineConfig | None = None,
    store: CampaignStore | None = None,
    baseline=None,
) -> PipelineResult:
    """Execute the full Section-5 flow on ``system``.

    With ``config.checkpoint_dir`` set, per-fault verdicts are journaled
    as they complete; a killed campaign rerun with ``config.resume`` skips
    the journaled faults and produces bit-identical results.

    With ``store`` set (see :mod:`repro.store`), the fault-simulation
    stage consults the persistent content-addressed store first: a cached
    campaign keyed by the netlist content, stimulus plan, config knobs
    and code schema replays bit-identically without simulating, and a
    freshly computed clean campaign is published back for future runs.

    ``baseline`` (with ``store``) additionally enables *fault-granular*
    reuse when the whole-stage key misses: a :class:`~repro.netlist.netlist.Netlist`,
    a published fingerprint, a netlist-payload path, or ``"auto"`` (see
    :func:`~repro.incremental.replay.resolve_baseline`) names an earlier
    design version; the planner diffs the two netlists, replays every
    fault the edit provably cannot affect from per-fault store entries,
    re-simulates only the dirty remainder and merges -- byte-identical
    to a cold run of the edited design (``result.incremental`` reports
    the partition).
    """
    config = config or PipelineConfig()
    validate_config(config)
    validate_netlist(system.netlist)
    universe = controller_fault_universe(system)

    # Step 1: integrated fault simulation under TPGR data.
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=config.tpgr_seed)
    data = {k: np.asarray(v) for k, v in tpgr.generate(config.n_patterns).items()}
    n_cycles = system.cycles_for(config.iterations_window, config.hold_cycles)
    stimulus = NormalModeStimulus(system, data, n_cycles)
    validate_stimulus(stimulus)
    masks = hold_masks(system, stimulus)
    observe = [net for bus in system.output_buses.values() for net in bus]
    system_sites = [system.to_system_fault(s) for s in universe]
    journal = open_journal(
        config.checkpoint_dir,
        "faultsim",
        campaign_fingerprint(
            "faultsim",
            system.rtl.name,
            [fault_key(s) for s in system_sites],
            config.fingerprint_params(),
        ),
        resume=config.resume,
    )
    chaos_engine = None
    if config.chaos:
        # Deferred: the chaos harness lives in the test-support package and
        # only loads when injection is actually requested.
        from ..testing.chaos import ChaosEngine

        chaos_engine = ChaosEngine.from_spec(config.chaos)
    faultsim_store_key = None
    if store is not None:
        faultsim_store_key = stage_key(
            "faultsim",
            netlist_fingerprint(system.netlist),
            {
                "design": system.rtl.name,
                "faults": [fault_key(s) for s in system_sites],
                "observe": observe,
                "stimulus": {
                    "kind": "tpgr-normal-mode",
                    "n_patterns": config.n_patterns,
                    "n_cycles": n_cycles,
                    "tpgr_seed": config.tpgr_seed,
                },
                "pipeline": config.fingerprint_params(),
            },
        )
    # Incremental planning: only worth attempting when the whole-stage
    # blob misses (a plain warm hit is strictly cheaper) and a baseline
    # resolves.  ``store.refresh`` naturally disables it -- the planner's
    # metadata lookup misses too, so refreshed runs stay honestly cold.
    plan = None
    if store is not None and baseline is not None:
        from ..incremental.replay import plan_recompute, resolve_baseline

        base_netlist = resolve_baseline(
            store,
            baseline,
            design=system.rtl.name,
            exclude_fp=netlist_fingerprint(system.netlist),
        )
        if (
            base_netlist is not None
            and store.lookup("faultsim", faultsim_store_key) is None
        ):
            plan = plan_recompute(
                store,
                base_netlist,
                system,
                config,
                universe,
                system_sites,
                stimulus,
                observe,
                masks,
            )
            if plan is not None and not plan.reusable:
                plan = None  # nothing replays; run the ordinary cold path

    if plan is not None:
        stage_timer = StageTimer().__enter__()
        dirty_result = fault_simulate(
            system.netlist,
            plan.dirty,
            stimulus,
            observe=observe,
            valid_masks=masks,
            n_jobs=config.n_jobs,
            cone_sim=config.cone_sim,
            timeout=config.timeout,
            max_retries=config.max_retries,
            checkpoint=journal,
            audit_rate=config.audit_rate,
            strict=config.strict,
            chaos=chaos_engine,
        )
        # Merge: replayed entries and freshly simulated verdicts, in
        # universe order, indistinguishable from a cold full campaign.
        report = dirty_result.campaign or RunReport()
        report.n_items = len(system_sites)
        report.replayed = len(plan.reusable)
        sim_result = FaultSimResult(
            verdicts={}, campaign=report, cone=dirty_result.cone
        )
        for site in system_sites:
            entry = plan.reusable.get(site)
            if entry is not None:
                sim_result.verdicts[site] = entry.verdict
                if entry.verdict is Verdict.DETECTED:
                    sim_result.detect_cycle[site] = entry.detect_cycle
            else:
                sim_result.verdicts[site] = dirty_result.verdicts[site]
                if site in dirty_result.detect_cycle:
                    sim_result.detect_cycle[site] = dirty_result.detect_cycle[site]
        stage_timer.__exit__(None, None, None)
        store.record(
            StageProvenance(
                stage="faultsim-incremental",
                key=faultsim_store_key,
                hit=True,
                wall_s=stage_timer.wall_s,
                saved_s=max(0.0, plan.baseline_wall_s - stage_timer.wall_s),
            )
        )
        # The merged campaign graduates into the ordinary stage blob, so
        # plain warm reruns of the edited design hit without a planner.
        if clean_campaign(report):
            published = store.publish(
                "faultsim",
                faultsim_store_key,
                {
                    "verdicts": {
                        fault_key(s): [
                            sim_result.verdicts[s].value,
                            sim_result.detect_cycle.get(s, -1),
                        ]
                        for s in system_sites
                    }
                },
                design=system.netlist.name,
                meta={
                    "faults": len(system_sites),
                    "patterns": stimulus.n_patterns,
                },
                wall_s=stage_timer.wall_s,
            )
            if published and journal is not None and chaos_engine is None:
                journal.retire()
    else:
        sim_result = fault_simulate(
            system.netlist,
            system_sites,
            stimulus,
            observe=observe,
            valid_masks=masks,
            n_jobs=config.n_jobs,
            cone_sim=config.cone_sim,
            timeout=config.timeout,
            max_retries=config.max_retries,
            checkpoint=journal,
            audit_rate=config.audit_rate,
            strict=config.strict,
            chaos=chaos_engine,
            store=store,
            store_key=faultsim_store_key,
        )
    if chaos_engine is not None and chaos_engine.spec.corrupt and journal is not None:
        chaos_engine.corrupt_journal(journal.path)

    # Steps 2-4.
    # The classifier picks its own (longer, adaptive) HOLD window -- it must
    # outlast any post-completion divergence of a faulty controller;
    # ``config.hold_cycles`` only shapes the fault-simulation stimulus.
    classifier = Classifier(
        system.rtl,
        system.controller,
        iteration_counts=config.iteration_counts,
    )
    result = PipelineResult(design=system.rtl.name, campaign=sim_result.campaign)
    guard = IntegrityGuard(strict=config.strict)
    ctx_digest = traces_digest = ctrl_fp = None
    if plan is not None:
        from ..incremental.faultkeys import (
            classifier_context_digest,
            golden_trace_digest,
        )

        ctx_digest = classifier_context_digest(
            system.rtl, config.iteration_counts, classifier.hold_cycles
        )
        traces_digest = golden_trace_digest(classifier)
        ctrl_fp = netlist_fingerprint(system.controller.netlist)
        result.incremental = plan.summary()
        result.incremental_plan = plan
    for site, sys_site in zip(universe, system_sites):
        verdict = sim_result.verdicts[sys_site]
        record = FaultRecord(site=site, system_site=sys_site, simulation=verdict)
        if verdict is Verdict.UNDETECTED:
            record.classification = None
            if plan is not None:
                entry = plan.reusable.get(sys_site)
                if entry is not None and plan.classification_ok(
                    entry, ctx_digest, traces_digest, ctrl_fp
                ):
                    from ..incremental.replay import classification_from_json

                    record.classification = classification_from_json(
                        entry.classification, site
                    )
            if record.classification is None:
                record.classification = classifier.classify(site)
            if record.classification.category == "SFR" and not check_sfr_is_cfi(
                guard, fault_key(sys_site), record
            ):
                record.quarantined = True
        result.records.append(record)
    guard.attach(result.campaign)

    # Publish per-fault entries for this design so it can serve as a
    # future baseline.  Skipped when the stage replayed from its own
    # whole-campaign blob (entries already exist from the original cold
    # run) and for dirty campaigns (quarantined results must never be
    # served warm, fault-granularly or otherwise).
    if store is not None:
        stage_was_hit = any(
            p.stage == "faultsim" and p.key == faultsim_store_key and p.hit
            for p in store.provenance
        )
        if not stage_was_hit and clean_campaign(result.campaign):
            from ..incremental.replay import publish_incremental

            computed_wall = next(
                (
                    p.wall_s
                    for p in store.provenance
                    if p.stage == "faultsim" and p.key == faultsim_store_key
                ),
                plan.baseline_wall_s if plan is not None else 0.0,
            )
            publish_incremental(
                store,
                system,
                config,
                stimulus,
                observe,
                masks,
                result,
                sim_result.detect_cycle,
                classifier,
                faultsim_wall_s=computed_wall,
            )
    return result
