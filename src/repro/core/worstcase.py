"""Section 4's "worst case" experiment: maximal non-disruptive corruption.

The paper: "We also experimented by simulating the differential equation
solver while adding as many control line effects as possible while still
not disrupting the datapath computation.  The power increased by over 200%
over the fault-free case."  This module reproduces that experiment as a
first-class object: it greedily flips control-table entries (extra loads,
don't-care select inversions), keeping a flip only if the symbolic replay
oracle still proves the system's observed behaviour unchanged, then
synthesizes a controller for the corrupted-but-functional table so the
result is a real gate-level system whose power can be measured.

Only Moore outputs are touched -- the state transitions stay golden -- so
the corrupted machine's control flow provably matches the original.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..hls.rtl import ControlTable, RTLDesign
from ..hls.system import System, build_system
from ..synth.controller import SynthesizedController
from .effects import ControlTrace, Scenario, golden_control_trace, make_scenarios
from .symbolic import ValueTable, compare_replays, replay


@dataclass(frozen=True)
class Flip:
    """One control-table entry changed from its fault-free value."""

    state: str
    line: str
    value: int

    def describe(self) -> str:
        kind = "extra load" if self.line.startswith("LD") else "select flip"
        return f"{self.line}={self.value} in {self.state} ({kind})"


@dataclass
class WorstCaseResult:
    """The corrupted-but-functional control table and its provenance."""

    rtl: RTLDesign  # with the corrupted control table installed
    flips: list[Flip] = field(default_factory=list)
    candidates: int = 0

    def build(self, **kwargs) -> System:
        """Synthesize the corrupted controller into a full system."""
        return build_system(self.rtl, **kwargs)


def _overlay_trace(
    base: ControlTrace, scenario: Scenario, flips: list[Flip]
) -> ControlTrace:
    """Apply state-level flips onto a golden cycle-level trace."""
    trace = ControlTrace(
        scenario=scenario,
        lines=[dict(line) for line in base.lines],
        states=list(base.states),
    )
    by_state: dict[str, list[Flip]] = {}
    for f in flips:
        by_state.setdefault(f.state, []).append(f)
    for cycle in range(1, scenario.n_cycles):
        for f in by_state.get(scenario.golden_state(cycle), ()):
            trace.lines[cycle][f.line] = f.value
    return trace


def _candidates(rtl: RTLDesign) -> list[Flip]:
    """All single-entry corruptions that could be non-disruptive: extra
    loads where the table says 0, and select inversions where the table
    says don't-care (the synthesized value fills it)."""
    out: list[Flip] = []
    for state in rtl.states:
        for line in rtl.load_lines:
            if rtl.control.loads[state][line] == 0:
                out.append(Flip(state, line, 1))
        for sel in rtl.sel_lines:
            if rtl.control.selects[state][sel] is None:
                # Invert whatever the synthesizer filled in; resolved per
                # trace below (we flip against the golden trace value).
                out.append(Flip(state, sel, -1))
    return out


def find_worst_case(
    rtl: RTLDesign,
    ctrl: SynthesizedController,
    iteration_counts=(1, 2, 3),
) -> WorstCaseResult:
    """Greedily accumulate non-disruptive control-line corruptions.

    Each candidate flip is kept only if, with every flip accepted so far,
    the symbolic replay of all scenarios still matches the fault-free
    outputs and loop decisions.
    """
    scenarios = make_scenarios(rtl, iteration_counts)
    golden: list[tuple[Scenario, ControlTrace, ValueTable, object]] = []
    for sc in scenarios:
        trace = golden_control_trace(ctrl, sc)
        table = ValueTable()
        greplay = replay(rtl, trace, table)
        golden.append((sc, trace, table, greplay))

    def resolve(flip: Flip) -> Flip:
        if flip.value != -1:
            return flip
        # Invert the value the synthesizer chose for this don't-care (read
        # it off the first golden trace cycle in that state).
        sc, trace, _, _ = golden[0]
        for cycle in range(1, sc.n_cycles):
            if sc.golden_state(cycle) == flip.state:
                return Flip(flip.state, flip.line, 1 - trace.lines[cycle][flip.line])
        return Flip(flip.state, flip.line, 1)

    def all_equivalent(flips: list[Flip]) -> bool:
        for sc, trace, table, greplay in golden:
            corrupted = _overlay_trace(trace, sc, flips)
            freplay = replay(rtl, corrupted, table)
            if not compare_replays(greplay, freplay).equivalent:
                return False
        return True

    accepted: list[Flip] = []
    candidates = _candidates(rtl)
    for cand in candidates:
        flip = resolve(cand)
        if all_equivalent(accepted + [flip]):
            accepted.append(flip)

    corrupted_rtl = copy.deepcopy(rtl)
    table: ControlTable = corrupted_rtl.control
    for f in accepted:
        if f.line in table.loads[f.state]:
            table.loads[f.state][f.line] = f.value
        else:
            table.selects[f.state][f.line] = f.value
    return WorstCaseResult(rtl=corrupted_rtl, flips=accepted, candidates=len(candidates))
