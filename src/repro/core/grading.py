"""Power grading of SFR faults and threshold-based detection.

Implements Section 5's final stage and the data behind Table 1, Table 3
and Figure 7: Monte-Carlo power of every SFR fault, percentage change
against the fault-free machine, and a +/- threshold band (the paper uses
5 %) deciding which SFR faults the power test catches.  Faults are grouped
exactly as Figure 7 plots them: faults affecting only multiplexer select
lines first, then faults affecting register load lines, each group sorted
by increasing power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..hls.system import System
from ..power.estimator import PowerEstimator
from ..logic import values as V
from ..power.montecarlo import (
    MC_DEFAULT_BATCH_PATTERNS,
    MC_DEFAULT_ITERATIONS_WINDOW,
    MC_DEFAULT_MAX_BATCHES,
    MC_DEFAULT_SEED,
    MonteCarloResult,
    mc_campaign_params,
    measure_power,
    monte_carlo_power,
    monte_carlo_power_block,
    shared_batches,
)
from ..store.cache import CampaignStore, StageProvenance, StageTimer
from ..store.fingerprint import netlist_fingerprint, stage_key
from ..tpg.tpgr import TPGR
from .checkpoint import campaign_fingerprint, fault_key, open_journal
from .errors import CampaignError, IntegrityError, validate_netlist
from .integrity import (
    DEFAULT_AUDIT_RATE,
    IntegrityGuard,
    IntegrityViolation,
    adds_register_loads,
    check_finite_power,
    check_load_monotonicity,
    check_power_ceiling,
    format_value,
    select_audit,
)
from .parallel import ParallelExecutor, RunReport, resolve_n_jobs
from .pipeline import FaultRecord, PipelineResult

#: journal key of the fault-free Monte-Carlo baseline
_BASELINE_KEY = "__fault_free__"

#: width cap (in 64-bit words) of one batched grading simulator; bounds
#: chunk size so a huge SFR universe cannot blow up worker memory (the
#: cone-engine cap of :mod:`repro.logic.faultsim`, applied to grading).
_GRADE_MAX_WORDS = 8192

#: target faults per batched grading chunk (before job balancing and the
#: memory cap); the fixed per-cycle numpy dispatch cost amortizes across
#: this many pattern blocks.
_GRADE_CHUNK_FAULTS = 32


def power_detected(pct_change: float, threshold: float) -> bool:
    """Single source of truth for the power-screen detection predicate.

    ``pct_change`` is a percentage (Figure-7 units), ``threshold`` a
    fraction; a fault is flagged when the magnitude of its power shift
    exceeds the threshold.
    """
    return abs(pct_change) > 100.0 * threshold


@dataclass
class GradedFault:
    """One SFR fault with its Monte-Carlo power grade."""

    record: FaultRecord
    power_uw: float
    pct_change: float
    group: str  # 'select' (select lines only) or 'load' (affects loads)

    def effect_summary(self) -> list[str]:
        assert self.record.classification is not None
        return self.record.classification.effect_summary()


@dataclass
class GradingResult:
    """Figure-7-shaped result: fault-free power, band, ordered fault grades."""

    design: str
    fault_free_uw: float
    threshold: float
    graded: list[GradedFault] = field(default_factory=list)
    #: resilience summary of the Monte-Carlo fan-out
    campaign: RunReport | None = None

    def detected_flags(self) -> list[bool]:
        return [power_detected(g.pct_change, self.threshold) for g in self.graded]

    def group(self, name: str) -> list[GradedFault]:
        return [g for g in self.graded if g.group == name]

    def summary(self) -> dict:
        sel = self.group("select")
        load = self.group("load")
        return {
            "design": self.design,
            "fault_free_uw": self.fault_free_uw,
            "n_sfr": len(self.graded),
            "n_select_only": len(sel),
            "n_load": len(load),
            "select_detected": sum(
                1 for g in sel if power_detected(g.pct_change, self.threshold)
            ),
            "load_detected": sum(
                1 for g in load if power_detected(g.pct_change, self.threshold)
            ),
        }


def _grade_worker(context, fault):
    """Monte-Carlo one fault against shared precomputed batches (pickles).

    The context carries only the campaign knobs -- each worker process
    regenerates the packed batch stimuli locally through the
    :func:`~repro.power.montecarlo.shared_batches` memo (bit-identical by
    construction: one RNG stream from one seed), so the pool never pickles
    the batch list itself.
    """
    system, estimator, seed, batch_patterns, max_batches, iterations_window = context
    batches = shared_batches(
        system,
        seed=seed,
        batch_patterns=batch_patterns,
        max_batches=max_batches,
        iterations_window=iterations_window,
    )
    return monte_carlo_power(
        system,
        estimator,
        fault=fault,
        max_batches=max_batches,
        iterations_window=iterations_window,
        batches=batches,
    )


def _grade_chunk_worker(context, chunk):
    """Monte-Carlo a whole fault chunk through the block-parallel kernel.

    One wide simulation per Monte-Carlo batch for every still-unconverged
    fault of the chunk; per-fault results are bit-identical to
    :func:`_grade_worker` on the same knobs.
    """
    (
        system,
        estimator,
        seed,
        batch_patterns,
        max_batches,
        iterations_window,
        cone_power,
    ) = context
    batches = shared_batches(
        system,
        seed=seed,
        batch_patterns=batch_patterns,
        max_batches=max_batches,
        iterations_window=iterations_window,
    )
    return monte_carlo_power_block(
        system,
        estimator,
        chunk,
        max_batches=max_batches,
        iterations_window=iterations_window,
        batches=batches,
        cone_power=cone_power,
    )


def grade_sfr_faults(
    system: System,
    pipeline_result: PipelineResult,
    estimator: PowerEstimator | None = None,
    threshold: float = 0.05,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    n_jobs: int = 1,
    timeout: float | None = None,
    max_retries: int = 2,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    audit_rate: float = DEFAULT_AUDIT_RATE,
    strict: bool = False,
    chaos=None,
    store: CampaignStore | None = None,
    batched: bool = True,
    cone_power: bool = True,
    seed_results: dict[str, "MonteCarloResult"] | None = None,
) -> GradingResult:
    """Monte-Carlo grade every SFR fault of a pipeline result.

    Each random batch is generated and packed once (``shared_batches``)
    and replayed for the fault-free baseline and every SFR fault.  Faults
    are graded in block-parallel chunks by default (``batched=True``):
    each fault of a chunk owns one pattern block of a single wide
    simulator, so every Monte-Carlo batch is one compiled-netlist pass
    for the whole chunk instead of one simulator per fault per batch,
    and ``cone_power=True`` additionally restricts each batch to the
    chunk's union fault cone (fault power = golden power + cone counter
    delta).  Both are pure performance levers -- powers, convergence
    histories, journals and store fingerprints are bit-identical to the
    per-fault path (``batched=False``), which is retained as the
    differential-audit reference; campaigns whose ``batch_patterns`` is
    not a multiple of 64 fall back to it automatically.  The chunks fan
    out across ``n_jobs`` processes with bit-identical powers regardless
    of job count.  With ``checkpoint_dir`` set, the baseline and every
    per-fault result are journaled as they complete, and a rerun with
    ``resume=True`` replays journaled powers bit-identically instead of
    recomputing them.

    Integrity layer (see :mod:`repro.core.integrity`): the fault-free
    baseline must be finite, positive and below the estimator's
    theoretical ceiling, or the whole grading aborts (a poisoned
    baseline poisons every percentage).  Every per-fault power is held
    to the same finite/ceiling invariants, register-load-adding faults
    to Section-5 monotonicity, and a hash-selected ``audit_rate``
    fraction is recomputed through the generate-per-call Monte-Carlo
    path (independent of the batch-replay path used by the campaign).
    A violating fault is excluded from ``graded`` and recorded on the
    campaign report -- or, with ``strict=True``, aborts the run.
    ``chaos`` optionally injects worker crashes/hangs and power-word
    bit-flips (test and CI use only).

    With ``store`` set (see :mod:`repro.store`), a previously published
    grading campaign with the same netlist content, fault universe and
    Monte-Carlo knobs replays baseline and per-fault powers from the
    persistent store (bit-identical grades, no simulation); a freshly
    computed campaign is published back only when its report is free of
    integrity violations, and the crash-recovery journal is then retired.

    ``seed_results`` optionally pre-loads per-fault Monte-Carlo results
    (keyed by campaign fault key, baseline included) computed elsewhere,
    e.g. replayed from a structurally-identical baseline campaign by the
    incremental planner (see :mod:`repro.incremental`).  Journal entries
    win over seeds; seeded faults are counted as ``resumed`` and skip
    simulation bit-identically to a journal replay.
    """
    validate_netlist(system.netlist)
    if not 0 < threshold < 1:
        raise CampaignError(f"threshold must be a fraction in (0, 1), got {threshold}")
    if batch_patterns < 1 or max_batches < 1:
        raise CampaignError(
            f"batch_patterns and max_batches must be >= 1 "
            f"(got {batch_patterns}, {max_batches})"
        )
    if timeout is not None and timeout <= 0:
        raise CampaignError(f"timeout must be positive seconds or None, got {timeout}")
    records = pipeline_result.sfr_records
    sfr_keys = [fault_key(r.system_site) for r in records]
    mc_params = mc_campaign_params(seed, batch_patterns, max_batches, iterations_window)
    estimator = estimator or PowerEstimator(system.netlist)
    ceiling_uw = estimator.theoretical_max_uw()
    guard = IntegrityGuard(strict=strict)

    # Persistent-store fast path: a cached grading campaign keyed by the
    # netlist content, SFR fault universe and Monte-Carlo knobs replays the
    # baseline and every per-fault power bit-identically (floats round-trip
    # exactly through canonical JSON) without simulating a single batch.
    grading_store_key: str | None = None
    store_hit = False
    journal = None
    stage_timer: StageTimer | None = None
    if store is not None:
        grading_store_key = stage_key(
            "grading",
            netlist_fingerprint(system.netlist),
            {"design": pipeline_result.design, "faults": sfr_keys, "mc": mc_params},
        )
        cached = store.lookup("grading", grading_store_key)
        if (
            cached is not None
            and "baseline" in cached
            and set(cached.get("faults", ())) == set(sfr_keys)
        ):
            row = store.artifacts.row(grading_store_key)
            store.record(
                StageProvenance(
                    stage="grading",
                    key=grading_store_key,
                    hit=True,
                    saved_s=row.wall_s if row is not None else 0.0,
                )
            )
            base = MonteCarloResult.from_json_dict(cached["baseline"])
            mc_by_key: dict[str, MonteCarloResult] = {
                k: MonteCarloResult.from_json_dict(v)
                for k, v in cached["faults"].items()
            }
            store_hit = True
            report = RunReport(n_items=len(records))
            audited: list[FaultRecord] = []
            quarantined_keys: set[str] = set()

    if not store_hit:
        stage_timer = StageTimer().__enter__()
        journal = open_journal(
            checkpoint_dir,
            "grading",
            campaign_fingerprint("grading", pipeline_result.design, sfr_keys, mc_params),
            resume=resume,
        )
        mc_by_key = {}
        if journal is not None:
            mc_by_key = {
                k: MonteCarloResult.from_json_dict(v) for k, v in journal.done.items()
            }
        if seed_results:
            valid = set(sfr_keys) | {_BASELINE_KEY}
            for k, v in seed_results.items():
                if k in valid:
                    mc_by_key.setdefault(k, v)
        todo = [r for r in records if fault_key(r.system_site) not in mc_by_key]
        report = RunReport(n_items=len(records), resumed=len(records) - len(todo))

        audit_keys = set(select_audit(sfr_keys, audit_rate))
        if chaos is not None:
            chaos.set_flip_targets(sorted(audit_keys))
        context = None
        if todo or _BASELINE_KEY not in mc_by_key:
            context = (
                system,
                estimator,
                seed,
                batch_patterns,
                max_batches,
                iterations_window,
            )
        if _BASELINE_KEY in mc_by_key:
            base = mc_by_key[_BASELINE_KEY]
        else:
            base = _grade_worker(context, None)
            if journal is not None:
                journal.record(_BASELINE_KEY, base.to_json_dict())
    # The baseline divides every percentage, so it cannot be quarantined:
    # a bad value here aborts unconditionally, strict or not -- replayed
    # store values included (defense against a tampered-but-valid blob).
    if not (math.isfinite(base.power_uw) and 0 < base.power_uw <= ceiling_uw):
        raise IntegrityError(
            f"fault-free Monte-Carlo power {base.power_uw!r} uW is unusable "
            f"(must be finite, positive and <= the theoretical ceiling "
            f"{ceiling_uw:.6g} uW); a poisoned baseline poisons every grade"
        )
    if not store_hit and todo:
        todo_sites = [r.system_site for r in todo]
        use_block = batched and batch_patterns % V.WORD_BITS == 0

        def _journal_fault(site, mc) -> None:
            key = fault_key(site)
            if chaos is not None:
                mc = chaos.tamper_power(key, mc)
            mc_by_key[key] = mc
            if journal is not None:
                journal.record(key, mc.to_json_dict())

        if use_block:
            # Block-parallel kernel: order-preserving fault chunks, each
            # graded in one wide simulation per Monte-Carlo batch.  Chunk
            # width balances the job count, targets _GRADE_CHUNK_FAULTS
            # blocks for numpy-dispatch amortization, and is capped so
            # the ``len(chunk) * batch_patterns``-wide worker simulator
            # stays within _GRADE_MAX_WORDS.
            jobs = max(1, resolve_n_jobs(n_jobs))
            wpb = batch_patterns // V.WORD_BITS
            size = max(
                1,
                min(
                    -(-len(todo_sites) // jobs),
                    _GRADE_CHUNK_FAULTS,
                    _GRADE_MAX_WORDS // wpb,
                ),
            )
            items = [
                todo_sites[i : i + size]
                for i in range(0, len(todo_sites), size)
            ]
            worker, run_context = _grade_chunk_worker, (*context, cone_power)

            def _journal_chunk(chunk_items, chunk_results) -> None:
                for sites, mcs in zip(chunk_items, chunk_results):
                    for site, mc in zip(sites, mcs):
                        _journal_fault(site, mc)

        else:
            items = todo_sites
            worker, run_context = _grade_worker, context

            def _journal_chunk(sites, results) -> None:
                for site, mc in zip(sites, results):
                    _journal_fault(site, mc)

        if chaos is not None:
            worker, run_context = chaos.wrap(worker, run_context)
        executor = ParallelExecutor(
            n_jobs,
            chunk_size=1 if use_block else None,
            timeout=timeout,
            max_retries=max_retries,
        )
        executor.run(worker, items, run_context, on_chunk=_journal_chunk)
        assert executor.last_report is not None
        report = executor.last_report
        report.n_items = len(records)
        report.completed = len(todo)
        report.resumed = len(records) - len(todo)

    if not store_hit:
        # Differential audit: recompute the hash-selected subset through the
        # generate-per-call Monte-Carlo path (fresh data from the same seed
        # -- bit-identical to batch replay by construction) and require
        # exact agreement with the campaign's value.  Replayed store hits
        # skip this: only audited-clean campaigns are ever published.
        quarantined_keys = set()
        audited = [r for r in records if fault_key(r.system_site) in audit_keys]
        for record in audited:
            key = fault_key(record.system_site)
            reference = monte_carlo_power(
                system,
                estimator,
                fault=record.system_site,
                seed=seed,
                batch_patterns=batch_patterns,
                max_batches=max_batches,
                iterations_window=iterations_window,
            )
            got = mc_by_key[key]
            if got.power_uw != reference.power_uw or got.batches != reference.batches:
                guard.flag(
                    IntegrityViolation(
                        check="grading-differential",
                        fault=key,
                        site=record.site.describe(system.controller.netlist),
                        detail=(
                            "batch-replay Monte-Carlo power diverges from the "
                            "generate-per-call recomputation; fault excluded "
                            "from grading"
                        ),
                        expected=format_value(reference.power_uw),
                        actual=format_value(got.power_uw),
                    )
                )
                quarantined_keys.add(key)

    graded: list[GradedFault] = []
    for record in records:
        key = fault_key(record.system_site)
        if key in quarantined_keys:
            continue
        mc = mc_by_key[key]
        assert record.classification is not None
        site_desc = record.site.describe(system.controller.netlist)
        if not check_finite_power(guard, key, mc.power_uw, site_desc):
            continue
        if not check_power_ceiling(guard, key, mc.power_uw, ceiling_uw, site_desc):
            continue
        group = "load" if record.classification.affects_load_line else "select"
        pct = 100.0 * (mc.power_uw - base.power_uw) / base.power_uw
        if adds_register_loads(record.classification) and not check_load_monotonicity(
            guard, key, pct, site_desc
        ):
            continue
        graded.append(
            GradedFault(record=record, power_uw=mc.power_uw, pct_change=pct, group=group)
        )
    guard.attach(report, audited=len(audited))
    if store is not None and not store_hit:
        assert stage_timer is not None and grading_store_key is not None
        stage_timer.__exit__(None, None, None)
        published = False
        if not report.violations:
            published = store.publish(
                "grading",
                grading_store_key,
                {
                    "baseline": base.to_json_dict(),
                    "faults": {k: mc_by_key[k].to_json_dict() for k in sfr_keys},
                },
                design=pipeline_result.design,
                meta={"faults": len(sfr_keys), "audited": len(audited)},
                wall_s=stage_timer.wall_s,
            )
            if published and journal is not None and chaos is None:
                journal.retire()
        store.record(
            StageProvenance(
                stage="grading",
                key=grading_store_key,
                hit=False,
                wall_s=stage_timer.wall_s,
                published=published,
            )
        )
    # Figure 7 ordering: select-only faults first, then load-line faults,
    # each sorted by increasing power.
    graded.sort(key=lambda g: (g.group != "select", g.power_uw))
    return GradingResult(
        design=pipeline_result.design,
        fault_free_uw=base.power_uw,
        threshold=threshold,
        graded=graded,
        campaign=report,
    )


def power_under_test_set(
    system: System,
    estimator: PowerEstimator,
    fault,
    seed: int,
    n_patterns: int = 1200,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
) -> float:
    """Average datapath power for one fixed TPGR test set (Table 3)."""
    tpgr = TPGR(system.rtl.dfg.inputs, system.rtl.width, seed=seed)
    data = {k: np.asarray(v) for k, v in tpgr.generate(n_patterns).items()}
    result = measure_power(
        system, estimator, data, fault=fault, iterations_window=iterations_window
    )
    return result.total_uw


@dataclass
class Table3Row:
    """One Table-3 row: a fault's power under several fixed test sets."""

    label: str
    monte_carlo_uw: float
    per_set_uw: list[float]
    monte_carlo_pct: float | None = None
    per_set_pct: list[float] | None = None


def table3_rows(
    system: System,
    estimator: PowerEstimator,
    grading: GradingResult,
    picks: list[GradedFault],
    seeds: tuple[int, ...] = (0xACE1, 0xBEEF, 0x1),
    n_patterns: int = 1200,
) -> list[Table3Row]:
    """Power under several 1200-pattern test sets; seed 0x1 is the paper's
    deliberately less-pseudorandom "almost all 0s" third set."""
    base_sets = [
        power_under_test_set(system, estimator, None, seed, n_patterns) for seed in seeds
    ]
    rows = [Table3Row("fault-free", grading.fault_free_uw, base_sets)]
    for g in picks:
        per_set = [
            power_under_test_set(system, estimator, g.record.system_site, seed, n_patterns)
            for seed in seeds
        ]
        rows.append(
            Table3Row(
                label=g.record.site.describe(system.controller.netlist),
                monte_carlo_uw=g.power_uw,
                per_set_uw=per_set,
                monte_carlo_pct=g.pct_change,
                per_set_pct=[
                    100.0 * (p - b) / b for p, b in zip(per_set, base_sets)
                ],
            )
        )
    return rows


def pick_representative(grading: GradingResult, count: int = 5) -> list[GradedFault]:
    """Table-1 style picks spanning the full range of power effects."""
    if not grading.graded:
        return []
    by_pct = sorted(grading.graded, key=lambda g: g.pct_change)
    if len(by_pct) <= count:
        return by_pct
    idx = np.linspace(0, len(by_pct) - 1, count).round().astype(int)
    return [by_pct[i] for i in dict.fromkeys(idx)]
