"""Structured failure taxonomy and fail-fast campaign validators.

A Section-5 campaign is a long fan-out (per-fault simulation, then a
Monte-Carlo power run per SFR fault).  Failures fall into a small set of
shapes, each with its own exception so callers can react precisely:

* :class:`CampaignError` -- base class; also raised directly by the
  fail-fast validators below when a campaign's inputs are unusable;
* :class:`WorkerCrash` -- a worker process died (OOM, ``os._exit``,
  segfault) and recovery was exhausted or disabled;
* :class:`ChunkTimeout` -- a chunk of work exceeded its per-chunk budget
  on every allowed attempt;
* :class:`CheckpointMismatch` -- a checkpoint file does not belong to
  this campaign (wrong fingerprint) or is structurally corrupt;
* :class:`IntegrityError` -- a result failed an integrity check (a
  differential audit diverged, a power value went non-finite or broke a
  theory-grounded invariant) and the campaign runs in strict mode, or
  the violation poisons everything downstream (a bad fault-free
  baseline).  See :mod:`repro.core.integrity`.

The campaign *service* (:mod:`repro.store.service`) adds three shapes of
its own, mapped onto HTTP status codes by the serve layer:

* :class:`InputValidationError` -- untrusted user input (an uploaded
  netlist, a request parameter) was rejected by a fail-fast validator
  (HTTP 400, not retryable);
* :class:`ServiceOverloaded` -- the bounded job queue refused admission
  or the service is draining (HTTP 503 + ``Retry-After``, retryable);
* :class:`DeadlineExceeded` -- a request's deadline expired before its
  compute job finished (HTTP 504, retryable: the abandoned job may
  still land in the store).

The replicated shard *fabric* (:mod:`repro.store.fabric`) adds two more:

* :class:`ShardUnavailable` -- every replica of a key is unreachable
  (HTTP 503 + ``Retry-After``, retryable: shards come back);
* :class:`ReplicaDivergence` -- no copy of a key can be proven good
  (not retryable until a scrub or recompute restores a trusted copy).

:func:`is_retryable` classifies any exception for job-level retry loops
and for the ``retryable`` flag of structured JSON error bodies.

The validators run *before* any process pool, golden-trace simulation or
batch precomputation, so a bad netlist, stimulus or config is rejected in
milliseconds instead of surfacing as a deep-stack numpy error minutes
into a fan-out.
"""

from __future__ import annotations

from typing import Any


class CampaignError(RuntimeError):
    """A fault-analysis campaign could not run or complete."""


class WorkerCrash(CampaignError):
    """A worker process died and the lost work could not be recovered."""


class ChunkTimeout(CampaignError, TimeoutError):
    """A chunk of campaign work exceeded its timeout on every attempt."""


class CheckpointMismatch(CampaignError):
    """A checkpoint file belongs to a different campaign or is corrupt."""


class IntegrityError(CampaignError):
    """A result failed an integrity check and cannot be quarantined away
    (strict mode, or a poisoned fault-free baseline)."""


class InputValidationError(CampaignError):
    """Untrusted user input (an uploaded netlist, a request parameter)
    was rejected by a fail-fast validator.  Served as HTTP 400."""


class ServiceOverloaded(CampaignError):
    """The campaign service refused new work: the bounded job queue is
    at depth, or the service is draining.  Served as HTTP 503 with a
    ``Retry-After`` hint (:attr:`retry_after`, seconds)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(CampaignError, TimeoutError):
    """A request's deadline expired before its compute job finished.
    Served as HTTP 504; the abandoned job is quarantined and may still
    publish to the store, so the request is worth retrying later."""


class ShardUnavailable(CampaignError):
    """Every replica of a shard-mapped key is unreachable (deleted,
    locked, or unreadable shard databases).  Served as HTTP 503 with a
    ``Retry-After`` hint -- retryable, because shards come back (a held
    lock clears, a scrub re-replicates) and the fabric fails over the
    moment one copy answers."""

    def __init__(self, message: str, retry_after: float = 2.0):
        super().__init__(message)
        self.retry_after = retry_after


class ReplicaDivergence(CampaignError):
    """Replicas of one key disagree and no copy can be proven good (all
    fail their content hash, or surviving copies hash differently).  Not
    retryable: the same read replays the same divergence until a scrub
    or a recompute re-establishes a trusted copy."""


#: exception classes a job-level retry can plausibly outwait
_RETRYABLE = (
    WorkerCrash,
    ChunkTimeout,
    ServiceOverloaded,
    DeadlineExceeded,
    ShardUnavailable,
)


def is_retryable(exc: BaseException) -> bool:
    """True when retrying the failed operation can plausibly succeed.

    Worker crashes and chunk timeouts are transient (the next attempt
    resumes from checkpoint journals); overload and deadline expiries
    clear as load drains.  Validation and integrity failures are
    deterministic -- retrying replays the same rejection.
    """
    if isinstance(
        exc, (InputValidationError, IntegrityError, CheckpointMismatch, ReplicaDivergence)
    ):
        return False
    if isinstance(exc, _RETRYABLE):
        return True
    # store lock contention (repro.store.artifacts.StoreLockError) is
    # transient too, but the store layer sits above core -- duck-type it.
    return type(exc).__name__ == "StoreLockError"


# ------------------------------------------------------------- validators
def validate_netlist(netlist: Any) -> None:
    """Reject structurally unusable netlists before any simulation.

    Checks the invariants every campaign stage assumes: the design has
    gates, declared primary inputs/outputs, and every output net is
    actually driven (or is a fed-through primary input).
    """
    if not netlist.gates:
        raise CampaignError(f"netlist {netlist.name!r} has no gates")
    if not netlist.inputs:
        raise CampaignError(f"netlist {netlist.name!r} declares no primary inputs")
    if not netlist.outputs:
        raise CampaignError(f"netlist {netlist.name!r} declares no primary outputs")
    inputs = set(netlist.inputs)
    undriven = [
        netlist.net_names[net]
        for net in netlist.outputs
        if netlist.driver_of(net) is None and net not in inputs
    ]
    if undriven:
        raise CampaignError(
            f"netlist {netlist.name!r} outputs are undriven: {undriven[:5]}"
        )


def validate_stimulus(stimulus: Any) -> None:
    """Reject degenerate stimuli (no patterns / no cycles / no driver)."""
    n_patterns = getattr(stimulus, "n_patterns", 0)
    n_cycles = getattr(stimulus, "n_cycles", 0)
    if n_patterns < 1:
        raise CampaignError(f"stimulus has {n_patterns} patterns; need at least 1")
    if n_cycles < 1:
        raise CampaignError(f"stimulus has {n_cycles} cycles; need at least 1")
    if not callable(getattr(stimulus, "apply", None)):
        raise CampaignError("stimulus has no callable apply(sim, cycle) method")


def validate_config(config: Any) -> None:
    """Reject unusable :class:`~repro.core.pipeline.PipelineConfig` values."""
    if config.n_patterns < 1:
        raise CampaignError(f"n_patterns must be >= 1, got {config.n_patterns}")
    if config.iterations_window < 1:
        raise CampaignError(
            f"iterations_window must be >= 1, got {config.iterations_window}"
        )
    if config.hold_cycles < 1:
        raise CampaignError(f"hold_cycles must be >= 1, got {config.hold_cycles}")
    if not config.iteration_counts or any(c < 1 for c in config.iteration_counts):
        raise CampaignError(
            f"iteration_counts must be non-empty positive ints, "
            f"got {config.iteration_counts!r}"
        )
    if config.tpgr_seed < 0:
        raise CampaignError(f"tpgr_seed must be >= 0, got {config.tpgr_seed}")
    timeout = getattr(config, "timeout", None)
    if timeout is not None and timeout <= 0:
        raise CampaignError(f"timeout must be positive seconds or None, got {timeout}")
    max_retries = getattr(config, "max_retries", 0)
    if max_retries < 0:
        raise CampaignError(f"max_retries must be >= 0, got {max_retries}")
    audit_rate = getattr(config, "audit_rate", 0.0)
    if not 0.0 <= audit_rate < 1.0:
        raise CampaignError(
            f"audit_rate must be a fraction in [0, 1), got {audit_rate}"
        )
    chaos = getattr(config, "chaos", None)
    if chaos is not None:
        from ..testing.chaos import ChaosSpec  # deferred: avoid a module cycle

        spec = ChaosSpec.parse(chaos)  # raises CampaignError on a bad spec
        if spec.hang > 0 and timeout is None:
            raise CampaignError(
                "chaos hang injection needs a per-chunk timeout "
                "(a hung worker would otherwise stall the campaign forever)"
            )


# ------------------------------------------------- untrusted-upload guards
#: default size cap for user-uploaded netlist text (1 MiB)
UPLOAD_MAX_BYTES = 1 << 20


def validate_upload_text(text: Any, max_bytes: int = UPLOAD_MAX_BYTES) -> None:
    """Reject upload payloads before any parsing work.

    Raises :class:`InputValidationError` for non-text, empty or
    oversized uploads, so a worker never tokenizes gigabytes of junk.
    """
    if not isinstance(text, str):
        raise InputValidationError(
            f"upload must be text, got {type(text).__name__}"
        )
    if not text.strip():
        raise InputValidationError("upload is empty")
    size = len(text.encode("utf-8", errors="replace"))
    if size > max_bytes:
        raise InputValidationError(
            f"upload is {size} bytes; the limit is {max_bytes}"
        )


def validate_upload_netlist(netlist: Any) -> None:
    """Full structural + acyclicity validation of an untrusted netlist.

    Runs the structural invariants (:meth:`Netlist.validate` plus the
    campaign-level :func:`validate_netlist` checks) and a topological
    levelization, so a combinational loop -- which would otherwise
    surface as a deep-stack error (or an endless event-simulation) far
    into a campaign -- is rejected here, typed, in milliseconds.

    Raises:
        InputValidationError: naming the first violation found.
    """
    from ..logic.levelize import levelize  # deferred: netlist -> core -> logic

    try:
        netlist.validate()
        validate_netlist(netlist)
        levelize(netlist)  # raises on combinational loops
    except InputValidationError:
        raise
    except (CampaignError, ValueError) as exc:  # NetlistError is a ValueError
        raise InputValidationError(f"invalid netlist upload: {exc}") from exc
