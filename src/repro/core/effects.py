"""Control-line effects: what a controller fault does to the control word.

Step 3 of the paper's methodology injects each remaining fault "into the
controller and simulates the controller to determine the fault's effect on
the controller outputs" (Section 5).  This module drives the *standalone*
controller netlist through normal-mode scenarios (reset pulse, start held
high, a chosen number of loop iterations worth of ``cond`` values) and
diffs the faulty control lines against the fault-free ones, producing the
paper's "control line effects": a change of a single control line in a
single control step (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hls.rtl import HOLD_STATE, RTLDesign, cs_state
from ..logic.faults import FaultSite
from ..logic.simulator import CycleSimulator
from ..synth.controller import SynthesizedController


@dataclass(frozen=True)
class ControlLineEffect:
    """One control line differing from fault-free in one cycle.

    ``faulty`` is -1 when the faulty machine drives X."""

    cycle: int
    state: str
    line: str
    golden: int
    faulty: int

    def describe(self) -> str:
        if self.line.startswith("LD"):
            word = "skipped load" if self.golden == 1 else "extra load"
            if self.faulty == -1:
                word = "unknown load"
            return f"{self.line}: {word} in {self.state}"
        return f"{self.line} changes in {self.state}"


@dataclass
class Scenario:
    """A normal-mode run: reset, a few idle cycles waiting in RESET with
    ``start`` low, then ``iterations`` body passes, then HOLD.

    The idle prelude matters: without it, faults that only disturb the
    wait-for-start path would look controller-functionally redundant."""

    iterations: int
    n_steps: int
    hold_cycles: int = 3
    idle_cycles: int = 2

    @property
    def n_cycles(self) -> int:
        return 2 + self.idle_cycles + self.n_steps * self.iterations + self.hold_cycles

    @property
    def first_body_cycle(self) -> int:
        return 2 + self.idle_cycles

    def golden_state(self, cycle: int) -> str:
        """Fault-free controller state at ``cycle`` (state X before cycle 1)."""
        if cycle == 0:
            return "X"
        if cycle < self.first_body_cycle:
            return "RESET"
        body = cycle - self.first_body_cycle
        total = self.n_steps * self.iterations
        if body < total:
            return cs_state(body % self.n_steps + 1)
        return HOLD_STATE

    def start_at(self, cycle: int) -> int:
        """The start waveform: low through the idle prelude, then high."""
        return 1 if cycle >= self.first_body_cycle - 1 else 0

    def cond_at(self, cycle: int) -> int:
        """The loop condition waveform: 1 until the last decision point.

        The fault-free controller samples ``cond`` only in the final control
        step; we hold the line at the value of the *next* decision so the
        waveform is well-defined every cycle."""
        last_decision = self.first_body_cycle - 1 + self.n_steps * self.iterations
        return 1 if cycle < last_decision else 0


def make_scenarios(
    rtl: RTLDesign, iteration_counts=(1, 2, 3), hold_cycles: int = 3
) -> list[Scenario]:
    """Scenarios for classification: several iteration counts for loops,
    a single pass for straight-line behaviours."""
    counts = iteration_counts if rtl.cond_fu else (1,)
    return [Scenario(k, rtl.schedule.n_steps, hold_cycles) for k in counts]


@dataclass
class ControlTrace:
    """Per-cycle control-line values (and states) of one controller run."""

    scenario: Scenario
    lines: list[dict[str, int]]  # value -1 == X
    states: list[str] = field(default_factory=list)


def _run_controller(
    ctrl: SynthesizedController,
    scenario: Scenario,
    fault: FaultSite | None,
    cond_flips: set[int] | None = None,
) -> ControlTrace:
    sim = CycleSimulator(ctrl.netlist, 1, faults=[fault] if fault else None)
    lines: list[dict[str, int]] = []
    states: list[str] = []
    has_cond = "cond" in ctrl.input_nets
    for cycle in range(scenario.n_cycles):
        sim.drive_const(ctrl.input_nets["reset"], 1 if cycle == 0 else 0)
        sim.drive_const(ctrl.input_nets["start"], scenario.start_at(cycle))
        if has_cond:
            cond = scenario.cond_at(cycle)
            if cond_flips and cycle in cond_flips:
                cond = 1 - cond
            sim.drive_const(ctrl.input_nets["cond"], cond)
        sim.settle()
        lines.append(
            {name: int(sim.sample(net)[0]) for name, net in ctrl.output_nets.items()}
        )
        states.append(scenario.golden_state(cycle))
        sim.latch()
    return ControlTrace(scenario=scenario, lines=lines, states=states)


def golden_control_trace(ctrl: SynthesizedController, scenario: Scenario) -> ControlTrace:
    """Fault-free control-line trace for a scenario."""
    return _run_controller(ctrl, scenario, None)


def faulty_control_trace(
    ctrl: SynthesizedController,
    scenario: Scenario,
    fault: FaultSite,
    cond_flips: set[int] | None = None,
) -> ControlTrace:
    """Control-line trace with ``fault`` injected in the controller.

    ``cond_flips`` inverts the assumed ``cond`` waveform at the given
    cycles -- used to probe whether a faulty controller is sensitive to
    comparator values the fault itself corrupted."""
    return _run_controller(ctrl, scenario, fault, cond_flips=cond_flips)


def diff_traces(golden: ControlTrace, faulty: ControlTrace) -> list[ControlLineEffect]:
    """Control line effects: cycles (from 1 on) where a line differs."""
    effects = []
    for cycle in range(1, golden.scenario.n_cycles):
        for line, gval in golden.lines[cycle].items():
            fval = faulty.lines[cycle][line]
            if gval == -1:
                continue  # fault-free X: undefined comparison (cycle 0 only)
            if fval != gval:
                effects.append(
                    ControlLineEffect(
                        cycle=cycle,
                        state=golden.states[cycle],
                        line=line,
                        golden=gval,
                        faulty=fval,
                    )
                )
    return effects
