"""Power-signature diagnosis: *which* SFR fault is in the part?

A natural extension of the paper's detection method (Section 5 grades
faults by total power only): because the estimator can attribute power to
individual datapath components (registers, FUs, muxes -- see
``PowerResult.by_tag``), every SFR fault has a *signature*: the vector of
per-component power deviations from fault-free.  A fault that reloads
REG4 heats REG4; one that flips a multiplier's select heats the
multiplier.  Matching a measured signature against a precomputed
dictionary ranks the candidate faults.

On a real tester only total current is visible per supply pin, but cores
with per-domain power pins (the paper's "power management schemes
employed in large microchips can be potentially useful") expose exactly
this kind of vector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..hls.system import System
from ..logic.faults import FaultSite
from ..power.estimator import PowerEstimator
from ..power.montecarlo import monte_carlo_power
from .pipeline import PipelineResult


@dataclass
class PowerSignature:
    """Per-component relative power deviation of one machine vs fault-free."""

    total_pct: float
    component_pct: dict[str, float] = field(default_factory=dict)

    def distance(self, other: "PowerSignature") -> float:
        """Euclidean distance over the union of components + total."""
        keys = set(self.component_pct) | set(other.component_pct)
        acc = (self.total_pct - other.total_pct) ** 2
        for k in keys:
            acc += (self.component_pct.get(k, 0.0) - other.component_pct.get(k, 0.0)) ** 2
        return math.sqrt(acc)


def _signature_from_measurements(base, faulty) -> PowerSignature:
    total_pct = 100.0 * (faulty.total_uw - base.total_uw) / base.total_uw
    comps: dict[str, float] = {}
    for tag in set(base.by_tag) | set(faulty.by_tag):
        ref = base.by_tag.get(tag, 0.0)
        got = faulty.by_tag.get(tag, 0.0)
        comps[tag] = 100.0 * (got - ref) / base.total_uw
    return PowerSignature(total_pct=total_pct, component_pct=comps)


class PowerDictionary:
    """Precomputed fault signatures for one system."""

    def __init__(
        self,
        system: System,
        estimator: PowerEstimator | None = None,
        seed: int = 77,
        batch_patterns: int = 128,
        max_batches: int = 3,
        iterations_window: int = 4,
    ):
        self.system = system
        self.estimator = estimator or PowerEstimator(system.netlist)
        self._mc_kwargs = dict(
            seed=seed,
            batch_patterns=batch_patterns,
            max_batches=max_batches,
            iterations_window=iterations_window,
        )
        self._base = self._measure(None)
        self.entries: dict[FaultSite, PowerSignature] = {}

    def _measure(self, fault):
        # monte_carlo_power folds batches into a scalar; for signatures we
        # need the by_tag breakdown, so measure one deterministic batch of
        # the same random stream.
        import numpy as np

        from ..power.montecarlo import measure_power, random_data

        rng = np.random.default_rng(self._mc_kwargs["seed"])
        total = None
        for _ in range(self._mc_kwargs["max_batches"]):
            data = random_data(self.system, rng, self._mc_kwargs["batch_patterns"])
            result = measure_power(
                self.system,
                self.estimator,
                data,
                fault=fault,
                iterations_window=self._mc_kwargs["iterations_window"],
            )
            if total is None:
                total = result
            else:
                n = self._mc_kwargs["max_batches"]
                total.total_uw += result.total_uw
                for k, v in result.by_tag.items():
                    total.by_tag[k] = total.by_tag.get(k, 0.0) + v
        n = self._mc_kwargs["max_batches"]
        total.total_uw /= n
        total.by_tag = {k: v / n for k, v in total.by_tag.items()}
        return total

    def add_fault(self, site: FaultSite) -> PowerSignature:
        """Measure and store the signature of one (system-site) fault."""
        faulty = self._measure(site)
        sig = _signature_from_measurements(self._base, faulty)
        self.entries[site] = sig
        return sig

    def signature_of_machine(self, fault: FaultSite | None) -> PowerSignature:
        """Measure a 'device under test' (used by tests/examples)."""
        return _signature_from_measurements(self._base, self._measure(fault))

    def diagnose(self, observed: PowerSignature, top: int = 5):
        """Rank dictionary faults by signature distance to ``observed``."""
        ranked = sorted(
            self.entries.items(), key=lambda kv: observed.distance(kv[1])
        )
        return [(site, observed.distance(sig)) for site, sig in ranked[:top]]


def build_dictionary(
    system: System, pipeline_result: PipelineResult, **kwargs
) -> PowerDictionary:
    """Dictionary over every SFR fault of a pipeline result."""
    dictionary = PowerDictionary(system, **kwargs)
    for record in pipeline_result.sfr_records:
        dictionary.add_fault(record.system_site)
    return dictionary
