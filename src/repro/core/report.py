"""Rendering of the reproduced tables and figures.

Produces plain-text renderings (and CSV-able row dicts) of:

* Table 1 -- representative SFR faults with control line effects and power;
* Table 2 -- controller fault breakdown per design;
* Table 3 -- power consistency across fixed test sets;
* Figure 7 -- per-fault Monte-Carlo power against the +/- threshold band,
  select-only faults first, then load-line faults (ASCII scatter);
* the per-campaign resilience summary (retries / crashes / timeouts /
  resumed-fault counts) of a fault-tolerant fan-out.
"""

from __future__ import annotations

import json

from ..store.cache import CampaignStore
from .checkpoint import fault_key
from .grading import GradedFault, GradingResult, Table3Row, power_detected
from .parallel import RunReport
from .pipeline import PipelineResult

#: bumped whenever the deterministic result-report shape changes
RESULT_SCHEMA_VERSION = 1


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Simple fixed-width table renderer."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)


# ----------------------------------------------------------------- Table 1
def table1_rows(grading: GradingResult, picks: list[GradedFault]) -> list[dict]:
    """Row dicts for a Table-1-style listing."""
    rows = [
        {
            "fault": "fault-free",
            "effects": "-",
            "power_uw": grading.fault_free_uw,
            "pct": None,
        }
    ]
    for i, g in enumerate(picks, start=1):
        rows.append(
            {
                "fault": f"fault {i}",
                "effects": "; ".join(g.effect_summary()),
                "power_uw": g.power_uw,
                "pct": g.pct_change,
            }
        )
    return rows


def render_table1(grading: GradingResult, picks: list[GradedFault]) -> str:
    rows = []
    for r in table1_rows(grading, picks):
        pct = "-" if r["pct"] is None else f"{r['pct']:+.2f}%"
        rows.append([r["fault"], r["effects"][:70], f"{r['power_uw'] / 1000.0:.3f}", pct])
    return render_table(
        ["", "Control line effects", "Power mW", "% change"],
        rows,
        title=f"Table 1 -- representative SFR faults ({grading.design})",
    )


# ----------------------------------------------------------------- Table 2
def table2_rows(results: list[PipelineResult]) -> list[dict]:
    return [r.table2_row() for r in results]


def render_table2(results: list[PipelineResult]) -> str:
    rows = [
        [
            r["design"],
            str(r["total_faults"]),
            str(r["sfr_faults"]),
            f"{r['pct_sfr']:.1f}%",
        ]
        for r in table2_rows(results)
    ]
    return render_table(
        ["Design", "Total Faults", "SFR Faults", "%Faults SFR"],
        rows,
        title="Table 2 -- breakdown of controller faults",
    )


# ----------------------------------------------------------------- Table 3
def render_table3(rows: list[Table3Row], design: str) -> str:
    out_rows = []
    for r in rows:
        cells = [r.label[:40], f"{r.monte_carlo_uw:.2f}"]
        if r.monte_carlo_pct is not None:
            cells[1] += f" ({r.monte_carlo_pct:+.2f}%)"
        for i, p in enumerate(r.per_set_uw):
            cell = f"{p:.2f}"
            if r.per_set_pct is not None:
                cell += f" ({r.per_set_pct[i]:+.2f}%)"
            cells.append(cell)
        out_rows.append(cells)
    n_sets = len(rows[0].per_set_uw) if rows else 0
    headers = ["", "Monte Carlo uW"] + [f"Test set {i + 1} uW" for i in range(n_sets)]
    return render_table(
        headers, out_rows, title=f"Table 3 -- power under fixed test sets ({design})"
    )


# -------------------------------------------------------- campaign summary
def campaign_summary_row(report: RunReport) -> dict:
    """CSV-able dict of one campaign's resilience counters."""
    return {
        "faults": report.n_items,
        "computed": report.completed,
        "resumed": report.resumed,
        "replayed": report.replayed,
        "chunks": report.n_chunks,
        "retries": report.retries,
        "timeouts": report.timeouts,
        "worker_crashes": report.crashes,
        "pool_rebuilds": report.pool_rebuilds,
        "serial_fallbacks": report.serial_fallbacks,
        "audited": report.audited,
        "quarantined": report.quarantined,
        "integrity_violations": len(report.violations),
    }


def render_campaign_summary(report: RunReport, title: str = "campaign") -> str:
    """One-line resilience summary of a campaign fan-out.

    A clean uninterrupted run reads e.g. ``campaign: 214 faults computed``;
    resumed or bumpy campaigns append their resumed/retry/crash/timeout
    counts so partial runs are visible at a glance.
    """
    parts = [f"{report.completed} fault{'s' if report.completed != 1 else ''} computed"]
    if report.resumed:
        parts.append(f"{report.resumed} resumed from checkpoint")
    if report.replayed:
        parts.append(f"{report.replayed} replayed from per-fault store entries")
    if report.retries:
        parts.append(f"{report.retries} chunk retries")
    if report.timeouts:
        parts.append(f"{report.timeouts} timeouts")
    if report.crashes:
        parts.append(f"{report.crashes} worker crashes")
    if report.pool_rebuilds:
        parts.append(f"{report.pool_rebuilds} pool rebuilds")
    if report.serial_fallbacks:
        parts.append(f"{report.serial_fallbacks} serial fallbacks")
    if report.audited:
        parts.append(f"{report.audited} audited")
    if report.violations:
        parts.append(
            f"{len(report.violations)} integrity violation"
            f"{'s' if len(report.violations) != 1 else ''} "
            f"({report.quarantined} fault{'s' if report.quarantined != 1 else ''} "
            f"quarantined)"
        )
    return f"{title}: " + ", ".join(parts)


def render_integrity_violations(report: RunReport, title: str = "integrity") -> str:
    """Multi-line listing of a campaign's integrity violations.

    Empty string when the campaign was clean, so callers can
    unconditionally append the rendering.
    """
    if not report.violations:
        return ""
    lines = [f"{title}: {len(report.violations)} violation(s) quarantined"]
    lines.extend(f"  {v.describe()}" for v in report.violations)
    return "\n".join(lines)


def build_json_report(
    campaigns: dict[str, RunReport | None], store: CampaignStore | None = None
) -> dict:
    """JSON-ready machine report of every campaign stage's resilience
    and integrity counters (the ``--report-json`` artifact CI archives).

    With ``store`` set, a ``store`` section records per-stage cache
    provenance (hit/miss, wall seconds spent and saved), the overall hit
    ratio, and any corruption violations the store degraded to misses --
    CI's warm-cache job asserts on these.
    """
    out: dict = {"campaigns": {}, "violations": []}
    for stage, report in campaigns.items():
        if report is None:
            continue
        out["campaigns"][stage] = campaign_summary_row(report)
        out["violations"].extend(
            dict(v.to_json_dict(), stage=stage) for v in report.violations
        )
    out["total_violations"] = len(out["violations"])
    out["clean"] = not out["violations"]
    if store is not None:
        out["store"] = {
            "stages": [p.to_json_dict() for p in store.provenance],
            "hit_ratio": store.hit_ratio(),
            "saved_s": store.saved_s(),
            "violations": [v.to_json_dict() for v in store.violations],
        }
    return out


# ------------------------------------------------- deterministic result report
def build_result_report(
    result: PipelineResult,
    grading: GradingResult | None = None,
    system=None,
    params: dict | None = None,
    command: str = "classify",
) -> dict:
    """Deterministic result artifact of one ``classify``/``grade`` run.

    Unlike :func:`build_json_report` (which records *how the run went*:
    wall times, retries, resumed counts -- all legitimately varying
    between reruns), this captures only *what the run concluded*: fault
    categories, Table-2 counts and Monte-Carlo grades.  Two runs over
    the same inputs -- cold, resumed, or replayed from the store --
    serialize byte-identically via :func:`canonical_report_json`, which
    is what the warm-cache CI job and the bit-identity tests diff.
    """
    ctrl_netlist = system.controller.netlist if system is not None else None

    def describe(record) -> str | None:
        if ctrl_netlist is None:
            return None
        return record.site.describe(ctrl_netlist)

    out: dict = {
        "schema": RESULT_SCHEMA_VERSION,
        "command": command,
        "design": result.design,
        "params": params or {},
        "counts": result.counts(),
        "table2": result.table2_row(),
        "faults": [
            {
                "fault": fault_key(r.system_site),
                "site": describe(r),
                "category": r.category,
                "quarantined": r.quarantined,
            }
            for r in result.records
        ],
    }
    if grading is not None:
        out["grading"] = {
            "fault_free_uw": grading.fault_free_uw,
            "threshold": grading.threshold,
            "summary": grading.summary(),
            "figure7": figure7_series(grading),
            "graded": [
                {
                    "fault": fault_key(g.record.system_site),
                    "site": describe(g.record),
                    "group": g.group,
                    "power_uw": g.power_uw,
                    "pct": g.pct_change,
                    "detected": power_detected(g.pct_change, grading.threshold),
                }
                for g in grading.graded
            ],
        }
    return out


def canonical_report_json(report: dict) -> str:
    """Canonical (sorted-key, no-whitespace, NaN-free) JSON of a report.

    The same serialization keys the store's content addressing, so a
    replayed campaign producing an identical report dedups to the very
    blob the cold run published.
    """
    return json.dumps(report, sort_keys=True, separators=(",", ":"), allow_nan=False)


def render_store_summary(store: CampaignStore) -> str:
    """One-line cache summary of a store-backed run.

    Reads e.g. ``store: 3/3 stage hits, 41.2s saved`` on a fully warm
    run, with a trailing corruption count when blobs were quarantined.
    """
    hits = sum(1 for p in store.provenance if p.hit)
    parts = [f"{hits}/{len(store.provenance)} stage hits"]
    if store.saved_s() > 0:
        parts.append(f"{store.saved_s():.1f}s saved")
    published = sum(1 for p in store.provenance if p.published)
    if published:
        parts.append(f"{published} stage{'s' if published != 1 else ''} published")
    if store.violations:
        parts.append(f"{len(store.violations)} corrupt blob(s) recomputed")
    return "store: " + ", ".join(parts)


# ----------------------------------------------------------------- Figure 7
def figure7_series(grading: GradingResult) -> list[dict]:
    """Figure-7 data: one dict per SFR fault in plot order."""
    out = []
    for i, g in enumerate(grading.graded, start=1):
        out.append(
            {
                "index": i,
                "group": g.group,
                "power_uw": g.power_uw,
                "pct": g.pct_change,
                "detected": power_detected(g.pct_change, grading.threshold),
            }
        )
    return out


def render_figure7(grading: GradingResult, width: int = 68) -> str:
    """ASCII rendering of one Figure-7 panel."""
    series = figure7_series(grading)
    if not series:
        return f"Figure 7 ({grading.design}): no SFR faults"
    base = grading.fault_free_uw
    band = grading.threshold
    lo = min(min(s["power_uw"] for s in series), base * (1 - band))
    hi = max(max(s["power_uw"] for s in series), base * (1 + band))
    span = hi - lo or 1.0

    def col(uw: float) -> int:
        return int((uw - lo) / span * (width - 1))

    lines = [
        f"Figure 7 ({grading.design}) -- power per SFR fault; "
        f"band = {grading.fault_free_uw:.1f} uW +/- {100 * band:.0f}%",
        f"  '|' fault-free, '[' ']' band edges, '*' select-only fault, '#' load-line fault",
    ]
    markers = {col(base): "|", col(base * (1 - band)): "[", col(base * (1 + band)): "]"}
    for s in series:
        row = [" "] * width
        for pos, ch in markers.items():
            row[pos] = ch
        row[col(s["power_uw"])] = "*" if s["group"] == "select" else "#"
        flag = " DETECTED" if s["detected"] else ""
        lines.append(
            f"f{s['index']:>3} {''.join(row)} {s['power_uw']:8.1f} uW ({s['pct']:+6.2f}%){flag}"
        )
    return "\n".join(lines)
