"""Result-integrity guard layer: audits, invariants and quarantine.

The paper's detection scheme trusts a +/- 5 % power band around the
fault-free value, so a silently wrong simulation -- a NaN that reaches a
mean, a bit-flipped power word, a diverged fault-parallel block -- is
worse than a crash: it misclassifies SFR faults as detected or missed.
This module makes campaign results self-verifying:

* **Differential auditing.**  A deterministic, hash-selected fraction of
  faults (:func:`select_audit`, keyed only by the fault key, so the
  choice is identical for any job count or resume point) is re-evaluated
  on an independent path: block-parallel fault-simulation verdicts are
  re-checked against the serial per-fault simulator, the compiled cycle
  simulator is spot-checked against the scalar event-driven engine, and
  batch-replay Monte-Carlo powers are recomputed through the
  generate-per-call path.  Any divergence becomes a structured
  :class:`IntegrityViolation` naming the fault, the site and the first
  divergent cycle.  Cone-restricted campaigns additionally re-simulate a
  capped handful of death-pruned faults through the serial reference
  (:data:`DEFAULT_DEATH_AUDIT_CHECKS`), continuously cross-checking the
  pruning proof's premises.

* **Theory-grounded invariants.**  Fault-free power must be finite and
  positive; no power can exceed the library's theoretical ceiling
  (every net toggling every cycle); toggle counts are bounded by
  ``cycles x patterns`` per net; every SFR verdict must also be CFI
  (an SFR fault *changes* control lines -- a no-effect fault is CFR by
  definition); and faults that only *add* register loads never decrease
  estimated power (the paper's Section-5 monotonicity result for gated
  clocks).

* **Quarantine semantics.**  By default a violation is recorded on the
  campaign's :class:`~repro.core.parallel.RunReport` and the offending
  fault is quarantined -- fault-simulation verdicts fall back to the
  trusted serial reference, graded powers are excluded from the result
  -- and the campaign continues.  In strict mode
  (:class:`IntegrityGuard` with ``strict=True``) the first violation
  aborts the campaign with
  :class:`~repro.core.errors.IntegrityError`.

* **Storage integrity.**  Results that persist beyond a run are guarded
  on the way back in: checkpoint journals carry per-record CRCs (see
  :mod:`repro.core.checkpoint`) and artifact-store blobs are content
  addressed, so a flipped bit on disk surfaces as a
  :data:`STORE_CORRUPT_CHECK` violation and the stage recomputes instead
  of serving the corrupted value (see :mod:`repro.store`).

The guard layer never changes the results of a clean run: audits only
*compare*, and every path they compare against is bit-identical by
construction (see docs/performance.md).  ``tests/test_integrity.py``
enforces this.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .errors import IntegrityError

#: default fraction of faults re-simulated on an independent path
DEFAULT_AUDIT_RATE = 0.02

#: default number of audited faults additionally cross-checked against the
#: scalar event-driven engine (it is 10-100x slower per pattern, so the
#: spot-check is capped rather than rate-scaled)
DEFAULT_EVENTSIM_CHECKS = 2

#: default number of death-pruned faults re-simulated serially per campaign.
#: The cone engine's fault-effect death pruning ends a fault early once its
#: divergence frontier is empty and its site can never be re-excited; the
#: claim is proved in docs/performance.md, and this spot-check keeps the
#: proof honest at runtime ("cone-death-differential" violations).  The
#: checked faults are hash-ranked (salt ``"death-audit"``) and disjoint
#: from the ordinary differential-audit selection, so a clean campaign's
#: ``audited`` count is unchanged.
DEFAULT_DEATH_AUDIT_CHECKS = 2

#: stable check id flagged when a persisted artifact-store blob fails its
#: content hash (the stage falls back to recomputation -- see
#: :mod:`repro.store.cache`)
STORE_CORRUPT_CHECK = "store-blob-corrupt"


@dataclass
class IntegrityViolation:
    """One failed integrity check, structured for reports and JSON.

    ``check`` is a stable machine-readable id; ``fault`` is the campaign
    fault key (``__fault_free__`` for the baseline); ``site`` carries the
    human-readable fault description when a netlist was available;
    ``cycle`` is the first divergent cycle for differential checks (-1
    when the divergence has no cycle, e.g. a bad power value).
    """

    check: str
    fault: str
    detail: str
    site: str = ""
    cycle: int = -1
    expected: str = ""
    actual: str = ""

    def to_json_dict(self) -> dict:
        return {
            "check": self.check,
            "fault": self.fault,
            "detail": self.detail,
            "site": self.site,
            "cycle": self.cycle,
            "expected": self.expected,
            "actual": self.actual,
        }

    def describe(self) -> str:
        loc = f" at {self.site}" if self.site else ""
        cyc = f" (first divergent cycle {self.cycle})" if self.cycle >= 0 else ""
        return f"[{self.check}] fault {self.fault}{loc}: {self.detail}{cyc}"


class IntegrityGuard:
    """Collects violations; quarantines by default, aborts in strict mode."""

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: list[IntegrityViolation] = []

    def flag(self, violation: IntegrityViolation) -> None:
        """Record one violation; raise immediately when strict."""
        self.violations.append(violation)
        if self.strict:
            raise IntegrityError(
                f"integrity violation (strict mode): {violation.describe()}"
            )

    @property
    def quarantined(self) -> int:
        """Number of distinct faults with at least one violation."""
        return len({v.fault for v in self.violations})

    def attach(self, report: Any, audited: int = 0) -> None:
        """Publish this guard's findings onto a campaign ``RunReport``."""
        if report is None:
            return
        report.violations.extend(self.violations)
        report.quarantined = len({v.fault for v in report.violations})
        report.audited += audited


# ------------------------------------------------------- audit selection
def audit_fraction(key: str, salt: str = "audit") -> float:
    """Deterministic uniform-[0,1) hash of a fault key.

    Depends only on the key and salt -- never on RNG state, fault order,
    job count or resume point -- so the audit set is stable across every
    execution strategy and a clean run stays bit-identical.
    """
    digest = hashlib.sha256(f"{salt}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def select_audit(keys: Iterable[str], rate: float, salt: str = "audit") -> list[str]:
    """The deterministic audit subset of ``keys`` at the given rate."""
    if rate <= 0:
        return []
    return [k for k in keys if audit_fraction(k, salt) < rate]


# ------------------------------------------------------ invariant checks
def check_finite_power(
    guard: IntegrityGuard, key: str, power_uw: float, site: str = ""
) -> bool:
    """Power must be a finite, positive number.  False if quarantined."""
    if math.isfinite(power_uw) and power_uw > 0:
        return True
    guard.flag(
        IntegrityViolation(
            check="non-finite-power",
            fault=key,
            site=site,
            detail=f"power is {power_uw!r}; expected a finite positive value",
            actual=repr(power_uw),
        )
    )
    return False


def check_power_ceiling(
    guard: IntegrityGuard, key: str, power_uw: float, ceiling_uw: float, site: str = ""
) -> bool:
    """Power cannot exceed the all-nets-toggling theoretical maximum."""
    if power_uw <= ceiling_uw:
        return True
    guard.flag(
        IntegrityViolation(
            check="power-ceiling",
            fault=key,
            site=site,
            detail=(
                f"power {power_uw:.6g} uW exceeds the theoretical ceiling "
                f"{ceiling_uw:.6g} uW (every net toggling every cycle)"
            ),
            expected=f"<= {ceiling_uw:.6g}",
            actual=f"{power_uw:.6g}",
        )
    )
    return False


def adds_register_loads(classification: Any) -> bool:
    """True when a fault's control-line effects only *add* register loads.

    The paper's Section-5 monotonicity argument covers faults that make
    registers load extra values under gated clocks; a fault that also
    *skips* loads (or whose effects are unknown) may legitimately lower
    power, so it is excluded from the check.
    """
    from .classify import EffectLabel

    extra = {
        EffectLabel.EXTRA_LOAD_IDLE,
        EffectLabel.EXTRA_LOAD_OVERWRITTEN,
        EffectLabel.EXTRA_LOAD_REWRITE,
        EffectLabel.EXTRA_LOAD_DISRUPTIVE,
    }
    labels = {e.label for e in classification.effects}
    return bool(labels & extra) and EffectLabel.LOAD_SKIPPED not in labels


#: tolerance (percentage points) for the load-monotonicity invariant --
#: an extra-load fault whose loads are all no-ops can sit a hair below
#: the baseline through convergence noise without being wrong.
LOAD_MONOTONICITY_TOL_PCT = 0.5


def check_load_monotonicity(
    guard: IntegrityGuard, key: str, pct_change: float, site: str = ""
) -> bool:
    """A register-load-adding fault must not decrease power."""
    if pct_change >= -LOAD_MONOTONICITY_TOL_PCT:
        return True
    guard.flag(
        IntegrityViolation(
            check="load-monotonicity",
            fault=key,
            site=site,
            detail=(
                f"fault adds register loads yet power changed by "
                f"{pct_change:+.3f}% (Section-5 monotonicity: extra loads "
                f"under gated clocks can only increase power)"
            ),
            expected=f">= {-LOAD_MONOTONICITY_TOL_PCT}%",
            actual=f"{pct_change:+.3f}%",
        )
    )
    return False


def check_sfr_is_cfi(guard: IntegrityGuard, key: str, record: Any) -> bool:
    """Every SFR verdict must also be CFI (the fault changes control lines).

    A controller fault with *no* control-line effect is CFR by
    definition; an SFR classification without effects means the
    classifier and the effect extractor disagree -- a broken oracle, not
    a valid verdict.
    """
    classification = record.classification
    if classification is not None and classification.effects:
        return True
    guard.flag(
        IntegrityViolation(
            check="sfr-without-effects",
            fault=key,
            detail=(
                "fault is classified SFR but has no control-line effects; "
                "SFR implies CFI (a no-effect fault is CFR)"
            ),
        )
    )
    return False


def format_value(value: float) -> str:
    """Repr of a float preserving full precision for violation records."""
    return repr(float(value))


def diff_summary(expected: Sequence[Any], actual: Sequence[Any]) -> str:
    """First index where two sequences differ, rendered for a report."""
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return f"index {i}: expected {e!r}, got {a!r}"
    if len(expected) != len(actual):
        return f"length mismatch: expected {len(expected)}, got {len(actual)}"
    return "identical"


@dataclass
class AuditPlan:
    """Resolved audit knobs for one campaign stage."""

    rate: float = DEFAULT_AUDIT_RATE
    strict: bool = False
    eventsim_checks: int = DEFAULT_EVENTSIM_CHECKS

    def selected(self, keys: Iterable[str], salt: str = "audit") -> list[str]:
        return select_audit(keys, self.rate, salt)
