"""Section-2 quantified: separate vs. integrated vs. power-assisted test.

The paper's background section lays out the strategy space for testing a
controller-datapath pair:

* **split the pair** and test each half separately (high coverage, but
  needs DFT insertion and is impossible for hard cores);
* **test the integrated pair** through its real pins (mandatory for hard
  cores; SFR faults are unreachable by construction, so coverage of the
  controller degrades -- the Dey et al. observation);
* add **test points** multiplexing control lines onto the output pins
  (restores observability at area cost -- again a design change);
* keep the core untouched and add the paper's **power test** on top of
  the integrated test.

``compare_strategies`` measures all of them on one system with a shared
controller fault universe, producing the headline comparison table of
``bench_dft.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dft.scan import scan_fault_coverage
from ..hls.gatelevel import elaborate_datapath
from ..hls.system import System
from ..logic.faults import collapse_faults, enumerate_faults
from .grading import GradingResult
from .pipeline import PipelineResult


@dataclass
class StrategyRow:
    """Coverage of one test strategy over one fault universe."""

    strategy: str
    fault_universe: str
    detected: int
    total: int
    requires_dft: bool
    note: str = ""

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 1.0


def integrated_coverage(result: PipelineResult) -> StrategyRow:
    """Integrated logic test: detected + practically-detected faults."""
    counts = result.counts()
    detected = counts.get("SFI-detected", 0) + counts.get("SFI-practical", 0)
    return StrategyRow(
        strategy="integrated logic test",
        fault_universe="controller",
        detected=detected,
        total=result.total_faults,
        requires_dft=False,
        note="SFR faults unreachable by construction",
    )


def integrated_plus_power_coverage(
    result: PipelineResult, grading: GradingResult
) -> StrategyRow:
    """Integrated test plus the paper's power threshold test."""
    base = integrated_coverage(result)
    power_hits = sum(1 for flag in grading.detected_flags() if flag)
    return StrategyRow(
        strategy=f"integrated + power test (+/-{100 * grading.threshold:.0f}%)",
        fault_universe="controller",
        detected=base.detected + power_hits,
        total=base.total,
        requires_dft=False,
        note=f"power test adds {power_hits} SFR detections",
    )


def scan_controller_coverage(
    system: System, universe, n_patterns: int = 512, use_atpg: bool = True
) -> StrategyRow:
    """Separate test of the controller through scan (pair split).

    Random patterns first; with ``use_atpg`` the faults they miss go to
    PODEM, which either finds a deterministic test or *proves* the fault
    combinationally redundant -- the strong form of "separately the halves
    test completely"."""
    result = scan_fault_coverage(
        system.controller.netlist, universe, n_patterns=n_patterns
    )
    detected, total = result.detected, result.total
    note = "requires splitting the pair / scan insertion"
    if use_atpg and result.undetected:
        from ..atpg.podem import run_atpg
        from ..dft.scan import map_fault_to_view, scan_view

        ctrl = system.controller.netlist
        view = scan_view(ctrl, "ctrl")
        mapped = [map_fault_to_view(ctrl, view, s) for s in result.undetected]
        summary = run_atpg(view.netlist, [m for m in mapped if m is not None])
        detected += summary.tested
        note += f"; ATPG: +{summary.tested} tests, {summary.redundant} proven redundant"
    return StrategyRow(
        strategy="separate controller test (scan)",
        fault_universe="controller",
        detected=detected,
        total=total,
        requires_dft=True,
        note=note,
    )


def observation_mux_coverage(result: PipelineResult) -> StrategyRow:
    """Test points on the control lines: every CFI fault becomes visible.

    With the controller outputs directly observable (over however many
    test sessions the output width demands), a fault escapes only if it
    never changes a control line in normal mode -- i.e. only CFR faults
    survive."""
    cfr = result.counts().get("CFR", 0)
    return StrategyRow(
        strategy="observation muxes (test points)",
        fault_universe="controller",
        detected=result.total_faults - cfr,
        total=result.total_faults,
        requires_dft=True,
        note="mods the core; only CFR faults escape",
    )


def scan_datapath_coverage(system: System, n_patterns: int = 512) -> StrategyRow:
    """Separate test of the datapath with registers opened by scan."""
    dp = elaborate_datapath(system.rtl)
    sites = enumerate_faults(dp.netlist)
    universe, _ = collapse_faults(dp.netlist, sites)
    result = scan_fault_coverage(
        dp.netlist, universe, n_patterns=n_patterns, tag_prefix="dp"
    )
    detected, total = result.detected, result.total
    return StrategyRow(
        strategy="separate datapath test (scan)",
        fault_universe="datapath",
        detected=detected,
        total=total,
        requires_dft=True,
        note="control lines driven directly",
    )


def compare_strategies(
    system: System,
    result: PipelineResult,
    grading: GradingResult,
    universe=None,
    n_patterns: int = 512,
) -> list[StrategyRow]:
    """The full Section-2 strategy comparison for one design."""
    from .pipeline import controller_fault_universe

    universe = universe or controller_fault_universe(system)
    return [
        scan_controller_coverage(system, universe, n_patterns),
        scan_datapath_coverage(system, n_patterns),
        integrated_coverage(result),
        observation_mux_coverage(result),
        integrated_plus_power_coverage(result, grading),
    ]
