"""Crash-safe checkpointing of long fault-analysis campaigns.

Both fan-out stages of the Section-5 flow -- per-fault simulation and
per-SFR-fault Monte-Carlo power -- are embarrassingly parallel over
independent faults, so a campaign interrupted at any point can resume by
skipping faults whose results are already known.  This module provides
the journal behind that:

* :func:`campaign_fingerprint` hashes everything that determines a
  campaign's results (design name, collapsed fault ids, config knobs and
  seeds) into a short stable id;
* :class:`CampaignJournal` appends one JSON line per completed fault to
  ``<dir>/<kind>-<fingerprint>.jsonl`` (flushed and fsynced per record,
  so a SIGKILL loses at most the record being written); every record
  carries a CRC-32 of its payload, so corruption *inside* the journal
  (a flipped bit from a bad disk or a tampering hand) is detected even
  when the line still parses as JSON;
* on resume the journal is reloaded, its header fingerprint checked
  against the requesting campaign, and a half-written final line (the
  kill signature) silently dropped.  Any other corruption -- a garbage
  header, a mangled interior line, a CRC mismatch, a foreign
  fingerprint -- raises :class:`~repro.core.errors.CheckpointMismatch`
  rather than silently resuming from bad state.

Because every per-fault result is deterministic and independent, a
resumed campaign is bit-identical to an uninterrupted one: the skipped
faults replay their journaled verdicts/powers, the rest are recomputed
from the same seeds.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterable, Mapping

from .errors import CheckpointMismatch

#: bumped whenever the journal line format changes incompatibly
#: (v2: per-record CRC-32, non-finite floats rejected at write time)
FORMAT_VERSION = 2

_MAGIC = "repro-campaign-checkpoint"


def _record_crc(key: str, value: Any) -> str:
    """CRC-32 over the canonical JSON payload of one journal record."""
    payload = json.dumps([key, value], sort_keys=True, allow_nan=False)
    return f"{zlib.crc32(payload.encode('utf-8')):08x}"


def fault_key(site: Any) -> str:
    """Stable string id of a :class:`~repro.logic.faults.FaultSite`."""
    gate = "pi" if site.gate_index is None else str(site.gate_index)
    return f"{gate}:{site.pin}:{site.net}:{site.value}"


def campaign_fingerprint(
    kind: str, design: str, fault_keys: Iterable[str], params: Mapping[str, Any]
) -> str:
    """Deterministic id of one campaign.

    Two campaigns share a fingerprint exactly when they would produce the
    same per-fault results: same stage (``kind``), same design, same
    collapsed fault universe and same result-relevant knobs/seeds.
    """
    payload = json.dumps(
        {
            "magic": _MAGIC,
            "version": FORMAT_VERSION,
            "kind": kind,
            "design": design,
            "faults": list(fault_keys),
            "params": {k: params[k] for k in sorted(params)},
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


class CampaignJournal:
    """Append-only per-fault result journal for one campaign.

    ``journal.done`` maps fault keys to their journaled values; callers
    skip those faults and :meth:`record` each newly computed one.  All
    writes happen in the coordinating process (results arrive via the
    executor's completion callback), so the file never sees concurrent
    writers.
    """

    def __init__(self, path: str | os.PathLike, fingerprint: str, kind: str, resume: bool = False):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.kind = kind
        self.done: dict[str, Any] = {}
        if resume and self.path.exists():
            self.done = self._load()
            self.n_resumed = len(self.done)
        else:
            self.n_resumed = 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "magic": _MAGIC,
                "version": FORMAT_VERSION,
                "kind": kind,
                "fingerprint": fingerprint,
            }
            with open(self.path, "w", encoding="utf-8") as f:
                f.write(json.dumps(header) + "\n")

    # ------------------------------------------------------------- loading
    def _load(self) -> dict[str, Any]:
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.splitlines()
        if not lines:
            raise CheckpointMismatch(f"checkpoint {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointMismatch(
                f"checkpoint {self.path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("magic") != _MAGIC:
            raise CheckpointMismatch(f"{self.path} is not a campaign checkpoint")
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointMismatch(
                f"checkpoint {self.path} uses format version "
                f"{header.get('version')!r}; this build writes {FORMAT_VERSION}"
            )
        if header.get("kind") != self.kind or header.get("fingerprint") != self.fingerprint:
            raise CheckpointMismatch(
                f"checkpoint {self.path} belongs to campaign "
                f"{header.get('kind')}/{header.get('fingerprint')}, "
                f"not {self.kind}/{self.fingerprint} -- refusing to resume"
            )
        # A SIGKILL mid-write leaves exactly one torn line, and only at the
        # tail; tolerate that, reject corruption anywhere else.
        truncated_tail = not raw.endswith("\n")
        done: dict[str, Any] = {}
        for lineno, line in enumerate(lines[1:], start=2):
            is_last = lineno == len(lines)
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key, value, crc = entry["key"], entry["value"], entry["crc"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if is_last and truncated_tail:
                    break  # torn final record from an interrupted write
                raise CheckpointMismatch(
                    f"checkpoint {self.path} line {lineno} is corrupt: {exc}"
                ) from exc
            if crc != _record_crc(key, value):
                # A flipped bit can still parse as JSON (a digit in a power
                # word, a character inside a key); the CRC catches it even
                # mid-journal.  A torn tail record is still forgiven.
                if is_last and truncated_tail:
                    break
                raise CheckpointMismatch(
                    f"checkpoint {self.path} line {lineno} fails its CRC "
                    f"(stored {crc!r}, computed {_record_crc(key, value)!r}) "
                    f"-- refusing to resume from corrupted state"
                )
            done[key] = value
        return done

    # ----------------------------------------------------------- recording
    def record(self, key: str, value: Any) -> None:
        """Journal one fault's result durably (survives SIGKILL).

        The record is written with ``allow_nan=False``: a NaN or infinity
        in a result is a corrupted computation, and journaling it would
        let the corruption survive into every future resume.
        """
        if key in self.done:
            return
        line = json.dumps(
            {"key": key, "value": value, "crc": _record_crc(key, value)},
            allow_nan=False,
        )
        self.done[key] = value
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    # ----------------------------------------------------------- retirement
    def retire(self) -> None:
        """Set the journal aside once the campaign's results are durable
        elsewhere (published into the artifact store -- see
        :mod:`repro.store`).

        The journal exists for crash recovery of an *in-flight* campaign;
        once the completed results live in the content-addressed store, a
        future run resumes from the store instead, and leaving the journal
        behind would only accumulate stale files in the checkpoint
        directory.  The file is renamed (suffix ``.published``), not
        deleted, so post-mortems can still inspect it.
        """
        if self.path.exists():
            self.path.replace(self.path.with_name(self.path.name + ".published"))


def open_journal(
    checkpoint_dir: str | os.PathLike | None,
    kind: str,
    fingerprint: str,
    resume: bool = False,
) -> CampaignJournal | None:
    """Open (or create) the journal for one campaign; None if disabled."""
    if checkpoint_dir is None:
        return None
    path = Path(checkpoint_dir) / f"{kind}-{fingerprint}.jsonl"
    return CampaignJournal(path, fingerprint, kind, resume=resume)
