"""Fault-tolerant process-parallel execution of per-fault campaign loops.

The Section-5 flow spends nearly all of its time in per-fault loops --
``fault_simulate`` runs one simulator per collapsed fault and
``grade_sfr_faults`` runs a Monte-Carlo campaign per SFR fault -- with no
data dependencies between faults.  :class:`ParallelExecutor` fans such a
loop across worker processes with ``concurrent.futures``:

* a *context* (netlist, stimulus, golden trace, ...) is shipped to each
  worker exactly once via the pool initializer, not once per task;
* work items are chunked so per-task pickling overhead amortizes across
  many faults;
* ``n_jobs=1`` short-circuits to a plain in-process loop producing
  bit-identical results (the parallel path preserves item order, so
  results are bit-identical there too -- only wall-time changes).

Long campaigns also have to *survive*: a worker OOM-killed mid-chunk, a
simulation that hangs, a transient failure.  Chunks are therefore
submitted as individual futures and each is awaited with an optional
per-chunk ``timeout``; a failed or timed-out chunk is retried with
exponential backoff up to ``max_retries`` times.  A hung or dead worker
compromises the whole pool, so the executor salvages every already
finished sibling future, hard-kills the pool, rebuilds it, and re-runs
only the chunks whose results were actually lost.  When a chunk's retry
budget runs out, a timeout raises
:class:`~repro.core.errors.ChunkTimeout`; a crash or worker exception
degrades gracefully to one in-process serial replay of the chunk (which
also surfaces a deterministic error with its real traceback) unless
``serial_fallback=False``, in which case
:class:`~repro.core.errors.WorkerCrash` (or the original exception) is
raised.  Per-chunk outcomes and aggregate retry/crash/timeout counters
land in :class:`RunReport` (``executor.last_report``).

Workers must be module-level functions of ``(context, item)`` so that they
pickle by reference.  Inside a worker process the per-netlist compile cache
(:func:`repro.logic.simulator.compile_netlist`) makes every simulator after
the first a cheap state allocation.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .errors import ChunkTimeout, WorkerCrash

#: worker-process global holding (worker function, shared context)
_WORKER_STATE: tuple[Callable, Any] | None = None


def _init_worker(worker: Callable, context: Any) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (worker, context)


def _run_chunk(chunk: Sequence[Any]) -> list[Any]:
    assert _WORKER_STATE is not None, "worker pool not initialised"
    worker, context = _WORKER_STATE
    return [worker(context, item) for item in chunk]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` knob: None/0 -> 1, negative -> all cores,
    positive values capped at the machine's core count (oversubscribing
    worker processes only adds scheduling overhead)."""
    cores = max(1, os.cpu_count() or 1)
    if not n_jobs:
        return 1
    if n_jobs < 0:
        return cores
    return min(n_jobs, cores)


def _chunked(items: Sequence[Any], size: int) -> Iterable[Sequence[Any]]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


@dataclass
class ChunkOutcome:
    """Fate of one submitted chunk across all its attempts."""

    index: int
    n_items: int
    attempts: int = 0
    #: 'pending' -> 'ok' | 'serial' (in-process fallback) | 'timed-out' | 'failed'
    status: str = "pending"
    #: failure kind per unsuccessful attempt: 'timeout' | 'crash' | 'error'
    failures: list[str] = field(default_factory=list)


@dataclass
class RunReport:
    """Resilience summary of one :meth:`ParallelExecutor.run` campaign."""

    n_items: int = 0
    n_chunks: int = 0
    completed: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    #: items skipped because a checkpoint already held their results
    #: (filled by the campaign layer, not by the executor)
    resumed: int = 0
    #: items replayed from per-fault store entries by the incremental
    #: planner (filled by the pipeline layer; see :mod:`repro.incremental`)
    replayed: int = 0
    chunks: list[ChunkOutcome] = field(default_factory=list)
    #: faults re-evaluated on an independent path by the integrity layer
    #: (filled by the campaign layer; see :mod:`repro.core.integrity`)
    audited: int = 0
    #: distinct faults quarantined by integrity violations
    quarantined: int = 0
    #: structured integrity violations recorded by the guard layer
    violations: list = field(default_factory=list)

    def has_incidents(self) -> bool:
        """True if anything beyond a clean first-attempt run happened."""
        return bool(
            self.retries
            or self.timeouts
            or self.crashes
            or self.pool_rebuilds
            or self.serial_fallbacks
            or self.violations
        )


class ParallelExecutor:
    """Run ``worker(context, item)`` over items, optionally across processes.

    Args:
        n_jobs: worker processes; 1 (default) runs serially in-process,
            negative means one per CPU core.
        chunk_size: items per task; defaults to an even split across
            workers capped at 8 so long campaigns still load-balance.
        timeout: seconds to wait for each chunk's result once the executor
            starts awaiting it; ``None`` waits forever.  A timed-out chunk
            hard-kills the pool (the hung worker would otherwise run on)
            and is retried against a fresh pool.
        max_retries: extra attempts granted to a failed/timed-out chunk
            before it is resolved terminally.
        backoff: base of the exponential retry delay -- attempt *k*
            sleeps ``backoff * 2**(k-1)`` seconds before resubmission.
        serial_fallback: when a chunk exhausts its retries through crashes
            or worker exceptions, replay it in-process (graceful
            degradation; deterministic errors then surface with their real
            traceback).  ``False`` raises
            :class:`~repro.core.errors.WorkerCrash` / the original
            exception instead.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        chunk_size: int | None = None,
        timeout: float | None = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        serial_fallback: bool = True,
    ):
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.max_retries = max(0, max_retries)
        self.backoff = backoff
        self.serial_fallback = serial_fallback
        #: report of the most recent :meth:`run`
        self.last_report: RunReport | None = None

    def _chunk_size_for(self, n_items: int) -> int:
        if self.chunk_size:
            return self.chunk_size
        return max(1, min(8, n_items // (4 * self.n_jobs) or 1))

    def run(
        self,
        worker: Callable[[Any, Any], Any],
        items: Sequence[Any],
        context: Any = None,
        on_chunk: Callable[[Sequence[Any], Sequence[Any]], None] | None = None,
    ) -> list[Any]:
        """Apply ``worker`` to every item, preserving order.

        ``worker`` must be a module-level (picklable) function when
        ``n_jobs > 1``.  ``on_chunk(items_slice, results_slice)`` fires in
        the coordinating process as each chunk completes (in completion
        order) -- campaign checkpointing hangs off this hook.
        """
        items = list(items)
        report = RunReport(n_items=len(items))
        self.last_report = report
        if self.n_jobs == 1 or len(items) <= 1:
            # Serial (or trivially small) campaigns never construct a pool.
            results: list[Any] = []
            for item in items:
                out = worker(context, item)
                results.append(out)
                if on_chunk is not None:
                    on_chunk([item], [out])
            report.n_chunks = len(items)
            report.completed = len(items)
            report.chunks = [
                ChunkOutcome(index=i, n_items=1, attempts=1, status="ok")
                for i in range(len(items))
            ]
            return results
        chunks = list(_chunked(items, self._chunk_size_for(len(items))))
        per_chunk = self._run_resilient(worker, context, chunks, report, on_chunk)
        return [result for chunk_results in per_chunk for result in chunk_results]

    # ------------------------------------------------------- parallel core
    def _new_pool(self, worker: Callable, context: Any, n_tasks: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max(1, min(self.n_jobs, n_tasks)),
            initializer=_init_worker,
            initargs=(worker, context),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a compromised pool.

        ``shutdown`` alone leaves a hung worker running (and would block
        interpreter exit on join), so live worker processes are terminated
        outright.  The process table is snapshotted first: ``shutdown``
        drops the pool's ``_processes`` reference even with ``wait=False``.
        """
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes.values():
            if proc.is_alive():
                proc.terminate()

    def _run_resilient(
        self,
        worker: Callable,
        context: Any,
        chunks: list[Sequence[Any]],
        report: RunReport,
        on_chunk: Callable[[Sequence[Any], Sequence[Any]], None] | None,
    ) -> list[list[Any]]:
        outcomes = [ChunkOutcome(index=i, n_items=len(c)) for i, c in enumerate(chunks)]
        report.n_chunks = len(chunks)
        report.chunks = outcomes
        results: list[list[Any] | None] = [None] * len(chunks)

        def complete(i: int, out: list[Any], status: str = "ok") -> None:
            results[i] = out
            outcomes[i].status = status
            report.completed += outcomes[i].n_items
            if on_chunk is not None:
                on_chunk(chunks[i], out)

        pending = list(range(len(chunks)))
        pool: ProcessPoolExecutor | None = None
        try:
            while pending:
                retry_wave = [i for i in pending if outcomes[i].attempts]
                if retry_wave:
                    report.retries += len(retry_wave)
                    wave = min(outcomes[i].attempts for i in retry_wave)
                    time.sleep(self.backoff * (2 ** (wave - 1)))
                if pool is None:
                    pool = self._new_pool(worker, context, len(pending))
                for i in pending:
                    outcomes[i].attempts += 1
                futures = [(i, pool.submit(_run_chunk, chunks[i])) for i in pending]
                failed: list[tuple[int, str, BaseException | None]] = []
                lost: list[int] = []
                for pos, (i, fut) in enumerate(futures):
                    try:
                        out = fut.result(timeout=self.timeout)
                    except FuturesTimeout:
                        report.timeouts += 1
                        failed.append((i, "timeout", None))
                    except BrokenExecutor as exc:
                        report.crashes += 1
                        failed.append((i, "crash", exc))
                    except Exception as exc:
                        # the worker itself raised; the pool is still healthy
                        failed.append((i, "error", exc))
                        continue
                    else:
                        complete(i, out)
                        continue
                    # A hung or dead worker compromises the whole pool:
                    # salvage finished siblings, requeue the truly lost,
                    # and rebuild from scratch.
                    for j, sibling in futures[pos + 1 :]:
                        if sibling.done() and not sibling.cancelled():
                            exc = sibling.exception()
                            if exc is None:
                                complete(j, sibling.result())
                            elif isinstance(exc, BrokenExecutor):
                                lost.append(j)
                            else:
                                failed.append((j, "error", exc))
                        else:
                            lost.append(j)
                    self._kill_pool(pool)
                    pool = None
                    report.pool_rebuilds += 1
                    break
                # Collateral losses never ran to failure -- their retry is
                # free (the guilty chunk's own budget bounds the loop).
                for j in lost:
                    outcomes[j].attempts -= 1
                pending = list(lost)
                for i, kind, exc in failed:
                    outcomes[i].failures.append(kind)
                    if outcomes[i].attempts <= self.max_retries:
                        pending.append(i)
                        continue
                    pending.sort()
                    if kind == "timeout":
                        outcomes[i].status = "timed-out"
                        raise ChunkTimeout(
                            f"chunk {i} ({outcomes[i].n_items} items) exceeded "
                            f"the {self.timeout}s timeout on all "
                            f"{outcomes[i].attempts} attempts"
                        )
                    if not self.serial_fallback:
                        outcomes[i].status = "failed"
                        if kind == "crash":
                            raise WorkerCrash(
                                f"chunk {i} ({outcomes[i].n_items} items) lost "
                                f"its worker on all {outcomes[i].attempts} "
                                f"attempts: {exc}"
                            ) from exc
                        assert exc is not None
                        raise exc
                    # Graceful degradation: one in-process replay.  A
                    # deterministic worker error re-raises here with its
                    # true traceback; a crashy-environment chunk completes.
                    report.serial_fallbacks += 1
                    complete(i, [worker(context, item) for item in chunks[i]], "serial")
                pending.sort()
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
