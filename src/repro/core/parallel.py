"""Process-parallel execution of embarrassingly-parallel fault loops.

The Section-5 flow spends nearly all of its time in per-fault loops --
``fault_simulate`` runs one simulator per collapsed fault and
``grade_sfr_faults`` runs a Monte-Carlo campaign per SFR fault -- with no
data dependencies between faults.  :class:`ParallelExecutor` fans such a
loop across worker processes with ``concurrent.futures``:

* a *context* (netlist, stimulus, golden trace, ...) is shipped to each
  worker exactly once via the pool initializer, not once per task;
* work items are chunked so per-task pickling overhead amortizes across
  many faults;
* ``n_jobs=1`` short-circuits to a plain in-process loop producing
  bit-identical results (the parallel path preserves item order, so
  results are bit-identical there too -- only wall-time changes).

Workers must be module-level functions of ``(context, item)`` so that they
pickle by reference.  Inside a worker process the per-netlist compile cache
(:func:`repro.logic.simulator.compile_netlist`) makes every simulator after
the first a cheap state allocation.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

#: worker-process global holding (worker function, shared context)
_WORKER_STATE: tuple[Callable, Any] | None = None


def _init_worker(worker: Callable, context: Any) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (worker, context)


def _run_chunk(chunk: Sequence[Any]) -> list[Any]:
    assert _WORKER_STATE is not None, "worker pool not initialised"
    worker, context = _WORKER_STATE
    return [worker(context, item) for item in chunk]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` knob: None/0 -> 1, negative -> all cores."""
    if not n_jobs:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def _chunked(items: Sequence[Any], size: int) -> Iterable[Sequence[Any]]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class ParallelExecutor:
    """Run ``worker(context, item)`` over items, optionally across processes.

    Args:
        n_jobs: worker processes; 1 (default) runs serially in-process,
            negative means one per CPU core.
        chunk_size: items per task; defaults to an even split across
            workers capped at 8 so long campaigns still load-balance.
    """

    def __init__(self, n_jobs: int = 1, chunk_size: int | None = None):
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.chunk_size = chunk_size

    def _chunk_size_for(self, n_items: int) -> int:
        if self.chunk_size:
            return self.chunk_size
        return max(1, min(8, n_items // (4 * self.n_jobs) or 1))

    def run(self, worker: Callable[[Any, Any], Any], items: Sequence[Any], context: Any = None) -> list[Any]:
        """Apply ``worker`` to every item, preserving order.

        ``worker`` must be a module-level (picklable) function when
        ``n_jobs > 1``.
        """
        items = list(items)
        if self.n_jobs == 1 or len(items) <= 1:
            return [worker(context, item) for item in items]
        results: list[Any] = []
        with ProcessPoolExecutor(
            max_workers=min(self.n_jobs, len(items)),
            initializer=_init_worker,
            initargs=(worker, context),
        ) as pool:
            for chunk_result in pool.map(
                _run_chunk, _chunked(items, self._chunk_size_for(len(items)))
            ):
                results.extend(chunk_result)
        return results
