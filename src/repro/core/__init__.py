"""core subpackage."""
