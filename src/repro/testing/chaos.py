"""Deterministic, seedable chaos injection for campaign pipelines.

The recovery machinery (worker-crash rebuilds, chunk timeouts,
checkpoint journals -- ``repro.core.parallel`` / ``repro.core.checkpoint``)
and the integrity machinery (differential audits, invariant guards --
``repro.core.integrity``) both exist for failures that are rare in a
clean CI environment.  This module injects those failures on purpose,
deterministically, so both layers are exercised end-to-end on every run
instead of only through hand-built test doubles:

* **worker crash** -- a chunk's worker process calls ``os._exit`` on its
  first attempt (the pool-rebuild + retry path);
* **worker hang** -- a chunk's worker sleeps far past any timeout on its
  first attempt (the kill-pool + retry path; requires a timeout);
* **bit-flipped power word / verdict** -- a computed result is corrupted
  in flight, exactly as a bad DIMM or a cosmic ray would, targeted at
  *audited* faults so the differential audit provably catches it;
* **corrupted checkpoint record** -- a byte inside the journal is
  damaged after the campaign, so a resume attempt must trip the CRC.

Every decision is a pure hash of ``(seed, kind, fault key)`` -- no RNG
state, no wall clock -- so a chaos campaign is reproducible bit for bit,
and "first attempt only" state lives in flag files under a work
directory (worker processes share no memory with the coordinator).

A chaos spec is a comma-separated string, e.g.::

    crash:0.15,hang:0.1,bitflip:1,corrupt:1,seed:7

parsed by :class:`ChaosSpec.parse`.  The contract mirrors the
robustness layer's: **chaos never changes final results** -- crashes
and hangs are absorbed by retries, flipped verdicts are restored from
the audit's serial reference, flipped powers are quarantined out, and
the corrupted journal refuses to resume.  ``tests/test_chaos.py`` and
the CI chaos job enforce this.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..core import parallel as _parallel
from ..core.errors import CampaignError

#: how long a chaos-hung worker sleeps; anything far past a sane timeout
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed chaos knobs; all injection is off by default."""

    crash: float = 0.0  # per-chunk probability of a first-attempt worker death
    hang: float = 0.0  # per-chunk probability of a first-attempt hang
    bitflip: int = 0  # number of audited faults whose results get corrupted
    corrupt: int = 0  # number of checkpoint journals to damage post-run
    seed: int = 0  # salts every hash decision

    _FIELDS = {"crash": float, "hang": float, "bitflip": int, "corrupt": int, "seed": int}

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse ``"crash:0.15,bitflip:1,seed:7"`` into a spec.

        Raises :class:`~repro.core.errors.CampaignError` on unknown keys
        or out-of-range values, so a typo dies at the CLI boundary.
        """
        values: dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            key, sep, raw = part.partition(":")
            if not sep:
                key, sep, raw = part.partition("=")
            kind = cls._FIELDS.get(key)
            if kind is None:
                raise CampaignError(
                    f"unknown chaos knob {key!r}; valid knobs: "
                    f"{', '.join(sorted(cls._FIELDS))}"
                )
            try:
                values[key] = kind(raw)
            except ValueError:
                raise CampaignError(
                    f"chaos knob {key!r} needs a {kind.__name__}, got {raw!r}"
                ) from None
        spec = cls(**values)
        for name in ("crash", "hang"):
            rate = getattr(spec, name)
            if not 0.0 <= rate < 1.0:
                raise CampaignError(
                    f"chaos {name} rate must be in [0, 1), got {rate}"
                )
        if spec.bitflip < 0 or spec.corrupt < 0:
            raise CampaignError("chaos bitflip/corrupt counts must be >= 0")
        return spec

    @property
    def active(self) -> bool:
        return bool(self.crash or self.hang or self.bitflip or self.corrupt)


def _fraction(seed: int, kind: str, key: str) -> float:
    """Deterministic uniform-[0,1) decision hash."""
    digest = hashlib.sha256(f"chaos:{seed}:{kind}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _flag_once(workdir: str, kind: str, key: str) -> bool:
    """True exactly once per (kind, key), across processes."""
    tag = hashlib.sha256(f"{kind}:{key}".encode("utf-8")).hexdigest()[:16]
    try:
        with open(Path(workdir) / f"{kind}-{tag}", "x"):
            return True
    except FileExistsError:
        return False


def _item_key(item: Any) -> str:
    """Stable key of one work item (a FaultSite, a chunk of them, ...)."""
    from ..core.checkpoint import fault_key

    probe = item[0] if isinstance(item, (list, tuple)) and item else item
    try:
        return fault_key(probe)
    except (AttributeError, TypeError):
        return repr(probe)


def _chaos_worker(context: Any, item: Any) -> Any:
    """Module-level (picklable) wrapper injecting crash/hang faults.

    Injection only fires inside a real worker process (the executor's
    serial path and the in-process serial fallback run in the
    coordinator, where an ``os._exit`` would kill the campaign itself
    instead of simulating a lost worker).
    """
    worker, inner_context, spec, workdir = context
    if _parallel._WORKER_STATE is not None:
        key = _item_key(item)
        if _fraction(spec.seed, "crash", key) < spec.crash and _flag_once(
            workdir, "crash", key
        ):
            os._exit(13)
        if _fraction(spec.seed, "hang", key) < spec.hang and _flag_once(
            workdir, "hang", key
        ):
            time.sleep(HANG_SECONDS)
    return worker(inner_context, item)


def flip_float_bit(value: float, bit: int = 60) -> float:
    """Flip one bit of a float's IEEE-754 representation.

    Bit 60 sits in the exponent, so the flipped value is wildly wrong
    (the realistic signature of memory corruption) while staying
    deterministic.
    """
    (word,) = struct.unpack("<Q", struct.pack("<d", value))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", word ^ (1 << bit)))
    return flipped


class ChaosEngine:
    """One campaign's chaos decisions, built from a :class:`ChaosSpec`.

    The engine wraps campaign workers (crash/hang injection inside the
    pool) and tampers with completed results in the coordinator
    (bit-flips).  Flip targets are chosen from the *audited* fault keys
    -- the point of the exercise is to prove the audit catches silent
    corruption, so the corruption is aimed where the audit looks.
    """

    def __init__(self, spec: ChaosSpec, workdir: str | None = None):
        self.spec = spec
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
        Path(self.workdir).mkdir(parents=True, exist_ok=True)
        self._flip_targets: set[str] = set()

    @classmethod
    def from_spec(cls, text: str | None, workdir: str | None = None) -> "ChaosEngine | None":
        """Build an engine from a spec string; None when chaos is off."""
        if not text:
            return None
        return cls(ChaosSpec.parse(text), workdir=workdir)

    # ------------------------------------------------------- worker faults
    def wrap(self, worker: Callable, context: Any) -> tuple[Callable, Any]:
        """Wrap a campaign worker with crash/hang injection."""
        if not (self.spec.crash or self.spec.hang):
            return worker, context
        return _chaos_worker, (worker, context, self.spec, self.workdir)

    # ----------------------------------------------------------- bit-flips
    def set_flip_targets(self, audited_keys: list[str]) -> None:
        """Aim ``spec.bitflip`` corruptions at audited faults.

        Keys are ranked by decision hash so the target set is stable for
        any ordering of the input list.
        """
        ranked = sorted(audited_keys, key=lambda k: _fraction(self.spec.seed, "flip", k))
        self._flip_targets = set(ranked[: self.spec.bitflip])

    @property
    def flip_targets(self) -> set[str]:
        return set(self._flip_targets)

    def tamper_verdict(self, key: str, outcome: tuple) -> tuple:
        """Flip a fault-simulation verdict for targeted faults."""
        if key not in self._flip_targets:
            return outcome
        from ..logic.faultsim import Verdict

        verdict, cycle = outcome
        if verdict is Verdict.DETECTED:
            return (Verdict.UNDETECTED, -1)
        return (Verdict.DETECTED, max(0, cycle))

    def tamper_power(self, key: str, mc: Any) -> Any:
        """Flip an exponent bit in a Monte-Carlo power word."""
        if key not in self._flip_targets:
            return mc
        from ..power.montecarlo import MonteCarloResult

        return MonteCarloResult(
            power_uw=flip_float_bit(mc.power_uw),
            batches=mc.batches,
            patterns=mc.patterns,
            history=list(mc.history),
            converged=mc.converged,
        )

    # ---------------------------------------------------------- checkpoint
    def corrupt_journal(self, path: str | os.PathLike) -> bool:
        """Damage one byte inside a record mid-journal (not the tail).

        Picks a digit inside a deterministic interior record and changes
        it -- the line still parses as JSON, so only the per-record CRC
        can notice.  Returns False when the journal is too short to
        corrupt anywhere but the tail.
        """
        path = Path(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        # records live on lines 1..n-1 (0 is the header); stay off the tail
        candidates = list(range(1, len(lines) - 1))
        if not candidates:
            return False
        pick = candidates[
            int(_fraction(self.spec.seed, "corrupt", path.name) * len(candidates))
        ]
        line = lines[pick]
        for pos, ch in enumerate(line):
            if ch.isdigit():
                line = line[:pos] + str((int(ch) + 1) % 10) + line[pos + 1 :]
                break
        else:
            return False
        lines[pick] = line
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return True


# --------------------------------------------------------------- service
class ServiceChaos:
    """Injectable compute-hook faults for the campaign *service* layer.

    :class:`ChaosEngine` above exercises the in-campaign recovery
    machinery (pool rebuilds, audits, journal CRCs).  This class
    exercises the layer on top -- :class:`repro.store.service.
    CampaignService` -- by wrapping the ``(design, threshold) ->
    report`` compute hook the service calls on a cache miss:

    * **crash** -- the first ``crash_attempts`` compute attempts for a
      listed design raise :class:`~repro.core.errors.WorkerCrash`
      (retryable: the service's job-level retry must absorb it and,
      when the hook journals through checkpoints, *resume*);
    * **hang** -- the first attempt for a listed design sleeps
      ``hang_seconds`` (far past any sane request deadline), driving
      the 504/abandon/quarantine path;
    * **corrupt** -- after a listed design's report is computed and
      published, one byte of the newest ``report`` blob in the store is
      damaged, so the next cached read must quarantine-and-recompute
      instead of serving garbage;
    * **kill-worker** -- the service worker *thread* that claims a
      listed design's job dies outright (via
      :class:`repro.store.service.WorkerKilled` raised from the
      service's ``on_job`` hook), driving the supervisor's
      requeue-and-restart path instead of the in-compute retry path.

    Shard-fabric loss is injected by the ``*_shard*`` methods below:
    delete a shard's database, wedge it behind an exclusive SQLite
    transaction, or damage one replica's blob bytes -- the fabric must
    answer from a replica, quarantine the bad copy, and read-repair.

    All decisions are per-design and first-N-attempts only, tracked
    in-memory under a lock (the service runs its computes in threads of
    one process, unlike the multi-process campaign chaos above).
    """

    def __init__(
        self,
        crash: tuple[str, ...] = (),
        hang: tuple[str, ...] = (),
        corrupt: tuple[str, ...] = (),
        kill_worker: tuple[str, ...] = (),
        crash_attempts: int = 1,
        kill_attempts: int = 1,
        hang_seconds: float = HANG_SECONDS,
        store: Any = None,
    ):
        import threading

        self.crash = tuple(crash)
        self.hang = tuple(hang)
        self.corrupt = tuple(corrupt)
        self.kill_worker = tuple(kill_worker)
        self.crash_attempts = crash_attempts
        self.kill_attempts = kill_attempts
        self.hang_seconds = hang_seconds
        self.store = store
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._kills: dict[str, int] = {}
        self.crashed = 0
        self.hung = 0
        self.corrupted = 0
        self.workers_killed = 0
        self.shards_deleted = 0
        self.shards_locked = 0
        self.shard_copies_corrupted = 0

    def wrap(self, compute: Callable[[str, float], dict]) -> Callable[[str, float], dict]:
        """Wrap a service compute hook with the configured injections."""

        def chaotic_compute(design: str, threshold: float) -> dict:
            with self._lock:
                attempt = self._calls[design] = self._calls.get(design, 0) + 1
            if design in self.hang and attempt == 1:
                with self._lock:
                    self.hung += 1
                time.sleep(self.hang_seconds)
            if design in self.crash and attempt <= self.crash_attempts:
                with self._lock:
                    self.crashed += 1
                from ..core.errors import WorkerCrash

                raise WorkerCrash(
                    f"chaos: compute worker for {design!r} died on attempt {attempt}"
                )
            report = compute(design, threshold)
            if design in self.corrupt and self.store is not None:
                if self.corrupt_report_blob(self.store, design):
                    with self._lock:
                        self.corrupted += 1
            return report

        return chaotic_compute

    def attempts(self, design: str) -> int:
        with self._lock:
            return self._calls.get(design, 0)

    # ----------------------------------------------------------- worker kill
    def on_job(self, job: Any) -> None:
        """Service ``on_job`` hook: kill the claiming worker *thread*.

        Raises :class:`repro.store.service.WorkerKilled` (a
        ``BaseException``) for the first ``kill_attempts`` claims of a
        listed design, so the thread dies with the job still claimed --
        the supervisor must requeue it and restart the worker.
        """
        if job.design not in self.kill_worker:
            return
        with self._lock:
            n = self._kills[job.design] = self._kills.get(job.design, 0) + 1
            if n > self.kill_attempts:
                return
            self.workers_killed += 1
        from ..store.service import WorkerKilled

        raise WorkerKilled(
            f"chaos: worker thread died holding the job for {job.design!r} "
            f"(claim {n})"
        )

    # ------------------------------------------------------------ shard loss
    def delete_shard_db(self, fabric: Any, shard_id: int) -> Path:
        """Delete one shard's SQLite index outright (a lost disk).

        The next read through that shard raises ``no such table`` (the
        file is recreated empty on connect); the fabric must fail over
        to a replica and heal the schema on the next write.
        """
        path = Path(fabric.shards[shard_id].root) / "index.db"
        path.unlink(missing_ok=True)
        with self._lock:
            self.shards_deleted += 1
        return path

    def lock_shard(self, fabric: Any, shard_id: int) -> Callable[[], None]:
        """Wedge one shard behind an exclusive SQLite transaction.

        Every other connection to that shard's database gets
        ``database is locked`` until the returned release callable is
        invoked -- the signature of a wedged writer process.  Reads
        through the fabric must fail over to a replica after the
        shard's (short) lock timeout.
        """
        import sqlite3

        con = sqlite3.connect(fabric.shards[shard_id]._db_path, timeout=0.1)
        con.execute("BEGIN EXCLUSIVE")
        with self._lock:
            self.shards_locked += 1

        def release() -> None:
            con.rollback()
            con.close()

        return release

    def corrupt_shard_copy(self, fabric: Any, key: str, shard_id: int | None = None) -> bool:
        """Damage one replica's blob bytes for ``key`` (default: primary).

        The copy no longer hashes to its content address, so a read
        through that shard must quarantine it and the fabric must serve
        from (and read-repair onto) a surviving replica.
        """
        if shard_id is None:
            shard_id = fabric.map.placement(key)[0]
        shard = fabric.shards[shard_id]
        row = shard.row(key)
        if row is None:
            return False
        path = shard._blob_path(row.blob_sha)
        data = bytearray(path.read_bytes())
        if not data:
            return False
        data[len(data) // 2] ^= 0x20
        path.write_bytes(bytes(data))
        with self._lock:
            self.shard_copies_corrupted += 1
        return True

    @staticmethod
    def corrupt_report_blob(store: Any, design: str) -> bool:
        """Damage one byte of the newest ``report`` blob for a design.

        The blob's bytes then no longer hash to their content address,
        so the next lookup must detect the corruption, quarantine the
        artifact and recompute -- never serve the damaged payload.
        """
        rows = [r for r in store.artifacts.rows(kind="report", design=design)]
        if not rows:
            return False
        row = max(rows, key=lambda r: r.created_at)
        path = store.artifacts._blob_path(row.blob_sha)
        data = bytearray(path.read_bytes())
        if not data:
            return False
        data[len(data) // 2] ^= 0x20
        path.write_bytes(bytes(data))
        return True
