"""Test-support subpackage: deterministic chaos injection for campaigns."""
