"""The Facet high-level synthesis benchmark.

Facet comes from Tseng and Siewiorek's data-path synthesis work and is the
second example in the paper.  The defining property the paper relies on is
that Facet "has several sets of registers that load in parallel, and are
driven by the same load line; this creates the potential for a single SFR
fault to affect many registers, and therefore cause a large increase in
power" (Section 6).

The exact operation list of the original is not given in the paper, so the
reconstruction below (documented in DESIGN.md) is a straight-line Facet-
style behaviour: three parallel chains over +, -, *, &, | that schedule
three ops per step on disjoint single-function FUs.  With
``share_load_lines=True`` the binder then merges identically scheduled
registers onto shared load lines -- seven input registers load together in
RESET, and each wave of temporaries loads together in its control step.
"""

from __future__ import annotations

from ..hls.bind import bind_design
from ..hls.dfg import DFG, OpKind
from ..hls.rtl import RTLDesign
from ..hls.schedule import list_schedule


def facet_dfg(width: int = 4) -> DFG:
    """Build the Facet-style data-flow graph."""
    d = DFG(name="facet", width=width, inputs=["a", "b", "c", "d", "e", "f", "g"])
    d.op("t1", OpKind.ADD, "a", "b")
    d.op("t2", OpKind.SUB, "c", "d")
    d.op("t3", OpKind.MUL, "e", "f")
    d.op("t4", OpKind.AND, "t1", "t3")
    d.op("t5", OpKind.OR, "t2", "g")
    d.op("t6", OpKind.MUL, "t3", "g")
    d.op("t7", OpKind.ADD, "t4", "t5")
    d.op("t8", OpKind.SUB, "t6", "t5")
    d.op("o1", OpKind.MUL, "t7", "t8")
    d.outputs = {"o1_out": "o1"}
    d.validate()
    return d


def facet_rtl(width: int = 4) -> RTLDesign:
    """Schedule and bind Facet with one FU per op kind and shared load
    lines (the configuration behind Figure 7(b))."""
    dfg = facet_dfg(width)
    schedule = list_schedule(
        dfg,
        resources={
            OpKind.ADD: 1,
            OpKind.SUB: 1,
            OpKind.MUL: 1,
            OpKind.AND: 1,
            OpKind.OR: 1,
        },
    )
    return bind_design(dfg, schedule, share_load_lines=True)
