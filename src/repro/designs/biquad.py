"""A direct-form-II IIR biquad filter core (extension design).

Not one of the paper's three examples, but exactly the kind of workload
its introduction motivates: a low-power embedded core that runs
continuously, where an SFR fault's extra register loads quietly drain a
portable device's battery without ever failing a logic test.

One filter section per loop pass:

.. code-block:: text

    w  = x + a1*z1 + a2*z2      (feedback)
    y  = w + b1*z1 + b2*z2      (feedforward, b0 = 1)
    z2 = z1 ;  z1 = w           (delay line shift)

iterated ``n`` times via a counter (``k < n``), so the controller has the
same RESET / CS / HOLD shape as Diffeq.  The delay-line shift ``z2 = z1``
is realised as ``z1 + 0`` -- loop updates must be op results in this flow.
"""

from __future__ import annotations

from ..hls.bind import bind_design
from ..hls.dfg import DFG, OpKind
from ..hls.rtl import RTLDesign
from ..hls.schedule import list_schedule


def biquad_dfg(width: int = 4) -> DFG:
    """Build the biquad data-flow graph."""
    d = DFG(
        name="biquad",
        width=width,
        inputs=["x", "a1", "a2", "b1", "b2", "z1", "z2", "k", "n"],
        constants={"zero": 0, "one": 1},
    )
    d.op("f1", OpKind.MUL, "a1", "z1")
    d.op("f2", OpKind.MUL, "a2", "z2")
    d.op("s1", OpKind.ADD, "x", "f1")
    d.op("w", OpKind.ADD, "s1", "f2")
    d.op("g1", OpKind.MUL, "b1", "z1")
    d.op("g2", OpKind.MUL, "b2", "z2")
    d.op("s2", OpKind.ADD, "w", "g1")
    d.op("y", OpKind.ADD, "s2", "g2")
    d.op("z2n", OpKind.ADD, "z1", "zero")  # delay-line move
    d.op("wn", OpKind.ADD, "w", "zero")    # w into z1's register
    d.op("k1", OpKind.ADD, "k", "one")
    d.op("c", OpKind.LT, "k1", "n")
    d.outputs = {"y_out": "y"}
    d.loop_condition = "c"
    d.loop_updates = {"z1": "wn", "z2": "z2n", "k": "k1"}
    d.validate()
    return d


def biquad_rtl(width: int = 4) -> RTLDesign:
    """Schedule and bind the biquad (1 MUL, 2 ADD, 1 CMP)."""
    dfg = biquad_dfg(width)
    schedule = list_schedule(
        dfg, resources={OpKind.MUL: 1, OpKind.ADD: 2, OpKind.LT: 1}
    )
    return bind_design(dfg, schedule, share_load_lines=False)
