"""designs subpackage."""
