"""The HAL differential equation solver benchmark.

The classic high-level synthesis benchmark [Gajski et al. 1992] solves
``y'' + 3xy' + 3y = 0`` by forward Euler:

.. code-block:: text

    while (x < a):
        x1 = x + dx
        u1 = u - (3 * x * u * dx) - (3 * y * dx)
        y1 = y + u * dx
        x = x1;  u = u1;  y = y1

The paper's 4-bit implementation has 11 register load lines (REG1..REG11),
7 multiplexer select lines (MS1..MS7) and a 10-state control flow (RESET,
CS1..CS8, HOLD OUTPUT).  With one multiplier, one adder, one subtractor and
one comparator, the reconstruction below schedules into the same 8 control
steps / 10 states; aggressive-but-standard left-edge register sharing lands
on 8 registers and 10 select bits (the paper's allocator was less willing
to share -- the class structure of the controller faults is unaffected).
"""

from __future__ import annotations

from ..hls.bind import bind_design
from ..hls.dfg import DFG, OpKind
from ..hls.rtl import RTLDesign
from ..hls.schedule import list_schedule


def diffeq_dfg(width: int = 4) -> DFG:
    """Build the Diffeq data-flow graph."""
    d = DFG(
        name="diffeq",
        width=width,
        inputs=["x", "y", "u", "dx", "a"],
        constants={"three": 3},
    )
    d.op("m1", OpKind.MUL, "three", "x")   # 3x
    d.op("m2", OpKind.MUL, "m1", "u")      # 3xu
    d.op("m3", OpKind.MUL, "m2", "dx")     # 3xu*dx
    d.op("m4", OpKind.MUL, "three", "y")   # 3y
    d.op("m5", OpKind.MUL, "m4", "dx")     # 3y*dx
    d.op("m6", OpKind.MUL, "u", "dx")      # u*dx
    d.op("s1", OpKind.SUB, "u", "m3")      # u - 3xu*dx
    d.op("u1", OpKind.SUB, "s1", "m5")     # .. - 3y*dx
    d.op("y1", OpKind.ADD, "y", "m6")      # y + u*dx
    d.op("x1", OpKind.ADD, "x", "dx")      # x + dx
    d.op("c", OpKind.LT, "x1", "a")        # x1 < a
    d.outputs = {"y_out": "y"}
    d.loop_condition = "c"
    d.loop_updates = {"x": "x1", "u": "u1", "y": "y1"}
    d.validate()
    return d


def diffeq_rtl(width: int = 4) -> RTLDesign:
    """Schedule and bind the Diffeq design (1 MUL, 1 ADD, 1 SUB, 1 CMP)."""
    dfg = diffeq_dfg(width)
    schedule = list_schedule(dfg, resources={OpKind.MUL: 1, OpKind.ADD: 1, OpKind.SUB: 1, OpKind.LT: 1})
    return bind_design(dfg, schedule, share_load_lines=False)
