"""The third-degree polynomial evaluator: ``a*x^3 + b*x^2 + c*x + d``.

The paper's third example.  Its defining property: "the schedule for this
example is such that many variables have relatively long lifespans.  This
translates into relatively small power effects for the SFR faults, because
it is more likely that a given extra load will occur during a lifespan and
be disruptive to the computation" (Section 6) -- i.e. fewer extra-load
faults are SFR at all, and those that are move power only a little.

Evaluated directly (not Horner) on one multiplier and one adder, the five
inputs a, b, c, d, x stay live deep into the 7-step schedule.
"""

from __future__ import annotations

from ..hls.bind import bind_design
from ..hls.dfg import DFG, OpKind
from ..hls.rtl import RTLDesign
from ..hls.schedule import list_schedule


def poly_dfg(width: int = 4) -> DFG:
    """Build the polynomial-evaluator data-flow graph."""
    d = DFG(name="poly", width=width, inputs=["a", "b", "c", "d", "x"])
    d.op("x2", OpKind.MUL, "x", "x")
    d.op("x3", OpKind.MUL, "x2", "x")
    d.op("t1", OpKind.MUL, "a", "x3")
    d.op("t2", OpKind.MUL, "b", "x2")
    d.op("t3", OpKind.MUL, "c", "x")
    d.op("s1", OpKind.ADD, "t1", "t2")
    d.op("s2", OpKind.ADD, "s1", "t3")
    d.op("y", OpKind.ADD, "s2", "d")
    d.outputs = {"y_out": "y"}
    d.validate()
    return d


def poly_rtl(width: int = 4) -> RTLDesign:
    """Schedule and bind Poly (1 MUL, 1 ADD; dedicated load lines)."""
    dfg = poly_dfg(width)
    schedule = list_schedule(dfg, resources={OpKind.MUL: 1, OpKind.ADD: 1})
    return bind_design(dfg, schedule, share_load_lines=False)
