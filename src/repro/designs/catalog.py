"""Registry of the paper's three benchmark designs."""

from __future__ import annotations

from typing import Callable

from ..hls.rtl import RTLDesign
from ..store.fingerprint import digest
from .biquad import biquad_dfg, biquad_rtl
from .diffeq import diffeq_dfg, diffeq_rtl
from .ewf import ewf_dfg, ewf_rtl
from .facet import facet_dfg, facet_rtl
from .poly import poly_dfg, poly_rtl

#: The paper's three examples plus the biquad and EWF extension designs.
RTL_BUILDERS: dict[str, Callable[..., RTLDesign]] = {
    "diffeq": diffeq_rtl,
    "facet": facet_rtl,
    "poly": poly_rtl,
    "biquad": biquad_rtl,
    "ewf": ewf_rtl,
}

DFG_BUILDERS = {
    "diffeq": diffeq_dfg,
    "facet": facet_dfg,
    "poly": poly_dfg,
    "biquad": biquad_dfg,
    "ewf": ewf_dfg,
}

#: The designs evaluated in the paper (benchmarks iterate these).
PAPER_DESIGNS = ["diffeq", "facet", "poly"]


def design_names() -> list[str]:
    return list(RTL_BUILDERS)


def build_rtl(name: str, width: int = 4) -> RTLDesign:
    """Build a benchmark design by name."""
    try:
        builder = RTL_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown design {name!r}; choose from {design_names()}") from None
    return builder(width)


# ------------------------------------------------------- in-process build cache
# RTL construction and (especially) system synthesis are deterministic in
# their build knobs, yet every CLI/benchmark path used to rebuild them from
# scratch -- ``table2`` alone synthesized each paper design's netlist once
# per invocation and the benchmarks once per measured variant.  The cache
# below memoizes both layers inside one process, keyed by the same
# canonical fingerprint digest the artifact store uses; callers that
# mutate a built system must build their own (none of the pipeline layers
# do -- simulators keep all run state on their own side).
_BUILD_CACHE: dict[str, object] = {}


def cached_rtl(name: str, width: int = 4) -> RTLDesign:
    """Memoized :func:`build_rtl` (deterministic per (name, width))."""
    key = digest({"layer": "rtl", "name": name, "width": width})
    if key not in _BUILD_CACHE:
        _BUILD_CACHE[key] = build_rtl(name, width=width)
    return _BUILD_CACHE[key]  # type: ignore[return-value]


def cached_system(
    name: str,
    width: int = 4,
    encoding_kind: str = "binary",
    output_style: str = "pla",
):
    """Memoized integrated system for one design + synthesis knobs."""
    from ..hls.system import build_system  # deferred: keeps catalog import light

    key = digest(
        {
            "layer": "system",
            "name": name,
            "width": width,
            "encoding": encoding_kind,
            "output_style": output_style,
        }
    )
    if key not in _BUILD_CACHE:
        _BUILD_CACHE[key] = build_system(
            cached_rtl(name, width=width),
            encoding_kind=encoding_kind,
            output_style=output_style,
        )
    return _BUILD_CACHE[key]


def clear_build_cache() -> None:
    """Drop every memoized build (tests and memory-sensitive callers)."""
    _BUILD_CACHE.clear()
