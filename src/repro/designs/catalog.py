"""Registry of the paper's three benchmark designs."""

from __future__ import annotations

from typing import Callable

from ..hls.rtl import RTLDesign
from .biquad import biquad_dfg, biquad_rtl
from .diffeq import diffeq_dfg, diffeq_rtl
from .ewf import ewf_dfg, ewf_rtl
from .facet import facet_dfg, facet_rtl
from .poly import poly_dfg, poly_rtl

#: The paper's three examples plus the biquad and EWF extension designs.
RTL_BUILDERS: dict[str, Callable[..., RTLDesign]] = {
    "diffeq": diffeq_rtl,
    "facet": facet_rtl,
    "poly": poly_rtl,
    "biquad": biquad_rtl,
    "ewf": ewf_rtl,
}

DFG_BUILDERS = {
    "diffeq": diffeq_dfg,
    "facet": facet_dfg,
    "poly": poly_dfg,
    "biquad": biquad_dfg,
    "ewf": ewf_dfg,
}

#: The designs evaluated in the paper (benchmarks iterate these).
PAPER_DESIGNS = ["diffeq", "facet", "poly"]


def design_names() -> list[str]:
    return list(RTL_BUILDERS)


def build_rtl(name: str, width: int = 4) -> RTLDesign:
    """Build a benchmark design by name."""
    try:
        builder = RTL_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown design {name!r}; choose from {design_names()}") from None
    return builder(width)
