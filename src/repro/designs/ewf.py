"""An elliptic-wave-filter-scale benchmark (stress/extension design).

The fifth-order elliptic wave filter is the classic "large" high-level
synthesis benchmark: 34 operations (26 additions, 8 constant
multiplications) over an input sample and eight state variables.  The
paper does not evaluate it, but a reconstruction at its published op mix
is the right stress test for this library's flow: with one adder and one
multiplier the schedule runs ~27 control steps, the controller grows to
~30 states, and -- unlike the paper's three examples -- the design has
*multiple* output ports (the filter output plus updated state variables).

The DAG below is a documented reconstruction with the benchmark's
published shape (op counts, depth ~14, two constant coefficients), not a
netlist-exact copy of the original listing.
"""

from __future__ import annotations

from ..hls.bind import bind_design
from ..hls.dfg import DFG, OpKind
from ..hls.rtl import RTLDesign
from ..hls.schedule import list_schedule


def ewf_dfg(width: int = 4) -> DFG:
    """Build the EWF-style data-flow graph (26 ADD, 8 MUL)."""
    d = DFG(
        name="ewf",
        width=width,
        inputs=["x", "sv2", "sv13", "sv18", "sv26", "sv33", "sv38", "sv39"],
        constants={"c1": 3, "c2": 5},
    )
    a = d.op  # terse alias keeps the listing readable
    # --- ladder A (input side) ---------------------------------------------
    a("t1", OpKind.ADD, "x", "sv2")        # 1
    a("t2", OpKind.ADD, "sv33", "sv13")    # 2   (parallel with t1)
    a("m1", OpKind.MUL, "t1", "c1")        # *1
    a("t3", OpKind.ADD, "m1", "t2")        # 3
    a("t4", OpKind.ADD, "t3", "t1")        # 4
    a("m2", OpKind.MUL, "t4", "c2")        # *2
    a("t5", OpKind.ADD, "m2", "t3")        # 5
    # --- ladder B (middle section, independent start) -----------------------
    a("u1", OpKind.ADD, "sv18", "sv26")    # 6
    a("u2", OpKind.ADD, "sv38", "sv39")    # 7
    a("m3", OpKind.MUL, "u1", "c1")        # *3
    a("u3", OpKind.ADD, "m3", "u2")        # 8
    a("u4", OpKind.ADD, "u3", "u1")        # 9
    a("m4", OpKind.MUL, "u4", "c2")        # *4
    a("u5", OpKind.ADD, "m4", "u3")        # 10
    # --- ladder C (feedback section, independent start) ----------------------
    a("v1", OpKind.ADD, "sv13", "sv39")    # 11
    a("m5", OpKind.MUL, "v1", "c1")        # *5
    a("v2", OpKind.ADD, "m5", "sv2")       # 12
    a("v3", OpKind.ADD, "v2", "v1")        # 13
    a("m6", OpKind.MUL, "v3", "c2")        # *6
    a("v4", OpKind.ADD, "m6", "v2")        # 14
    # --- merge tree ----------------------------------------------------------
    a("w1", OpKind.ADD, "t5", "u5")        # 15
    a("w2", OpKind.ADD, "v4", "u2")        # 16
    a("m7", OpKind.MUL, "w1", "c1")        # *7
    a("w3", OpKind.ADD, "m7", "w2")        # 17
    a("w4", OpKind.ADD, "w3", "t4")        # 18
    a("w5", OpKind.ADD, "w3", "u4")        # 19
    a("m8", OpKind.MUL, "w5", "c2")        # *8
    a("w6", OpKind.ADD, "m8", "w4")        # 20
    # --- state updates & outputs ---------------------------------------------
    a("s1", OpKind.ADD, "w6", "t2")        # 21
    a("s2", OpKind.ADD, "w6", "u1")        # 22
    a("s3", OpKind.ADD, "s1", "v3")        # 23
    a("s4", OpKind.ADD, "s2", "t5")        # 24
    a("s5", OpKind.ADD, "s3", "u5")        # 25
    a("y", OpKind.ADD, "s5", "s4")         # 26
    d.outputs = {
        "y_out": "y",
        "sv33_out": "w4",
        "sv39_out": "s5",
    }
    d.validate()
    adds = sum(1 for o in d.ops if o.kind is OpKind.ADD)
    muls = sum(1 for o in d.ops if o.kind is OpKind.MUL)
    assert (adds, muls) == (26, 8), "EWF op mix drifted"
    return d


def ewf_rtl(width: int = 4, adders: int = 1, multipliers: int = 1) -> RTLDesign:
    """Schedule and bind EWF (defaults: the classic 1-adder/1-mult point)."""
    dfg = ewf_dfg(width)
    schedule = list_schedule(
        dfg, resources={OpKind.ADD: adders, OpKind.MUL: multipliers}
    )
    return bind_design(dfg, schedule, share_load_lines=False)
