"""End-to-end fleet calibration: activity -> grading -> population ROC.

One call ties the three layers together and enforces the identity the
whole construction rests on: the scalar powers the grading path reports
must be *bit-identical* to the powers recovered from the activity
campaign's integer counters (they are the same simulations -- grading is
seeded from the campaign and replays, never re-simulates).  The
population matmul then prices the fleet off those same counters, so at
zero sigma its verdicts reproduce the scalar grading verdicts.

Fleet results are store artifacts of their own (stage ``"fleet"``),
keyed by the activity campaign's identity plus the fleet configuration:
a warm ``repro-faults calibrate`` run -- even at a million instances --
touches no simulator at all, and a warm *repeat* of the same
configuration skips even the matmul.
"""

from __future__ import annotations

from ..core.checkpoint import fault_key
from ..core.errors import IntegrityError
from ..core.grading import GradingResult, grade_sfr_faults
from ..core.integrity import DEFAULT_AUDIT_RATE
from ..core.pipeline import PipelineResult
from ..core.report import RESULT_SCHEMA_VERSION
from ..hls.system import System
from ..power.estimator import PowerEstimator
from ..power.montecarlo import (
    DATAPATH_TAG,
    MC_DEFAULT_BATCH_PATTERNS,
    MC_DEFAULT_ITERATIONS_WINDOW,
    MC_DEFAULT_MAX_BATCHES,
    MC_DEFAULT_SEED,
    mc_campaign_params,
)
from ..store.cache import CampaignStore, StageProvenance, StageTimer
from ..store.fingerprint import netlist_fingerprint, stage_key
from .activity import ActivityCampaign, activity_campaign, recovered_power_uw
from .population import FleetConfig, FleetResult, activity_matrix, run_population


def fleet_store_key(
    system: System,
    pipeline_result: PipelineResult,
    mc_params: dict,
    config: FleetConfig,
) -> str:
    """Content-addressed key of one fleet ROC artifact."""
    sfr_keys = [fault_key(r.system_site) for r in pipeline_result.sfr_records]
    return stage_key(
        "fleet",
        netlist_fingerprint(system.netlist),
        {
            "design": pipeline_result.design,
            "faults": sfr_keys,
            "mc": mc_params,
            "fleet": config.params_dict(),
        },
    )


def _check_bit_identity(
    estimator: PowerEstimator,
    campaign: ActivityCampaign,
    grading: GradingResult,
) -> None:
    """Grading powers and activity-recovered powers must agree exactly.

    This is the sigma=0 anchor of the whole fleet model: the integer
    counters are the measurement, the scalar grade is a pure function of
    them.  Any divergence -- a tampered artifact, a seeding bug, a
    drifted float pipeline -- invalidates every ROC point, so it aborts.
    """
    assert campaign.baseline.activity is not None
    recovered = recovered_power_uw(estimator, campaign.baseline.activity)
    if recovered != grading.fault_free_uw:
        raise IntegrityError(
            f"activity baseline recovers {recovered!r} uW but grading "
            f"reports {grading.fault_free_uw!r} uW; the campaigns diverged"
        )
    for g in grading.graded:
        key = fault_key(g.record.system_site)
        mc = campaign.by_key.get(key)
        if mc is None:
            raise IntegrityError(
                f"graded fault {key!r} is missing from the activity campaign"
            )
        assert mc.activity is not None
        recovered = recovered_power_uw(estimator, mc.activity)
        if recovered != g.power_uw:
            raise IntegrityError(
                f"activity counters of {key!r} recover {recovered!r} uW but "
                f"grading reports {g.power_uw!r} uW; the campaigns diverged"
            )


def calibrate_fleet(
    system: System,
    pipeline_result: PipelineResult,
    config: FleetConfig,
    threshold: float = 0.05,
    estimator: PowerEstimator | None = None,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    n_jobs: int = 1,
    timeout: float | None = None,
    max_retries: int = 2,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    audit_rate: float = DEFAULT_AUDIT_RATE,
    strict: bool = False,
    cone_power: bool = True,
    store: CampaignStore | None = None,
) -> tuple[FleetResult, ActivityCampaign, GradingResult]:
    """Calibrate one design's fleet threshold; returns (fleet, activity, grading).

    Runs (or replays from ``store``) the activity campaign, feeds its
    results into the scalar grading path as seeds (zero re-simulation),
    cross-checks the two bit-identically, then runs (or replays) the
    population kernel.  ``threshold`` only parameterises the embedded
    scalar grading report; the fleet sweeps ``config.thresholds``.
    """
    config.validate()
    estimator = estimator or PowerEstimator(system.netlist)
    campaign = activity_campaign(
        system,
        pipeline_result,
        estimator=estimator,
        seed=seed,
        batch_patterns=batch_patterns,
        max_batches=max_batches,
        iterations_window=iterations_window,
        n_jobs=n_jobs,
        timeout=timeout,
        max_retries=max_retries,
        cone_power=cone_power,
        store=store,
    )
    grading = grade_sfr_faults(
        system,
        pipeline_result,
        estimator=estimator,
        threshold=threshold,
        seed=seed,
        batch_patterns=batch_patterns,
        max_batches=max_batches,
        iterations_window=iterations_window,
        n_jobs=n_jobs,
        timeout=timeout,
        max_retries=max_retries,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        audit_rate=audit_rate,
        strict=strict,
        store=store,
        seed_results=campaign.grading_seed_results(),
    )
    _check_bit_identity(estimator, campaign, grading)

    mc_params = mc_campaign_params(seed, batch_patterns, max_batches, iterations_window)
    key: str | None = None
    if store is not None:
        key = fleet_store_key(system, pipeline_result, mc_params, config)
        cached = store.lookup("fleet", key)
        if cached is not None and cached.get("params") == config.params_dict():
            row = store.artifacts.row(key)
            store.record(
                StageProvenance(
                    stage="fleet",
                    key=key,
                    hit=True,
                    saved_s=row.wall_s if row is not None else 0.0,
                )
            )
            return FleetResult.from_json_dict(cached), campaign, grading

    stage_timer = StageTimer().__enter__()
    decomp = estimator.cap_decomposition(tag_prefix=DATAPATH_TAG)
    A = activity_matrix(campaign, estimator)
    result = run_population(
        estimator,
        decomp,
        A,
        campaign.fault_keys,
        config,
        p_ref_uw=grading.fault_free_uw,
        design=pipeline_result.design,
    )
    if store is not None and key is not None:
        stage_timer.__exit__(None, None, None)
        published = store.publish(
            "fleet",
            key,
            result.to_json_dict(),
            design=pipeline_result.design,
            meta={"instances": config.instances, "faults": len(campaign.fault_keys)},
            wall_s=stage_timer.wall_s,
        )
        store.record(
            StageProvenance(
                stage="fleet",
                key=key,
                hit=False,
                wall_s=stage_timer.wall_s,
                published=published,
            )
        )
    return result, campaign, grading


def calibrate_report_dict(result: FleetResult) -> dict:
    """Deterministic JSON body of one calibrate run (no timings)."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "command": "calibrate",
        "design": result.design,
        "fleet": result.to_json_dict(),
        "roc": result.roc(),
    }
