"""Fleet-scale threshold calibration (population-vectorized ROC).

Switching activity is instance-independent and power is linear in the
per-row activity counters, so one Monte-Carlo campaign per design prices
a manufactured fleet of any size through a single chunked matmul::

    P[instances x faults] = C[instances x rows] @ A[rows x faults]

Layers:

* :mod:`repro.fleet.activity` -- capture + store the per-fault integer
  activity matrices (one block-parallel Monte-Carlo campaign);
* :mod:`repro.fleet.population` -- sample process/tester spread and
  sweep the threshold ROC over the matmul;
* :mod:`repro.fleet.calibrate` -- glue: activity -> seeded grading ->
  bit-identity cross-check -> population kernel -> store artifact.
"""

from .activity import (
    ActivityCampaign,
    activity_campaign,
    activity_store_key,
    recovered_power_uw,
)
from .calibrate import calibrate_fleet, calibrate_report_dict, fleet_store_key
from .population import (
    DEFAULT_THRESHOLDS,
    FLEET_CHUNK_INSTANCES,
    FleetConfig,
    FleetResult,
    activity_matrix,
    choose_threshold,
    run_population,
)

__all__ = [
    "ActivityCampaign",
    "activity_campaign",
    "activity_store_key",
    "recovered_power_uw",
    "calibrate_fleet",
    "calibrate_report_dict",
    "fleet_store_key",
    "DEFAULT_THRESHOLDS",
    "FLEET_CHUNK_INSTANCES",
    "FleetConfig",
    "FleetResult",
    "activity_matrix",
    "choose_threshold",
    "run_population",
]
