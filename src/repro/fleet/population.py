"""The population kernel: a manufactured fleet priced by one matmul.

Power is a linear functional of per-row activity (``power_from_counts``),
and activity is instance-independent -- so the dynamic power of every
instance of a fleet under every fault is one matrix product::

    P[instances x faults] = C[instances x rows] @ A[rows x faults]

where ``A`` holds the converged mean activity per counter row (from an
:mod:`~repro.fleet.activity` campaign) and ``C`` holds each instance's
effective per-row capacitance, built from per-gate-type log-normal
process scales through the estimator's
:class:`~repro.power.estimator.CapDecomposition`.  A million-instance
threshold ROC therefore costs one Monte-Carlo campaign plus chunked
float64 matmuls -- about 10^6 x cheaper than re-simulating per instance.

The measurement model follows the paper's test setup: a tester measures
total supply power, subtracts its quiescent (IDDQ) measurement, and
compares the remaining dynamic power against the expected fault-free
value with a +/- threshold band (Section 6's +/-5 %).  Process spread
enters through per-gate-type capacitance and leakage scales; tester
noise multiplies each measurement.  At zero sigma every instance is the
nominal chip and the kernel reproduces the scalar grading verdicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import CampaignError, IntegrityError
from ..power.estimator import CapDecomposition, PowerEstimator
from ..power.iddq import quiescent_leakage_components
from .activity import ActivityCampaign

#: instances per sampled chunk; fixed (never tuned per run) so the
#: per-chunk RNG streams -- seeded ``[seed, chunk_index]`` -- make every
#: drawn scale reproducible regardless of how many chunks a host machine
#: processes per second.
FLEET_CHUNK_INSTANCES = 16384

#: default threshold grid swept by the ROC (fractions; 0.05 is the
#: paper's +/-5 % band)
DEFAULT_THRESHOLDS = (
    0.005,
    0.01,
    0.015,
    0.02,
    0.03,
    0.04,
    0.05,
    0.075,
    0.10,
    0.15,
    0.20,
)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of one fleet-calibration run (all deterministic given seed)."""

    instances: int = 100_000
    #: per-gate-type log-normal sigma of capacitance spread
    sigma_cap: float = 0.05
    #: per-gate-type log-normal sigma of quiescent-leakage spread
    sigma_leak: float = 0.30
    #: multiplicative tester measurement noise sigma
    sigma_meas: float = 0.02
    #: tolerated fault-free yield loss (fraction of good chips failed)
    yield_budget: float = 0.01
    seed: int = 7
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS
    #: ``"rowwise"`` materialises C[instances x rows] (the issue's
    #: formula, exercises the full decomposition); ``"factored"``
    #: precontracts W.T @ A once and never materialises C
    engine: str = "rowwise"

    def validate(self) -> None:
        if self.instances < 1:
            raise CampaignError(f"instances must be >= 1, got {self.instances}")
        for name in ("sigma_cap", "sigma_leak", "sigma_meas"):
            v = getattr(self, name)
            if not 0 <= v < 1:
                raise CampaignError(f"{name} must be in [0, 1), got {v}")
        if not 0 <= self.yield_budget < 1:
            raise CampaignError(
                f"yield_budget must be in [0, 1), got {self.yield_budget}"
            )
        if not self.thresholds or any(not 0 < t < 1 for t in self.thresholds):
            raise CampaignError(
                f"thresholds must be fractions in (0, 1), got {self.thresholds}"
            )
        if list(self.thresholds) != sorted(set(self.thresholds)):
            raise CampaignError("thresholds must be strictly increasing")
        if self.engine not in ("rowwise", "factored"):
            raise CampaignError(f"unknown fleet engine {self.engine!r}")

    def params_dict(self) -> dict:
        """Canonical parameter dict (store keys, reports, fingerprints)."""
        return {
            "instances": self.instances,
            "sigma_cap": self.sigma_cap,
            "sigma_leak": self.sigma_leak,
            "sigma_meas": self.sigma_meas,
            "yield_budget": self.yield_budget,
            "seed": self.seed,
            "thresholds": list(self.thresholds),
            "engine": self.engine,
        }


def activity_matrix(
    campaign: ActivityCampaign, estimator: PowerEstimator
) -> np.ndarray:
    """Stack the campaign's mean activities into ``A[rows x (1+faults)]``.

    Row layout matches :meth:`CapDecomposition.stack`: per-net toggle
    rows, per-DFFE load rows, then one constant row (always 1.0 -- the
    plain-DFF clock burns every cycle-pattern).  Column 0 is the
    fault-free machine, then one column per fault in campaign order.
    Entries are mean transitions per cycle-pattern, so the product
    against fF-per-transition weights is fF switched per cycle-pattern
    -- no further normalisation needed downstream.
    """
    n_nets = estimator.netlist.num_nets
    n_dffe = len(estimator.dffe_gates)
    results = [campaign.baseline] + [campaign.by_key[k] for k in campaign.fault_keys]
    A = np.empty((n_nets + n_dffe + 1, len(results)), dtype=np.float64)
    for j, mc in enumerate(results):
        assert mc.activity is not None
        toggles, loads = mc.activity.mean_activity()
        A[:n_nets, j] = toggles
        A[n_nets : n_nets + n_dffe, j] = loads
        A[-1, j] = 1.0
    return A


@dataclass
class FleetResult:
    """ROC of one design's fleet over the threshold grid.

    All counts are exact integers, so :meth:`to_json_dict` is
    byte-identical across runs of the same configuration; wall-clock
    timings live on separate fields that the JSON form deliberately
    excludes.
    """

    design: str
    params: dict
    fault_keys: list[str]
    #: reference dynamic power the tester compares against (the scalar
    #: grading baseline -- bit-identical to ``fault_free_uw``)
    p_ref_uw: float
    #: nominal (all-scales-one) matmul powers, column order = baseline
    #: then faults; equals the scalar campaign means up to float
    #: summation order
    nominal_uw: list[float]
    #: nominal fault-free quiescent leakage
    leak_uw: float
    thresholds: list[float]
    #: fault-free instances failed per threshold (yield loss numerator)
    yield_fail: list[int]
    #: undetected faulty instances per threshold per fault
    escapes: list[list[int]]
    #: adaptive chooser verdict: smallest threshold meeting the
    #: yield-loss budget (see :func:`choose_threshold`)
    chosen: dict
    # -- timings (excluded from the deterministic JSON form) --
    matmul_s: float = field(default=0.0, compare=False)
    wall_s: float = field(default=0.0, compare=False)

    @property
    def instances(self) -> int:
        return int(self.params["instances"])

    @property
    def throughput(self) -> float:
        """Population matmul rate in instances * faults per second."""
        if self.matmul_s <= 0:
            return 0.0
        return self.instances * max(1, len(self.fault_keys)) / self.matmul_s

    def roc(self) -> list[dict]:
        """Per-threshold operating points: yield loss vs escape rate."""
        n = self.instances
        n_faults = max(1, len(self.fault_keys))
        return [
            {
                "threshold": t,
                "yield_loss": self.yield_fail[i] / n,
                "escape_rate": sum(self.escapes[i]) / (n * n_faults),
                "escapes": sum(self.escapes[i]),
            }
            for i, t in enumerate(self.thresholds)
        ]

    def to_json_dict(self) -> dict:
        return {
            "design": self.design,
            "params": self.params,
            "fault_keys": list(self.fault_keys),
            "p_ref_uw": self.p_ref_uw,
            "nominal_uw": list(self.nominal_uw),
            "leak_uw": self.leak_uw,
            "thresholds": list(self.thresholds),
            "yield_fail": list(self.yield_fail),
            "escapes": [list(row) for row in self.escapes],
            "chosen": self.chosen,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FleetResult":
        return cls(
            design=data["design"],
            params=dict(data["params"]),
            fault_keys=list(data["fault_keys"]),
            p_ref_uw=float(data["p_ref_uw"]),
            nominal_uw=[float(v) for v in data["nominal_uw"]],
            leak_uw=float(data["leak_uw"]),
            thresholds=[float(t) for t in data["thresholds"]],
            yield_fail=[int(v) for v in data["yield_fail"]],
            escapes=[[int(v) for v in row] for row in data["escapes"]],
            chosen=dict(data["chosen"]),
        )


def choose_threshold(
    thresholds: list[float],
    yield_fail: list[int],
    escapes: list[list[int]],
    instances: int,
    yield_budget: float,
) -> dict:
    """Smallest threshold whose fault-free yield loss fits the budget.

    Tightening the band catches more faults but fails more good chips;
    the chooser walks the grid from the tight end and stops at the first
    threshold whose yield loss is within budget -- the best escape rate
    the budget buys.  If even the loosest threshold overruns the budget,
    the loosest is returned with ``met_budget=False``.
    """
    n_faults = max(1, len(escapes[0]) if escapes else 1)
    pick = len(thresholds) - 1
    met = False
    for i in range(len(thresholds)):
        if yield_fail[i] / instances <= yield_budget:
            pick = i
            met = True
            break
    return {
        "threshold": thresholds[pick],
        "yield_loss": yield_fail[pick] / instances,
        "escape_rate": sum(escapes[pick]) / (instances * n_faults),
        "met_budget": met,
    }


def run_population(
    estimator: PowerEstimator,
    decomp: CapDecomposition,
    A: np.ndarray,
    fault_keys: list[str],
    config: FleetConfig,
    p_ref_uw: float,
    design: str = "",
) -> FleetResult:
    """Sample the fleet and sweep the threshold grid over one matmul chain.

    Per chunk of at most :data:`FLEET_CHUNK_INSTANCES` instances, drawn
    from an independent ``default_rng([seed, chunk])`` stream (chunking
    is therefore invisible to the statistics):

    1. per-gate-type capacitance scales ``S = exp(sigma_cap * N)`` and
       leakage scales ``exp(sigma_leak * N)`` (log-normal, mean ~1);
    2. dynamic power ``P = (S @ W.T) @ A`` (rowwise engine; the factored
       engine contracts ``W.T @ A`` once) scaled to microwatts;
    3. tester measurements: total power and IDDQ, each with independent
       multiplicative noise; the reported dynamic power is their
       difference, so the leakage *mean* cancels and only its spread and
       the noise remain;
    4. the relative deviation from ``p_ref_uw`` crosses the threshold
       grid: column 0 failures are yield loss, fault-column passes are
       escapes.

    Only the matmul time is charged to ``matmul_s`` (the benchmark's
    throughput denominator); RNG and comparison time land in ``wall_s``.
    """
    config.validate()
    if not 0 < p_ref_uw:
        raise IntegrityError(f"fleet reference power must be positive, got {p_ref_uw}")
    wall_t0 = time.perf_counter()
    lib = estimator.library
    W = decomp.stack()  # (rows, types) fF per transition
    if A.shape[0] != W.shape[0]:
        raise IntegrityError(
            f"activity matrix has {A.shape[0]} rows, decomposition has "
            f"{W.shape[0]}; the campaign and the estimator disagree"
        )
    to_uw = lib.energy_per_ff() * lib.f_clk * 1e6  # fF/cycle-pattern -> uW
    leak_by_type = quiescent_leakage_components(estimator.netlist, lib)
    L = np.array(
        [leak_by_type.get(name, 0.0) for name in decomp.components], dtype=np.float64
    )
    thresholds = np.asarray(config.thresholds, dtype=np.float64)

    n_cols = A.shape[1]
    ones = np.ones((1, W.shape[1]), dtype=np.float64)
    nominal = ((ones @ W.T) @ A)[0] * to_uw
    WA = W.T @ A if config.engine == "factored" else None

    yield_fail = np.zeros(len(thresholds), dtype=np.int64)
    escapes = np.zeros((len(thresholds), n_cols - 1), dtype=np.int64)
    matmul_s = 0.0
    done = 0
    chunk_idx = 0
    while done < config.instances:
        n = min(FLEET_CHUNK_INSTANCES, config.instances - done)
        rng = np.random.default_rng([config.seed, chunk_idx])
        S = np.exp(config.sigma_cap * rng.standard_normal((n, W.shape[1])))
        leak_scale = np.exp(config.sigma_leak * rng.standard_normal((n, W.shape[1])))
        eps_total = rng.standard_normal((n, n_cols))
        eps_iddq = rng.standard_normal(n)

        t0 = time.perf_counter()
        if WA is not None:
            P = (S @ WA) * to_uw
        else:
            P = ((S @ W.T) @ A) * to_uw
        matmul_s += time.perf_counter() - t0

        leak = leak_scale @ L  # (n,) uW per instance
        m_total = (P + leak[:, None]) * (1.0 + config.sigma_meas * eps_total)
        m_iddq = leak * (1.0 + config.sigma_meas * eps_iddq)
        m_dyn = m_total - m_iddq[:, None]
        rel = np.abs(m_dyn / p_ref_uw - 1.0)
        # rel[:, 0, None] > t: fault-free fail; rel[:, 1:] <= t: escape
        yield_fail += (rel[:, 0, None] > thresholds[None, :]).sum(axis=0)
        escapes += (rel[:, 1:, None] <= thresholds[None, None, :]).sum(axis=0).T
        done += n
        chunk_idx += 1

    chosen = choose_threshold(
        [float(t) for t in thresholds],
        [int(v) for v in yield_fail],
        [[int(v) for v in row] for row in escapes],
        config.instances,
        config.yield_budget,
    )
    return FleetResult(
        design=design,
        params=config.params_dict(),
        fault_keys=list(fault_keys),
        p_ref_uw=p_ref_uw,
        nominal_uw=[float(v) for v in nominal],
        leak_uw=float(L.sum()),
        thresholds=[float(t) for t in thresholds],
        yield_fail=[int(v) for v in yield_fail],
        escapes=[[int(v) for v in row] for row in escapes],
        chosen=chosen,
        matmul_s=matmul_s,
        wall_s=time.perf_counter() - wall_t0,
    )
