"""Activity campaigns: the per-fault integer counters behind every grade.

The fleet kernel rests on one structural fact (see ``docs/theory.md``):
switching activity is *instance-independent*.  Which nets toggle, and how
often, is decided by the netlist and the stimulus -- never by the
manufacturing spread of one chip's capacitances.  So a single Monte-Carlo
campaign per fault yields an activity vector that prices power for every
instance of the fleet via :meth:`repro.power.estimator.PowerEstimator.
power_from_counts`'s linearity.

This module runs that campaign: the PR-6 block-parallel grading kernel
with ``capture_activity=True``, so each converged
:class:`~repro.power.montecarlo.MonteCarloResult` carries its per-batch
integer :class:`~repro.power.montecarlo.ActivityTrace`.  Campaigns are
persisted as their own content-addressed store artifact (stage
``"activity"``) keyed by the same netlist fingerprint / fault universe /
Monte-Carlo knobs as a grading campaign, so a warm calibration replays
every counter with zero re-simulation -- and, through
:func:`grading_seed_results`, seeds the scalar grading path
bit-identically (the scalar power is *recomputed from the counters*, not
stored alongside them, by :func:`recovered_power_uw`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.checkpoint import fault_key
from ..core.errors import CampaignError, IntegrityError, validate_netlist
from ..core.grading import _BASELINE_KEY, _GRADE_CHUNK_FAULTS, _GRADE_MAX_WORDS
from ..core.parallel import ParallelExecutor, RunReport, resolve_n_jobs
from ..core.pipeline import PipelineResult
from ..hls.system import System
from ..logic import values as V
from ..power.estimator import PowerEstimator
from ..power.montecarlo import (
    DATAPATH_TAG,
    MC_DEFAULT_BATCH_PATTERNS,
    MC_DEFAULT_ITERATIONS_WINDOW,
    MC_DEFAULT_MAX_BATCHES,
    MC_DEFAULT_SEED,
    ActivityTrace,
    MonteCarloResult,
    mc_campaign_params,
    monte_carlo_power,
    monte_carlo_power_block,
    shared_batches,
)
from ..store.cache import CampaignStore, StageProvenance, StageTimer
from ..store.fingerprint import netlist_fingerprint, stage_key


def recovered_power_uw(
    estimator: PowerEstimator,
    trace: ActivityTrace,
    tag_prefix: str | None = DATAPATH_TAG,
) -> float:
    """Scalar Monte-Carlo power recomputed from stored integer counters.

    Replays :meth:`~repro.power.estimator.PowerEstimator.power_from_counts`
    per batch and averages -- the very same float operands in the very
    same order as the original campaign, so the result is *bit-identical*
    to the ``power_uw`` the simulation reported (the per-batch integers
    are the sufficient statistic; every downstream float is a pure
    function of them).
    """
    totals = []
    for b in range(trace.batches):
        estimator._check_counters(
            trace.toggles[b], trace.load_events[b], trace.cycles, trace.patterns
        )
        totals.append(
            estimator.power_from_counts(
                trace.toggles[b],
                trace.load_events[b],
                trace.cycles,
                trace.patterns,
                tag_prefix,
            ).total_uw
        )
    return float(np.mean(totals))


@dataclass
class ActivityCampaign:
    """One design's converged per-fault activity matrices.

    ``baseline`` and every entry of ``by_key`` carry a non-``None``
    ``activity`` trace; ``by_key`` is keyed by campaign fault key in SFR
    record order.
    """

    design: str
    baseline: MonteCarloResult
    by_key: dict[str, MonteCarloResult]
    key: str | None = None
    campaign: RunReport | None = None
    store_hit: bool = False
    fault_keys: list[str] = field(default_factory=list)

    def grading_seed_results(self) -> dict[str, MonteCarloResult]:
        """Seed dict for ``grade_sfr_faults(seed_results=...)``.

        Grading then replays every power from this campaign (counted as
        ``resumed``) instead of re-simulating -- bit-identically, because
        the capture path ran the exact same simulations.
        """
        seeds = dict(self.by_key)
        seeds[_BASELINE_KEY] = self.baseline
        return seeds


def _result_payload(mc: MonteCarloResult) -> dict:
    assert mc.activity is not None
    return {"mc": mc.to_json_dict(), "activity": mc.activity.to_json_dict()}


def _result_from_payload(data: dict) -> MonteCarloResult:
    mc = MonteCarloResult.from_json_dict(data["mc"])
    mc.activity = ActivityTrace.from_json_dict(data["activity"])
    return mc


def _verify_result(
    estimator: PowerEstimator, key: str, mc: MonteCarloResult
) -> None:
    """One result's counters must reproduce its scalar power exactly.

    Runs on every freshly captured result (a disagreement means the
    capture path diverged from the float pipeline -- a bug) and on every
    store replay (a disagreement means a tampered-but-well-formed blob).
    """
    if mc.activity is None:
        raise IntegrityError(f"activity campaign result {key!r} carries no trace")
    trace = mc.activity
    n_nets = estimator.netlist.num_nets
    n_dffe = len(estimator.dffe_gates)
    if trace.toggles.shape != (mc.batches, n_nets) or trace.load_events.shape != (
        mc.batches,
        n_dffe,
    ):
        raise IntegrityError(
            f"activity trace of {key!r} has shape "
            f"{trace.toggles.shape}/{trace.load_events.shape}; expected "
            f"({mc.batches}, {n_nets}) / ({mc.batches}, {n_dffe})"
        )
    recovered = recovered_power_uw(estimator, trace)
    if recovered != mc.power_uw:
        raise IntegrityError(
            f"activity counters of {key!r} recover {recovered!r} uW but the "
            f"campaign recorded {mc.power_uw!r} uW; the integer trace and "
            f"the scalar grade must be the same measurement"
        )


def _activity_chunk_worker(context, chunk):
    """Capture-enabled block Monte-Carlo over one fault chunk (pickles).

    Mirrors :func:`repro.core.grading._grade_chunk_worker`: the context
    carries only knobs, batches regenerate through the ``shared_batches``
    memo in each worker process.
    """
    (
        system,
        estimator,
        seed,
        batch_patterns,
        max_batches,
        iterations_window,
        cone_power,
    ) = context
    batches = shared_batches(
        system,
        seed=seed,
        batch_patterns=batch_patterns,
        max_batches=max_batches,
        iterations_window=iterations_window,
    )
    return monte_carlo_power_block(
        system,
        estimator,
        chunk,
        max_batches=max_batches,
        iterations_window=iterations_window,
        batches=batches,
        cone_power=cone_power,
        capture_activity=True,
    )


def activity_store_key(system: System, pipeline_result: PipelineResult, mc_params: dict) -> str:
    """Content-addressed key of one design's activity campaign artifact."""
    sfr_keys = [fault_key(r.system_site) for r in pipeline_result.sfr_records]
    return stage_key(
        "activity",
        netlist_fingerprint(system.netlist),
        {"design": pipeline_result.design, "faults": sfr_keys, "mc": mc_params},
    )


def activity_campaign(
    system: System,
    pipeline_result: PipelineResult,
    estimator: PowerEstimator | None = None,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    n_jobs: int = 1,
    timeout: float | None = None,
    max_retries: int = 2,
    cone_power: bool = True,
    store: CampaignStore | None = None,
) -> ActivityCampaign:
    """Converged activity matrices for the fault-free machine + every SFR fault.

    With ``store`` set, a previously published campaign with the same
    netlist content, fault universe and Monte-Carlo knobs replays every
    integer counter from the store with zero simulation (the replay is
    verified: counters must recover the recorded scalar power exactly).
    A fresh campaign fans the fault chunks out across ``n_jobs``
    processes through the PR-6 block kernel and publishes on success.
    """
    validate_netlist(system.netlist)
    if batch_patterns < 1 or max_batches < 1:
        raise CampaignError(
            f"batch_patterns and max_batches must be >= 1 "
            f"(got {batch_patterns}, {max_batches})"
        )
    records = pipeline_result.sfr_records
    sfr_keys = [fault_key(r.system_site) for r in records]
    mc_params = mc_campaign_params(seed, batch_patterns, max_batches, iterations_window)
    estimator = estimator or PowerEstimator(system.netlist)

    key: str | None = None
    if store is not None:
        key = activity_store_key(system, pipeline_result, mc_params)
        cached = store.lookup("activity", key)
        if (
            cached is not None
            and "baseline" in cached
            and set(cached.get("faults", ())) == set(sfr_keys)
        ):
            base = _result_from_payload(cached["baseline"])
            by_key = {k: _result_from_payload(cached["faults"][k]) for k in sfr_keys}
            _verify_result(estimator, _BASELINE_KEY, base)
            for k, mc in by_key.items():
                _verify_result(estimator, k, mc)
            row = store.artifacts.row(key)
            store.record(
                StageProvenance(
                    stage="activity",
                    key=key,
                    hit=True,
                    saved_s=row.wall_s if row is not None else 0.0,
                )
            )
            return ActivityCampaign(
                design=pipeline_result.design,
                baseline=base,
                by_key=by_key,
                key=key,
                campaign=RunReport(n_items=len(records), resumed=len(records)),
                store_hit=True,
                fault_keys=sfr_keys,
            )

    stage_timer = StageTimer().__enter__()
    batches = shared_batches(
        system,
        seed=seed,
        batch_patterns=batch_patterns,
        max_batches=max_batches,
        iterations_window=iterations_window,
    )
    base = monte_carlo_power(
        system,
        estimator,
        fault=None,
        max_batches=max_batches,
        iterations_window=iterations_window,
        batches=batches,
        capture_activity=True,
    )
    _verify_result(estimator, _BASELINE_KEY, base)

    by_key = {}
    sites = [r.system_site for r in records]
    report = RunReport(n_items=len(records))
    if sites:
        # Chunk exactly like the grading kernel: balance the job count,
        # amortize numpy dispatch, cap worker simulator width.
        jobs = max(1, resolve_n_jobs(n_jobs))
        wpb = max(1, batch_patterns // V.WORD_BITS)
        size = max(
            1,
            min(-(-len(sites) // jobs), _GRADE_CHUNK_FAULTS, _GRADE_MAX_WORDS // wpb),
        )
        items = [sites[i : i + size] for i in range(0, len(sites), size)]
        context = (
            system,
            estimator,
            seed,
            batch_patterns,
            max_batches,
            iterations_window,
            cone_power,
        )

        def _collect(chunk_items, chunk_results) -> None:
            for chunk, mcs in zip(chunk_items, chunk_results):
                for site, mc in zip(chunk, mcs):
                    k = fault_key(site)
                    _verify_result(estimator, k, mc)
                    by_key[k] = mc

        executor = ParallelExecutor(
            n_jobs, chunk_size=1, timeout=timeout, max_retries=max_retries
        )
        executor.run(_activity_chunk_worker, items, context, on_chunk=_collect)
        assert executor.last_report is not None
        report = executor.last_report
        report.n_items = len(records)
        report.completed = len(records)
    by_key = {k: by_key[k] for k in sfr_keys}

    if store is not None and key is not None:
        stage_timer.__exit__(None, None, None)
        published = store.publish(
            "activity",
            key,
            {
                "baseline": _result_payload(base),
                "faults": {k: _result_payload(by_key[k]) for k in sfr_keys},
            },
            design=pipeline_result.design,
            meta={"faults": len(sfr_keys)},
            wall_s=stage_timer.wall_s,
        )
        store.record(
            StageProvenance(
                stage="activity",
                key=key,
                hit=False,
                wall_s=stage_timer.wall_s,
                published=published,
            )
        )

    return ActivityCampaign(
        design=pipeline_result.design,
        baseline=base,
        by_key=by_key,
        key=key,
        campaign=report,
        store_hit=False,
        fault_keys=sfr_keys,
    )
