"""Toggle counts -> average dynamic power.

``PowerEstimator`` precomputes the switched capacitance of every net of a
netlist once, then converts a simulator's accumulated toggle counters (and
register load-event counters) into microwatts, optionally restricted to a
tag prefix (the paper reports power for the *datapath*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from ..logic.simulator import CycleSimulator
from .library import DEFAULT_LIBRARY, PowerLibrary


@dataclass
class PowerResult:
    """Average power over a simulation window."""

    total_uw: float
    switching_uw: float
    clock_uw: float
    by_tag: dict[str, float]
    cycles: int
    patterns: int

    def __str__(self) -> str:
        return f"{self.total_uw:.2f} uW ({self.switching_uw:.2f} switching + {self.clock_uw:.2f} clock)"


class PowerEstimator:
    """Per-netlist capacitance model + power computation.

    All tag bookkeeping is vectorised: tags are interned into an index once
    at construction (per-net and per-register numpy index arrays), and the
    boolean selection masks for each ``tag_prefix`` are built on first use
    and cached, so :meth:`power` is a handful of array reductions no matter
    how many nets the design has.
    """

    def __init__(self, netlist: Netlist, library: PowerLibrary | None = None):
        self.netlist = netlist
        self.library = library or DEFAULT_LIBRARY
        lib = self.library
        n = netlist.num_nets
        self.net_cap_ff = np.zeros(n)
        self.net_tag = [""] * n
        fanout = netlist.fanout_map()
        for net in range(n):
            driver = netlist.driver_of(net)
            cap = lib.output_cap[driver.gtype] if driver else 0.0
            for gate_idx, _pin in fanout[net]:
                reader = netlist.gates[gate_idx]
                cap += lib.input_cap[reader.gtype] + lib.wire_cap
            self.net_cap_ff[net] = cap
            if driver is not None:
                self.net_tag[net] = driver.tag
        # Register bookkeeping for clock energy.
        self.dffe_gates = [g for g in netlist.gates if g.gtype is GateType.DFFE]
        self.n_dff = sum(1 for g in netlist.gates if g.gtype is GateType.DFF)
        self.dff_tags = [g.tag for g in netlist.gates if g.gtype is GateType.DFF]

        # Intern tags: every distinct tag gets one id; nets / DFFEs / DFFs
        # carry int index arrays into ``self._tags``.
        dffe_tags = [g.tag for g in self.dffe_gates]
        self._tags = sorted(set(self.net_tag) | set(dffe_tags) | set(self.dff_tags))
        tag_id = {t: i for i, t in enumerate(self._tags)}
        self._net_tag_idx = np.array([tag_id[t] for t in self.net_tag], dtype=np.int64)
        self._dffe_tag_idx = np.array([tag_id[t] for t in dffe_tags], dtype=np.int64)
        self._dff_tag_counts = np.bincount(
            np.array([tag_id[t] for t in self.dff_tags], dtype=np.int64),
            minlength=len(self._tags),
        )
        self._prefix_cache: dict[str | None, np.ndarray] = {}

    def _tag_selected(self, tag: str, prefix: str | None) -> bool:
        return prefix is None or tag.startswith(prefix)

    def _tag_mask(self, prefix: str | None) -> np.ndarray:
        """Boolean mask over interned tags selected by ``prefix`` (cached)."""
        mask = self._prefix_cache.get(prefix)
        if mask is None:
            mask = np.array(
                [self._tag_selected(t, prefix) for t in self._tags], dtype=bool
            )
            self._prefix_cache[prefix] = mask
        return mask

    def power(self, sim: CycleSimulator, tag_prefix: str | None = None) -> PowerResult:
        """Average power from a finished simulation run.

        Args:
            sim: simulator built with ``count_toggles=True`` after running.
            tag_prefix: restrict to nets/registers driven by gates whose tag
                starts with this prefix (e.g. ``"dp"`` for datapath power).
        """
        if not sim.count_toggles:
            raise ValueError("simulator was not counting toggles")
        lib = self.library
        cycles = sim.cycles_run
        patterns = sim.n_patterns
        if cycles == 0:
            raise ValueError("no cycles simulated")
        denom = cycles * patterns
        e_ff = lib.energy_per_ff()

        tag_sel = self._tag_mask(tag_prefix)
        n_tags = len(self._tags)

        per_net_ff = sim.toggles * self.net_cap_ff
        net_sel = tag_sel[self._net_tag_idx]
        sw_energy_ff = float((per_net_ff * net_sel).sum())

        # Per-tag switching energy over toggling, selected nets.
        active = net_sel & (sim.toggles != 0)
        sw_by_tag = np.bincount(
            self._net_tag_idx[active], weights=per_net_ff[active], minlength=n_tags
        )
        tag_present = np.bincount(self._net_tag_idx[active], minlength=n_tags) > 0

        # Clock energy: DFFEs burn per load event, plain DFFs every cycle.
        clk_by_tag = np.zeros(n_tags)
        if len(self.dffe_gates):
            dffe_sel = tag_sel[self._dffe_tag_idx]
            clk_by_tag += np.bincount(
                self._dffe_tag_idx[dffe_sel],
                weights=sim.load_events[dffe_sel] * lib.dffe_clock_cap,
                minlength=n_tags,
            )
            tag_present |= np.bincount(self._dffe_tag_idx[dffe_sel], minlength=n_tags) > 0
        clk_by_tag += np.where(tag_sel, self._dff_tag_counts, 0) * (
            denom * lib.dff_clock_cap
        )
        tag_present |= tag_sel & (self._dff_tag_counts > 0)
        clk_energy_ff = float(clk_by_tag.sum())

        by_tag_ff = {
            self._tags[i] or "(untagged)": float(sw_by_tag[i] + clk_by_tag[i])
            for i in np.nonzero(tag_present)[0]
        }

        to_uw = e_ff * lib.f_clk / denom * 1e6
        return PowerResult(
            total_uw=(sw_energy_ff + clk_energy_ff) * to_uw,
            switching_uw=sw_energy_ff * to_uw,
            clock_uw=clk_energy_ff * to_uw,
            by_tag={k: v * to_uw for k, v in sorted(by_tag_ff.items())},
            cycles=cycles,
            patterns=patterns,
        )
