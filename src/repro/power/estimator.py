"""Toggle counts -> average dynamic power.

``PowerEstimator`` precomputes the switched capacitance of every net of a
netlist once, then converts a simulator's accumulated toggle counters (and
register load-event counters) into microwatts, optionally restricted to a
tag prefix (the paper reports power for the *datapath*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from ..logic.simulator import CycleSimulator
from .library import DEFAULT_LIBRARY, PowerLibrary


@dataclass
class PowerResult:
    """Average power over a simulation window."""

    total_uw: float
    switching_uw: float
    clock_uw: float
    by_tag: dict[str, float]
    cycles: int
    patterns: int

    def __str__(self) -> str:
        return f"{self.total_uw:.2f} uW ({self.switching_uw:.2f} switching + {self.clock_uw:.2f} clock)"


class PowerEstimator:
    """Per-netlist capacitance model + power computation."""

    def __init__(self, netlist: Netlist, library: PowerLibrary | None = None):
        self.netlist = netlist
        self.library = library or DEFAULT_LIBRARY
        lib = self.library
        n = netlist.num_nets
        self.net_cap_ff = np.zeros(n)
        self.net_tag = [""] * n
        fanout = netlist.fanout_map()
        for net in range(n):
            driver = netlist.driver_of(net)
            cap = lib.output_cap[driver.gtype] if driver else 0.0
            for gate_idx, _pin in fanout[net]:
                reader = netlist.gates[gate_idx]
                cap += lib.input_cap[reader.gtype] + lib.wire_cap
            self.net_cap_ff[net] = cap
            if driver is not None:
                self.net_tag[net] = driver.tag
        # Register bookkeeping for clock energy.
        self.dffe_gates = [g for g in netlist.gates if g.gtype is GateType.DFFE]
        self.n_dff = sum(1 for g in netlist.gates if g.gtype is GateType.DFF)
        self.dff_tags = [g.tag for g in netlist.gates if g.gtype is GateType.DFF]

    def _tag_selected(self, tag: str, prefix: str | None) -> bool:
        return prefix is None or tag.startswith(prefix)

    def power(self, sim: CycleSimulator, tag_prefix: str | None = None) -> PowerResult:
        """Average power from a finished simulation run.

        Args:
            sim: simulator built with ``count_toggles=True`` after running.
            tag_prefix: restrict to nets/registers driven by gates whose tag
                starts with this prefix (e.g. ``"dp"`` for datapath power).
        """
        if not sim.count_toggles:
            raise ValueError("simulator was not counting toggles")
        lib = self.library
        cycles = sim.cycles_run
        patterns = sim.n_patterns
        if cycles == 0:
            raise ValueError("no cycles simulated")
        denom = cycles * patterns
        e_ff = lib.energy_per_ff()

        sel = np.array(
            [self._tag_selected(t, tag_prefix) for t in self.net_tag], dtype=bool
        )
        sw_energy_ff = float((sim.toggles * self.net_cap_ff * sel).sum())

        clk_energy_ff = 0.0
        by_tag_ff: dict[str, float] = {}
        per_net_ff = sim.toggles * self.net_cap_ff
        for net in np.nonzero(sim.toggles)[0]:
            tag = self.net_tag[net] or "(untagged)"
            if self._tag_selected(tag, tag_prefix):
                by_tag_ff[tag] = by_tag_ff.get(tag, 0.0) + float(per_net_ff[net])
        for row, gate in enumerate(self.dffe_gates):
            if self._tag_selected(gate.tag, tag_prefix):
                e = float(sim.load_events[row]) * lib.dffe_clock_cap
                clk_energy_ff += e
                key = gate.tag or "(untagged)"
                by_tag_ff[key] = by_tag_ff.get(key, 0.0) + e
        for tag in self.dff_tags:
            if self._tag_selected(tag, tag_prefix):
                e = denom * lib.dff_clock_cap
                clk_energy_ff += e
                key = tag or "(untagged)"
                by_tag_ff[key] = by_tag_ff.get(key, 0.0) + e

        to_uw = e_ff * lib.f_clk / denom * 1e6
        return PowerResult(
            total_uw=(sw_energy_ff + clk_energy_ff) * to_uw,
            switching_uw=sw_energy_ff * to_uw,
            clock_uw=clk_energy_ff * to_uw,
            by_tag={k: v * to_uw for k, v in sorted(by_tag_ff.items())},
            cycles=cycles,
            patterns=patterns,
        )
