"""Toggle counts -> average dynamic power.

``PowerEstimator`` precomputes the switched capacitance of every net of a
netlist once, then converts a simulator's accumulated toggle counters (and
register load-event counters) into microwatts, optionally restricted to a
tag prefix (the paper reports power for the *datapath*).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import IntegrityError
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from ..logic.simulator import CycleSimulator
from .library import DEFAULT_LIBRARY, PowerLibrary


@dataclass
class PowerResult:
    """Average power over a simulation window."""

    total_uw: float
    switching_uw: float
    clock_uw: float
    by_tag: dict[str, float]
    cycles: int
    patterns: int

    def __str__(self) -> str:
        return f"{self.total_uw:.2f} uW ({self.switching_uw:.2f} switching + {self.clock_uw:.2f} clock)"


#: decomposition component name for per-fanout interconnect capacitance
WIRE_COMPONENT = "wire"


@dataclass
class CapDecomposition:
    """Per-row switched capacitance split into process-scaling components.

    A manufactured instance deviates from the nominal capacitance model
    by per-gate-type scale factors (all NAND drains on a die etched a
    little wide, all wires a little thick...).  This decomposition
    splits every counter row's capacitance into its per-component
    contributions so the fleet kernel can apply per-instance,
    per-component log-normal scales with one matmul:
    ``row_cap(instance) = scales[instance] @ weights[row]``.

    Components are the gate-type names present in the netlist plus
    :data:`WIRE_COMPONENT`; rows follow the counter layout of
    :meth:`PowerEstimator.power_from_counts`: one row per net (fF per
    toggle), one per DFFE (fF per load event), and one constant row (fF
    per cycle-pattern, the always-clocked DFF tree).  Rows outside the
    requested ``tag_prefix`` are all-zero, so the matrix product applies
    exactly the selection mask the scalar path applies.
    """

    components: list[str]
    net_weights: np.ndarray  # (num_nets, n_components) fF per toggle
    dffe_weights: np.ndarray  # (n_dffe, n_components) fF per load event
    dff_weight: np.ndarray  # (n_components,) fF per cycle-pattern

    @property
    def n_components(self) -> int:
        return len(self.components)

    @property
    def n_rows(self) -> int:
        return self.net_weights.shape[0] + self.dffe_weights.shape[0] + 1

    def stack(self) -> np.ndarray:
        """The full ``(n_rows, n_components)`` weight matrix ``W``.

        Row order matches the fleet activity matrix: nets, then DFFE
        load rows, then the constant DFF-clock row (unit activity).
        """
        return np.vstack(
            [self.net_weights, self.dffe_weights, self.dff_weight[None, :]]
        )


class PowerEstimator:
    """Per-netlist capacitance model + power computation.

    All tag bookkeeping is vectorised: tags are interned into an index once
    at construction (per-net and per-register numpy index arrays), and the
    boolean selection masks for each ``tag_prefix`` are built on first use
    and cached, so :meth:`power` is a handful of array reductions no matter
    how many nets the design has.
    """

    def __init__(self, netlist: Netlist, library: PowerLibrary | None = None):
        self.netlist = netlist
        self.library = library or DEFAULT_LIBRARY
        lib = self.library
        n = netlist.num_nets
        self.net_cap_ff = np.zeros(n)
        self.net_tag = [""] * n
        fanout = netlist.fanout_map()
        for net in range(n):
            driver = netlist.driver_of(net)
            cap = lib.output_cap[driver.gtype] if driver else 0.0
            for gate_idx, _pin in fanout[net]:
                reader = netlist.gates[gate_idx]
                cap += lib.input_cap[reader.gtype] + lib.wire_cap
            self.net_cap_ff[net] = cap
            if driver is not None:
                self.net_tag[net] = driver.tag
        # Register bookkeeping for clock energy.
        self.dffe_gates = [g for g in netlist.gates if g.gtype is GateType.DFFE]
        self.n_dff = sum(1 for g in netlist.gates if g.gtype is GateType.DFF)
        self.dff_tags = [g.tag for g in netlist.gates if g.gtype is GateType.DFF]

        # Intern tags: every distinct tag gets one id; nets / DFFEs / DFFs
        # carry int index arrays into ``self._tags``.
        dffe_tags = [g.tag for g in self.dffe_gates]
        self._tags = sorted(set(self.net_tag) | set(dffe_tags) | set(self.dff_tags))
        tag_id = {t: i for i, t in enumerate(self._tags)}
        self._net_tag_idx = np.array([tag_id[t] for t in self.net_tag], dtype=np.int64)
        self._dffe_tag_idx = np.array([tag_id[t] for t in dffe_tags], dtype=np.int64)
        self._dff_tag_counts = np.bincount(
            np.array([tag_id[t] for t in self.dff_tags], dtype=np.int64),
            minlength=len(self._tags),
        )
        self._prefix_cache: dict[str | None, np.ndarray] = {}
        if not np.isfinite(self.net_cap_ff).all():
            bad = int(np.flatnonzero(~np.isfinite(self.net_cap_ff))[0])
            raise IntegrityError(
                f"net {netlist.net_names[bad]!r} has a non-finite switched "
                f"capacitance ({self.net_cap_ff[bad]!r} fF) -- broken library"
            )

    def cap_decomposition(self, tag_prefix: str | None = None) -> CapDecomposition:
        """Split every counter row's capacitance by scaling component.

        The per-row component sums reproduce the scalar model exactly:
        ``net_weights.sum(axis=1) == net_cap_ff * selected``, DFFE rows
        carry the DFFE clock cap, and the constant row carries the
        selected DFF population's per-cycle clock cap -- so a product
        against all-ones scales recovers :meth:`power_from_counts`'s
        capacitances (up to float summation order).
        """
        lib = self.library
        netlist = self.netlist
        present = sorted({g.gtype.name for g in netlist.gates})
        components = present + [WIRE_COMPONENT]
        comp_id = {name: i for i, name in enumerate(components)}
        wire = comp_id[WIRE_COMPONENT]

        tag_sel = self._tag_mask(tag_prefix)
        net_sel = tag_sel[self._net_tag_idx]
        net_weights = np.zeros((netlist.num_nets, len(components)))
        fanout = netlist.fanout_map()
        for net in range(netlist.num_nets):
            if not net_sel[net]:
                continue
            driver = netlist.driver_of(net)
            if driver is not None:
                net_weights[net, comp_id[driver.gtype.name]] += lib.output_cap[
                    driver.gtype
                ]
            for gate_idx, _pin in fanout[net]:
                reader = netlist.gates[gate_idx]
                net_weights[net, comp_id[reader.gtype.name]] += lib.input_cap[
                    reader.gtype
                ]
                net_weights[net, wire] += lib.wire_cap

        dffe_weights = np.zeros((len(self.dffe_gates), len(components)))
        if self.dffe_gates:
            dffe_sel = tag_sel[self._dffe_tag_idx]
            dffe_weights[dffe_sel, comp_id[GateType.DFFE.name]] = lib.dffe_clock_cap

        dff_weight = np.zeros(len(components))
        n_selected_dff = int(np.where(tag_sel, self._dff_tag_counts, 0).sum())
        if n_selected_dff:
            dff_weight[comp_id[GateType.DFF.name]] = n_selected_dff * lib.dff_clock_cap

        return CapDecomposition(
            components=components,
            net_weights=net_weights,
            dffe_weights=dffe_weights,
            dff_weight=dff_weight,
        )

    def theoretical_max_uw(self) -> float:
        """Hard physical ceiling on any power this estimator can report.

        Every net toggles every cycle in every pattern, every DFFE loads
        every cycle, every DFF clocks every cycle.  The per-cycle
        normalisation cancels the cycle count, so the bound is a single
        number per netlist.  Any reported power above it is corrupt --
        a flipped exponent bit, an overflowed accumulator -- no matter
        which fault produced it.
        """
        lib = self.library
        cap_ff = (
            float(self.net_cap_ff.sum())
            + len(self.dffe_gates) * lib.dffe_clock_cap
            + self.n_dff * lib.dff_clock_cap
        )
        return cap_ff * lib.energy_per_ff() * lib.f_clk * 1e6

    def _check_counters(
        self,
        toggles: np.ndarray,
        load_events: np.ndarray,
        cycles: int,
        patterns: int,
    ) -> None:
        """Bound-check toggle/load counters at the accumulation boundary.

        A toggle count is a popcount over patterns accumulated once per
        settle, so no net can exceed ``cycles x patterns``; a DFFE loads
        at most once per cycle per pattern.  A counter outside those
        bounds means the simulation state itself is corrupt, and the
        offending net is named so the error points at the gate where the
        bad value entered, not at the final table.
        """
        limit = cycles * patterns
        if toggles.min(initial=0) < 0 or toggles.max(initial=0) > limit:
            bad = int(np.flatnonzero((toggles < 0) | (toggles > limit))[0])
            raise IntegrityError(
                f"net {self.netlist.net_names[bad]!r} reports {toggles[bad]} "
                f"toggles; the physical bound is {limit} "
                f"({cycles} cycles x {patterns} patterns)"
            )
        loads = load_events
        if loads.size and (loads.min() < 0 or loads.max() > limit):
            bad_row = int(np.flatnonzero((loads < 0) | (loads > limit))[0])
            gate = self.dffe_gates[bad_row]
            raise IntegrityError(
                f"register {gate.name!r} reports {loads[bad_row]} load "
                f"events; the physical bound is {limit}"
            )

    def _tag_selected(self, tag: str, prefix: str | None) -> bool:
        return prefix is None or tag.startswith(prefix)

    def _tag_mask(self, prefix: str | None) -> np.ndarray:
        """Boolean mask over interned tags selected by ``prefix`` (cached)."""
        mask = self._prefix_cache.get(prefix)
        if mask is None:
            mask = np.array(
                [self._tag_selected(t, prefix) for t in self._tags], dtype=bool
            )
            self._prefix_cache[prefix] = mask
        return mask

    def power(self, sim: CycleSimulator, tag_prefix: str | None = None) -> PowerResult:
        """Average power from a finished simulation run.

        Args:
            sim: simulator built with ``count_toggles=True`` after running.
            tag_prefix: restrict to nets/registers driven by gates whose tag
                starts with this prefix (e.g. ``"dp"`` for datapath power).
        """
        if not sim.count_toggles:
            raise ValueError("simulator was not counting toggles")
        if sim.toggle_blocks is not None:
            raise ValueError(
                "simulator counts toggles per block; use power_blocks()"
            )
        if sim.cycles_run == 0:
            raise ValueError("no cycles simulated")
        self._check_counters(sim.toggles, sim.load_events, sim.cycles_run, sim.n_patterns)
        return self.power_from_counts(
            sim.toggles, sim.load_events, sim.cycles_run, sim.n_patterns, tag_prefix
        )

    def power_blocks(
        self, sim: CycleSimulator, tag_prefix: str | None = None
    ) -> list[PowerResult]:
        """Per-block average powers from one wide block-parallel run.

        ``sim`` must have been built with ``count_toggles=True`` and
        ``toggle_blocks=B``; the result has one :class:`PowerResult` per
        block, each bit-identical to what :meth:`power` reports for a
        standalone simulator over that block's patterns.  The identity is
        trivial by construction: block counters are exact integer
        restrictions of the standalone ones (same popcount sums over the
        same words), and each block's float pipeline below is the very
        same 1-D contiguous reduction :meth:`power` runs -- a row of the
        C-ordered ``(B, nets)`` counter array is contiguous, so numpy's
        pairwise summation visits identical operands in identical order.
        """
        if not sim.count_toggles:
            raise ValueError("simulator was not counting toggles")
        n_blocks = sim.toggle_blocks
        if n_blocks is None:
            raise ValueError("simulator counts toggles globally; use power()")
        cycles = sim.cycles_run
        if cycles == 0:
            raise ValueError("no cycles simulated")
        block_patterns = sim.n_patterns // n_blocks
        results = []
        for b in range(n_blocks):
            self._check_counters(
                sim.toggles[b], sim.load_events[b], cycles, block_patterns
            )
            results.append(
                self.power_from_counts(
                    sim.toggles[b],
                    sim.load_events[b],
                    cycles,
                    block_patterns,
                    tag_prefix,
                )
            )
        return results

    def power_from_counts(
        self,
        toggles: np.ndarray,
        load_events: np.ndarray,
        cycles: int,
        patterns: int,
        tag_prefix: str | None = None,
    ) -> PowerResult:
        """Toggle/load counters -> :class:`PowerResult` (the shared core).

        ``toggles`` is a 1-D per-net count array, ``load_events`` a 1-D
        per-DFFE count array.  All tag machinery is the interned-index
        form built once at construction, so the conversion is a handful
        of array reductions regardless of design size.
        """
        lib = self.library
        denom = cycles * patterns
        e_ff = lib.energy_per_ff()

        tag_sel = self._tag_mask(tag_prefix)
        n_tags = len(self._tags)

        per_net_ff = toggles * self.net_cap_ff
        net_sel = tag_sel[self._net_tag_idx]
        sw_energy_ff = float((per_net_ff * net_sel).sum())

        # Per-tag switching energy over toggling, selected nets.
        active = net_sel & (toggles != 0)
        sw_by_tag = np.bincount(
            self._net_tag_idx[active], weights=per_net_ff[active], minlength=n_tags
        )
        tag_present = np.bincount(self._net_tag_idx[active], minlength=n_tags) > 0

        # Clock energy: DFFEs burn per load event, plain DFFs every cycle.
        clk_by_tag = np.zeros(n_tags)
        if len(self.dffe_gates):
            dffe_sel = tag_sel[self._dffe_tag_idx]
            clk_by_tag += np.bincount(
                self._dffe_tag_idx[dffe_sel],
                weights=load_events[dffe_sel] * lib.dffe_clock_cap,
                minlength=n_tags,
            )
            tag_present |= np.bincount(self._dffe_tag_idx[dffe_sel], minlength=n_tags) > 0
        clk_by_tag += np.where(tag_sel, self._dff_tag_counts, 0) * (
            denom * lib.dff_clock_cap
        )
        tag_present |= tag_sel & (self._dff_tag_counts > 0)
        clk_energy_ff = float(clk_by_tag.sum())

        by_tag_ff = {
            self._tags[i] or "(untagged)": float(sw_by_tag[i] + clk_by_tag[i])
            for i in np.nonzero(tag_present)[0]
        }

        to_uw = e_ff * lib.f_clk / denom * 1e6
        total_uw = (sw_energy_ff + clk_energy_ff) * to_uw
        if not math.isfinite(total_uw):
            raise IntegrityError(
                f"estimated power is non-finite ({total_uw!r} uW) -- "
                f"switching {sw_energy_ff!r} fF, clock {clk_energy_ff!r} fF"
            )
        return PowerResult(
            total_uw=total_uw,
            switching_uw=sw_energy_ff * to_uw,
            clock_uw=clk_energy_ff * to_uw,
            by_tag={k: v * to_uw for k, v in sorted(by_tag_ff.items())},
            cycles=cycles,
            patterns=patterns,
        )
