"""Quiescent-current (IDDQ) model -- why it cannot catch SFR faults.

The paper remarks (Section 1): "these faults can not be caught by IDDQ
techniques, which measure quiescent current."  IDDQ testing detects
defects that create a static conduction path in an otherwise fully
complementary CMOS circuit -- bridging shorts between two driven nodes,
or gate-oxide defects.  A *logical* stuck-at fault, as modelled here, is
an abstraction of an open or a stuck node: in the quiescent state every
gate still drives its output through exactly one of its networks, so no
static current flows.

This module makes the argument executable:

* :func:`iddq_detectable` -- verdict for a stuck-at fault (always False,
  with the reasoning recorded);
* :class:`BridgingFault` and :func:`iddq_screen_bridges` -- the defect
  class IDDQ *does* catch, modelled as a short between two nets: the
  quiescent state draws current whenever the two nets settle to opposite
  values, which a single vector exposes.

The contrast quantifies the paper's point: the SFR population needs the
dynamic-power test precisely because the static-current screen is blind
to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..logic.faults import FaultSite
from ..logic.simulator import CycleSimulator
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from .library import PowerLibrary

#: Per-gate-type quiescent (subthreshold) leakage current, nA per gate,
#: loosely sized to the same 0.8-micron library as the capacitance tables
#: (a few nA per gate -- orders of magnitude below the dynamic current,
#: which is the paper's point about IDDQ blindness to SFR faults).  The
#: fleet-calibration noise model uses these as the nominal IDDQ a tester
#: subtracts from its total-current measurement.
GATE_LEAK_NA: dict[GateType, float] = {
    GateType.AND: 2.0,
    GateType.OR: 2.0,
    GateType.NAND: 1.6,
    GateType.NOR: 1.6,
    GateType.NOT: 1.0,
    GateType.BUF: 1.4,
    GateType.XOR: 3.0,
    GateType.XNOR: 3.0,
    GateType.MUX2: 2.6,
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
    GateType.DFF: 4.0,
    GateType.DFFE: 4.5,
}


def quiescent_leakage_components(
    netlist: Netlist, library: PowerLibrary | None = None
) -> dict[str, float]:
    """Nominal fault-free quiescent leakage per gate type, in microwatts.

    ``P_leak = Vdd * sum(I_leak)`` over every gate of the type.  Keyed by
    gate-type name so the fleet kernel can align the vector with its
    per-gate-type process-scale components (leakage spreads log-normally
    with channel length and threshold voltage, like capacitance spreads
    with etch -- but with its own, much wider, sigma).
    """
    vdd = (library or PowerLibrary()).vdd
    out: dict[str, float] = {}
    for gate in netlist.gates:
        leak_na = GATE_LEAK_NA.get(gate.gtype, 0.0)
        if leak_na:
            # nA * V = nW; /1e3 -> uW
            out[gate.gtype.name] = out.get(gate.gtype.name, 0.0) + leak_na * vdd / 1e3
    return out


def quiescent_leakage_uw(netlist: Netlist, library: PowerLibrary | None = None) -> float:
    """Total nominal quiescent supply power of the fault-free chip, uW."""
    return float(sum(quiescent_leakage_components(netlist, library).values()))


@dataclass
class IddqVerdict:
    detectable: bool
    reason: str


def iddq_detectable(netlist: Netlist, fault: FaultSite) -> IddqVerdict:
    """Stuck-at faults never elevate quiescent current in this model.

    A stuck-at node is still driven to a full rail in steady state; the
    single-driver netlist invariant guarantees no contention, so the
    quiescent supply current is the fault-free leakage."""
    del netlist  # the verdict is structural, not value-dependent
    return IddqVerdict(
        detectable=False,
        reason=(
            f"stuck-at fault {fault.value} drives a full rail; "
            "no static conduction path, IDDQ unchanged"
        ),
    )


@dataclass(frozen=True)
class BridgingFault:
    """A resistive short between two nets (the defect IDDQ is for)."""

    net_a: int
    net_b: int

    def describe(self, netlist: Netlist) -> str:
        return (
            f"bridge {netlist.net_names[self.net_a]}"
            f" ~ {netlist.net_names[self.net_b]}"
        )


def iddq_screen_bridges(
    netlist: Netlist,
    bridges: list[BridgingFault],
    stimulus,
    threshold_vectors: int = 1,
) -> dict[BridgingFault, bool]:
    """Detect bridges by quiescent-current measurement.

    Simulates the *fault-free* machine under ``stimulus`` (an object with
    ``n_patterns``/``n_cycles``/``apply``); a bridge draws quiescent
    current in any cycle where its two nets settle to opposite known
    values in some pattern.  Detected once that happens in at least
    ``threshold_vectors`` cycle/pattern combinations.
    """
    sim = CycleSimulator(netlist, stimulus.n_patterns)
    hits: dict[BridgingFault, int] = {b: 0 for b in bridges}
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        for b in bridges:
            za, oa = sim.planes(b.net_a)
            zb, ob = sim.planes(b.net_b)
            opposite = (za & ob) | (oa & zb)
            hits[b] += int(np.bitwise_count(opposite).sum())
        sim.latch()
    return {b: count >= threshold_vectors for b, count in hits.items()}
