"""Monte-Carlo power estimation for controller-datapath systems.

The paper grades SFR faults by "simulating the faulty circuit for random
data until the power converges" (Section 5).  ``monte_carlo_power`` runs
batches of random computations through the (optionally faulted) system and
stops when the running mean of the datapath power settles within a
relative tolerance, or a batch budget is exhausted.

``measure_power`` is the single-batch primitive; it also serves the
fixed-test-set experiments of Table 3 (where the data comes from a TPGR
with a chosen seed instead of a Monte-Carlo RNG).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hls.system import NormalModeStimulus, System
from ..logic.faults import FaultSite
from ..logic.simulator import CycleSimulator
from .estimator import PowerEstimator, PowerResult

DATAPATH_TAG = "dp"


def measure_power(
    system: System,
    estimator: PowerEstimator,
    data: dict[str, np.ndarray],
    fault: FaultSite | None = None,
    iterations_window: int = 4,
    hold_cycles: int = 3,
    tag_prefix: str | None = DATAPATH_TAG,
) -> PowerResult:
    """Average datapath power for one batch of input patterns."""
    n_cycles = system.cycles_for(iterations_window, hold_cycles)
    stim = NormalModeStimulus(system, data, n_cycles)
    sim = CycleSimulator(
        system.netlist,
        stim.n_patterns,
        faults=[fault] if fault else None,
        count_toggles=True,
    )
    for cycle in range(n_cycles):
        stim.apply(sim, cycle)
        sim.settle()
        sim.latch()
    return estimator.power(sim, tag_prefix=tag_prefix)


@dataclass
class MonteCarloResult:
    """Converged Monte-Carlo power estimate."""

    power_uw: float
    batches: int
    patterns: int
    history: list[float] = field(default_factory=list)
    converged: bool = True


def random_data(system: System, rng: np.random.Generator, n_patterns: int) -> dict[str, np.ndarray]:
    """Uniform random input data for every primary data input."""
    hi = 1 << system.rtl.width
    return {name: rng.integers(0, hi, n_patterns) for name in system.rtl.dfg.inputs}


def monte_carlo_power(
    system: System,
    estimator: PowerEstimator,
    fault: FaultSite | None = None,
    seed: int = 2000,
    batch_patterns: int = 192,
    max_batches: int = 12,
    min_batches: int = 3,
    rel_tol: float = 0.004,
    iterations_window: int = 4,
    hold_cycles: int = 3,
) -> MonteCarloResult:
    """Run random batches until the cumulative mean power converges.

    Convergence: the cumulative mean moved by less than ``rel_tol``
    (relative) over the last batch, after at least ``min_batches``.
    """
    rng = np.random.default_rng(seed)
    totals: list[float] = []
    history: list[float] = []
    for batch in range(1, max_batches + 1):
        data = random_data(system, rng, batch_patterns)
        result = measure_power(
            system,
            estimator,
            data,
            fault=fault,
            iterations_window=iterations_window,
            hold_cycles=hold_cycles,
        )
        totals.append(result.total_uw)
        mean = float(np.mean(totals))
        history.append(mean)
        if batch >= min_batches:
            prev = history[-2]
            if prev > 0 and abs(mean - prev) / prev < rel_tol:
                return MonteCarloResult(
                    power_uw=mean,
                    batches=batch,
                    patterns=batch * batch_patterns,
                    history=history,
                )
    return MonteCarloResult(
        power_uw=float(np.mean(totals)),
        batches=max_batches,
        patterns=max_batches * batch_patterns,
        history=history,
        converged=False,
    )
