"""Monte-Carlo power estimation for controller-datapath systems.

The paper grades SFR faults by "simulating the faulty circuit for random
data until the power converges" (Section 5).  ``monte_carlo_power`` runs
batches of random computations through the (optionally faulted) system and
stops when the running mean of the datapath power settles within a
relative tolerance, or a batch budget is exhausted.

``measure_power`` is the single-batch primitive; it also serves the
fixed-test-set experiments of Table 3 (where the data comes from a TPGR
with a chosen seed instead of a Monte-Carlo RNG).

A grading campaign runs the same random batches through the fault-free
machine and every faulted one.  ``precompute_batches`` materialises each
batch as a packed :class:`NormalModeStimulus` exactly once; passing the
list to ``monte_carlo_power`` (via ``batches=``) replays it without
regenerating or re-packing data, with results bit-identical to the
generate-per-call path for the same seed and batch size.
(``shared_batches`` memoizes that list per system object, so pool workers
regenerate it locally instead of receiving it pickled.)

``monte_carlo_power_block`` is the fault-parallel campaign kernel: each
fault of a chunk owns one pattern block of a single wide block-parallel
simulator, every Monte-Carlo batch is one compiled-netlist pass for the
whole chunk, per-fault convergence is tracked exactly as the serial loop
does, and converged faults are compacted out of the next batch's
simulator.  With ``cone_power=True`` each batch additionally applies the
cone restriction: one fault-free reference run per batch supplies the
toggle counts of every net outside a fault's sequential fanout cone
(those nets provably never diverge -- see docs/performance.md), and only
the chunk's union cone is simulated.  Either way the per-fault
``MonteCarloResult`` is bit-identical to ``monte_carlo_power``.
"""

from __future__ import annotations

import json
import math
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import IntegrityError
from ..hls.system import NormalModeStimulus, System
from ..logic import values as V
from ..logic.cones import compute_cones
from ..logic.faults import FaultSite
from ..logic.simulator import CycleSimulator, compile_netlist
from .estimator import PowerEstimator, PowerResult

DATAPATH_TAG = "dp"

#: shared Monte-Carlo campaign defaults -- one definition keeps
#: ``monte_carlo_power``, ``grade_sfr_faults`` and every cache/checkpoint
#: fingerprint derived from them in agreement.
MC_DEFAULT_SEED = 2000
MC_DEFAULT_BATCH_PATTERNS = 192
MC_DEFAULT_MAX_BATCHES = 12
MC_DEFAULT_ITERATIONS_WINDOW = 4


def mc_campaign_params(
    seed: int, batch_patterns: int, max_batches: int, iterations_window: int
) -> dict:
    """The result-relevant knobs of one Monte-Carlo grading campaign.

    Two campaigns with equal params (and equal design + fault universe)
    produce bit-identical powers, so this dict keys both the
    crash-recovery checkpoint fingerprint and the persistent store key.
    """
    return {
        "seed": seed,
        "batch_patterns": batch_patterns,
        "max_batches": max_batches,
        "iterations_window": iterations_window,
    }


def _run_batch(
    system: System, stim: NormalModeStimulus, fault: FaultSite | None
) -> CycleSimulator:
    """Simulate one batch stimulus and return the counting simulator."""
    sim = CycleSimulator(
        system.netlist,
        stim.n_patterns,
        faults=[fault] if fault else None,
        count_toggles=True,
    )
    for cycle in range(stim.n_cycles):
        stim.apply(sim, cycle)
        sim.settle()
        sim.latch()
    return sim


def measure_power(
    system: System,
    estimator: PowerEstimator,
    data: dict[str, np.ndarray] | NormalModeStimulus,
    fault: FaultSite | None = None,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    hold_cycles: int = 3,
    tag_prefix: str | None = DATAPATH_TAG,
) -> PowerResult:
    """Average datapath power for one batch of input patterns.

    ``data`` is either a dict of per-input pattern arrays or an already
    packed :class:`NormalModeStimulus` (reused across faults to avoid
    re-packing identical bit-planes).
    """
    if isinstance(data, NormalModeStimulus):
        stim = data
    else:
        n_cycles = system.cycles_for(iterations_window, hold_cycles)
        stim = NormalModeStimulus(system, data, n_cycles)
    sim = _run_batch(system, stim, fault)
    return estimator.power(sim, tag_prefix=tag_prefix)


@dataclass
class ActivityTrace:
    """Per-batch integer activity counters of one Monte-Carlo run.

    ``toggles[b]`` / ``load_events[b]`` are the exact per-net toggle and
    per-DFFE load counters batch ``b`` accumulated -- the *integer*
    sufficient statistic behind every float in the power pipeline.
    Keeping the per-batch resolution (instead of a summed matrix) is
    what makes recovery bit-identical: replaying
    ``power_from_counts`` per batch and averaging visits the very same
    float operands in the very same order as the original campaign
    (see :func:`repro.fleet.activity.recovered_power_uw`).
    """

    toggles: np.ndarray  # (batches, num_nets) int64
    load_events: np.ndarray  # (batches, n_dffe) int64
    cycles: int  # settled cycles per batch
    patterns: int  # patterns per batch

    @property
    def batches(self) -> int:
        return int(self.toggles.shape[0])

    def mean_activity(self) -> tuple[np.ndarray, np.ndarray]:
        """Mean transitions per cycle-pattern: per-net and per-DFFE rows.

        Integer sums divided once by the total ``batches * cycles *
        patterns`` denominator -- exact integers in, one float divide
        out.  These are the columns of the fleet activity matrix ``A``.
        """
        denom = float(self.batches * self.cycles * self.patterns)
        return (
            self.toggles.sum(axis=0, dtype=np.int64) / denom,
            self.load_events.sum(axis=0, dtype=np.int64) / denom,
        )

    def to_json_dict(self) -> dict:
        return {
            "toggles": self.toggles.tolist(),
            "load_events": self.load_events.tolist(),
            "cycles": self.cycles,
            "patterns": self.patterns,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ActivityTrace":
        def rows(key: str) -> np.ndarray:
            arr = np.asarray(data[key], dtype=np.int64)
            if arr.ndim == 1:  # no batches, or zero counters per batch
                arr = arr.reshape(len(data[key]), 0)
            return arr

        return cls(
            toggles=rows("toggles"),
            load_events=rows("load_events"),
            cycles=int(data["cycles"]),
            patterns=int(data["patterns"]),
        )


@dataclass
class MonteCarloResult:
    """Converged Monte-Carlo power estimate."""

    power_uw: float
    batches: int
    patterns: int
    history: list[float] = field(default_factory=list)
    converged: bool = True
    #: per-batch integer counters (only with ``capture_activity=True``);
    #: deliberately excluded from the JSON forms below so journals, the
    #: grading store artifact and checkpoints are unchanged -- activity
    #: persists through its own store artifact (:mod:`repro.fleet`).
    activity: "ActivityTrace | None" = field(
        default=None, compare=False, repr=False
    )

    def to_json_dict(self) -> dict:
        """JSON-safe form for campaign checkpoints.

        Floats round-trip exactly through JSON, so a result replayed from
        a journal is bit-identical to the freshly computed one.  A NaN or
        infinite power is a corrupted computation: serializing it would
        smuggle the corruption into checkpoints and reports, so it is
        rejected here (and by ``to_json``'s ``allow_nan=False``).
        """
        if not all(math.isfinite(v) for v in [self.power_uw, *self.history]):
            raise IntegrityError(
                f"refusing to serialize a non-finite Monte-Carlo power "
                f"(power_uw={self.power_uw!r}, history={self.history!r})"
            )
        return {
            "power_uw": self.power_uw,
            "batches": self.batches,
            "patterns": self.patterns,
            "history": list(self.history),
            "converged": self.converged,
        }

    def to_json(self) -> str:
        """Strict JSON encoding (``allow_nan=False``)."""
        return json.dumps(self.to_json_dict(), allow_nan=False)

    @classmethod
    def from_json_dict(cls, data: dict) -> "MonteCarloResult":
        return cls(
            power_uw=float(data["power_uw"]),
            batches=int(data["batches"]),
            patterns=int(data["patterns"]),
            history=[float(h) for h in data["history"]],
            converged=bool(data["converged"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "MonteCarloResult":
        return cls.from_json_dict(json.loads(text))


def random_data(system: System, rng: np.random.Generator, n_patterns: int) -> dict[str, np.ndarray]:
    """Uniform random input data for every primary data input.

    Values are masked to the datapath width at generation time, so drivers
    downstream (``drive_bus`` asserts this) never see out-of-range words.
    """
    hi = 1 << system.rtl.width
    return {
        name: rng.integers(0, hi, n_patterns) & (hi - 1)
        for name in system.rtl.dfg.inputs
    }


def precompute_batches(
    system: System,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    hold_cycles: int = 3,
) -> list[NormalModeStimulus]:
    """Materialise every Monte-Carlo batch as a packed stimulus, once.

    Drawing all ``max_batches`` batches from one RNG stream reproduces the
    exact per-batch data of the generate-per-call path, so early-converging
    runs simply ignore the tail of the list.
    """
    rng = np.random.default_rng(seed)
    n_cycles = system.cycles_for(iterations_window, hold_cycles)
    return [
        NormalModeStimulus(system, random_data(system, rng, batch_patterns), n_cycles)
        for _ in range(max_batches)
    ]


# Precomputed batch lists, memoized per live System object (the compile-
# cache idiom: id()-keyed, evicted by a weakref finalizer).  Campaign
# workers regenerate their batches from the seed through this cache, so
# the parallel context pickled to each pool never carries the packed
# batch stimuli -- only the knobs.  Regeneration is bit-identical by
# construction (one RNG stream from one seed).
_BATCH_CACHE: dict[int, dict[tuple, list[NormalModeStimulus]]] = {}


def shared_batches(
    system: System,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    hold_cycles: int = 3,
) -> list[NormalModeStimulus]:
    """:func:`precompute_batches`, memoized per system object and knobs."""
    key = id(system)
    per_system = _BATCH_CACHE.get(key)
    if per_system is None:
        per_system = _BATCH_CACHE[key] = {}
        weakref.finalize(system, _BATCH_CACHE.pop, key, None)
    params = (seed, batch_patterns, max_batches, iterations_window, hold_cycles)
    batches = per_system.get(params)
    if batches is None:
        batches = per_system[params] = precompute_batches(
            system,
            seed=seed,
            batch_patterns=batch_patterns,
            max_batches=max_batches,
            iterations_window=iterations_window,
            hold_cycles=hold_cycles,
        )
    return batches


def monte_carlo_power(
    system: System,
    estimator: PowerEstimator,
    fault: FaultSite | None = None,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    min_batches: int = 3,
    rel_tol: float = 0.004,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    hold_cycles: int = 3,
    batches: list[NormalModeStimulus] | None = None,
    capture_activity: bool = False,
) -> MonteCarloResult:
    """Run random batches until the cumulative mean power converges.

    Convergence: the cumulative mean moved by less than ``rel_tol``
    (relative) over the last batch, after at least ``min_batches``.

    Pass ``batches`` (from :func:`precompute_batches`) to reuse packed
    batch stimuli across the fault-free baseline and every faulted run;
    ``seed``/``batch_patterns`` are then ignored in favour of the
    precomputed data.

    With ``capture_activity=True`` the result additionally carries an
    :class:`ActivityTrace` of the per-batch integer counters every float
    was derived from; powers, histories and convergence are bit-identical
    either way (the capture path runs the very same simulations and the
    very same float pipeline -- it only snapshots the counters).
    """
    if batch_patterns < 1 or max_batches < 1 or min_batches < 1:
        raise ValueError(
            "batch_patterns, max_batches and min_batches must all be >= 1 "
            f"(got {batch_patterns}, {max_batches}, {min_batches})"
        )
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    if batches is None:
        rng = np.random.default_rng(seed)
        n_cycles = system.cycles_for(iterations_window, hold_cycles)

        def batch_stim(_batch: int) -> NormalModeStimulus:
            return NormalModeStimulus(
                system, random_data(system, rng, batch_patterns), n_cycles
            )

    else:
        max_batches = min(max_batches, len(batches))

        def batch_stim(batch: int) -> NormalModeStimulus:
            return batches[batch - 1]

    totals: list[float] = []
    history: list[float] = []
    act_toggles: list[np.ndarray] = []
    act_loads: list[np.ndarray] = []

    def _trace(result: PowerResult) -> "ActivityTrace | None":
        if not capture_activity:
            return None
        return ActivityTrace(
            toggles=np.stack(act_toggles),
            load_events=np.stack(act_loads),
            cycles=result.cycles,
            patterns=result.patterns,
        )

    for batch in range(1, max_batches + 1):
        if capture_activity:
            sim = _run_batch(system, batch_stim(batch), fault)
            toggles, loads = sim.counter_snapshot()
            act_toggles.append(toggles)
            act_loads.append(loads)
            result = estimator.power(sim, tag_prefix=DATAPATH_TAG)
        else:
            result = measure_power(
                system,
                estimator,
                batch_stim(batch),
                fault=fault,
                iterations_window=iterations_window,
                hold_cycles=hold_cycles,
            )
        # Accumulation boundary guard: one bad batch must be caught here,
        # where it enters, not after it has been averaged into the final
        # table (a NaN poisons every later mean silently).
        if not math.isfinite(result.total_uw) or result.total_uw < 0:
            raise IntegrityError(
                f"Monte-Carlo batch {batch} produced an unusable power "
                f"{result.total_uw!r} uW (fault={fault!r})"
            )
        totals.append(result.total_uw)
        mean = float(np.mean(totals))
        history.append(mean)
        if batch >= min_batches:
            prev = history[-2]
            if prev > 0 and abs(mean - prev) / prev < rel_tol:
                return MonteCarloResult(
                    power_uw=mean,
                    batches=batch,
                    patterns=batch * result.patterns,
                    history=history,
                    activity=_trace(result),
                )
    return MonteCarloResult(
        power_uw=float(np.mean(totals)),
        batches=max_batches,
        patterns=max_batches * (result.patterns if totals else 0),
        history=history,
        converged=False,
        activity=_trace(result) if totals else None,
    )


class _FlatBlockKernel:
    """Per-chunk flat (full-netlist) block-parallel power kernel.

    Fault ``b`` owns pattern block ``b`` of a simulator ``len(faults)``
    times wider than one batch; stem forces and branch poisons are
    confined to their block, and the per-block toggle/load counters make
    each block's power exactly what a standalone faulted simulator over
    the same batch reports.  One instance serves every batch of an
    unchanged live-fault set (state and counters reset between batches,
    matching the fresh-simulator-per-batch serial semantics); the driver
    rebuilds a narrower kernel when convergence compacts faults out.
    """

    def __init__(
        self,
        system: System,
        estimator: PowerEstimator,
        faults: list[FaultSite],
        capture: bool = False,
    ):
        self.system = system
        self.estimator = estimator
        self.faults = list(faults)
        self.capture = capture
        #: per-block counter snapshot of the last ``run`` (capture mode)
        self.last_counts: tuple[np.ndarray, np.ndarray] | None = None
        self.sim: CycleSimulator | None = None

    def run(self, stim: NormalModeStimulus, tag_prefix: str | None) -> list[PowerResult]:
        from ..logic.faultsim import _TiledSim

        n_blocks = len(self.faults)
        if self.sim is None:
            wpb = stim.n_patterns // V.WORD_BITS
            blocks = [(b * wpb, (b + 1) * wpb) for b in range(n_blocks)]
            self.sim = CycleSimulator(
                self.system.netlist,
                n_blocks * stim.n_patterns,
                faults=self.faults,
                fault_blocks=blocks,
                count_toggles=True,
                toggle_blocks=n_blocks,
            )
            self.tiled = _TiledSim(self.sim, stim.n_patterns, n_blocks)
        else:
            self.sim.reset_state()
            self.sim._toggles_rows[:] = 0
            self.sim.load_events[:] = 0
        sim = self.sim
        for cycle in range(stim.n_cycles):
            stim.apply(self.tiled, cycle)
            sim.settle()
            sim.latch()
        if self.capture:
            self.last_counts = sim.counter_snapshot()
        return self.estimator.power_blocks(sim, tag_prefix=tag_prefix)


@dataclass
class _GoldenBatch:
    """Fault-free reference of one batch: per-cycle planes + counters."""

    planes: list[np.ndarray]  # (2, n_rows, words) snapshot per settled cycle
    toggles: np.ndarray  # (num_nets,) fault-free toggle counts
    load_events: np.ndarray  # (n_dffe,) fault-free DFFE load counts
    cycles: int


# Golden batch runs, memoized per live stimulus object (grading replays
# the same precomputed batches for every fault chunk, so each worker
# simulates each batch's fault-free reference exactly once).
_GOLDEN_CACHE: dict[int, _GoldenBatch] = {}


def _golden_batch(system: System, stim: NormalModeStimulus) -> _GoldenBatch:
    key = id(stim)
    golden = _GOLDEN_CACHE.get(key)
    if golden is not None:
        return golden
    sim = CycleSimulator(system.netlist, stim.n_patterns, count_toggles=True)
    planes = []
    for cycle in range(stim.n_cycles):
        stim.apply(sim, cycle)
        sim.settle()
        planes.append(sim.snapshot_planes())
        sim.latch()
    golden = _GoldenBatch(
        planes, sim.toggles.copy(), sim.load_events.copy(), sim.cycles_run
    )
    weakref.finalize(stim, _GOLDEN_CACHE.pop, key, None)
    _GOLDEN_CACHE[key] = golden
    return golden


class _ConeBlockKernel:
    """Per-chunk cone-restricted block-parallel power kernel.

    Only a fault's sequential fanout cone can ever diverge from the
    fault-free machine (the PR-5 cone theorem, docs/performance.md), so a
    fault's power differs from golden only through the toggle counts of
    its cone nets and the load counts of its cone DFFEs.  One golden run
    per batch (memoized across chunks) supplies every other counter; the
    chunk simulates just its union cone on the block-parallel
    :class:`~repro.logic.faultsim._ConeSim`, counting toggles per block
    over the union nets.  Counters are exact integers either way, so the
    resulting powers are bit-identical to the flat kernel's.  Like
    :class:`_FlatBlockKernel`, one instance serves every batch of an
    unchanged live-fault set.
    """

    def __init__(
        self,
        system: System,
        estimator: PowerEstimator,
        faults: list[FaultSite],
        cones,
        capture: bool = False,
    ):
        self.system = system
        self.estimator = estimator
        self.faults = list(faults)
        self.cones = cones
        self.capture = capture
        #: per-block counter snapshot of the last ``run`` (capture mode)
        self.last_counts: tuple[np.ndarray, np.ndarray] | None = None
        self.cs = None

    def _build(self, wpb: int) -> None:
        from ..logic.faultsim import _ConeSim

        netlist = self.system.netlist
        n_blocks = len(self.faults)
        self.cs = cs = _ConeSim(
            netlist,
            compile_netlist(netlist),
            self.faults,
            self.cones,
            [],
            wpb,
            False,
            count_toggles=True,
        )
        self.counted = np.array(sorted(cs.union_nets), dtype=np.int64)
        self.state = np.zeros(
            (2, len(cs.state_rows), n_blocks * wpb), dtype=np.uint64
        )
        self.prev = np.empty((2, len(self.counted), n_blocks * wpb), dtype=np.uint64)
        self.counts = np.zeros((n_blocks, len(self.counted)), dtype=np.int64)

    def run(self, stim: NormalModeStimulus, tag_prefix: str | None) -> list[PowerResult]:
        golden = _golden_batch(self.system, stim)
        n_blocks = len(self.faults)
        wpb = stim.n_patterns // V.WORD_BITS
        if self.cs is None:
            self._build(wpb)
        else:
            self.cs.sim.reset_state()
            self.cs.sim.load_events[:] = 0
            self.state[:] = 0
            self.counts[:] = 0
        cs, counted, state, prev, counts = (
            self.cs, self.counted, self.state, self.prev, self.counts,
        )
        sim = cs.sim
        have_prev = False
        for cycle in range(stim.n_cycles):
            cs.run_cycle(golden.planes[cycle], state)
            if have_prev:
                flips = (prev[0] & sim.O[counted]) | (prev[1] & sim.Z[counted])
                counts += (
                    np.bitwise_count(flips)
                    .reshape(len(counted), n_blocks, wpb)
                    .sum(axis=2, dtype=np.int64)
                    .T
                )
            prev[0] = sim.Z[counted]
            prev[1] = sim.O[counted]
            have_prev = True
            cs.latch(state)
        # Splice: golden counters everywhere, simulated counters on the
        # union cone.  For a block whose fault's own cone is a strict
        # subset of the union, the extra union rows carry fault-free
        # values in that block (they are outside the fault's cone), so
        # the spliced counts still equal the standalone faulted run's.
        estimator = self.estimator
        toggles = np.tile(golden.toggles, (n_blocks, 1))
        toggles[:, counted] = counts
        loads = np.tile(golden.load_events, (n_blocks, 1))
        for group in cs.seq_subs:
            if group.dffe_rows is not None:
                loads[:, group.dffe_rows] = sim.load_events[:, group.dffe_rows]
        if self.capture:
            # The spliced arrays above are freshly allocated each run, so
            # they are safe to hand out without another copy.
            self.last_counts = (toggles, loads)
        results = []
        for b in range(n_blocks):
            estimator._check_counters(
                toggles[b], loads[b], golden.cycles, stim.n_patterns
            )
            results.append(
                estimator.power_from_counts(
                    toggles[b], loads[b], golden.cycles, stim.n_patterns, tag_prefix
                )
            )
        return results


def monte_carlo_power_block(
    system: System,
    estimator: PowerEstimator,
    faults: list[FaultSite],
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    min_batches: int = 3,
    rel_tol: float = 0.004,
    iterations_window: int = MC_DEFAULT_ITERATIONS_WINDOW,
    hold_cycles: int = 3,
    batches: list[NormalModeStimulus] | None = None,
    cone_power: bool = True,
    capture_activity: bool = False,
) -> list[MonteCarloResult]:
    """Monte-Carlo power of a whole fault chunk in block-parallel passes.

    Returns one :class:`MonteCarloResult` per fault, bit-identical to
    calling :func:`monte_carlo_power` per fault with the same knobs --
    same ``power_uw``, ``batches``, ``patterns`` and ``history``.  Each
    batch is one wide simulation over the still-unconverged faults
    (converged faults are compacted out, exactly mirroring the serial
    loop's early return), flat or cone-restricted per ``cone_power``.
    With ``capture_activity=True`` each result also carries its
    :class:`ActivityTrace` of per-batch integer counters (the counters
    the kernels already accumulate -- capture only snapshots them).

    Batches whose pattern count is not a multiple of the 64-bit word
    size cannot be block-partitioned and fall back to the serial
    per-fault path.  Callers are responsible for keeping chunks small
    enough for the ``len(faults) * batch_patterns``-wide simulator to
    fit in memory (the grading layer chunks accordingly).
    """
    faults = list(faults)
    if not faults:
        return []
    if batch_patterns < 1 or max_batches < 1 or min_batches < 1:
        raise ValueError(
            "batch_patterns, max_batches and min_batches must all be >= 1 "
            f"(got {batch_patterns}, {max_batches}, {min_batches})"
        )
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    patterns_per_batch = batches[0].n_patterns if batches else batch_patterns
    if patterns_per_batch % V.WORD_BITS:
        return [
            monte_carlo_power(
                system,
                estimator,
                fault=fault,
                seed=seed,
                batch_patterns=batch_patterns,
                max_batches=max_batches,
                min_batches=min_batches,
                rel_tol=rel_tol,
                iterations_window=iterations_window,
                hold_cycles=hold_cycles,
                batches=batches,
                capture_activity=capture_activity,
            )
            for fault in faults
        ]
    if batches is None:
        rng = np.random.default_rng(seed)
        n_cycles = system.cycles_for(iterations_window, hold_cycles)

        def batch_stim(_batch: int) -> NormalModeStimulus:
            return NormalModeStimulus(
                system, random_data(system, rng, batch_patterns), n_cycles
            )

    else:
        max_batches = min(max_batches, len(batches))

        def batch_stim(batch: int) -> NormalModeStimulus:
            return batches[batch - 1]

    cones = compute_cones(system.netlist, faults) if cone_power else None
    n_faults = len(faults)
    totals: list[list[float]] = [[] for _ in range(n_faults)]
    history: list[list[float]] = [[] for _ in range(n_faults)]
    act_toggles: list[list[np.ndarray]] = [[] for _ in range(n_faults)]
    act_loads: list[list[np.ndarray]] = [[] for _ in range(n_faults)]
    act_shape: list[tuple[int, int]] = [(0, 0)] * n_faults  # (cycles, patterns)
    final: list[MonteCarloResult | None] = [None] * n_faults

    def _trace(i: int) -> "ActivityTrace | None":
        if not capture_activity:
            return None
        cycles, patterns = act_shape[i]
        return ActivityTrace(
            toggles=np.stack(act_toggles[i]),
            load_events=np.stack(act_loads[i]),
            cycles=cycles,
            patterns=patterns,
        )

    live = list(range(n_faults))
    kernel = None
    kernel_live: list[int] = []
    for batch in range(1, max_batches + 1):
        stim = batch_stim(batch)
        if kernel is None or kernel_live != live:
            # Convergence compaction: rebuild the kernel one block per
            # still-unconverged fault; an unchanged live set reuses the
            # previous batch's simulator (state reset, counters zeroed).
            live_faults = [faults[i] for i in live]
            kernel = (
                _ConeBlockKernel(system, estimator, live_faults, cones, capture_activity)
                if cone_power
                else _FlatBlockKernel(system, estimator, live_faults, capture_activity)
            )
            kernel_live = list(live)
        powers = kernel.run(stim, DATAPATH_TAG)
        survivors = []
        for pos, i in enumerate(live):
            result = powers[pos]
            # Accumulation boundary guard, as in the serial loop: one bad
            # batch is caught where it enters, not after averaging.
            if not math.isfinite(result.total_uw) or result.total_uw < 0:
                raise IntegrityError(
                    f"Monte-Carlo batch {batch} produced an unusable power "
                    f"{result.total_uw!r} uW (fault={faults[i]!r})"
                )
            if capture_activity:
                assert kernel.last_counts is not None
                act_toggles[i].append(kernel.last_counts[0][pos])
                act_loads[i].append(kernel.last_counts[1][pos])
                act_shape[i] = (result.cycles, result.patterns)
            totals[i].append(result.total_uw)
            mean = float(np.mean(totals[i]))
            history[i].append(mean)
            if batch >= min_batches:
                prev = history[i][-2]
                if prev > 0 and abs(mean - prev) / prev < rel_tol:
                    final[i] = MonteCarloResult(
                        power_uw=mean,
                        batches=batch,
                        patterns=batch * result.patterns,
                        history=history[i],
                        activity=_trace(i),
                    )
                    continue
            survivors.append(i)
        live = survivors
        if not live:
            break
    for i in live:
        final[i] = MonteCarloResult(
            power_uw=float(np.mean(totals[i])),
            batches=max_batches,
            patterns=max_batches * patterns_per_batch,
            history=history[i],
            converged=False,
            activity=_trace(i),
        )
    assert all(r is not None for r in final)
    return final  # type: ignore[return-value]
