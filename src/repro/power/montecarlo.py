"""Monte-Carlo power estimation for controller-datapath systems.

The paper grades SFR faults by "simulating the faulty circuit for random
data until the power converges" (Section 5).  ``monte_carlo_power`` runs
batches of random computations through the (optionally faulted) system and
stops when the running mean of the datapath power settles within a
relative tolerance, or a batch budget is exhausted.

``measure_power`` is the single-batch primitive; it also serves the
fixed-test-set experiments of Table 3 (where the data comes from a TPGR
with a chosen seed instead of a Monte-Carlo RNG).

A grading campaign runs the same random batches through the fault-free
machine and every faulted one.  ``precompute_batches`` materialises each
batch as a packed :class:`NormalModeStimulus` exactly once; passing the
list to ``monte_carlo_power`` (via ``batches=``) replays it without
regenerating or re-packing data, with results bit-identical to the
generate-per-call path for the same seed and batch size.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import IntegrityError
from ..hls.system import NormalModeStimulus, System
from ..logic.faults import FaultSite
from ..logic.simulator import CycleSimulator
from .estimator import PowerEstimator, PowerResult

DATAPATH_TAG = "dp"

#: shared Monte-Carlo campaign defaults -- one definition keeps
#: ``monte_carlo_power``, ``grade_sfr_faults`` and every cache/checkpoint
#: fingerprint derived from them in agreement.
MC_DEFAULT_SEED = 2000
MC_DEFAULT_BATCH_PATTERNS = 192
MC_DEFAULT_MAX_BATCHES = 12
MC_DEFAULT_ITERATIONS_WINDOW = 4


def mc_campaign_params(
    seed: int, batch_patterns: int, max_batches: int, iterations_window: int
) -> dict:
    """The result-relevant knobs of one Monte-Carlo grading campaign.

    Two campaigns with equal params (and equal design + fault universe)
    produce bit-identical powers, so this dict keys both the
    crash-recovery checkpoint fingerprint and the persistent store key.
    """
    return {
        "seed": seed,
        "batch_patterns": batch_patterns,
        "max_batches": max_batches,
        "iterations_window": iterations_window,
    }


def measure_power(
    system: System,
    estimator: PowerEstimator,
    data: dict[str, np.ndarray] | NormalModeStimulus,
    fault: FaultSite | None = None,
    iterations_window: int = 4,
    hold_cycles: int = 3,
    tag_prefix: str | None = DATAPATH_TAG,
) -> PowerResult:
    """Average datapath power for one batch of input patterns.

    ``data`` is either a dict of per-input pattern arrays or an already
    packed :class:`NormalModeStimulus` (reused across faults to avoid
    re-packing identical bit-planes).
    """
    if isinstance(data, NormalModeStimulus):
        stim = data
    else:
        n_cycles = system.cycles_for(iterations_window, hold_cycles)
        stim = NormalModeStimulus(system, data, n_cycles)
    sim = CycleSimulator(
        system.netlist,
        stim.n_patterns,
        faults=[fault] if fault else None,
        count_toggles=True,
    )
    for cycle in range(stim.n_cycles):
        stim.apply(sim, cycle)
        sim.settle()
        sim.latch()
    return estimator.power(sim, tag_prefix=tag_prefix)


@dataclass
class MonteCarloResult:
    """Converged Monte-Carlo power estimate."""

    power_uw: float
    batches: int
    patterns: int
    history: list[float] = field(default_factory=list)
    converged: bool = True

    def to_json_dict(self) -> dict:
        """JSON-safe form for campaign checkpoints.

        Floats round-trip exactly through JSON, so a result replayed from
        a journal is bit-identical to the freshly computed one.  A NaN or
        infinite power is a corrupted computation: serializing it would
        smuggle the corruption into checkpoints and reports, so it is
        rejected here (and by ``to_json``'s ``allow_nan=False``).
        """
        if not all(math.isfinite(v) for v in [self.power_uw, *self.history]):
            raise IntegrityError(
                f"refusing to serialize a non-finite Monte-Carlo power "
                f"(power_uw={self.power_uw!r}, history={self.history!r})"
            )
        return {
            "power_uw": self.power_uw,
            "batches": self.batches,
            "patterns": self.patterns,
            "history": list(self.history),
            "converged": self.converged,
        }

    def to_json(self) -> str:
        """Strict JSON encoding (``allow_nan=False``)."""
        return json.dumps(self.to_json_dict(), allow_nan=False)

    @classmethod
    def from_json_dict(cls, data: dict) -> "MonteCarloResult":
        return cls(
            power_uw=float(data["power_uw"]),
            batches=int(data["batches"]),
            patterns=int(data["patterns"]),
            history=[float(h) for h in data["history"]],
            converged=bool(data["converged"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "MonteCarloResult":
        return cls.from_json_dict(json.loads(text))


def random_data(system: System, rng: np.random.Generator, n_patterns: int) -> dict[str, np.ndarray]:
    """Uniform random input data for every primary data input.

    Values are masked to the datapath width at generation time, so drivers
    downstream (``drive_bus`` asserts this) never see out-of-range words.
    """
    hi = 1 << system.rtl.width
    return {
        name: rng.integers(0, hi, n_patterns) & (hi - 1)
        for name in system.rtl.dfg.inputs
    }


def precompute_batches(
    system: System,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    iterations_window: int = 4,
    hold_cycles: int = 3,
) -> list[NormalModeStimulus]:
    """Materialise every Monte-Carlo batch as a packed stimulus, once.

    Drawing all ``max_batches`` batches from one RNG stream reproduces the
    exact per-batch data of the generate-per-call path, so early-converging
    runs simply ignore the tail of the list.
    """
    rng = np.random.default_rng(seed)
    n_cycles = system.cycles_for(iterations_window, hold_cycles)
    return [
        NormalModeStimulus(system, random_data(system, rng, batch_patterns), n_cycles)
        for _ in range(max_batches)
    ]


def monte_carlo_power(
    system: System,
    estimator: PowerEstimator,
    fault: FaultSite | None = None,
    seed: int = MC_DEFAULT_SEED,
    batch_patterns: int = MC_DEFAULT_BATCH_PATTERNS,
    max_batches: int = MC_DEFAULT_MAX_BATCHES,
    min_batches: int = 3,
    rel_tol: float = 0.004,
    iterations_window: int = 4,
    hold_cycles: int = 3,
    batches: list[NormalModeStimulus] | None = None,
) -> MonteCarloResult:
    """Run random batches until the cumulative mean power converges.

    Convergence: the cumulative mean moved by less than ``rel_tol``
    (relative) over the last batch, after at least ``min_batches``.

    Pass ``batches`` (from :func:`precompute_batches`) to reuse packed
    batch stimuli across the fault-free baseline and every faulted run;
    ``seed``/``batch_patterns`` are then ignored in favour of the
    precomputed data.
    """
    if batch_patterns < 1 or max_batches < 1 or min_batches < 1:
        raise ValueError(
            "batch_patterns, max_batches and min_batches must all be >= 1 "
            f"(got {batch_patterns}, {max_batches}, {min_batches})"
        )
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    if batches is None:
        rng = np.random.default_rng(seed)
        n_cycles = system.cycles_for(iterations_window, hold_cycles)

        def batch_stim(_batch: int) -> NormalModeStimulus:
            return NormalModeStimulus(
                system, random_data(system, rng, batch_patterns), n_cycles
            )

    else:
        max_batches = min(max_batches, len(batches))

        def batch_stim(batch: int) -> NormalModeStimulus:
            return batches[batch - 1]

    totals: list[float] = []
    history: list[float] = []
    for batch in range(1, max_batches + 1):
        result = measure_power(
            system,
            estimator,
            batch_stim(batch),
            fault=fault,
            iterations_window=iterations_window,
            hold_cycles=hold_cycles,
        )
        # Accumulation boundary guard: one bad batch must be caught here,
        # where it enters, not after it has been averaged into the final
        # table (a NaN poisons every later mean silently).
        if not math.isfinite(result.total_uw) or result.total_uw < 0:
            raise IntegrityError(
                f"Monte-Carlo batch {batch} produced an unusable power "
                f"{result.total_uw!r} uW (fault={fault!r})"
            )
        totals.append(result.total_uw)
        mean = float(np.mean(totals))
        history.append(mean)
        if batch >= min_batches:
            prev = history[-2]
            if prev > 0 and abs(mean - prev) / prev < rel_tol:
                return MonteCarloResult(
                    power_uw=mean,
                    batches=batch,
                    patterns=batch * result.patterns,
                    history=history,
                )
    return MonteCarloResult(
        power_uw=float(np.mean(totals)),
        batches=max_batches,
        patterns=max_batches * (result.patterns if totals else 0),
        history=history,
        converged=False,
    )
