"""power subpackage."""
