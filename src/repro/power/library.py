"""Switched-capacitance library for dynamic power estimation.

Dynamic energy per net toggle is ``C_net * Vdd^2`` where ``C_net`` sums the
driver's output (self + drain) capacitance, the input pin capacitance of
every fanout pin, and a per-fanout wire estimate.  Registers additionally
burn internal clock energy: an enable-gated datapath register (DFFE) only
on cycles its load line is high -- the gated-clock assumption under which
the paper shows extra-load SFR faults *always* increase power -- while the
controller's own state flip-flops (DFF) clock every cycle.

Values are in femtofarads, loosely scaled to a 0.8-micron standard-cell
library (the paper used VLSI Technology's VSC450 [18]); ``CAL_SCALE`` is
the single global calibration constant chosen so the fault-free 4-bit
Diffeq datapath lands near the paper's 1679 uW at 5 V / 20 MHz.  Only
absolute microwatts depend on it -- every percentage in the reproduced
tables/figures is a ratio of switched capacitance and is calibration
independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.gates import GateType

#: Supply voltage (V) and clock frequency (Hz) for absolute power numbers.
VDD = 5.0
F_CLK = 20e6

#: Global calibration multiplier (dimensionless), chosen so the fault-free
#: 4-bit Diffeq datapath's Monte-Carlo power matches the paper's 1679 uW.
CAL_SCALE = 3.0708

#: Output (self + drain) capacitance per gate type, fF.
OUTPUT_CAP_FF: dict[GateType, float] = {
    GateType.AND: 28.0,
    GateType.OR: 28.0,
    GateType.NAND: 22.0,
    GateType.NOR: 22.0,
    GateType.NOT: 15.0,
    GateType.BUF: 20.0,
    GateType.XOR: 42.0,
    GateType.XNOR: 42.0,
    GateType.MUX2: 36.0,
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
    GateType.DFF: 48.0,
    GateType.DFFE: 52.0,
}

#: Input pin capacitance per gate type, fF per pin.
INPUT_CAP_FF: dict[GateType, float] = {
    GateType.AND: 14.0,
    GateType.OR: 14.0,
    GateType.NAND: 14.0,
    GateType.NOR: 14.0,
    GateType.NOT: 12.0,
    GateType.BUF: 12.0,
    GateType.XOR: 24.0,
    GateType.XNOR: 24.0,
    GateType.MUX2: 18.0,
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
    GateType.DFF: 16.0,
    GateType.DFFE: 16.0,
}

#: Estimated interconnect capacitance per fanout pin, fF.
WIRE_CAP_FF = 8.0

#: Internal clock-tree + master/slave energy of a DFFE, charged per
#: *enabled* cycle, expressed as an equivalent switched capacitance (fF).
DFFE_CLOCK_CAP_FF = 90.0

#: Internal clock energy of an always-clocked DFF per cycle (fF).
DFF_CLOCK_CAP_FF = 45.0

#: Primary-input pads: treat as zero-cost drivers (tester supplies them).
PI_DRIVE_CAP_FF = 0.0


@dataclass
class PowerLibrary:
    """A complete capacitance table (override fields to explore ablations)."""

    vdd: float = VDD
    f_clk: float = F_CLK
    cal_scale: float = CAL_SCALE
    output_cap: dict[GateType, float] = field(default_factory=lambda: dict(OUTPUT_CAP_FF))
    input_cap: dict[GateType, float] = field(default_factory=lambda: dict(INPUT_CAP_FF))
    wire_cap: float = WIRE_CAP_FF
    dffe_clock_cap: float = DFFE_CLOCK_CAP_FF
    dff_clock_cap: float = DFF_CLOCK_CAP_FF

    def energy_per_ff(self) -> float:
        """Joules switched per femtofarad at this Vdd (with calibration)."""
        return self.cal_scale * 1e-15 * self.vdd * self.vdd


DEFAULT_LIBRARY = PowerLibrary()
