"""Content-addressed, SQLite-indexed artifact store.

Layout of a store root directory::

    <root>/index.db            SQLite index: stage key -> blob address + meta
    <root>/objects/ab/abcdef…  blobs, named by the sha-256 of their bytes
    <root>/store.lock          advisory writer lock (fcntl.flock)

Design points:

* **Content addressing.**  A blob's filename *is* the sha-256 of its
  bytes, so identical payloads dedup to one file and every read can be
  integrity-checked by rehashing -- a flipped bit on disk is detected on
  the next ``get`` and surfaces as :class:`ArtifactCorrupt` instead of a
  silently wrong campaign result.
* **Atomic writes.**  Blobs are written to a temp file in the objects
  tree and ``os.replace``-d into place; the index row is inserted only
  after the blob is durable.  A crash mid-publish leaves either nothing
  or an unreferenced blob (cleaned by :meth:`ArtifactStore.gc`), never a
  dangling index row.
* **Concurrent readers, single writer.**  Point reads never lock.  All
  writes (publish, gc, corruption quarantine) serialize on an advisory
  exclusive ``flock`` over ``store.lock``; a second writer either waits
  up to ``lock_timeout`` seconds or fails fast with
  :class:`StoreLockError`.
* **Whole-pass maintenance locks.**  :meth:`ArtifactStore.gc` holds the
  exclusive lock for its *entire* mark-and-sweep pass and
  :meth:`ArtifactStore.verify` (and the fabric scrub built on it) holds
  a *shared* flock for its entire scan, so an in-flight publish can
  never interleave with either: a publish's freshly written blob cannot
  be swept as an orphan between the blob write and the index insert,
  and a scrub can never mis-count a half-published artifact as a
  missing replica.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from .fingerprint import canonical_json

try:  # advisory file locking; POSIX-only, degraded no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

#: default seconds a writer waits for the store lock before giving up
DEFAULT_LOCK_TIMEOUT = 10.0

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS artifacts (
    key        TEXT PRIMARY KEY,
    kind       TEXT NOT NULL,
    design     TEXT NOT NULL,
    blob_sha   TEXT NOT NULL,
    size_bytes INTEGER NOT NULL,
    created_at REAL NOT NULL,
    wall_s     REAL NOT NULL DEFAULT 0.0,
    meta       TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_artifacts_kind_design
    ON artifacts (kind, design);
"""


class StoreError(RuntimeError):
    """Base class for artifact-store failures."""


class StoreLockError(StoreError):
    """The single-writer lock could not be acquired in time."""


class ArtifactCorrupt(StoreError):
    """A blob's bytes no longer hash to their content address."""

    def __init__(self, key: str, path: Path, expected: str, actual: str):
        self.key = key
        self.path = path
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"artifact {key} blob {path} fails its content hash "
            f"(expected {expected[:12]}…, got {actual[:12]}…)"
        )


@dataclass
class ArtifactRow:
    """One index entry (without its payload)."""

    key: str
    kind: str
    design: str
    blob_sha: str
    size_bytes: int
    created_at: float
    wall_s: float
    meta: dict


class ArtifactStore:
    """Content-addressed artifact store rooted at one directory."""

    def __init__(self, root: str | os.PathLike, lock_timeout: float = DEFAULT_LOCK_TIMEOUT):
        self.root = Path(root)
        self.lock_timeout = lock_timeout
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "objects").mkdir(exist_ok=True)
        self._db_path = self.root / "index.db"
        with self._connect() as con:
            con.executescript(_SCHEMA_SQL)

    # -------------------------------------------------------------- plumbing
    def _connect(self) -> sqlite3.Connection:
        con = sqlite3.connect(self._db_path, timeout=self.lock_timeout)
        con.row_factory = sqlite3.Row
        return con

    def _blob_path(self, sha: str) -> Path:
        return self.root / "objects" / sha[:2] / sha

    def _write_blob(self, data: bytes) -> tuple[str, int]:
        """Write ``data`` content-addressed and atomically; return (sha, size)."""
        sha = hashlib.sha256(data).hexdigest()
        final = self._blob_path(sha)
        if final.exists():  # content-addressed dedup
            return sha, len(data)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.parent / f".tmp-{os.getpid()}-{sha[:12]}"
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
        return sha, len(data)

    def ensure_schema(self) -> None:
        """(Re)create the index schema; heals a deleted/wiped shard DB."""
        with self._connect() as con:
            con.executescript(_SCHEMA_SQL)

    # ------------------------------------------------------------ write lock
    def writer(self, timeout: float | None = None) -> "_FileLock":
        """Context manager acquiring the store's exclusive writer lock."""
        limit = self.lock_timeout if timeout is None else timeout
        return _FileLock(self.root / "store.lock", limit, shared=False)

    def reader(self, timeout: float | None = None) -> "_FileLock":
        """Context manager acquiring a *shared* lock on the store.

        Shared holders (verify/scrub passes) coexist with each other and
        with lock-free point reads, but exclude writers for the whole
        pass -- the fix for the gc/verify-vs-publish race: a publish
        that has written its blob but not yet inserted its index row can
        never be observed (and its fresh blob never swept) by a
        maintenance pass that started before it.
        """
        limit = self.lock_timeout if timeout is None else timeout
        return _FileLock(self.root / "store.lock", limit, shared=True)

    # --------------------------------------------------------------- publish
    def put(
        self,
        kind: str,
        key: str,
        payload: Any,
        design: str = "",
        meta: dict | None = None,
        wall_s: float = 0.0,
        lock_timeout: float | None = None,
    ) -> str:
        """Store one stage payload under ``key``; returns the blob sha.

        The payload is serialized canonically, so bit-identical results
        always produce (and dedup to) the same blob.  Raises
        :class:`StoreLockError` if another writer holds the lock past
        the timeout.
        """
        data = canonical_json(payload).encode("utf-8")
        with self.writer(lock_timeout):
            sha, size = self._write_blob(data)
            with self._connect() as con:
                con.execute(
                    "INSERT OR REPLACE INTO artifacts "
                    "(key, kind, design, blob_sha, size_bytes, created_at, wall_s, meta) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        kind,
                        design,
                        sha,
                        size,
                        time.time(),
                        wall_s,
                        canonical_json(meta or {}),
                    ),
                )
        return sha

    def put_many(
        self,
        rows: list[tuple],
        wall_s: float = 0.0,
        lock_timeout: float | None = None,
    ) -> int:
        """Store many ``(kind, key, payload, design, meta)`` rows at once.

        One writer lock and one SQLite transaction for the whole batch --
        per-fault incremental publication writes thousands of index rows,
        and paying the flock/fsync/commit cost per row would dominate the
        campaign it is trying to cache.  Identical payloads still dedup
        to a single blob.  Returns the number of index rows written.
        """
        if not rows:
            return 0
        now = time.time()
        with self.writer(lock_timeout):
            inserts = []
            for kind, key, payload, design, meta in rows:
                data = canonical_json(payload).encode("utf-8")
                sha, size = self._write_blob(data)
                inserts.append(
                    (key, kind, design or "", sha, size, now, wall_s,
                     canonical_json(meta or {}))
                )
            with self._connect() as con:
                con.executemany(
                    "INSERT OR REPLACE INTO artifacts "
                    "(key, kind, design, blob_sha, size_bytes, created_at, wall_s, meta) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    inserts,
                )
        return len(inserts)

    # ---------------------------------------------------------------- lookup
    def row(self, key: str) -> ArtifactRow | None:
        with self._connect() as con:
            r = con.execute("SELECT * FROM artifacts WHERE key = ?", (key,)).fetchone()
        if r is None:
            return None
        return ArtifactRow(
            key=r["key"],
            kind=r["kind"],
            design=r["design"],
            blob_sha=r["blob_sha"],
            size_bytes=r["size_bytes"],
            created_at=r["created_at"],
            wall_s=r["wall_s"],
            meta=json.loads(r["meta"]),
        )

    def get_bytes(self, key: str) -> tuple[bytes, ArtifactRow] | None:
        """Fetch and integrity-verify one payload's raw bytes.

        Returns None on a clean miss.  A missing or corrupted blob
        raises :class:`ArtifactCorrupt` after quarantining the entry
        (best effort -- quarantine is skipped if another writer holds
        the lock) so the next run recomputes instead of crashing again.
        """
        row = self.row(key)
        if row is None:
            return None
        path = self._blob_path(row.blob_sha)
        try:
            data = path.read_bytes()
        except OSError:
            self._quarantine(key, path)
            raise ArtifactCorrupt(key, path, row.blob_sha, "<missing>")
        actual = hashlib.sha256(data).hexdigest()
        if actual != row.blob_sha:
            self._quarantine(key, path)
            raise ArtifactCorrupt(key, path, row.blob_sha, actual)
        return data, row

    def get(self, key: str) -> Any | None:
        """Fetch and decode one payload (None on a clean miss)."""
        found = self.get_bytes(key)
        if found is None:
            return None
        data, _ = found
        return json.loads(data)

    def _quarantine(self, key: str, blob_path: Path) -> None:
        """Drop a corrupted entry so future runs recompute it."""
        try:
            with self.writer(timeout=0.5):
                with self._connect() as con:
                    con.execute("DELETE FROM artifacts WHERE key = ?", (key,))
                blob_path.unlink(missing_ok=True)
        except (StoreLockError, OSError):  # pragma: no cover - contended path
            logger.warning("could not quarantine corrupt artifact %s", key)

    # ----------------------------------------------------------- maintenance
    def rows(self, kind: str | None = None, design: str | None = None) -> Iterator[ArtifactRow]:
        sql = "SELECT key FROM artifacts"
        clauses, args = [], []
        if kind is not None:
            clauses.append("kind = ?")
            args.append(kind)
        if design is not None:
            clauses.append("design = ?")
            args.append(design)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at, key"
        with self._connect() as con:
            keys = [r["key"] for r in con.execute(sql, args)]
        for key in keys:
            row = self.row(key)
            if row is not None:
                yield row

    def stats(self) -> dict:
        """Index and blob-tree statistics (the ``repro store stats`` view)."""
        with self._connect() as con:
            by_kind = {
                r["kind"]: {"artifacts": r["n"], "bytes": r["total"]}
                for r in con.execute(
                    "SELECT kind, COUNT(*) AS n, SUM(size_bytes) AS total "
                    "FROM artifacts GROUP BY kind ORDER BY kind"
                )
            }
            n_artifacts, indexed_bytes = con.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0) FROM artifacts"
            ).fetchone()
            referenced = {
                r["blob_sha"] for r in con.execute("SELECT blob_sha FROM artifacts")
            }
        blobs = [p for p in (self.root / "objects").glob("*/*") if p.is_file()]
        return {
            "root": str(self.root),
            "artifacts": n_artifacts,
            "indexed_bytes": int(indexed_bytes),
            "by_kind": by_kind,
            "blobs": len(blobs),
            "blob_bytes": sum(p.stat().st_size for p in blobs),
            "orphan_blobs": sum(1 for p in blobs if p.name not in referenced),
        }

    def gc(self) -> dict:
        """Delete unreferenced blobs; referenced artifacts are never touched.

        The exclusive lock is held for the whole mark-and-sweep pass: a
        concurrent publish waits, so a blob written moments before its
        index row lands can never be collected as an orphan.
        """
        removed = freed = 0
        with self.writer():
            with self._connect() as con:
                referenced = {
                    r["blob_sha"] for r in con.execute("SELECT blob_sha FROM artifacts")
                }
            for path in (self.root / "objects").glob("*/*"):
                if path.is_file() and path.name not in referenced:
                    freed += path.stat().st_size
                    path.unlink()
                    removed += 1
        return {"removed_blobs": removed, "freed_bytes": freed}

    def verify(self) -> list[dict]:
        """Integrity-check every indexed artifact; returns found defects.

        Holds the shared lock for the whole scan: concurrent verifies
        and point reads proceed, but a publish waits until the pass
        ends, so a half-published artifact is never flagged.
        """
        with self.reader():
            return self._verify_locked()

    def _verify_locked(self) -> list[dict]:
        """The verify scan body; caller holds (at least) the shared lock."""
        defects = []
        for row in self.rows():
            path = self._blob_path(row.blob_sha)
            if not path.exists():
                defects.append({"key": row.key, "kind": row.kind, "defect": "missing-blob"})
                continue
            actual = hashlib.sha256(path.read_bytes()).hexdigest()
            if actual != row.blob_sha:
                defects.append({"key": row.key, "kind": row.kind, "defect": "hash-mismatch"})
        return defects


class _FileLock:
    """Advisory flock over the store's lock file (exclusive or shared)."""

    def __init__(self, path: Path, timeout: float, shared: bool = False):
        self.path = path
        self.timeout = timeout
        self.shared = shared
        self._fd: int | None = None

    def __enter__(self) -> "_FileLock":
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return self
        mode = fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX
        deadline = time.monotonic() + max(0.0, self.timeout)
        while True:
            try:
                fcntl.flock(self._fd, mode | fcntl.LOCK_NB)
                return self
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(self._fd)
                    self._fd = None
                    holder = "writer" if self.shared else "writer or scrubber"
                    raise StoreLockError(
                        f"another {holder} holds {self.path} "
                        f"(waited {self.timeout:.1f}s)"
                    ) from None
                time.sleep(0.02)

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None
