"""Retrying HTTP client for the campaign service (stdlib ``urllib``).

The seed of the ROADMAP's remote-store client: several serve nodes
sharing one cache need a client that treats the service's failure
vocabulary as a protocol, not as exceptions to crash on.

* every request carries a **connect/read timeout**;
* transient failures -- connection refused/reset, request timeouts,
  and any response whose structured body says ``"retryable": true``
  (503 overload, 504 deadline, 5xx) -- are retried with **exponential
  backoff plus deterministic-injectable jitter**;
* a 503's **``Retry-After``** header is honored (capped) instead of the
  computed backoff, so a draining or saturated server paces its own
  retry traffic;
* terminal failures raise :class:`RemoteStoreError` carrying the HTTP
  status and the parsed structured body.

``sleep`` and ``rand`` are injectable so tests drive the retry schedule
without wall-clock waits.
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Callable

from ..core.errors import CampaignError

DEFAULT_TIMEOUT_S = 10.0
DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_S = 0.25
DEFAULT_BACKOFF_CAP_S = 8.0
DEFAULT_JITTER = 0.25
DEFAULT_RETRY_AFTER_CAP_S = 30.0


class RemoteStoreError(CampaignError):
    """A service request failed past all retries (or terminally)."""

    def __init__(self, message: str, status: int | None = None, payload: Any = None):
        super().__init__(message)
        self.status = status
        self.payload = payload


class StoreClient:
    """Minimal retrying JSON client for one serve node."""

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff: float = DEFAULT_BACKOFF_S,
        backoff_cap: float = DEFAULT_BACKOFF_CAP_S,
        jitter: float = DEFAULT_JITTER,
        retry_after_cap: float = DEFAULT_RETRY_AFTER_CAP_S,
        sleep: Callable[[float], None] = time.sleep,
        rand: Callable[[], float] = random.random,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.retry_after_cap = retry_after_cap
        self._sleep = sleep
        self._rand = rand
        self.attempts = 0  # lifetime request attempts, for tests/telemetry

    # ------------------------------------------------------------ plumbing
    def _delay(self, attempt: int, retry_after: str | None) -> float:
        if retry_after is not None:
            try:
                return min(float(retry_after), self.retry_after_cap)
            except ValueError:
                pass
        base = min(self.backoff * 2**attempt, self.backoff_cap)
        return base * (1.0 + self.jitter * self._rand())

    def request(self, path: str, method: str = "GET", body: bytes | None = None,
                content_type: str = "text/plain") -> Any:
        """One JSON request with retries; returns the parsed payload."""
        url = f"{self.base_url}/{path.lstrip('/')}"
        last_error: str = "unreachable"
        last_status: int | None = None
        last_payload: Any = None
        for attempt in range(self.max_retries + 1):
            self.attempts += 1
            req = urllib.request.Request(url, data=body, method=method)
            if body is not None:
                req.add_header("Content-Type", content_type)
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                    return json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                try:
                    payload = json.loads(raw)
                except (ValueError, UnicodeDecodeError):
                    payload = {"error": "OpaqueError", "message": raw[:200].decode(
                        "utf-8", errors="replace"), "retryable": exc.code >= 500}
                last_status, last_payload = exc.code, payload
                last_error = f"HTTP {exc.code}: {payload.get('message', '')}"
                retryable = bool(payload.get("retryable", exc.code >= 500))
                if not retryable or attempt >= self.max_retries:
                    raise RemoteStoreError(
                        f"{method} {url} failed: {last_error}",
                        status=exc.code,
                        payload=payload,
                    ) from None
                delay = self._delay(attempt, exc.headers.get("Retry-After"))
            except (urllib.error.URLError, socket.timeout, ConnectionError, TimeoutError) as exc:
                reason = getattr(exc, "reason", exc)
                last_error = f"{type(exc).__name__}: {reason}"
                if attempt >= self.max_retries:
                    raise RemoteStoreError(
                        f"{method} {url} unreachable after "
                        f"{self.max_retries + 1} attempts: {last_error}"
                    ) from None
                delay = self._delay(attempt, None)
            self._sleep(delay)
        raise RemoteStoreError(  # pragma: no cover - loop always returns/raises
            f"{method} {url} failed: {last_error}", status=last_status, payload=last_payload
        )

    # --------------------------------------------------------- convenience
    def healthz(self) -> dict:
        return self.request("healthz")

    def readyz(self) -> dict:
        return self.request("readyz")

    def stats(self) -> dict:
        return self.request("stats")

    def campaigns(self) -> list[dict]:
        return self.request("campaigns")

    def campaign(self, design: str, threshold: float | None = None,
                 verdict: str | None = None) -> dict:
        return self.request(f"campaigns/{design}{_query(threshold, verdict)}")

    def faults(self, design: str, threshold: float | None = None,
               verdict: str | None = None) -> list[dict]:
        return self.request(f"campaigns/{design}/faults{_query(threshold, verdict)}")

    def validate_design(self, text: str, fmt: str = "bench") -> dict:
        return self.request(
            f"designs/validate?format={fmt}",
            method="POST",
            body=text.encode("utf-8"),
        )


def _query(threshold: float | None, verdict: str | None) -> str:
    params = []
    if threshold is not None:
        params.append(f"threshold={threshold}")
    if verdict is not None:
        params.append(f"verdict={verdict}")
    return "?" + "&".join(params) if params else ""
