"""Retrying multi-endpoint HTTP client for the campaign service.

The ROADMAP's remote-store client: several serve nodes share one cache,
and the client treats the service's failure vocabulary as a protocol,
not as exceptions to crash on.  Stdlib ``urllib`` only.

* every request carries a **connect/read timeout**;
* a client may hold **several endpoints** (a list of serve nodes over
  one fabric).  Within a retry round the endpoints are tried in order:
  a connection failure or retryable HTTP error **fails over** to the
  next endpoint immediately (no backoff inside a round), so a
  SIGKILLed node costs one connect attempt, not a request failure;
* each endpoint has a tiny **circuit breaker**: ``cb_threshold``
  consecutive failures open it for ``cb_cooldown`` seconds, during
  which it is skipped entirely; when every endpoint is open they are
  all probed anyway (half-open) rather than failing without trying;
* with ``hedge_delay`` set, **GET**s are hedged: if the first endpoint
  has not answered within the delay, the next is raced in parallel and
  the first success wins -- tail latency against a wedged node is
  capped near the hedge delay;
* transient failures -- connection refused/reset, request timeouts,
  and any response whose structured body says ``"retryable": true``
  (503 overload, 504 deadline, 5xx) -- are retried across rounds with
  **exponential backoff plus deterministic-injectable jitter**;
* a 503's **``Retry-After``** header is honored (capped) instead of the
  computed backoff, so a draining or saturated server paces its own
  retry traffic;
* terminal failures raise :class:`RemoteStoreError` carrying the HTTP
  status and the parsed structured body, immediately -- a 400 is the
  same answer from every replica, so no failover can fix it.

``sleep``, ``rand`` and ``clock`` are injectable so tests drive the
retry schedule and breaker cool-downs without wall-clock waits.
"""

from __future__ import annotations

import json
import queue
import random
import socket
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Sequence

from ..core.errors import CampaignError

DEFAULT_TIMEOUT_S = 10.0
DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_S = 0.25
DEFAULT_BACKOFF_CAP_S = 8.0
DEFAULT_JITTER = 0.25
DEFAULT_RETRY_AFTER_CAP_S = 30.0

#: consecutive endpoint failures before its circuit opens
DEFAULT_CB_THRESHOLD = 3
#: seconds an open endpoint is skipped before being probed again
DEFAULT_CB_COOLDOWN_S = 10.0


class RemoteStoreError(CampaignError):
    """A service request failed past all retries (or terminally)."""

    def __init__(self, message: str, status: int | None = None, payload: Any = None):
        super().__init__(message)
        self.status = status
        self.payload = payload


class _Retryable(Exception):
    """Internal: one endpoint attempt failed in a retryable way."""

    def __init__(self, detail: str, retry_after: str | None = None,
                 status: int | None = None, payload: Any = None):
        super().__init__(detail)
        self.detail = detail
        self.retry_after = retry_after
        self.status = status
        self.payload = payload


class StoreClient:
    """Retrying JSON client over one or more serve-node endpoints."""

    def __init__(
        self,
        endpoints: str | Sequence[str],
        timeout: float = DEFAULT_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff: float = DEFAULT_BACKOFF_S,
        backoff_cap: float = DEFAULT_BACKOFF_CAP_S,
        jitter: float = DEFAULT_JITTER,
        retry_after_cap: float = DEFAULT_RETRY_AFTER_CAP_S,
        cb_threshold: int = DEFAULT_CB_THRESHOLD,
        cb_cooldown: float = DEFAULT_CB_COOLDOWN_S,
        hedge_delay: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rand: Callable[[], float] = random.random,
        clock: Callable[[], float] = time.monotonic,
    ):
        if isinstance(endpoints, str):
            endpoints = [endpoints]
        if not endpoints:
            raise CampaignError("StoreClient needs at least one endpoint")
        self.endpoints = [e.rstrip("/") for e in endpoints]
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.retry_after_cap = retry_after_cap
        self.cb_threshold = cb_threshold
        self.cb_cooldown = cb_cooldown
        self.hedge_delay = hedge_delay
        self._sleep = sleep
        self._rand = rand
        self._clock = clock
        self._lock = threading.Lock()
        self._fails = {e: 0 for e in self.endpoints}  # consecutive failures
        self._open_until = {e: 0.0 for e in self.endpoints}
        # ---- telemetry (read by tests and callers)
        self.attempts = 0  # lifetime HTTP attempts
        self.failovers = 0  # answers served by a non-first endpoint
        self.hedged = 0  # hedge launches
        self.hedge_wins = 0  # hedged request won by the later endpoint

    @property
    def base_url(self) -> str:
        """The first (preferred) endpoint, for single-node callers."""
        return self.endpoints[0]

    # ------------------------------------------------------------ breakers
    def _note_ok(self, endpoint: str) -> None:
        with self._lock:
            self._fails[endpoint] = 0
            self._open_until[endpoint] = 0.0

    def _note_fail(self, endpoint: str) -> None:
        with self._lock:
            self._fails[endpoint] += 1
            if self._fails[endpoint] >= self.cb_threshold:
                self._open_until[endpoint] = self._clock() + self.cb_cooldown

    def _available(self) -> list[str]:
        """Endpoints whose circuit is closed; all of them when every
        circuit is open (half-open probing beats certain failure)."""
        now = self._clock()
        with self._lock:
            closed = [e for e in self.endpoints if self._open_until[e] <= now]
        return closed or list(self.endpoints)

    def endpoint_state(self) -> dict[str, dict]:
        now = self._clock()
        with self._lock:
            return {
                e: {
                    "consecutive_failures": self._fails[e],
                    "open": self._open_until[e] > now,
                    "retry_in_s": max(0.0, self._open_until[e] - now),
                }
                for e in self.endpoints
            }

    # ------------------------------------------------------------ plumbing
    def _delay(self, attempt: int, retry_after: str | None) -> float:
        if retry_after is not None:
            try:
                return min(float(retry_after), self.retry_after_cap)
            except ValueError:
                pass
        base = min(self.backoff * 2**attempt, self.backoff_cap)
        return base * (1.0 + self.jitter * self._rand())

    def _try_endpoint(self, endpoint: str, path: str, method: str,
                      body: bytes | None, content_type: str) -> Any:
        """One HTTP attempt against one endpoint.

        Returns the parsed payload; raises :class:`_Retryable` for
        failures another endpoint or a later round may fix, and
        :class:`RemoteStoreError` for terminal ones.
        """
        url = f"{endpoint}/{path.lstrip('/')}"
        with self._lock:
            self.attempts += 1
        req = urllib.request.Request(url, data=body, method=method)
        if body is not None:
            req.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                out = json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                payload = {"error": "OpaqueError", "message": raw[:200].decode(
                    "utf-8", errors="replace"), "retryable": exc.code >= 500}
            detail = f"HTTP {exc.code}: {payload.get('message', '')}"
            if not bool(payload.get("retryable", exc.code >= 500)):
                # terminal: every replica would answer the same -- no
                # failover, no retry, and the endpoint is not at fault
                raise RemoteStoreError(
                    f"{method} {url} failed: {detail}",
                    status=exc.code, payload=payload,
                ) from None
            self._note_fail(endpoint)
            raise _Retryable(
                detail, retry_after=exc.headers.get("Retry-After"),
                status=exc.code, payload=payload,
            ) from None
        except (urllib.error.URLError, socket.timeout, ConnectionError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            self._note_fail(endpoint)
            raise _Retryable(f"{type(exc).__name__}: {reason}") from None
        self._note_ok(endpoint)
        return out

    def request(self, path: str, method: str = "GET", body: bytes | None = None,
                content_type: str = "text/plain") -> Any:
        """One JSON request with failover + retries; parsed payload."""
        last: _Retryable | None = None
        connection_only = True
        for attempt in range(self.max_retries + 1):
            targets = self._available()
            if (
                self.hedge_delay is not None
                and method == "GET"
                and len(targets) > 1
            ):
                try:
                    return self._round_hedged(targets, path, method, body, content_type)
                except _Retryable as exc:
                    last = exc
                    connection_only = connection_only and exc.status is None
            else:
                for pos, endpoint in enumerate(targets):
                    try:
                        out = self._try_endpoint(endpoint, path, method, body, content_type)
                    except _Retryable as exc:
                        last = exc
                        connection_only = connection_only and exc.status is None
                        continue
                    if pos > 0:
                        with self._lock:
                            self.failovers += 1
                    return out
            if attempt >= self.max_retries:
                break
            self._sleep(self._delay(attempt, last.retry_after if last else None))
        assert last is not None
        where = self.endpoints[0] if len(self.endpoints) == 1 else (
            f"all {len(self.endpoints)} endpoints"
        )
        if connection_only:
            raise RemoteStoreError(
                f"{method} {where}/{path.lstrip('/')} unreachable after "
                f"{self.max_retries + 1} attempts: {last.detail}"
            )
        raise RemoteStoreError(
            f"{method} {where}/{path.lstrip('/')} failed: {last.detail}",
            status=last.status, payload=last.payload,
        )

    def _round_hedged(self, targets: list[str], path: str, method: str,
                      body: bytes | None, content_type: str) -> Any:
        """One retry round as a hedged race across ``targets``.

        The first endpoint is asked immediately; every ``hedge_delay``
        seconds without an answer the next one joins the race.  First
        success wins; a terminal error from any racer wins too (it is
        the same answer everywhere).  All-failed raises the last
        :class:`_Retryable` for the round loop to back off on.
        """
        results: queue.Queue = queue.Queue()

        def run(endpoint: str) -> None:
            try:
                results.put(("ok", endpoint, self._try_endpoint(
                    endpoint, path, method, body, content_type)))
            except _Retryable as exc:
                results.put(("retryable", endpoint, exc))
            except RemoteStoreError as exc:
                results.put(("terminal", endpoint, exc))

        started = 0

        def launch() -> None:
            nonlocal started
            threading.Thread(
                target=run, args=(targets[started],), daemon=True,
                name=f"client-hedge-{started}",
            ).start()
            started += 1

        launch()
        pending = 1
        last: _Retryable | None = None
        while pending:
            try:
                status, endpoint, value = results.get(
                    timeout=self.hedge_delay if started < len(targets) else None
                )
            except queue.Empty:
                with self._lock:
                    self.hedged += 1
                launch()
                pending += 1
                continue
            pending -= 1
            if status == "ok":
                if endpoint != targets[0]:
                    with self._lock:
                        self.failovers += 1
                        if started > 1:
                            self.hedge_wins += 1
                return value
            if status == "terminal":
                raise value
            last = value
            if pending == 0 and started < len(targets):
                launch()
                pending += 1
        assert last is not None
        raise last

    # --------------------------------------------------------- convenience
    def healthz(self) -> dict:
        return self.request("healthz")

    def readyz(self) -> dict:
        return self.request("readyz")

    def stats(self) -> dict:
        return self.request("stats")

    def campaigns(self) -> list[dict]:
        return self.request("campaigns")

    def campaign(self, design: str, threshold: float | None = None,
                 verdict: str | None = None) -> dict:
        return self.request(f"campaigns/{design}{_query(threshold, verdict)}")

    def faults(self, design: str, threshold: float | None = None,
               verdict: str | None = None) -> list[dict]:
        return self.request(f"campaigns/{design}/faults{_query(threshold, verdict)}")

    def validate_design(self, text: str, fmt: str = "bench") -> dict:
        return self.request(
            f"designs/validate?format={fmt}",
            method="POST",
            body=text.encode("utf-8"),
        )


def _query(threshold: float | None, verdict: str | None) -> str:
    params = []
    if threshold is not None:
        params.append(f"threshold={threshold}")
    if verdict is not None:
        params.append(f"verdict={verdict}")
    return "?" + "&".join(params) if params else ""
