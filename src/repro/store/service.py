"""Crash-tolerant campaign service core behind ``repro-faults serve``.

PR 4's server computed misses under one process-wide lock: correct, but
a stampede of distinct designs serialized behind a single compute, a
hung compute wedged every client forever, and overload was unbounded
thread pileup.  :class:`CampaignService` replaces the lock with a real
service core, transport-agnostic so protocol front ends
(:mod:`repro.store.server` today, others later) stay thin:

* **request coalescing** -- concurrent requests for the same
  ``(design, threshold)`` fingerprint attach to one in-flight
  :class:`Job`; one simulation runs, every waiter gets its report.
  Cached reads never touch the job machinery, so warm traffic for other
  designs is never blocked by a compute;
* **bounded admission** -- at most ``queue_depth`` distinct jobs may be
  queued or running; excess submissions raise
  :class:`~repro.core.errors.ServiceOverloaded` (HTTP 503 +
  ``Retry-After``) instead of piling up threads;
* **per-request deadlines** -- with ``request_timeout`` set, a compute
  that outlives its deadline is *abandoned*: the waiters get
  :class:`~repro.core.errors.DeadlineExceeded` (HTTP 504), the job
  moves to a quarantine map (repeat requests fail fast instead of
  re-wedging), and the worker slot is reclaimed because each attempt
  runs on a disposable thread.  If the stray attempt eventually
  finishes, it resolves the quarantine -- its result was published to
  the content-addressed store, so the next request is a cache hit;
* **job-level retries** -- a compute attempt that dies with a retryable
  failure (:func:`repro.core.errors.is_retryable`: worker crashes,
  chunk timeouts, store lock contention) is retried with exponential
  backoff.  The CLI's compute hook journals through the existing
  ``ParallelExecutor`` + checkpoint machinery, so a retry *resumes*
  the campaign bit-identically instead of restarting it;
* **graceful drain** -- :meth:`drain` refuses new compute jobs
  (cached reads still serve) and waits for in-flight jobs to finish,
  the SIGTERM path of ``repro-faults serve``;
* **supervised workers** -- a supervisor thread heartbeats the worker
  pool every ``supervise_interval`` seconds.  A dead worker's claimed
  job is requeued (its waiters never notice) and the worker is
  restarted with exponential backoff; too many crashes inside a sliding
  ``crash_window`` trip a **crash-budget circuit breaker**: restarts
  stop, misses are refused with 503 + ``Retry-After`` (cache-only
  serving -- warm traffic is unaffected and ``/readyz`` stays ready),
  and after ``pool_cooldown`` seconds the breaker half-opens and the
  pool is restarted.  Worker death is simulated in tests by an
  ``on_job`` chaos hook raising :class:`WorkerKilled`, which -- being a
  ``BaseException`` -- sails through the loop's ``except Exception``
  exactly like a real thread death would take out a process worker.

Everything is stdlib threading; counters feed ``/stats`` and the
``/readyz`` readiness probe.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.errors import (
    DeadlineExceeded,
    ServiceOverloaded,
    is_retryable,
)
from .cache import CampaignStore
from .fingerprint import digest
from .query import query_campaigns

logger = logging.getLogger(__name__)

#: compute-on-miss hook: (design, threshold) -> report dict (already published)
ComputeFn = Callable[[str, float], dict]

#: fleet-calibration hook: (design, fleet params dict) -> report dict
CalibrateFn = Callable[[str, dict], dict]

DEFAULT_THRESHOLD = 0.05
DEFAULT_QUEUE_DEPTH = 8
DEFAULT_WORKERS = 2
DEFAULT_MAX_RETRIES = 2
RETRY_BACKOFF_S = 0.05

#: how often the supervisor heartbeats the worker pool
SUPERVISE_INTERVAL_S = 0.2
#: base/backstop delays for restarting a crashed worker
RESTART_BACKOFF_S = 0.05
RESTART_BACKOFF_CAP_S = 2.0
#: crash-budget circuit breaker: > budget crashes within the window
#: stops restarts and degrades the service to cache-only
CRASH_BUDGET = 5
CRASH_WINDOW_S = 30.0
POOL_COOLDOWN_S = 5.0


class WorkerKilled(BaseException):
    """Kills a service worker thread outright (chaos / test seam).

    Raised from an ``on_job`` hook it escapes the worker loop's
    ``except Exception`` containment, so the thread dies with its job
    still claimed -- the closest stdlib-threading analogue of a worker
    process taken out by a segfault or ``os._exit``.  The supervisor
    must notice via heartbeat, requeue the claimed job, and restart.
    """


def job_key(design: str, threshold: float) -> str:
    """Coalescing fingerprint of one campaign compute job."""
    return digest({"job": "campaign", "design": design, "threshold": threshold})


def calibrate_job_key(design: str, params: dict) -> str:
    """Coalescing fingerprint of one fleet-calibration job."""
    return digest({"job": "calibrate", "design": design, "params": params})


@dataclass
class Job:
    """One admitted compute job and everything waiting on it."""

    key: str
    design: str
    threshold: float
    #: which compute hook runs this job: "campaign" or "calibrate"
    kind: str = "campaign"
    #: kind-specific parameters (fleet configuration for "calibrate")
    params: dict = field(default_factory=dict)
    done: threading.Event = field(default_factory=threading.Event)
    report: dict | None = None
    error: BaseException | None = None
    attempts: int = 0
    waiters: int = 0
    #: deadline expired; the attempt thread may still be running detached
    abandoned: bool = False

    def resolve(self, report: dict | None = None, error: BaseException | None = None) -> None:
        self.report = report
        self.error = error
        self.done.set()


class CampaignService:
    """Transport-agnostic campaign-compute service over a store.

    Thread-safe; one instance is shared by every protocol handler
    thread.  ``compute`` is the injected miss hook
    ``(design, threshold) -> report`` (the CLI wires the real
    cache-aware pipeline; tests inject stubs and chaos wrappers).
    """

    def __init__(
        self,
        store: CampaignStore,
        compute: ComputeFn | None = None,
        compute_calibrate: CalibrateFn | None = None,
        designs: tuple[str, ...] = (),
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        workers: int = DEFAULT_WORKERS,
        request_timeout: float | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff: float = RETRY_BACKOFF_S,
        default_threshold: float = DEFAULT_THRESHOLD,
        on_job: Callable[[Job], None] | None = None,
        supervise_interval: float = SUPERVISE_INTERVAL_S,
        restart_backoff: float = RESTART_BACKOFF_S,
        restart_backoff_cap: float = RESTART_BACKOFF_CAP_S,
        crash_budget: int = CRASH_BUDGET,
        crash_window: float = CRASH_WINDOW_S,
        pool_cooldown: float = POOL_COOLDOWN_S,
    ):
        self.store = store
        self.compute = compute
        self.compute_calibrate = compute_calibrate
        self.designs = designs
        self.queue_depth = queue_depth
        self.workers = workers
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.default_threshold = default_threshold
        self.on_job = on_job
        self.supervise_interval = supervise_interval
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.crash_budget = crash_budget
        self.crash_window = crash_window
        self.pool_cooldown = pool_cooldown

        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # admitted: queued or running
        self._quarantine: dict[str, Job] = {}  # abandoned after deadline expiry
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._draining = False
        self._stopped = False

        # ---- supervisor state
        self._supervisor: threading.Thread | None = None
        self._claimed: dict[str, Job] = {}  # worker thread name -> running job
        self._crash_times: list[float] = []  # sliding crash-budget window
        self._worker_seq = 0  # unique worker names across restarts
        self._pool_down = False
        self._pool_down_until = 0.0

        # ---- counters surfaced by /stats
        self.requests = 0
        self.served_cached = 0
        self.computed = 0
        self.coalesced = 0
        self.retries = 0
        self.deadline_expired = 0
        self.rejected_overload = 0
        self.compute_errors = 0
        self.worker_crashes = 0
        self.worker_restarts = 0
        self.requeued_jobs = 0
        self.rejected_pool_down = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "CampaignService":
        """Spawn the worker pool and its supervisor (idempotent)."""
        with self._lock:
            if self._threads or self._stopped:
                return self
            for _ in range(self.workers):
                self._spawn_worker_locked()
            self.worker_restarts = 0  # the initial pool is not a restart
            if self._supervisor is None:
                self._supervisor = threading.Thread(
                    target=self._supervise_loop, name="svc-supervisor", daemon=True
                )
                self._supervisor.start()
        return self

    def stop(self) -> None:
        """Stop the worker pool without waiting for queued jobs."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            threads, self._threads = self._threads, []
            supervisor, self._supervisor = self._supervisor, None
        for _ in threads:
            self._queue.put(None)
        for t in threads:
            t.join(timeout=1.0)
        if supervisor is not None:
            supervisor.join(timeout=self.supervise_interval * 5 + 1.0)

    def drain(self, grace: float = 30.0) -> bool:
        """Refuse new compute work and wait for in-flight jobs.

        Cached reads keep serving while the transport stays up.  Returns
        True when every admitted job finished within ``grace`` seconds.
        """
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            with self._lock:
                pending = list(self._jobs.values())
            if not pending:
                logger.info("service drain complete")
                return True
            for job in pending:
                job.done.wait(timeout=max(0.0, deadline - time.monotonic()))
        with self._lock:
            leftover = len(self._jobs)
        if leftover:
            logger.warning("service drain timed out with %d job(s) in flight", leftover)
        return leftover == 0

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # ------------------------------------------------------------- probes
    def ready(self) -> tuple[bool, dict]:
        """Readiness: store reachable, not draining, queue not saturated."""
        detail: dict = {"draining": False, "queue_saturated": False, "store": True}
        ok = True
        with self._lock:
            if self._draining or self._stopped:
                detail["draining"] = True
                ok = False
            if len(self._jobs) >= self.queue_depth:
                detail["queue_saturated"] = True
                ok = False
            # cache-only mode is degraded but *ready*: warm traffic still
            # serves, and flipping readyz would take the node out of
            # rotation for its healthy cache too.
            detail["cache_only"] = self._pool_down
        try:
            self.store.artifacts.stats()
        except Exception as exc:  # unreadable index/lock dir -> not ready
            detail["store"] = False
            detail["store_error"] = f"{type(exc).__name__}: {exc}"
            ok = False
        detail["ready"] = ok
        return ok, detail

    def stats(self) -> dict:
        with self._lock:
            service = {
                "queue_depth": self.queue_depth,
                "workers": self.workers,
                "request_timeout": self.request_timeout,
                "in_flight": len(self._jobs),
                "coalesced": self.coalesced,
                "retries": self.retries,
                "deadline_expired": self.deadline_expired,
                "rejected_overload": self.rejected_overload,
                "compute_errors": self.compute_errors,
                "draining": self._draining,
                "workers_alive": sum(1 for t in self._threads if t.is_alive()),
                "worker_crashes": self.worker_crashes,
                "worker_restarts": self.worker_restarts,
                "requeued_jobs": self.requeued_jobs,
                "cache_only": self._pool_down,
                "rejected_pool_down": self.rejected_pool_down,
                "quarantined": sorted(
                    f"{j.design}@{j.threshold}" for j in self._quarantine.values()
                ),
            }
            top = {
                "requests": self.requests,
                "served_cached": self.served_cached,
                "computed": self.computed,
            }
        # Fault-granular reuse accounting: every merged incremental
        # campaign records one "faultsim-incremental" provenance row
        # (see repro.incremental), so near-duplicate uploads show up as
        # replays with the wall time their baselines originally paid.
        inc = [p for p in self.store.provenance if p.stage == "faultsim-incremental"]
        top["incremental_replays"] = len(inc)
        top["incremental_saved_s"] = sum(p.saved_s for p in inc)
        return {"store": self.store.artifacts.stats(), **top, "service": service}

    # ------------------------------------------------------------ requests
    def count_request(self) -> None:
        with self._lock:
            self.requests += 1

    def campaign(self, design: str, threshold: float | None) -> dict | None:
        """Newest cached report for a design, computing (at most once per
        distinct fingerprint) on miss.

        Returns None when computation is disabled and nothing is cached.
        Raises :class:`ServiceOverloaded`, :class:`DeadlineExceeded`, or
        whatever terminal error the compute job died with.
        """
        matches = query_campaigns(self.store, design=design, threshold=threshold)
        if matches:
            with self._lock:
                self.served_cached += 1
            return max(matches, key=lambda m: m.created_at).report
        if self.compute is None:
            return None
        effective = threshold if threshold is not None else self.default_threshold
        job = self._admit(
            Job(key=job_key(design, effective), design=design, threshold=effective)
        )
        return self._await(job)

    def calibrate(self, design: str, params: dict) -> dict | None:
        """Fleet-calibration report for a design (compute hook required).

        Calibrate jobs ride the same machinery as campaign computes:
        per-configuration coalescing (the job key fingerprints the fleet
        parameters), bounded admission, deadlines, retries and drain.
        The hook itself is store-aware, so a warm store makes the job a
        pure replay.  Returns None when no calibrate hook is wired.
        """
        if self.compute_calibrate is None:
            return None
        job = self._admit(
            Job(
                key=calibrate_job_key(design, params),
                design=design,
                threshold=self.default_threshold,
                kind="calibrate",
                params=params,
            )
        )
        return self._await(job)

    def _admit(self, new_job: Job) -> Job:
        key = new_job.key
        with self._lock:
            if self._draining or self._stopped:
                raise ServiceOverloaded(
                    "service is draining and accepts no new compute jobs",
                    retry_after=5.0,
                )
            if self._pool_down:
                # crash-budget breaker open: cache-only serving.  Cached
                # reads never reach _admit, so only misses pay the 503.
                self.rejected_pool_down += 1
                raise ServiceOverloaded(
                    "compute pool is down after repeated worker crashes; "
                    "serving cached campaigns only",
                    retry_after=max(
                        1.0, self._pool_down_until - time.monotonic()
                    ),
                )
            stale = self._quarantine.get(key)
            if stale is not None:
                # fail fast instead of stacking a second compute behind a
                # wedged one; the stray attempt clears this when it ends.
                self.deadline_expired += 1
                raise DeadlineExceeded(
                    f"{new_job.kind} job for {new_job.design!r} is quarantined "
                    f"after a deadline expiry; retry once the job clears"
                )
            job = self._jobs.get(key)
            if job is not None:
                job.waiters += 1
                self.coalesced += 1
                return job
            if len(self._jobs) >= self.queue_depth:
                self.rejected_overload += 1
                raise ServiceOverloaded(
                    f"compute queue is full ({self.queue_depth} jobs admitted)",
                    retry_after=max(1.0, self.request_timeout or 1.0),
                )
            job = new_job
            job.waiters = 1
            self._jobs[key] = job
        self._queue.put(job)
        self.start()
        return job

    def _await(self, job: Job) -> dict:
        finished = job.done.wait(
            timeout=None if self.request_timeout is None else self.request_timeout
        )
        if not finished:
            # Waiter-side deadline: the job may still be queued (not hung);
            # if nobody is left waiting and it never started, cancel it.
            with self._lock:
                job.waiters -= 1
                self.deadline_expired += 1
                if job.waiters <= 0 and job.attempts == 0:
                    job.abandoned = True
                    self._jobs.pop(job.key, None)
            raise DeadlineExceeded(
                f"request deadline ({self.request_timeout}s) expired before the "
                f"compute job for {job.design!r} finished"
            )
        if job.error is not None:
            raise job.error
        assert job.report is not None
        return job.report

    # ------------------------------------------------------------- workers
    def _spawn_worker_locked(self) -> threading.Thread:
        """Start one worker thread; caller holds ``self._lock``."""
        self._worker_seq += 1
        t = threading.Thread(
            target=self._worker_loop,
            name=f"svc-worker-{self._worker_seq}",
            daemon=True,
        )
        t.start()
        self._threads.append(t)
        return t

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.abandoned:  # every waiter gave up before we started
                continue
            with self._lock:
                self._claimed[name] = job
            try:
                if self.on_job is not None:
                    # chaos seam; a WorkerKilled (BaseException) raised here
                    # escapes this loop and kills the thread mid-claim
                    self.on_job(job)
                self._run_job(job)
            except Exception:  # pragma: no cover - defensive: keep the pool alive
                logger.exception("service: job %s crashed the worker loop", job.key)
                self._finish(job, error=job.error or RuntimeError("worker loop error"))
            # reached only on a clean hand-off: a dying thread leaves its
            # claim behind for the supervisor to requeue
            with self._lock:
                self._claimed.pop(name, None)

    # ---------------------------------------------------------- supervisor
    def _supervise_loop(self) -> None:
        """Heartbeat the pool: reap dead workers, requeue their claimed
        jobs, restart with backoff under a crash-budget breaker."""
        consecutive = 0  # crashes since the pool last ran at full strength
        restart_at = 0.0
        while True:
            time.sleep(self.supervise_interval)
            with self._lock:
                if self._stopped:
                    return
                now = time.monotonic()
                dead = [t for t in self._threads if not t.is_alive()]
                for t in dead:
                    self._threads.remove(t)
                    self.worker_crashes += 1
                    self._crash_times.append(now)
                    orphan = self._claimed.pop(t.name, None)
                    if orphan is not None and not orphan.done.is_set():
                        self.requeued_jobs += 1
                        self._queue.put(orphan)  # waiters never notice
                        logger.warning(
                            "supervisor: worker %s died; requeued job for %r",
                            t.name, orphan.design,
                        )
                    else:
                        logger.warning("supervisor: worker %s died idle", t.name)
                self._crash_times = [
                    ts for ts in self._crash_times if now - ts <= self.crash_window
                ]
                if dead:
                    consecutive += len(dead)
                    delay = min(
                        self.restart_backoff_cap,
                        self.restart_backoff * 2 ** max(0, consecutive - 1),
                    )
                    restart_at = max(restart_at, now + delay)
                alive = len(self._threads)
                if not dead and alive == self.workers:
                    consecutive = 0
                # ---- crash-budget circuit breaker
                if len(self._crash_times) > self.crash_budget:
                    if not self._pool_down:
                        self._pool_down = True
                        self._pool_down_until = now + self.pool_cooldown
                        logger.error(
                            "supervisor: %d worker crashes in %.0fs exceed the "
                            "budget (%d); compute pool down, serving cache only "
                            "for %.1fs",
                            len(self._crash_times), self.crash_window,
                            self.crash_budget, self.pool_cooldown,
                        )
                    if now < self._pool_down_until:
                        continue  # breaker open: no restarts
                    # half-open: forgive history and try a fresh pool
                    self._pool_down = False
                    self._crash_times.clear()
                    consecutive = 0
                    restart_at = now
                    logger.warning(
                        "supervisor: cool-down elapsed; restarting compute pool"
                    )
                if alive < self.workers and now >= restart_at:
                    for _ in range(self.workers - alive):
                        self._spawn_worker_locked()
                        self.worker_restarts += 1

    def _run_job(self, job: Job) -> None:
        deadline = (
            None
            if self.request_timeout is None
            else time.monotonic() + self.request_timeout
        )
        while True:
            job.attempts += 1
            attempt_done = threading.Event()
            holder: dict = {}
            thread = threading.Thread(
                target=self._attempt,
                args=(job, holder, attempt_done),
                name=f"svc-compute-{job.design}",
                daemon=True,
            )
            thread.start()
            budget = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not attempt_done.wait(timeout=budget):
                self._abandon(job)
                return
            error = holder.get("error")
            if error is None:
                self._finish(job, report=holder.get("report"))
                return
            out_of_time = deadline is not None and time.monotonic() >= deadline
            if is_retryable(error) and job.attempts <= self.max_retries and not out_of_time:
                with self._lock:
                    self.retries += 1
                logger.warning(
                    "service: compute %s attempt %d failed (%s: %s); retrying",
                    job.design,
                    job.attempts,
                    type(error).__name__,
                    error,
                )
                time.sleep(self.retry_backoff * 2 ** (job.attempts - 1))
                continue
            self._finish(job, error=error)
            return

    def _attempt(self, job: Job, holder: dict, attempt_done: threading.Event) -> None:
        try:
            if job.kind == "calibrate":
                assert self.compute_calibrate is not None
                holder["report"] = self.compute_calibrate(job.design, job.params)
            else:
                assert self.compute is not None
                holder["report"] = self.compute(job.design, job.threshold)
        except BaseException as exc:  # noqa: BLE001 - ferried to the waiters
            holder["error"] = exc
        finally:
            attempt_done.set()
            with self._lock:
                stray = job.abandoned and self._quarantine.get(job.key) is job
                if stray:
                    # The wedged attempt finally ended.  Its result (if any)
                    # was published to the store by the compute hook, so the
                    # next request is a plain cache hit; either way the
                    # fingerprint is computable again.
                    del self._quarantine[job.key]
            if stray:
                logger.info(
                    "service: abandoned compute for %s finished (%s)",
                    job.design,
                    "error" if "error" in holder else "published",
                )

    def _finish(self, job: Job, report: dict | None = None, error: BaseException | None = None) -> None:
        with self._lock:
            self._jobs.pop(job.key, None)
            if error is None:
                self.computed += 1
            else:
                self.compute_errors += 1
        job.resolve(report=report, error=error)

    def _abandon(self, job: Job) -> None:
        """Deadline expired mid-compute: quarantine and reclaim the slot."""
        with self._lock:
            job.abandoned = True
            self._jobs.pop(job.key, None)
            self._quarantine[job.key] = job
            self.deadline_expired += 1
        logger.warning(
            "service: compute for %s exceeded the %ss deadline; job quarantined",
            job.design,
            self.request_timeout,
        )
        job.resolve(
            error=DeadlineExceeded(
                f"compute for {job.design!r} exceeded the "
                f"{self.request_timeout}s request deadline"
            )
        )
