"""Replicated shard fabric: a self-healing multi-shard campaign store.

:class:`FabricStore` presents the exact surface the rest of the system
already speaks (:class:`~repro.store.artifacts.ArtifactStore`'s
``put/get/get_bytes/row/rows/stats/gc/verify``) over **N** SQLite shards
with replication factor **R**, so :class:`~repro.store.cache.
CampaignStore`, the query layer, and the serve layer all run unchanged
on top of it.  What changes is the failure domain: losing any single
shard -- its database deleted, its file locked by a wedged process, its
blobs bit-rotted -- loses *nothing*, because every key lives on
``R`` shards chosen by :class:`~repro.store.shards.ShardMap` and the
fabric routes around the damage:

* **write-through replication** -- :meth:`put` writes the payload to the
  primary and every replica shard.  A replica that cannot take the
  write degrades the publish (counted, logged) instead of failing it;
  the anti-entropy :meth:`scrub` restores full replication later.  A
  publish that lands on *zero* shards raises
  :class:`~repro.core.errors.ShardUnavailable`;
* **failover reads** -- :meth:`get_bytes` tries the placement in order
  (primary first).  A shard that is gone, locked, or corrupt is skipped
  and the next replica answers.  With ``hedge_delay`` set, a read that
  has not answered within the delay *hedges*: the next replica is raced
  in parallel and the first good copy wins, capping tail latency on a
  slow/wedged shard at roughly the hedge delay;
* **read repair** -- when a read had to fail over (a copy was missing
  or failed its CRC), the winning copy is written back to every
  placement shard that could not serve it, so hot keys re-replicate
  themselves without waiting for a scrub;
* **anti-entropy scrub** -- :meth:`scrub` walks every key, CRC-verifies
  every copy on its placement (reusing the per-shard ``verify``
  machinery and its shared whole-pass lock), repairs missing/corrupt
  copies from a proven-good one, re-places keys stranded off their
  placement (after a rebalance or a heal), and reports whether the
  fabric is back to full replication;
* **rebalance** -- :meth:`rebalance` migrates a store to a new
  geometry (including converting a legacy single-file store into a
  fabric), re-placing every artifact before the new geometry is
  persisted.

Health per shard is tracked with a tiny circuit: after
``SHARD_FAIL_THRESHOLD`` consecutive errors a shard is marked down and
skipped for ``shard_cooldown`` seconds (reads go straight to replicas),
then probed again.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import queue
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from ..core.errors import ReplicaDivergence, ShardUnavailable
from .artifacts import ArtifactCorrupt, ArtifactRow, ArtifactStore, StoreError
from .shards import (
    ShardMap,
    load_geometry,
    resolve_geometry,
    save_geometry,
    shard_root,
)

logger = logging.getLogger(__name__)

#: default seconds a fabric shard operation may wait on that shard's lock
#: (much shorter than the single-store default: the whole point of
#: replication is to fail over instead of queueing behind a wedged shard)
SHARD_LOCK_TIMEOUT = 2.0

#: consecutive shard errors before its circuit opens
SHARD_FAIL_THRESHOLD = 3

#: seconds a tripped shard is skipped before it is probed again
DEFAULT_SHARD_COOLDOWN = 5.0

#: errors that mean "this shard cannot answer right now" (as opposed to
#: a clean miss or a corrupt-copy signal, which have their own handling)
_SHARD_ERRORS = (sqlite3.Error, OSError, StoreError)


class FabricStore:
    """Coordinator over N replicated :class:`ArtifactStore` shards.

    Drop-in for :class:`ArtifactStore` wherever the campaign layers
    hold one.  Not thread-*hostile*: counters are lock-protected and
    every shard operation opens its own SQLite connection, so serve
    handler threads may share one instance.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        n_shards: int | None = None,
        n_replicas: int | None = None,
        lock_timeout: float = SHARD_LOCK_TIMEOUT,
        hedge_delay: float | None = None,
        shard_cooldown: float = DEFAULT_SHARD_COOLDOWN,
    ):
        self.root = Path(root)
        shard_map = resolve_geometry(self.root, n_shards, n_replicas)
        if shard_map is None:
            raise ShardUnavailable(
                f"{self.root} is not a fabric store (no fabric.json and no "
                f"--shards geometry requested)"
            )
        self.map = shard_map
        self.lock_timeout = lock_timeout
        self.hedge_delay = hedge_delay
        self.shard_cooldown = shard_cooldown
        self.root.mkdir(parents=True, exist_ok=True)
        if load_geometry(self.root) is None:
            save_geometry(self.root, shard_map)
        self.shards = [
            ArtifactStore(shard_root(self.root, i), lock_timeout=lock_timeout)
            for i in range(shard_map.n_shards)
        ]
        self._lock = threading.Lock()
        self._fails = [0] * shard_map.n_shards  # consecutive errors per shard
        self._down_until = [0.0] * shard_map.n_shards
        # ---- counters surfaced by stats()["fabric"]
        self.reads = 0
        self.writes = 0
        self.failovers = 0
        self.hedged = 0
        self.hedge_wins = 0
        self.read_repairs = 0
        self.degraded_writes = 0
        self.shard_errors = 0

    # ------------------------------------------------------- shard health
    def _note_ok(self, shard_id: int) -> None:
        with self._lock:
            self._fails[shard_id] = 0
            self._down_until[shard_id] = 0.0

    def _note_error(self, shard_id: int, exc: BaseException) -> None:
        with self._lock:
            self.shard_errors += 1
            self._fails[shard_id] += 1
            if self._fails[shard_id] >= SHARD_FAIL_THRESHOLD:
                self._down_until[shard_id] = time.monotonic() + self.shard_cooldown
        logger.warning(
            "fabric: shard %d error (%s: %s)", shard_id, type(exc).__name__, exc
        )

    def _skippable(self, shard_id: int) -> bool:
        """True when the shard's circuit is open (cooldown not elapsed)."""
        with self._lock:
            return time.monotonic() < self._down_until[shard_id]

    def shard_health(self) -> list[dict]:
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "shard": i,
                    "consecutive_errors": self._fails[i],
                    "down": now < self._down_until[i],
                    "retry_in_s": max(0.0, self._down_until[i] - now),
                }
                for i in range(self.map.n_shards)
            ]

    # ------------------------------------------------------------- publish
    def put(
        self,
        kind: str,
        key: str,
        payload: Any,
        design: str = "",
        meta: dict | None = None,
        wall_s: float = 0.0,
        lock_timeout: float | None = None,
    ) -> str:
        """Write-through to primary + replicas; returns the blob sha.

        Succeeds when at least one copy lands; fewer than the full
        replica set is a *degraded* write (counted, repaired by the
        next scrub or read-repair).  Zero copies raises
        :class:`ShardUnavailable`.
        """
        placement = self.map.placement(key)
        sha: str | None = None
        errors: list[str] = []
        for shard_id in placement:
            try:
                sha = self._shard_put(
                    shard_id, kind, key, payload,
                    design=design, meta=meta, wall_s=wall_s,
                    lock_timeout=lock_timeout,
                )
                self._note_ok(shard_id)
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                errors.append(f"shard {shard_id}: {type(exc).__name__}: {exc}")
        with self._lock:
            self.writes += 1
            if errors and sha is not None:
                self.degraded_writes += 1
        if sha is None:
            raise ShardUnavailable(
                f"publish of {kind} {key[:12]}… failed on every replica shard "
                f"({'; '.join(errors)})"
            )
        if errors:
            logger.warning(
                "fabric: degraded publish of %s (%d/%d copies): %s",
                key[:12], len(placement) - len(errors), len(placement),
                "; ".join(errors),
            )
        return sha

    def _shard_put(self, shard_id: int, kind: str, key: str, payload: Any,
                   **kwargs) -> str:
        """One shard write, healing a wiped shard DB (schema recreated)."""
        shard = self.shards[shard_id]
        try:
            return shard.put(kind, key, payload, **kwargs)
        except sqlite3.OperationalError:
            # a deleted/reset shard database: sqlite recreates the file on
            # connect but the schema is gone -- restore it and retry once.
            shard.ensure_schema()
            return shard.put(kind, key, payload, **kwargs)

    # --------------------------------------------------------------- reads
    def row(self, key: str) -> ArtifactRow | None:
        """Index row with failover: first placement shard that has it."""
        for shard_id in self.map.placement(key):
            if self._skippable(shard_id):
                continue
            try:
                row = self.shards[shard_id].row(key)
                self._note_ok(shard_id)
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                continue
            if row is not None:
                return row
        return None

    def get_bytes(self, key: str) -> tuple[bytes, ArtifactRow] | None:
        """Integrity-verified read with failover, hedging and read repair.

        Placement shards are tried primary-first; a missing, corrupt or
        erroring copy fails over to the next replica.  The first good
        copy wins and is written back to every shard that failed to
        serve it (read repair).  Returns None only when every reachable
        replica agrees the key is absent.  Raises
        :class:`ShardUnavailable` when no replica could answer at all,
        and :class:`ReplicaDivergence` when copies exist but none
        verifies.
        """
        with self._lock:
            self.reads += 1
        placement = self.map.placement(key)
        if self.hedge_delay is not None and len(placement) > 1:
            return self._get_hedged(key, placement)
        return self._get_sequential(key, placement)

    def _get_sequential(
        self, key: str, placement: tuple[int, ...]
    ) -> tuple[bytes, ArtifactRow] | None:
        repair_targets: list[int] = []  # shards that had a bad/absent copy
        clean_misses = 0
        errors = 0
        corrupt = 0
        for pos, shard_id in enumerate(placement):
            if self._skippable(shard_id):
                errors += 1
                repair_targets.append(shard_id)
                continue
            try:
                found = self.shards[shard_id].get_bytes(key)
                self._note_ok(shard_id)
            except ArtifactCorrupt:
                # the shard already quarantined its bad copy; fail over
                corrupt += 1
                repair_targets.append(shard_id)
                continue
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                errors += 1
                repair_targets.append(shard_id)
                continue
            if found is None:
                clean_misses += 1
                repair_targets.append(shard_id)
                continue
            if pos > 0:
                with self._lock:
                    self.failovers += 1
            self._read_repair(key, found, repair_targets)
            return found
        return self._all_copies_failed(key, placement, clean_misses, errors, corrupt)

    def _get_hedged(
        self, key: str, placement: tuple[int, ...]
    ) -> tuple[bytes, ArtifactRow] | None:
        """Race the placement: start the primary, hedge to the next
        replica after ``hedge_delay``, first verified copy wins."""
        results: queue.Queue = queue.Queue()

        def read(shard_id: int) -> None:
            if self._skippable(shard_id):
                results.put((shard_id, "error", None))
                return
            try:
                found = self.shards[shard_id].get_bytes(key)
                self._note_ok(shard_id)
                results.put((shard_id, "ok", found))
            except ArtifactCorrupt:
                results.put((shard_id, "corrupt", None))
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                results.put((shard_id, "error", None))

        started = 0

        def launch() -> None:
            nonlocal started
            threading.Thread(
                target=read, args=(placement[started],), daemon=True,
                name=f"fabric-read-{placement[started]}",
            ).start()
            started += 1

        launch()
        outcomes: dict[int, str] = {}
        clean_misses = errors = corrupt = 0
        winner: tuple[bytes, ArtifactRow] | None = None
        pending = 1
        while pending:
            try:
                shard_id, status, found = results.get(
                    timeout=self.hedge_delay if started < len(placement) else None
                )
            except queue.Empty:
                # primary (or earlier hedge) is slow: race the next replica
                with self._lock:
                    self.hedged += 1
                launch()
                pending += 1
                continue
            pending -= 1
            outcomes[shard_id] = status
            if status == "ok" and found is not None:
                winner = found
                if shard_id != placement[0]:
                    with self._lock:
                        self.failovers += 1
                    if started > 1:
                        with self._lock:
                            self.hedge_wins += 1
                break
            if status == "ok":
                clean_misses += 1
            elif status == "corrupt":
                corrupt += 1
            else:
                errors += 1
            if pending == 0 and started < len(placement):
                launch()
                pending += 1
        if winner is None:
            return self._all_copies_failed(key, placement, clean_misses, errors, corrupt)
        # repair every shard that answered badly (error/corrupt) or answered
        # a clean miss while a replica held the copy; in-flight hedges that
        # never reported are left for the anti-entropy scrub
        repair_targets = [
            s for s, status in outcomes.items()
            if status in ("corrupt", "error")
            or (status == "ok" and s != shard_id)  # clean miss, not the winner
        ]
        self._read_repair(key, winner, repair_targets)
        return winner

    def _all_copies_failed(
        self, key: str, placement: tuple[int, ...],
        clean_misses: int, errors: int, corrupt: int,
    ) -> tuple[bytes, ArtifactRow] | None:
        """Classify a read where no replica produced a verified copy."""
        if clean_misses == len(placement):
            return None  # genuinely absent everywhere: an honest miss
        if corrupt and not errors and clean_misses == 0:
            raise ReplicaDivergence(
                f"every replica of {key[:12]}… failed its content hash "
                f"({corrupt} corrupt copies quarantined); recompute or scrub"
            )
        if clean_misses:
            # some shards never had it, the rest are down/corrupt: the key
            # may never have been fully replicated -- treat as a miss so
            # the campaign recomputes (and re-publishes to healthy shards)
            # rather than failing the request outright.
            logger.warning(
                "fabric: %s degraded to a miss (%d absent, %d unavailable, "
                "%d corrupt of %d replicas)",
                key[:12], clean_misses, errors, corrupt, len(placement),
            )
            return None
        raise ShardUnavailable(
            f"no replica of {key[:12]}… is reachable "
            f"({errors} shard(s) unavailable, {corrupt} corrupt)"
        )

    def get(self, key: str) -> Any | None:
        found = self.get_bytes(key)
        if found is None:
            return None
        data, _ = found
        return json.loads(data)

    # --------------------------------------------------------- read repair
    def _read_repair(
        self,
        key: str,
        found: tuple[bytes, ArtifactRow],
        targets: list[int],
    ) -> None:
        """Write the winning copy back to shards that failed to serve it."""
        if not targets:
            return
        data, row = found
        payload = json.loads(data)  # canonical bytes round-trip bit-identically
        for shard_id in targets:
            if self._skippable(shard_id):
                continue
            try:
                self._shard_put(
                    shard_id, row.kind, key, payload,
                    design=row.design, meta=row.meta, wall_s=row.wall_s,
                    lock_timeout=self.lock_timeout,
                )
                self._note_ok(shard_id)
                with self._lock:
                    self.read_repairs += 1
                logger.info("fabric: read-repaired %s onto shard %d", key[:12], shard_id)
            except _SHARD_ERRORS as exc:  # best effort; scrub finishes the job
                self._note_error(shard_id, exc)

    # ------------------------------------------------------------ listings
    def rows(self, kind: str | None = None, design: str | None = None) -> Iterator[ArtifactRow]:
        """Union of every shard's rows, deduplicated by key.

        Replicas hold identical payloads under identical keys, so the
        first-seen row per key wins; ordering matches the single-store
        contract (created_at, key).  An unreachable shard degrades to a
        partial listing (its keys still appear via their replicas).
        """
        best: dict[str, ArtifactRow] = {}
        for shard_id, shard in enumerate(self.shards):
            if self._skippable(shard_id):
                continue
            try:
                for row in shard.rows(kind=kind, design=design):
                    seen = best.get(row.key)
                    if seen is None or row.created_at < seen.created_at:
                        best[row.key] = row
                self._note_ok(shard_id)
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
        yield from sorted(best.values(), key=lambda r: (r.created_at, r.key))

    # ----------------------------------------------------------- telemetry
    def stats(self) -> dict:
        """Aggregate statistics, shaped like a single store's plus fabric
        topology/health (unique keys once, physical blobs summed)."""
        per_shard: list[dict] = []
        keys: set[str] = set()
        by_kind: dict[str, dict] = {}
        indexed = blobs = blob_bytes = orphans = 0
        for shard_id, shard in enumerate(self.shards):
            try:
                s = shard.stats()
                self._note_ok(shard_id)
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                per_shard.append({"shard": shard_id, "error": str(exc)})
                continue
            s["shard"] = shard_id
            per_shard.append(s)
            blobs += s["blobs"]
            blob_bytes += s["blob_bytes"]
            orphans += s["orphan_blobs"]
            try:
                for row in shard.rows():
                    if row.key in keys:
                        continue
                    keys.add(row.key)
                    indexed += row.size_bytes
                    bucket = by_kind.setdefault(row.kind, {"artifacts": 0, "bytes": 0})
                    bucket["artifacts"] += 1
                    bucket["bytes"] += row.size_bytes
            except _SHARD_ERRORS:  # pragma: no cover - raced shard loss
                pass
        with self._lock:
            counters = {
                "reads": self.reads,
                "writes": self.writes,
                "failovers": self.failovers,
                "hedged": self.hedged,
                "hedge_wins": self.hedge_wins,
                "read_repairs": self.read_repairs,
                "degraded_writes": self.degraded_writes,
                "shard_errors": self.shard_errors,
            }
        return {
            "root": str(self.root),
            "artifacts": len(keys),
            "indexed_bytes": indexed,
            "by_kind": dict(sorted(by_kind.items())),
            "blobs": blobs,
            "blob_bytes": blob_bytes,
            "orphan_blobs": orphans,
            "fabric": {
                "shards": self.map.n_shards,
                "replicas": self.map.n_replicas,
                "health": self.shard_health(),
                **counters,
            },
            "shards": per_shard,
        }

    # ----------------------------------------------------------- chaos aid
    def _blob_path(self, sha: str) -> Path:
        """Primary-copy blob path lookup used by the chaos harness.

        A content sha does not identify its key (and hence placement),
        so scan shards for the blob; used only by test tooling.
        """
        for shard in self.shards:
            path = shard._blob_path(sha)
            if path.exists():
                return path
        return self.shards[0]._blob_path(sha)

    # ----------------------------------------------------------- maintenance
    def gc(self) -> dict:
        """Per-shard gc under each shard's exclusive whole-pass lock."""
        removed = freed = 0
        for shard_id, shard in enumerate(self.shards):
            try:
                out = shard.gc()
                self._note_ok(shard_id)
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                continue
            removed += out["removed_blobs"]
            freed += out["freed_bytes"]
        return {"removed_blobs": removed, "freed_bytes": freed}

    def verify(self) -> list[dict]:
        """Per-shard verify (shared whole-pass lock), defects tagged."""
        defects: list[dict] = []
        for shard_id, shard in enumerate(self.shards):
            try:
                found = shard.verify()
                self._note_ok(shard_id)
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                defects.append(
                    {"shard": shard_id, "defect": "shard-unavailable", "error": str(exc)}
                )
                continue
            defects.extend(dict(d, shard=shard_id) for d in found)
        return defects

    # --------------------------------------------------------- anti-entropy
    def scrub(self, repair: bool = True) -> dict:
        """Anti-entropy pass: verify every copy of every key, repair from
        a proven-good one, and re-place stranded keys.

        Scans each shard under its *shared* whole-pass lock (concurrent
        publishes wait, so a half-published artifact can never be
        counted as a missing replica), then applies repairs with the
        locks released -- repairs are plain idempotent publishes.

        Returns a report; ``full_replication`` is True when every key
        ends the pass with all its copies present and verified.
        """
        # ---- scan phase: what does each shard actually hold, and is it good?
        copies: dict[str, dict[int, str]] = {}  # key -> shard -> blob sha or ""
        rows_by_key: dict[str, ArtifactRow] = {}
        shard_down: set[int] = set()
        bad_blobs: list[Path] = []  # failed their CRC; must not survive dedup
        for shard_id, shard in enumerate(self.shards):
            try:
                with shard.reader():
                    try:
                        shard_rows = list(shard.rows())
                    except sqlite3.OperationalError:
                        # wiped/reset shard DB: heal the schema and scan it
                        # as empty, so the repair phase can re-replicate
                        # onto it instead of writing the shard off as down
                        shard.ensure_schema()
                        shard_rows = []
                    for row in shard_rows:
                        state = copies.setdefault(row.key, {})
                        path = shard._blob_path(row.blob_sha)
                        try:
                            data = path.read_bytes()
                        except OSError:
                            state[shard_id] = ""  # indexed but blob gone
                            continue
                        actual = hashlib.sha256(data).hexdigest()
                        state[shard_id] = actual if actual == row.blob_sha else ""
                        if actual != row.blob_sha:
                            bad_blobs.append(path)
                        elif row.key not in rows_by_key:
                            rows_by_key[row.key] = row
                self._note_ok(shard_id)
            except _SHARD_ERRORS as exc:
                self._note_error(shard_id, exc)
                shard_down.add(shard_id)

        # ---- plan + repair phase
        if repair:
            # drop rotted blob files first: the repair re-put is content-
            # addressed and dedups on file existence, so a corrupt blob
            # left at its address would silently survive the "repair"
            for path in bad_blobs:
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - raced shard loss
                    pass
        report = {
            "keys": len(copies),
            "checked_copies": sum(len(c) for c in copies.values()),
            "repaired": 0,
            "replaced": 0,
            "lost": [],
            "shards_down": sorted(shard_down),
            "full_replication": True,
        }
        for key, state in sorted(copies.items()):
            placement = self.map.placement(key)
            good = [s for s, sha in state.items() if sha]
            if not good:
                report["lost"].append(key)
                report["full_replication"] = False
                continue
            source = self.shards[good[0]].get_bytes(key)
            if source is None:  # pragma: no cover - raced deletion mid-scrub
                report["lost"].append(key)
                report["full_replication"] = False
                continue
            missing = [
                s for s in placement
                if s not in shard_down and state.get(s, None) in (None, "")
            ]
            stranded = [s for s in good if s not in placement]
            if not repair:
                if missing or stranded:
                    report["full_replication"] = False
                continue
            data, row = source
            payload = json.loads(data)
            for shard_id in missing:
                try:
                    self._shard_put(
                        shard_id, row.kind, key, payload,
                        design=row.design, meta=row.meta, wall_s=row.wall_s,
                    )
                    report["repaired"] += 1
                except _SHARD_ERRORS as exc:
                    self._note_error(shard_id, exc)
                    report["full_replication"] = False
            for shard_id in stranded:
                # a copy living off its placement (old geometry): make sure
                # the placement is whole, then drop the stray row
                try:
                    self._drop_row(shard_id, key)
                    report["replaced"] += 1
                except _SHARD_ERRORS as exc:  # pragma: no cover - best effort
                    self._note_error(shard_id, exc)
            if any(s in shard_down for s in placement):
                report["full_replication"] = False
        return report

    def _drop_row(self, shard_id: int, key: str) -> None:
        """Remove one index row from a shard (stray copy after rebalance);
        the unreferenced blob is left for that shard's next gc."""
        shard = self.shards[shard_id]
        with shard.writer():
            with shard._connect() as con:
                con.execute("DELETE FROM artifacts WHERE key = ?", (key,))

    # ------------------------------------------------------------ rebalance
    def rebalance(self, n_shards: int, n_replicas: int) -> dict:
        """Migrate every artifact to a new geometry, then persist it.

        Copy-then-delete per key: every copy lands on its new placement
        before any old-placement row is dropped, so a crash mid-
        rebalance leaves extra copies (healed by scrub + gc), never
        missing ones.
        """
        new_map = ShardMap(n_shards=n_shards, n_replicas=n_replicas)
        grown = [
            ArtifactStore(shard_root(self.root, i), lock_timeout=self.lock_timeout)
            for i in range(max(new_map.n_shards, self.map.n_shards))
        ]
        self.shards = grown[: max(new_map.n_shards, self.map.n_shards)]
        with self._lock:
            self._fails = [0] * len(self.shards)
            self._down_until = [0.0] * len(self.shards)
        moved = copied = dropped = 0
        keys = [row.key for row in self.rows()]
        for key in keys:
            found = self.get_bytes(key)
            if found is None:  # pragma: no cover - raced deletion
                continue
            data, row = found
            payload = json.loads(data)
            new_placement = set(new_map.placement(key))
            old_placement = set(self.map.placement(key))
            for shard_id in sorted(new_placement):
                self._shard_put(
                    shard_id, row.kind, key, payload,
                    design=row.design, meta=row.meta, wall_s=row.wall_s,
                )
                copied += 1
            for shard_id in sorted(old_placement - new_placement):
                if shard_id < len(self.shards):
                    self._drop_row(shard_id, key)
                    dropped += 1
            if new_placement != old_placement:
                moved += 1
        self.map = new_map
        self.shards = self.shards[: new_map.n_shards]
        with self._lock:
            self._fails = self._fails[: new_map.n_shards]
            self._down_until = self._down_until[: new_map.n_shards]
        save_geometry(self.root, new_map)
        return {
            "shards": new_map.n_shards,
            "replicas": new_map.n_replicas,
            "keys": len(keys),
            "moved": moved,
            "copies_written": copied,
            "rows_dropped": dropped,
        }

    @classmethod
    def convert(
        cls,
        root: str | os.PathLike,
        n_shards: int,
        n_replicas: int,
        lock_timeout: float = SHARD_LOCK_TIMEOUT,
    ) -> tuple["FabricStore", dict]:
        """Convert a legacy single-file store at ``root`` into a fabric.

        Every artifact of the root-level index is copied onto its
        placement shards; the legacy ``index.db``/``objects`` tree is
        left untouched (delete it once satisfied) but ignored from then
        on -- ``fabric.json`` makes every later open fabric-shaped.
        """
        legacy = ArtifactStore(root, lock_timeout=lock_timeout)
        fabric = cls(
            root, n_shards=n_shards, n_replicas=n_replicas, lock_timeout=lock_timeout
        )
        migrated = 0
        with legacy.reader():
            legacy_rows = list(legacy.rows())
        for row in legacy_rows:
            found = legacy.get_bytes(row.key)
            if found is None:  # pragma: no cover - corrupt legacy entry
                continue
            data, _ = found
            fabric.put(
                row.kind, row.key, json.loads(data),
                design=row.design, meta=row.meta, wall_s=row.wall_s,
            )
            migrated += 1
        return fabric, {
            "migrated": migrated,
            "shards": n_shards,
            "replicas": n_replicas,
        }
