"""Campaign-level cache over the artifact store, with provenance.

:class:`CampaignStore` is what the pipeline layers hold: a thin wrapper
around :class:`~repro.store.artifacts.ArtifactStore` that

* looks stage results up by key, treating a corrupted blob as a miss
  and recording a structured
  :class:`~repro.core.integrity.IntegrityViolation` (the campaign falls
  back to recomputation -- corruption must never crash or, worse,
  silently serve);
* publishes freshly computed stage payloads -- but only *clean* ones:
  a campaign that recorded integrity violations or quarantined faults
  is never written, so audited-out results cannot be served stale;
* accumulates per-stage :class:`StageProvenance` (hit/miss, wall time
  spent, wall time saved on hits) for the CLI/report layer.

Stage payload shapes (``kind`` -> canonical-JSON dict):

* ``faultsim``: ``{"verdicts": {fault_key: [verdict_value, cycle]}}``
* ``grading``: ``{"baseline": mc_json, "faults": {fault_key: mc_json}}``
* ``report``: the full result report of one ``classify``/``grade`` run
  (see :func:`repro.core.report.build_result_report`)
* ``fault-entry``: one collapsed fault's verdict + classification,
  addressed by aligned and content keys (see
  :mod:`repro.incremental.faultkeys`)
* ``incremental-meta``: per-campaign planner metadata (params digest,
  fault universe, classifier-context digests)
* ``netlist``: a round-trippable netlist payload
  (:func:`~repro.store.fingerprint.netlist_payload`) keyed by
  fingerprint, so ``--baseline <fingerprint>`` and ``--baseline auto``
  can reconstruct the baseline design from the store alone
* ``activity``: ``{"baseline": {"mc": mc_json, "activity": trace_json},
  "faults": {fault_key: same}}`` -- one campaign's converged per-fault
  integer activity counters (see :mod:`repro.fleet.activity`); a warm
  fleet calibration replays these with zero re-simulation
* ``fleet``: one :meth:`~repro.fleet.FleetResult.to_json_dict` payload
  keyed by campaign identity plus the fleet configuration, so a warm
  repeat of the same calibration skips even the population matmul
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ReplicaDivergence, ShardUnavailable
from ..core.integrity import STORE_CORRUPT_CHECK, IntegrityViolation
from .artifacts import ArtifactCorrupt, ArtifactStore, StoreError
from .fabric import FabricStore
from .shards import resolve_geometry

logger = logging.getLogger(__name__)


@dataclass
class StageProvenance:
    """Cache outcome of one campaign stage."""

    stage: str
    key: str
    hit: bool
    #: wall seconds this invocation spent in the stage (compute or lookup)
    wall_s: float = 0.0
    #: on a hit, the wall seconds the original cold run spent computing
    saved_s: float = 0.0
    published: bool = False

    def to_json_dict(self) -> dict:
        return {
            "stage": self.stage,
            "key": self.key,
            "hit": self.hit,
            "wall_s": self.wall_s,
            "saved_s": self.saved_s,
            "published": self.published,
        }


class CampaignStore:
    """Stage-result cache shared by one CLI invocation / serve process."""

    def __init__(
        self,
        root: str | os.PathLike,
        refresh: bool = False,
        shards: int | None = None,
        replicas: int | None = None,
    ):
        # a root with a persisted fabric.json (or explicit --shards flags)
        # opens as a replicated FabricStore; anything else stays the plain
        # single-file ArtifactStore.  Both speak the same surface.
        shard_map = resolve_geometry(root, shards, replicas)
        if shard_map is None:
            self.artifacts: ArtifactStore | FabricStore = ArtifactStore(root)
        else:
            self.artifacts = FabricStore(
                root, n_shards=shard_map.n_shards, n_replicas=shard_map.n_replicas
            )
        #: when True every lookup misses, so results are recomputed and
        #: republished (cache-busting without deleting the store)
        self.refresh = refresh
        self.provenance: list[StageProvenance] = []
        self.violations: list[IntegrityViolation] = []

    @property
    def is_fabric(self) -> bool:
        return isinstance(self.artifacts, FabricStore)

    # ---------------------------------------------------------------- lookup
    def lookup(self, kind: str, key: str) -> dict | None:
        """Fetch one stage payload; corruption degrades to a logged miss."""
        if self.refresh:
            return None
        try:
            return self.artifacts.get(key)
        except ArtifactCorrupt as exc:
            violation = IntegrityViolation(
                check=STORE_CORRUPT_CHECK,
                fault=key,
                detail=(
                    f"stored {kind} artifact failed its content hash and was "
                    f"quarantined; stage recomputed from scratch"
                ),
                expected=exc.expected[:16],
                actual=exc.actual[:16],
            )
            self.violations.append(violation)
            logger.warning("store: %s", violation.describe())
            return None
        except ReplicaDivergence as exc:
            # every copy failed its CRC: the campaign recomputes and the
            # republish repopulates the placement with a trusted copy
            violation = IntegrityViolation(
                check=STORE_CORRUPT_CHECK,
                fault=key,
                detail=f"every replica of the {kind} artifact diverged: {exc}",
            )
            self.violations.append(violation)
            logger.warning("store: %s", violation.describe())
            return None
        except ShardUnavailable as exc:
            # no replica reachable right now; a cache miss is the safe
            # degradation -- recomputation does not need the store at all
            logger.warning("store: fabric lookup degraded to a miss: %s", exc)
            return None

    # --------------------------------------------------------------- publish
    def publish(
        self,
        kind: str,
        key: str,
        payload: Any,
        design: str = "",
        meta: dict | None = None,
        wall_s: float = 0.0,
    ) -> bool:
        """Best-effort publication; a held lock degrades to a warning."""
        try:
            self.artifacts.put(
                kind, key, payload, design=design, meta=meta, wall_s=wall_s
            )
            return True
        except (StoreError, ShardUnavailable) as exc:
            logger.warning("store: could not publish %s artifact: %s", kind, exc)
            return False

    def publish_many(self, rows: list[tuple], wall_s: float = 0.0) -> int:
        """Batch-publish ``(kind, key, payload, design, meta)`` rows.

        Uses the backend's single-transaction ``put_many`` when it has
        one (the plain :class:`~repro.store.artifacts.ArtifactStore`);
        replicated fabrics route row by row so each key still lands on
        its own shard placement.  Best-effort like :meth:`publish`.
        """
        try:
            put_many = getattr(self.artifacts, "put_many", None)
            if put_many is not None:
                return put_many(rows, wall_s=wall_s)
            n = 0
            for kind, key, payload, design, meta in rows:
                self.artifacts.put(
                    kind, key, payload, design=design or "", meta=meta, wall_s=wall_s
                )
                n += 1
            return n
        except (StoreError, ShardUnavailable) as exc:
            logger.warning("store: batch publication degraded: %s", exc)
            return 0

    # ------------------------------------------------------------ provenance
    def record(self, provenance: StageProvenance) -> None:
        self.provenance.append(provenance)

    def hit_ratio(self) -> float:
        if not self.provenance:
            return 0.0
        return sum(1 for p in self.provenance if p.hit) / len(self.provenance)

    def saved_s(self) -> float:
        return sum(p.saved_s for p in self.provenance if p.hit)


def clean_campaign(report: Any) -> bool:
    """True when a campaign's results are publishable.

    A campaign that flagged integrity violations (diverged audits,
    broken invariants, chaos-tampered values) holds quarantined or
    reference-substituted results; publishing it would let a later warm
    run serve data that the guard layer already distrusted once.
    """
    return report is None or not report.violations


class StageTimer:
    """Tiny perf_counter context used around each cacheable stage."""

    def __enter__(self) -> "StageTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_s = time.perf_counter() - self._t0
