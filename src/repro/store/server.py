"""``repro-faults serve``: a stdlib-only HTTP front end over the
campaign service core.

A :class:`ThreadingHTTPServer` exposes cached campaign results, store
statistics and compute-on-miss through
:class:`repro.store.service.CampaignService` -- per-fingerprint request
coalescing, bounded admission, per-request deadlines, job-level retries
and graceful drain all live there; this module only parses requests and
renders structured JSON.

Endpoints::

    GET  /healthz                       liveness probe
    GET  /readyz                        readiness: store reachable, queue
                                        not saturated, not draining
    GET  /stats                         store + service statistics
    GET  /campaigns                     summaries of every cached campaign
    GET  /campaigns/<design>            newest cached report for a design
         ?threshold=0.05                select/compute at a threshold
         ?verdict=SFR                   filter the per-fault rows
    GET  /campaigns/<design>/faults     just the fault rows (same filters)
    GET  /campaigns/<design>/calibrate  fleet-scale threshold ROC (compute
         ?instances=100000              hook required; coalesced per fleet
         &sigma_cap=0.05&seed=7 ...     configuration -- see docs/store.md)
    GET  /fabric                        shard-fabric topology and health
                                        (404 on a plain single-file store)
    POST /designs/validate              fail-fast validation of an uploaded
         ?format=bench|verilog          netlist (never reaches a worker)

Every error is a structured JSON body ``{"error": <class>, "message":
..., "retryable": ...}`` with a faithful status code: 400 for bad input,
404 for unknown resources, 503 (+ ``Retry-After``) for overload/drain,
504 for expired deadlines, 500 for everything else -- never a raw
traceback, never a wedged connection.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..core.errors import (
    CampaignError,
    ChunkTimeout,
    DeadlineExceeded,
    InputValidationError,
    ServiceOverloaded,
    ShardUnavailable,
    is_retryable,
)
from .cache import CampaignStore
from .query import QUERY_VERDICTS, _fault_rows, query_campaigns, query_json
from .service import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_THRESHOLD,
    DEFAULT_WORKERS,
    CalibrateFn,
    CampaignService,
    ComputeFn,
)

logger = logging.getLogger(__name__)

__all__ = [
    "CalibrateFn",
    "ComputeFn",
    "DEFAULT_THRESHOLD",
    "StoreHTTPServer",
    "error_body",
    "http_status",
    "make_server",
    "serve_forever",
]


def http_status(exc: BaseException) -> int:
    """Map the failure taxonomy onto HTTP status codes."""
    if isinstance(exc, InputValidationError):
        return 400
    if isinstance(exc, (ServiceOverloaded, ShardUnavailable)):
        return 503
    if isinstance(exc, (DeadlineExceeded, ChunkTimeout)):
        return 504
    return 500


def error_body(exc: BaseException) -> dict:
    """Structured JSON error body for any exception."""
    return {
        "error": type(exc).__name__,
        "message": str(exc),
        "retryable": is_retryable(exc),
    }


class StoreHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning a :class:`CampaignService`."""

    daemon_threads = True
    service: CampaignService

    def server_close(self) -> None:  # stop the worker pool with the socket
        try:
            # socketserver calls server_close() from __init__ when the bind
            # fails, before make_server has attached the service.
            service = getattr(self, "service", None)
            if service is not None:
                service.stop()
        finally:
            super().server_close()


class _Handler(BaseHTTPRequestHandler):
    service: CampaignService  # injected by make_server

    # ------------------------------------------------------------- plumbing
    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        logger.debug("serve: " + fmt, *args)

    def _send(self, status: int, payload: Any, headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload, indent=2, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        error: str,
        message: str,
        retryable: bool = False,
        retry_after: float | None = None,
    ) -> None:
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(round(retry_after))))
        self._send(
            status,
            {"error": error, "message": message, "retryable": retryable},
            headers=headers,
        )

    def _error_exc(self, exc: BaseException) -> None:
        self._send_error_payload(http_status(exc), exc)

    def _send_error_payload(self, status: int, exc: BaseException) -> None:
        retry_after = getattr(exc, "retry_after", None)
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(round(retry_after))))
        self._send(status, error_body(exc), headers=headers)

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        svc = self.service
        svc.count_request()
        url = urlsplit(self.path)
        params = {k: v[-1] for k, v in parse_qs(url.query).items()}
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send(200, {"ok": True})
            elif parts == ["readyz"]:
                ok, detail = svc.ready()
                self._send(200 if ok else 503, detail)
            elif parts == ["stats"]:
                self._send(200, svc.stats())
            elif parts == ["campaigns"]:
                self._send(200, query_json(query_campaigns(svc.store)))
            elif parts == ["fabric"]:
                self._fabric()
            elif len(parts) in (2, 3) and parts[0] == "campaigns":
                self._campaign(parts, params)
            else:
                self._error(404, "NotFound", f"no such endpoint: {url.path}")
        except CampaignError as exc:
            self._error_exc(exc)
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # surface as JSON, keep the server alive
            logger.exception("serve: request %s failed", self.path)
            self._send_error_payload(500, exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        svc = self.service
        svc.count_request()
        url = urlsplit(self.path)
        params = {k: v[-1] for k, v in parse_qs(url.query).items()}
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["designs", "validate"]:
                self._validate_upload(params)
            else:
                self._error(404, "NotFound", f"no such endpoint: {url.path}")
        except CampaignError as exc:
            self._error_exc(exc)
        except BrokenPipeError:
            pass
        except Exception as exc:
            logger.exception("serve: request %s failed", self.path)
            self._send_error_payload(500, exc)

    # ------------------------------------------------------------ handlers
    def _fabric(self) -> None:
        artifacts = self.service.store.artifacts
        stats_fn = getattr(artifacts, "shard_health", None)
        if stats_fn is None:  # plain single-file store
            self._error(
                404, "NotFabric",
                "this node serves a plain single-file store, not a shard fabric",
            )
            return
        self._send(
            200,
            {
                "shards": artifacts.map.n_shards,
                "replicas": artifacts.map.n_replicas,
                "health": artifacts.shard_health(),
            },
        )

    def _campaign(self, parts: list[str], params: dict[str, str]) -> None:
        svc = self.service
        design = parts[1]
        if svc.designs and design not in svc.designs:
            self._error(
                404,
                "UnknownDesign",
                f"unknown design {design!r}; choose from {list(svc.designs)}",
            )
            return
        threshold: float | None = None
        if "threshold" in params:
            try:
                threshold = float(params["threshold"])
            except ValueError:
                self._error(
                    400,
                    "InputValidationError",
                    f"bad threshold {params['threshold']!r}: expected a number",
                )
                return
            if not 0 < threshold < 1:
                self._error(
                    400,
                    "InputValidationError",
                    f"threshold must be a fraction in (0, 1), got {threshold}",
                )
                return
        verdict = params.get("verdict")
        if verdict is not None and verdict not in QUERY_VERDICTS:
            self._error(
                400,
                "InputValidationError",
                f"bad verdict {verdict!r}: must be one of {list(QUERY_VERDICTS)}",
            )
            return
        if len(parts) == 3 and parts[2] == "calibrate":
            self._calibrate(design, params)
            return
        report = svc.campaign(design, threshold)
        if report is None:
            self._error(
                404,
                "NotCached",
                f"no cached campaign for {design!r} and computation is "
                f"disabled on this server",
            )
            return
        if len(parts) == 3:
            if parts[2] != "faults":
                self._error(404, "NotFound", f"no such campaign view: {parts[2]!r}")
                return
            self._send(200, _fault_rows(report, verdict))
            return
        if verdict is not None:
            report = dict(report, matched_faults=_fault_rows(report, verdict))
        self._send(200, report)

    #: fleet query parameters: name -> (parser, validator description)
    _CALIBRATE_INT = ("instances", "seed")
    _CALIBRATE_SIGMA = ("sigma_cap", "sigma_leak", "sigma_meas", "yield_budget")

    def _calibrate(self, design: str, params: dict[str, str]) -> None:
        """``GET /campaigns/<design>/calibrate`` -- fleet threshold ROC.

        Fleet knobs arrive as query parameters and are validated at the
        HTTP boundary (bad input never reaches a worker); the job is
        coalesced per (design, configuration) fingerprint by the service.
        """
        svc = self.service
        fleet: dict = {}
        known = set(self._CALIBRATE_INT) | set(self._CALIBRATE_SIGMA) | {"engine"}
        unknown = set(params) - known
        if unknown:
            self._error(
                400,
                "InputValidationError",
                f"unknown calibrate parameter(s) {sorted(unknown)}; "
                f"choose from {sorted(known)}",
            )
            return
        for name in self._CALIBRATE_INT:
            if name in params:
                try:
                    value = int(params[name])
                except ValueError:
                    self._error(
                        400,
                        "InputValidationError",
                        f"bad {name} {params[name]!r}: expected an integer",
                    )
                    return
                if value < 0 or (name == "instances" and value < 1):
                    self._error(
                        400,
                        "InputValidationError",
                        f"bad {name} {value}: must be "
                        f"{'>= 1' if name == 'instances' else '>= 0'}",
                    )
                    return
                fleet[name] = value
        for name in self._CALIBRATE_SIGMA:
            if name in params:
                try:
                    value = float(params[name])
                except ValueError:
                    self._error(
                        400,
                        "InputValidationError",
                        f"bad {name} {params[name]!r}: expected a number",
                    )
                    return
                if not 0 <= value < 1:
                    self._error(
                        400,
                        "InputValidationError",
                        f"bad {name} {value}: must be a fraction in [0, 1)",
                    )
                    return
                fleet[name] = value
        if "engine" in params:
            if params["engine"] not in ("rowwise", "factored"):
                self._error(
                    400,
                    "InputValidationError",
                    f"bad engine {params['engine']!r}: must be 'rowwise' or "
                    f"'factored'",
                )
                return
            fleet["engine"] = params["engine"]
        report = svc.calibrate(design, fleet)
        if report is None:
            self._error(
                404,
                "NotCached",
                f"fleet calibration for {design!r} needs the compute hook, "
                f"which is disabled on this server",
            )
            return
        self._send(200, report)

    def _validate_upload(self, params: dict[str, str]) -> None:
        from ..core.errors import UPLOAD_MAX_BYTES
        from ..netlist.bench import parse_bench_upload
        from ..netlist.verilog import parse_verilog_upload
        from .fingerprint import netlist_fingerprint

        fmt = params.get("format", "bench")
        if fmt not in ("bench", "verilog"):
            raise InputValidationError(
                f"bad format {fmt!r}: must be 'bench' or 'verilog'"
            )
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise InputValidationError("bad Content-Length header") from None
        if length <= 0:
            raise InputValidationError("upload is empty")
        if length > UPLOAD_MAX_BYTES:
            raise InputValidationError(
                f"upload is {length} bytes; the limit is {UPLOAD_MAX_BYTES}"
            )
        text = self.rfile.read(length).decode("utf-8", errors="replace")
        parse = parse_bench_upload if fmt == "bench" else parse_verilog_upload
        netlist = parse(text)  # raises InputValidationError, mapped to 400
        self._send(
            200,
            {
                "ok": True,
                "format": fmt,
                "design": netlist.name,
                "fingerprint": netlist_fingerprint(netlist),
                "stats": netlist.stats(),
            },
        )


def make_server(
    host: str,
    port: int,
    store: CampaignStore,
    compute: ComputeFn | None = None,
    compute_calibrate: CalibrateFn | None = None,
    designs: tuple[str, ...] = (),
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    workers: int = DEFAULT_WORKERS,
    request_timeout: float | None = None,
    service: CampaignService | None = None,
) -> StoreHTTPServer:
    """Build (but do not start) the threaded store server."""
    if service is None:
        service = CampaignService(
            store,
            compute=compute,
            compute_calibrate=compute_calibrate,
            designs=designs,
            queue_depth=queue_depth,
            workers=workers,
            request_timeout=request_timeout,
        )
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = StoreHTTPServer((host, port), handler)
    server.service = service
    service.start()
    return server


def serve_forever(server: ThreadingHTTPServer, drain_grace: float = 30.0) -> None:
    """Run until interrupted; SIGTERM and ^C drain gracefully.

    On SIGTERM the service stops admitting compute jobs, in-flight jobs
    finish (their checkpoint journals persist either way), and only then
    does the listener shut down.
    """
    service = getattr(server, "service", None)

    def _drain_and_stop(signum, frame):  # pragma: no cover - signal path
        logger.info("serve: SIGTERM received; draining")
        if service is not None:
            service.drain(grace=drain_grace)
        # shutdown() blocks until serve_forever exits, and signal handlers
        # run on the main thread -- hop threads to avoid self-deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain_and_stop)
    except ValueError:  # not on the main thread (tests): skip the handler
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        if service is not None:
            service.drain(grace=drain_grace)
    finally:
        server.server_close()
