"""``repro-faults serve``: a stdlib-only HTTP view of the campaign store.

A :class:`ThreadingHTTPServer` exposes cached campaign results and store
statistics as JSON.  Requests for a campaign that is not cached yet are
computed on the fly through an injected ``compute`` callable (the CLI
wires in the real cache-aware pipeline; tests inject a stub), published
to the store, and then served -- so the first request pays the
simulation cost and every later one is an index scan plus one
integrity-verified blob read.

Endpoints::

    GET /healthz                       liveness probe
    GET /stats                         artifact-store statistics
    GET /campaigns                     summaries of every cached campaign
    GET /campaigns/<design>            newest cached report for a design
        ?threshold=0.05                select/compute at a threshold
        ?verdict=SFR                   filter the per-fault rows
    GET /campaigns/<design>/faults     just the fault rows (same filters)

Computation is serialized by a process-wide lock: the store is
single-writer, and stampeding identical simulations would only burn
cores to produce the same content-addressed blob.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from .cache import CampaignStore
from .query import QUERY_VERDICTS, _fault_rows, query_campaigns, query_json

logger = logging.getLogger(__name__)

#: compute-on-miss hook: (design, threshold) -> report dict (already published)
ComputeFn = Callable[[str, float], dict]

DEFAULT_THRESHOLD = 0.05


class StoreService:
    """Request-independent state shared by every handler thread."""

    def __init__(
        self,
        store: CampaignStore,
        compute: ComputeFn | None = None,
        designs: tuple[str, ...] = (),
    ):
        self.store = store
        self.compute = compute
        self.designs = designs
        self._compute_lock = threading.Lock()
        self.requests = 0
        self.served_cached = 0
        self.computed = 0

    # ----------------------------------------------------------------- logic
    def stats(self) -> dict:
        return {
            "store": self.store.artifacts.stats(),
            "requests": self.requests,
            "served_cached": self.served_cached,
            "computed": self.computed,
        }

    def campaign(self, design: str, threshold: float | None) -> dict | None:
        """Newest cached report for a design, computing on miss."""
        matches = query_campaigns(self.store, design=design, threshold=threshold)
        if matches:
            self.served_cached += 1
            return max(matches, key=lambda m: m.created_at).report
        if self.compute is None:
            return None
        with self._compute_lock:
            # Double-check under the lock: a sibling request may have
            # just computed and published the same campaign.
            matches = query_campaigns(self.store, design=design, threshold=threshold)
            if matches:
                self.served_cached += 1
                return max(matches, key=lambda m: m.created_at).report
            report = self.compute(design, threshold if threshold is not None else DEFAULT_THRESHOLD)
        self.computed += 1
        return report


class _Handler(BaseHTTPRequestHandler):
    service: StoreService  # injected by make_server

    # ------------------------------------------------------------- plumbing
    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        logger.debug("serve: " + fmt, *args)

    def _send(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        svc = self.service
        svc.requests += 1
        url = urlsplit(self.path)
        params = {k: v[-1] for k, v in parse_qs(url.query).items()}
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send(200, {"ok": True})
            elif parts == ["stats"]:
                self._send(200, svc.stats())
            elif parts == ["campaigns"]:
                self._send(200, query_json(query_campaigns(svc.store)))
            elif len(parts) in (2, 3) and parts[0] == "campaigns":
                self._campaign(parts, params)
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except Exception as exc:  # surface as JSON, keep the server alive
            logger.exception("serve: request %s failed", self.path)
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _campaign(self, parts: list[str], params: dict[str, str]) -> None:
        svc = self.service
        design = parts[1]
        if svc.designs and design not in svc.designs:
            self._error(404, f"unknown design {design!r}; choose from {list(svc.designs)}")
            return
        threshold: float | None = None
        if "threshold" in params:
            try:
                threshold = float(params["threshold"])
            except ValueError:
                self._error(400, f"bad threshold {params['threshold']!r}")
                return
            if not 0 < threshold < 1:
                self._error(400, "threshold must be a fraction in (0, 1)")
                return
        verdict = params.get("verdict")
        if verdict is not None and verdict not in QUERY_VERDICTS:
            self._error(400, f"verdict must be one of {list(QUERY_VERDICTS)}")
            return
        report = svc.campaign(design, threshold)
        if report is None:
            self._error(
                404,
                f"no cached campaign for {design!r} and computation is "
                f"disabled on this server",
            )
            return
        if len(parts) == 3:
            if parts[2] != "faults":
                self._error(404, f"no such campaign view: {parts[2]!r}")
                return
            self._send(200, _fault_rows(report, verdict))
            return
        if verdict is not None:
            report = dict(report, matched_faults=_fault_rows(report, verdict))
        self._send(200, report)


def make_server(
    host: str,
    port: int,
    store: CampaignStore,
    compute: ComputeFn | None = None,
    designs: tuple[str, ...] = (),
) -> ThreadingHTTPServer:
    """Build (but do not start) the threaded store server."""
    service = StoreService(store, compute=compute, designs=designs)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve_forever(server: ThreadingHTTPServer) -> None:
    """Run until interrupted; ^C shuts down cleanly."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
