"""Shard placement for the replicated campaign-store fabric.

The content-addressed store keys everything by canonical sha-256
fingerprints (:mod:`repro.store.fingerprint`), which makes partitioning
trivial and perfectly balanced: the leading hex digits of a key are
already a uniform hash, so a key's **primary shard** is just its prefix
modulo the shard count, and its **replicas** are the next
``n_replicas - 1`` shards on the ring.  :class:`ShardMap` is the pure
placement function; :mod:`repro.store.fabric` is the coordinator that
acts on it.

Geometry is persisted in ``<root>/fabric.json`` so every process that
opens the store -- CLI runs, serve nodes, scrubbers -- agrees on the
layout without flags.  Changing the geometry of a live store is a data
migration, not a config edit: :meth:`FabricStore.rebalance
<repro.store.fabric.FabricStore.rebalance>` re-places every artifact
and only then rewrites ``fabric.json``.

Layout of a fabric root directory::

    <root>/fabric.json         persisted geometry {schema, shards, replicas}
    <root>/shard-00/           one full ArtifactStore per shard
    <root>/shard-01/               (index.db + objects/ + store.lock)
    ...
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..core.errors import CampaignError

#: bumped when the fabric.json layout changes incompatibly
FABRIC_SCHEMA = 1

#: geometry bounds: enough for any single-machine fabric, small enough
#: that a typo'd flag fails fast instead of creating 10^6 directories
MAX_SHARDS = 256

FABRIC_CONFIG = "fabric.json"


def shard_name(shard_id: int) -> str:
    return f"shard-{shard_id:02d}"


def shard_root(root: str | os.PathLike, shard_id: int) -> Path:
    return Path(root) / shard_name(shard_id)


@dataclass(frozen=True)
class ShardMap:
    """Pure key -> replica-set placement over ``n_shards`` shards.

    ``n_replicas`` counts *total* copies including the primary, and is
    silently capped at the shard count (you cannot hold two copies of a
    key on one shard -- they would share the same SQLite file and die
    together, which is zero extra redundancy).
    """

    n_shards: int
    n_replicas: int

    def __post_init__(self) -> None:
        if not 1 <= self.n_shards <= MAX_SHARDS:
            raise CampaignError(
                f"shard count must be in [1, {MAX_SHARDS}], got {self.n_shards}"
            )
        if self.n_replicas < 1:
            raise CampaignError(
                f"replication factor must be >= 1, got {self.n_replicas}"
            )

    @property
    def copies(self) -> int:
        """Effective copies per key: min(replicas, shards)."""
        return min(self.n_replicas, self.n_shards)

    def primary(self, key: str) -> int:
        """The primary shard of a store key (its fingerprint prefix)."""
        try:
            prefix = int(key[:8], 16)
        except (ValueError, IndexError):
            # non-fingerprint keys (tests, ad-hoc tags): hash to a prefix
            prefix = int(hashlib.sha256(key.encode("utf-8")).hexdigest()[:8], 16)
        return prefix % self.n_shards

    def placement(self, key: str) -> tuple[int, ...]:
        """Every shard holding a copy of ``key``, primary first."""
        first = self.primary(key)
        return tuple((first + i) % self.n_shards for i in range(self.copies))

    def to_json_dict(self) -> dict:
        return {
            "schema": FABRIC_SCHEMA,
            "shards": self.n_shards,
            "replicas": self.n_replicas,
        }


def save_geometry(root: str | os.PathLike, shard_map: ShardMap) -> None:
    """Atomically persist the fabric geometry under ``root``."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    tmp = root / f".{FABRIC_CONFIG}.tmp-{os.getpid()}"
    tmp.write_text(json.dumps(shard_map.to_json_dict(), indent=2), encoding="utf-8")
    os.replace(tmp, root / FABRIC_CONFIG)


def load_geometry(root: str | os.PathLike) -> ShardMap | None:
    """The persisted geometry of a fabric root, or None for a plain store."""
    path = Path(root) / FABRIC_CONFIG
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise CampaignError(f"unreadable fabric config {path}: {exc}") from exc
    if raw.get("schema") != FABRIC_SCHEMA:
        raise CampaignError(
            f"fabric config {path} has schema {raw.get('schema')!r}; "
            f"this build understands schema {FABRIC_SCHEMA}"
        )
    try:
        return ShardMap(n_shards=int(raw["shards"]), n_replicas=int(raw["replicas"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise CampaignError(f"malformed fabric config {path}: {exc}") from exc


def resolve_geometry(
    root: str | os.PathLike,
    n_shards: int | None = None,
    n_replicas: int | None = None,
) -> ShardMap | None:
    """Reconcile requested geometry flags with a store's persisted one.

    * nothing persisted, no flags -> None (plain single-file store);
    * nothing persisted, flags -> a brand-new fabric geometry;
    * persisted, no flags -> the persisted geometry (serve nodes and
      queries need no flags);
    * persisted and flags -> they must agree; a mismatch raises instead
      of silently mis-placing keys (``store rebalance`` is the migration
      path).
    """
    persisted = load_geometry(root)
    if n_shards is None and n_replicas is None:
        return persisted
    if persisted is None:
        if n_shards is None or n_shards <= 1:
            return None
        return ShardMap(n_shards=n_shards, n_replicas=n_replicas or 2)
    requested = ShardMap(
        n_shards=persisted.n_shards if n_shards is None else n_shards,
        n_replicas=persisted.n_replicas if n_replicas is None else n_replicas,
    )
    if requested != persisted:
        raise CampaignError(
            f"store {root} is a {persisted.n_shards}-shard/"
            f"{persisted.n_replicas}-replica fabric but "
            f"--shards/--replicas request {requested.n_shards}/"
            f"{requested.n_replicas}; run 'store rebalance' to migrate"
        )
    return persisted
