"""Content-addressed campaign store: persistent cache, query and serve.

Submodules (import :mod:`~repro.store.query` / :mod:`~repro.store.server`
directly -- they are kept out of this namespace to avoid import cycles
with the pipeline layers):

* :mod:`~repro.store.fingerprint` -- canonical stage keys;
* :mod:`~repro.store.artifacts` -- SQLite-indexed blob store;
* :mod:`~repro.store.shards` -- fingerprint-prefix shard placement;
* :mod:`~repro.store.fabric` -- replicated shard fabric (failover,
  read repair, anti-entropy scrub, rebalance);
* :mod:`~repro.store.cache` -- campaign-level cache with provenance;
* :mod:`~repro.store.query` -- filter cached campaigns;
* :mod:`~repro.store.server` -- stdlib HTTP serve layer;
* :mod:`~repro.store.client` -- retrying multi-endpoint remote client.
"""

from .artifacts import ArtifactCorrupt, ArtifactStore, StoreError, StoreLockError
from .cache import CampaignStore, StageProvenance, StageTimer, clean_campaign
from .fabric import FabricStore
from .fingerprint import (
    SCHEMA_VERSION,
    canonical_json,
    digest,
    netlist_fingerprint,
    stage_key,
)
from .shards import ShardMap, load_geometry, resolve_geometry, save_geometry

__all__ = [
    "ArtifactCorrupt",
    "ArtifactStore",
    "CampaignStore",
    "FabricStore",
    "SCHEMA_VERSION",
    "ShardMap",
    "StageProvenance",
    "StageTimer",
    "StoreError",
    "StoreLockError",
    "canonical_json",
    "clean_campaign",
    "digest",
    "load_geometry",
    "netlist_fingerprint",
    "resolve_geometry",
    "save_geometry",
    "stage_key",
]
