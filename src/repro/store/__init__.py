"""Content-addressed campaign store: persistent cache, query and serve.

Submodules (import :mod:`~repro.store.query` / :mod:`~repro.store.server`
directly -- they are kept out of this namespace to avoid import cycles
with the pipeline layers):

* :mod:`~repro.store.fingerprint` -- canonical stage keys;
* :mod:`~repro.store.artifacts` -- SQLite-indexed blob store;
* :mod:`~repro.store.cache` -- campaign-level cache with provenance;
* :mod:`~repro.store.query` -- filter cached campaigns;
* :mod:`~repro.store.server` -- stdlib HTTP serve layer.
"""

from .artifacts import ArtifactCorrupt, ArtifactStore, StoreError, StoreLockError
from .cache import CampaignStore, StageProvenance, StageTimer, clean_campaign
from .fingerprint import (
    SCHEMA_VERSION,
    canonical_json,
    digest,
    netlist_fingerprint,
    stage_key,
)

__all__ = [
    "ArtifactCorrupt",
    "ArtifactStore",
    "CampaignStore",
    "SCHEMA_VERSION",
    "StageProvenance",
    "StageTimer",
    "StoreError",
    "StoreLockError",
    "canonical_json",
    "clean_campaign",
    "digest",
    "netlist_fingerprint",
    "stage_key",
]
