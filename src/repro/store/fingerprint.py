"""Canonical fingerprints keying the content-addressed campaign store.

Every result the Section-5 flow produces is a pure function of
``(netlist, stimulus plan, config knobs, seeds, code schema)``.  The
store exploits that by deriving one stable hexadecimal *stage key* from
exactly those inputs:

* :func:`canonical_json` serializes any JSON-able value with sorted keys
  and no whitespace, so logically equal inputs hash equally regardless
  of dict insertion order or formatting;
* :func:`netlist_fingerprint` hashes the *content* of a netlist (gates,
  pins, net names, primary I/O) -- two designs named ``diffeq`` with
  different synthesis results get different keys, unlike the
  name-keyed checkpoint fingerprints of :mod:`repro.core.checkpoint`;
* :func:`stage_key` folds a stage name, a netlist fingerprint, the
  result-relevant parameters and :data:`SCHEMA_VERSION` into the final
  cache key.

``SCHEMA_VERSION`` must be bumped whenever the *meaning* of any stored
payload changes (a verdict encoding, a power model revision, a new
classification rule): old artifacts then simply stop matching and are
recomputed, which is the whole invalidation policy (see docs/store.md).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from ..netlist.gates import GateType
from ..netlist.netlist import Netlist

#: bumped whenever stored payload semantics change incompatibly; part of
#: every stage key, so a bump invalidates the entire store at once.
#: v2: netlist fingerprints became insertion-order insensitive (gates
#: sorted by name, nets referenced by name), so permuted-but-identical
#: netlists share a fingerprint; old v1 keys simply stop matching.
SCHEMA_VERSION = 2


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False, default=str
    )


def digest(obj: Any) -> str:
    """sha-256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def netlist_fingerprint(netlist: Any) -> str:
    """Content hash of a gate-level netlist, insensitive to build order.

    Covers everything that determines simulation results: net names
    (fault sites are described through them), gate types, pin
    connections, gate names/tags (tags select fault universes and the
    power-estimation partition) and the primary input/output lists --
    but *not* numeric gate indices or net ids.  Gates are keyed by their
    (unique) names and nets referenced by name, so two netlists that
    declare the same gates in a different order fingerprint identically.
    Stage keys whose payloads expose index-based fault keys must fold
    the fault-key list into their params (the pipeline stages all do).
    """
    names = netlist.net_names
    payload = {
        "name": netlist.name,
        "inputs": [names[i] for i in netlist.inputs],
        "outputs": [names[i] for i in netlist.outputs],
        "gates": sorted(
            [g.name, g.gtype.name, names[g.output], [names[i] for i in g.inputs], g.tag]
            for g in netlist.gates
        ),
    }
    return digest(payload)


def netlist_payload(netlist: Netlist) -> dict:
    """Exact, order-preserving JSON form of a netlist.

    Unlike the fingerprint payload this keeps net declaration order and
    gate insertion order, so :func:`netlist_from_payload` reconstructs a
    netlist with identical net ids and gate indices -- which is what the
    incremental planner needs to re-derive a baseline's index-based
    fault keys.
    """
    names = netlist.net_names
    return {
        "schema": SCHEMA_VERSION,
        "name": netlist.name,
        "nets": list(names),
        "inputs": [names[i] for i in netlist.inputs],
        "outputs": [names[i] for i in netlist.outputs],
        "gates": [
            [g.gtype.name, names[g.output], [names[i] for i in g.inputs], g.name, g.tag]
            for g in netlist.gates
        ],
    }


def netlist_from_payload(payload: Mapping[str, Any]) -> Netlist:
    """Reconstruct the exact netlist serialized by :func:`netlist_payload`."""
    netlist = Netlist(name=payload["name"])
    for name in payload["nets"]:
        netlist.add_net(name)
    for name in payload["inputs"]:
        netlist.mark_input(netlist.net_id(name))
    for gtype, output, inputs, name, tag in payload["gates"]:
        netlist.add_gate(
            GateType[gtype],
            netlist.net_id(output),
            [netlist.net_id(i) for i in inputs],
            name=name,
            tag=tag,
        )
    for name in payload["outputs"]:
        netlist.mark_output(netlist.net_id(name))
    return netlist


def netlist_store_key(netlist_fp: str) -> str:
    """Store key of a published ``netlist``-kind blob (baseline lookup)."""
    return digest({"schema": SCHEMA_VERSION, "stage": "netlist", "netlist": netlist_fp})


def stage_key(stage: str, netlist_fp: str, params: Mapping[str, Any]) -> str:
    """The store key of one campaign stage result.

    Two invocations share a key exactly when they are guaranteed to
    produce bit-identical payloads: same code schema, same stage, same
    netlist content and same result-relevant parameters/seeds.
    """
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "stage": stage,
            "netlist": netlist_fp,
            "params": {k: params[k] for k in sorted(params)},
        }
    )
