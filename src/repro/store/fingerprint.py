"""Canonical fingerprints keying the content-addressed campaign store.

Every result the Section-5 flow produces is a pure function of
``(netlist, stimulus plan, config knobs, seeds, code schema)``.  The
store exploits that by deriving one stable hexadecimal *stage key* from
exactly those inputs:

* :func:`canonical_json` serializes any JSON-able value with sorted keys
  and no whitespace, so logically equal inputs hash equally regardless
  of dict insertion order or formatting;
* :func:`netlist_fingerprint` hashes the *content* of a netlist (gates,
  pins, net names, primary I/O) -- two designs named ``diffeq`` with
  different synthesis results get different keys, unlike the
  name-keyed checkpoint fingerprints of :mod:`repro.core.checkpoint`;
* :func:`stage_key` folds a stage name, a netlist fingerprint, the
  result-relevant parameters and :data:`SCHEMA_VERSION` into the final
  cache key.

``SCHEMA_VERSION`` must be bumped whenever the *meaning* of any stored
payload changes (a verdict encoding, a power model revision, a new
classification rule): old artifacts then simply stop matching and are
recomputed, which is the whole invalidation policy (see docs/store.md).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

#: bumped whenever stored payload semantics change incompatibly; part of
#: every stage key, so a bump invalidates the entire store at once.
SCHEMA_VERSION = 1


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False, default=str
    )


def digest(obj: Any) -> str:
    """sha-256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def netlist_fingerprint(netlist: Any) -> str:
    """Content hash of a gate-level netlist.

    Covers everything that determines simulation results and fault keys:
    net names (fault sites are described through them), gate types, pin
    connections, gate names/tags (tags select fault universes and the
    power-estimation partition) and the primary input/output lists.
    """
    payload = {
        "name": netlist.name,
        "nets": list(netlist.net_names),
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "gates": [
            [g.index, g.gtype.name, g.output, list(g.inputs), g.name, g.tag]
            for g in netlist.gates
        ],
    }
    return digest(payload)


def stage_key(stage: str, netlist_fp: str, params: Mapping[str, Any]) -> str:
    """The store key of one campaign stage result.

    Two invocations share a key exactly when they are guaranteed to
    produce bit-identical payloads: same code schema, same stage, same
    netlist content and same result-relevant parameters/seeds.
    """
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "stage": stage,
            "netlist": netlist_fp,
            "params": {k: params[k] for k in sorted(params)},
        }
    )
